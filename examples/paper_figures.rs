//! Regenerate every figure of the paper's evaluation section in one run.
//!
//! ```text
//! cargo run --release --example paper_figures
//! ```
//!
//! Runs the full failure matrix ({2,4}-PoD × {MR-MTP, BGP/ECMP,
//! BGP/ECMP/BFD} × TC1–TC4) twice (near- and far-sender traffic), plus
//! the steady-state keep-alive capture and the configuration/table-size
//! comparisons. Scenarios fan out over all CPUs; expect a few seconds.

use dcn_experiments::figures;
use dcn_experiments::TrafficDir;

fn main() {
    let seed = 42;
    eprintln!("running failure matrix (near-sender traffic)…");
    let near = figures::failure_matrix(TrafficDir::NearToFar, seed);
    eprintln!("running failure matrix (far-sender traffic)…");
    let far = figures::failure_matrix(TrafficDir::FarToNear, seed);

    println!("{}", figures::fig1_stack_comparison(seed).render());
    println!("{}", figures::fig4_convergence(&near).render());
    println!("{}", figures::fig5_blast_radius(&near).render());
    println!("{}", figures::fig6_control_overhead(&near).render());
    println!("{}", figures::fig_packet_loss(&near, true).render());
    println!("{}", figures::fig_packet_loss(&far, false).render());
    println!("{}", figures::fig9_keepalive(seed).render());
    println!("{}", figures::config_comparison().render());
    println!("{}", figures::table_size_comparison(seed).render());
    println!("{}", figures::encap_overhead_figure(seed).render());
}
