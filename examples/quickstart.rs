//! Quickstart: build the paper's 2-PoD folded-Clos, run MR-MTP, watch the
//! meshed trees form (Fig. 2), and forward a packet between far racks.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dcn_experiments::{build_sim, Stack};
use dcn_sim::time::secs;
use dcn_sim::NodeId;
use dcn_topology::ClosParams;
use dcn_traffic::{SendSpec, TrafficHost};

fn main() {
    // The paper's 2-PoD test topology: 4 ToRs (VIDs 11–14), 4 PoD
    // spines, 4 top spines, one server per rack.
    let params = ClosParams::two_pod();

    // One monitored flow: server 192.168.11.1 → server 192.168.14.1,
    // starting after the fabric has converged.
    let fabric = dcn_topology::Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let src = fabric.server(0, 0, 0);
    let dst_ip = addr.server_addr(fabric.tor(1, 1), 0).unwrap();
    let mut spec = SendSpec::new(dst_ip, secs(2), secs(3));
    spec.count = 100;

    let mut built = build_sim(params, Stack::Mrmtp, 42, &[(src, spec)]);
    println!("running MR-MTP on a 2-PoD folded-Clos ({} routers, {} links)…\n",
             built.fabric.num_routers(), built.fabric.links.len());
    built.sim.run_until(secs(4));

    // The meshed trees of Fig. 2: every top spine holds one VID per ToR,
    // each VID spelling the path back to its root.
    for k in 0..4 {
        let spine = built.mrmtp(built.fabric.top_spine(k));
        println!("VID table at {} (S2_{}):", spine.name(), k + 1);
        print!("{}", spine.render_table());
        println!();
    }
    for j in 0..2 {
        let spine = built.mrmtp(built.fabric.pod_spine(0, j));
        println!("VID table at {} (S1_{}):", spine.name(), j + 1);
        print!("{}", spine.render_table());
        println!();
    }

    // End-to-end delivery across the fabric.
    let sent = built.host(src).sent();
    let dst = built.fabric.server(1, 1, 0);
    let report = built
        .sim
        .node_as::<TrafficHost>(NodeId(dst as u32))
        .unwrap()
        .report(sent);
    println!(
        "traffic 192.168.11.1 → {dst_ip}: sent {} received {} lost {} \
         (duplicates {}, out-of-order {})",
        report.sent,
        report.unique,
        report.lost(),
        report.duplicates,
        report.out_of_order
    );
    assert_eq!(report.lost(), 0, "healthy fabric loses nothing");
    println!("\nquickstart OK");
}
