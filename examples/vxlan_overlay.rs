//! The paper's §III-A overlay assumption, demonstrated end to end: VM
//! traffic is VXLAN-encapsulated by the server (VTEP), the outer IP
//! header carries *server* addresses, and MR-MTP derives the destination
//! ToR VID from that outer header — VM addressing never touches the
//! fabric.
//!
//! ```text
//! cargo run --release --example vxlan_overlay
//! ```

use std::any::Any;

use dcn_sim::time::secs;
use dcn_sim::{Ctx, FrameBuf, FrameClass, NodeId, PortId, Protocol};
use dcn_topology::ClosParams;
use dcn_wire::{
    EtherType, EthernetFrame, IpAddr4, Ipv4Packet, MacAddr, UdpDatagram, VxlanHeader,
    IPPROTO_UDP, VXLAN_PORT,
};

/// A server acting as a VXLAN tunnel endpoint for one resident VM.
struct Vtep {
    server_ip: IpAddr4,
    vm_ip: IpAddr4,
    vni: u32,
    /// (peer server, peer VM) to send one message to, and when.
    send: Option<(IpAddr4, IpAddr4, u64)>,
    received: Vec<(u32, IpAddr4, Vec<u8>)>, // (vni, inner src VM, payload)
}

impl Protocol for Vtep {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((_, _, at)) = self.send {
            ctx.set_timer(at, 1);
        }
    }

    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, frame: &FrameBuf) {
        // Outer: Ethernet / IPv4(server) / UDP(4789) / VXLAN / inner
        // Ethernet / IPv4(VM) / payload.
        let Ok(eth) = EthernetFrame::decode(frame) else { return };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(outer) = Ipv4Packet::decode(&eth.payload) else { return };
        if outer.dst != self.server_ip || outer.protocol != IPPROTO_UDP {
            return;
        }
        let Ok(udp) = UdpDatagram::decode(&outer.payload) else { return };
        if udp.dst_port != VXLAN_PORT {
            return;
        }
        let Ok((vxlan, inner_frame)) = VxlanHeader::decapsulate(&udp.payload) else { return };
        let Ok(inner_eth) = EthernetFrame::decode(inner_frame) else { return };
        let Ok(inner_ip) = Ipv4Packet::decode(&inner_eth.payload) else { return };
        if inner_ip.dst == self.vm_ip && vxlan.vni == self.vni {
            self.received.push((vxlan.vni, inner_ip.src, inner_ip.payload));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some((peer_server, peer_vm, _)) = self.send else { return };
        // Inner: the VM's own frame.
        let inner_ip = Ipv4Packet::new(self.vm_ip, peer_vm, IPPROTO_UDP, {
            let payload = b"hello from the overlay".to_vec();
            UdpDatagram::new(1111, 2222, payload).encode()
        });
        let inner_frame = EthernetFrame {
            dst: MacAddr([0x0A; 6]),
            src: MacAddr([0x0B; 6]),
            ethertype: EtherType::Ipv4,
            payload: inner_ip.encode(),
        };
        // Outer: VTEP to VTEP, server addressing — what the ToR sees.
        let vxlan = VxlanHeader::new(self.vni).encapsulate(&inner_frame.encode());
        let udp = UdpDatagram::new(53000, VXLAN_PORT, vxlan);
        let outer = Ipv4Packet::new(self.server_ip, peer_server, IPPROTO_UDP, udp.encode());
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node_port(ctx.node().0, 0),
            ethertype: EtherType::Ipv4,
            payload: outer.encode(),
        };
        ctx.send(PortId(0), frame.encode(), FrameClass::Data);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let params = ClosParams::two_pod();
    let fabric = dcn_topology::Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let src_server = addr.server_addr(fabric.tor(0, 0), 0).unwrap();
    let dst_server = addr.server_addr(fabric.tor(1, 1), 0).unwrap();
    let vm_a = IpAddr4::new(10, 99, 0, 1);
    let vm_b = IpAddr4::new(10, 99, 0, 2);
    let vni = 4242;

    let mut b = dcn_sim::SimBuilder::new(42);
    for (i, node) in fabric.nodes.iter().enumerate() {
        let proto: Box<dyn Protocol> = match node.role {
            dcn_topology::Role::Server { pod, tor_idx, idx } => {
                let tor = fabric.tor(pod, tor_idx);
                let ip = addr.server_addr(tor, idx).unwrap();
                let send = (ip == src_server).then_some((dst_server, vm_b, secs(2)));
                Box::new(Vtep {
                    server_ip: ip,
                    vm_ip: if ip == src_server { vm_a } else { vm_b },
                    vni,
                    send,
                    received: Vec::new(),
                })
            }
            _ => {
                // Routers: the standard MR-MTP construction (the harness
                // builds whole fabrics with stock traffic hosts, so wire
                // the custom VTEP servers by hand here).
                use dcn_mrmtp::{MrmtpConfig, MrmtpRouter, TorConfig};
                let cfg = match node.role {
                    dcn_topology::Role::Tor { .. } => {
                        let rack = addr.rack_subnet(i).unwrap();
                        let mut host_ports = Vec::new();
                        for (pi, pr) in fabric.ports[i].iter().enumerate() {
                            if matches!(pr.kind, dcn_topology::PortKind::Host) {
                                let s = host_ports.len();
                                host_ports
                                    .push((addr.server_addr(i, s).unwrap(), PortId(pi as u16)));
                            }
                        }
                        MrmtpConfig::tor(node.name.clone(), TorConfig {
                            rack_subnet: rack,
                            host_ports,
                        })
                    }
                    _ => MrmtpConfig::spine(node.name.clone(), node.tier),
                };
                Box::new(MrmtpRouter::new(cfg, fabric.ports[i].len()))
            }
        };
        b.add_node(node.name.clone(), proto);
    }
    for &(x, y) in &fabric.links {
        b.add_link(
            NodeId(x as u32),
            NodeId(y as u32),
            dcn_sim::link::LinkSpec::default(),
        );
    }
    let mut sim = b.build();
    sim.run_until(secs(3));

    let dst_node = fabric.server(1, 1, 0);
    let vtep: &Vtep = sim.node_as(NodeId(dst_node as u32)).unwrap();
    assert_eq!(vtep.received.len(), 1, "overlay packet must arrive");
    let (got_vni, inner_src, payload) = &vtep.received[0];
    println!("VXLAN overlay across the MR-MTP fabric:");
    println!("  outer (what the fabric routed): {src_server} → {dst_server}");
    println!("  VNI {got_vni}, inner VM flow {inner_src} → {vm_b}");
    let udp = UdpDatagram::decode(payload).unwrap();
    println!("  inner payload: {:?}", String::from_utf8_lossy(&udp.payload));
    println!(
        "\nThe ToR derived the destination VID from the OUTER header's third octet\n\
         (192.168.{v}.0/24 → VID {v}), exactly as §III-A describes — VM addresses\n\
         (10.99.0.0/16) never appear in any VID table.",
        v = dst_server.third_octet()
    );
}
