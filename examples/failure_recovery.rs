//! Walk one interface failure (TC1, the paper's hardest case for
//! timeout-based detection) through all three protocol stacks, narrating
//! the timeline the paper's §VII discusses: detection, dissemination,
//! blast radius, control bytes, packet loss.
//!
//! ```text
//! cargo run --release --example failure_recovery [TC1|TC2|TC3|TC4]
//! ```

use dcn_experiments::{run, RunSpec, Stack, TrafficDir};
use dcn_topology::{ClosParams, FailureCase};

fn main() {
    let tc = match std::env::args().nth(1).as_deref() {
        Some("TC2") | Some("tc2") => FailureCase::Tc2,
        Some("TC3") | Some("tc3") => FailureCase::Tc3,
        Some("TC4") | Some("tc4") => FailureCase::Tc4,
        _ => FailureCase::Tc1,
    };
    println!("failure case {}: interface failure on the ToR₁₁–S1_1–S2_1 chain", tc.label());
    println!("(2-PoD topology, monitored flow rack 11 → rack 14 at ≈333 pkt/s)\n");

    for stack in Stack::ALL {
        let r = run(
            RunSpec::new(ClosParams::two_pod(), stack)
                .failing(tc)
                .with_traffic(TrafficDir::NearToFar),
        );
        let loss = r.loss.expect("traffic ran");
        println!("== {} ==", stack.label());
        match r.convergence_ms {
            Some(ms) => println!("  convergence (last update message): {ms:.1} ms"),
            None => println!("  convergence: no update messages emitted"),
        }
        println!("  blast radius: {} routers updated destination state", r.blast_radius);
        println!(
            "  control overhead: {} bytes in {} update messages",
            r.control_bytes, r.update_frames
        );
        println!(
            "  packet loss: {} of {} ({:.2}%), {} duplicates, {} reordered",
            loss.lost(),
            loss.sent,
            100.0 * loss.loss_ratio(),
            loss.duplicates,
            loss.out_of_order
        );
        println!(
            "  steady-state keepalive: {:.0} B/s fabric-wide, {:.0} B/frame\n",
            r.keepalive.bytes_per_sec, r.keepalive.avg_frame_len
        );
    }
    println!(
        "Interpretation (paper §VII): for {} the {} side of the failed link must\n\
         detect by timeout, so convergence and loss scale with each stack's dead/hold\n\
         timer — 100 ms (MR-MTP) vs 300 ms (BFD) vs 3 s (BGP).",
        tc.label(),
        match tc {
            FailureCase::Tc1 => "S1_1",
            FailureCase::Tc2 => "ToR₁₁",
            FailureCase::Tc3 => "S2_1",
            FailureCase::Tc4 => "S1_1",
        }
    );
}
