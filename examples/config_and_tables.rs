//! Reproduce the paper's configuration and routing-table listings
//! (§VII-G/H): per-router FRR-style BGP configuration vs the single
//! MR-MTP JSON file, and the converged tables at representative routers.
//!
//! ```text
//! cargo run --release --example config_and_tables
//! ```

use dcn_experiments::figures;

fn main() {
    println!("{}", figures::render_listings(42));
    println!();
    println!("{}", figures::config_comparison().render());
    println!("{}", figures::table_size_comparison(42).render());
}
