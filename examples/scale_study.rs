//! The paper's §IX future work, done: scale the DCN beyond 4 PoDs (the
//! FABRIC reservation limit) and watch how convergence, blast radius and
//! control overhead trend for MR-MTP vs BGP/ECMP.
//!
//! ```text
//! cargo run --release --example scale_study [max_pods]
//! ```

use dcn_experiments::figures;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let pods: Vec<usize> = (1..=max / 2).map(|i| i * 2).collect();
    eprintln!("sweeping PoD counts {pods:?} (failure at TC1, parallel runs)…");
    let fig = figures::scale_sweep(&pods, 42);
    println!("{}", fig.render());
    eprintln!("comparing tier counts…");
    println!("{}", figures::tier_comparison(42).render());
    println!(
        "Reading: MR-MTP's convergence stays pinned to its 100 ms dead timer and its\n\
         blast radius grows only with the ToR count, while BGP's withdraw cascade\n\
         touches a growing share of the fabric — the trend the paper extrapolates\n\
         in §VII-C and §VIII."
    );
}
