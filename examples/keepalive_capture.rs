//! Reproduce the paper's Figs. 9–10: what keep-alive traffic looks like
//! on one link under each stack — hex dumps of the representative frames
//! (as Wireshark showed them) plus a measured capture summary from the
//! emulator, including MR-MTP's hello *suppression* when data traffic
//! flows (every MR-MTP frame doubles as a keep-alive).
//!
//! ```text
//! cargo run --release --example keepalive_capture
//! ```

use dcn_experiments::{build_sim, Stack};
use dcn_sim::time::secs;
use dcn_sim::{FrameClass, NodeId, PortId, TraceEvent};
use dcn_topology::ClosParams;
use dcn_traffic::SendSpec;
use dcn_wire::{
    BfdPacket, BfdState, BgpMessage, EtherType, EthernetFrame, IpAddr4, Ipv4Packet, MacAddr,
    MrmtpMsg, TcpFlags, TcpSegment, UdpDatagram, BFD_CTRL_PORT, IPPROTO_TCP, IPPROTO_UDP,
};

fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("  {:04x}  ", i * 16));
        for b in chunk {
            out.push_str(&format!("{b:02x} "));
        }
        out.push('\n');
    }
    out
}

fn main() {
    // ---- Fig. 10: the MR-MTP keep-alive frame. ----
    let hello = EthernetFrame {
        dst: MacAddr::BROADCAST,
        src: MacAddr::for_node_port(3, 0),
        ethertype: EtherType::Mrmtp,
        payload: MrmtpMsg::Hello.encode(),
    };
    let bytes = hello.encode();
    println!("Fig. 10 — MR-MTP keep-alive (EtherType 0x8850, broadcast dst, 1-byte payload 0x06)");
    println!("  capture length {} B, on-wire {} B", bytes.len(), hello.wire_len());
    print!("{}", hexdump(&bytes));

    // ---- Fig. 9: one BFD control frame and one BGP keepalive frame. ----
    let bfd = BfdPacket {
        state: BfdState::Up,
        poll: false,
        final_: false,
        detect_mult: 3,
        my_discriminator: 0x11,
        your_discriminator: 0x22,
        desired_min_tx_us: 100_000,
        required_min_rx_us: 100_000,
    };
    let udp = UdpDatagram::new(49152, BFD_CTRL_PORT, bfd.encode());
    let ip = Ipv4Packet::new(
        IpAddr4::new(172, 16, 0, 1),
        IpAddr4::new(172, 16, 0, 2),
        IPPROTO_UDP,
        udp.encode(),
    );
    let bfd_frame = EthernetFrame {
        dst: MacAddr::for_node_port(1, 0),
        src: MacAddr::for_node_port(2, 0),
        ethertype: EtherType::Ipv4,
        payload: ip.encode(),
    };
    println!("\nFig. 9 — BFD control frame (UDP/3784): {} B", bfd_frame.encode().len());
    print!("{}", hexdump(&bfd_frame.encode()));

    let ka = BgpMessage::Keepalive.encode();
    let seg = TcpSegment {
        src_port: 40000,
        dst_port: 179,
        seq: 1,
        ack: 1,
        flags: TcpFlags::PSH | TcpFlags::ACK,
        window: 65535,
        ts_val: 100,
        ts_ecr: 99,
        payload: ka.into(),
    };
    let ip = Ipv4Packet::new(
        IpAddr4::new(172, 16, 0, 1),
        IpAddr4::new(172, 16, 0, 2),
        IPPROTO_TCP,
        seg.encode(),
    );
    let bgp_frame = EthernetFrame {
        dst: MacAddr::for_node_port(1, 0),
        src: MacAddr::for_node_port(2, 0),
        ethertype: EtherType::Ipv4,
        payload: ip.encode(),
    };
    println!("\nFig. 9 — BGP KEEPALIVE over TCP (with timestamps): {} B", bgp_frame.encode().len());
    print!("{}", hexdump(&bgp_frame.encode()));

    // ---- Measured: capture summaries on the ToR₁₁ ↔ S1_1 link. ----
    for stack in Stack::ALL {
        capture_summary(stack, false);
    }
    // MR-MTP with active data traffic crossing the monitored link: hellos
    // are suppressed because data frames count as keep-alives.
    capture_summary(Stack::Mrmtp, true);
}

fn capture_summary(stack: Stack, with_traffic: bool) {
    let params = ClosParams::two_pod();
    let fabric = dcn_topology::Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let mut senders = Vec::new();
    if with_traffic {
        // Pin the flow through ToR₁₁ → S1_1.
        let src_ip = addr.server_addr(fabric.tor(0, 0), 0).unwrap();
        let dst_ip = addr.server_addr(fabric.tor(1, 1), 0).unwrap();
        let (sp, dp) = dcn_experiments::flows::pin_flow(src_ip, dst_ip, &[2, 2]);
        let mut spec = SendSpec::new(dst_ip, secs(3), secs(5));
        spec.src_port = sp;
        spec.dst_port = dp;
        senders.push((fabric.server(0, 0, 0), spec));
    }
    let mut built = build_sim(params, stack, 42, &senders);
    built.sim.run_until(secs(5));
    // Count keep-alive frames leaving ToR₁₁'s first uplink in [3 s, 5 s).
    let tor = built.fabric.tor(0, 0);
    let (mut frames, mut bytes) = (0u64, 0u64);
    for ev in built.sim.trace().events_since(secs(3)) {
        if let TraceEvent::FrameSent { time, node, port, wire_len, class, .. } = ev {
            if *time < secs(5)
                && *node == NodeId(tor as u32)
                && *port == PortId(0)
                && *class == FrameClass::Keepalive
            {
                frames += 1;
                bytes += *wire_len as u64;
            }
        }
    }
    println!(
        "\ncapture on ToR₁₁→S1_1, 2 s window, {}{}: {} keep-alive frames, {} B \
         ({:.1} frames/s)",
        stack.label(),
        if with_traffic { " + data traffic" } else { "" },
        frames,
        bytes,
        frames as f64 / 2.0
    );
    if with_traffic {
        println!(
            "  → MR-MTP suppressed its hellos: the ≈333 pkt/s data stream keeps the \
             neighbor alive for free (paper §IV-B)."
        );
    }
}
