//! Quantify the design choices the paper motivates qualitatively:
//! Slow-to-Accept dampening under interface flapping, the loss-report
//! hold-down behind the Fig. 5 blast-radius numbers, and the §IX timer
//! trade-offs for both MR-MTP and BFD.
//!
//! ```text
//! cargo run --release --example ablations
//! ```

use dcn_experiments::ablations;

fn main() {
    println!("{}", ablations::ablation_slow_to_accept(42).render());
    println!("{}", ablations::ablation_loss_holddown(42).render());
    println!("{}", ablations::sweep_mrmtp_hello(42).render());
    println!("{}", ablations::sweep_bfd_interval(42).render());
}
