//! Property tests: the TCP substrate delivers application bytes in order
//! exactly once under arbitrary write patterns and loss/retransmission
//! schedules.

use proptest::prelude::*;

use dcn_tcp::{TcpConn, TcpState, RTO};
use dcn_wire::TcpSegment;

/// A lossy pump: forwards segments between `a` and `b`, dropping those
/// whose index matches the loss pattern, then drives retransmission ticks
/// until quiescent.
fn lossy_exchange(writes: &[Vec<u8>], drop_pattern: &[bool]) -> Vec<u8> {
    let mut a = TcpConn::new(40000, 179, 1);
    let mut b = TcpConn::new(179, 40000, 2);
    b.listen();
    let mut wire_ab: Vec<TcpSegment> = Vec::new();
    let mut wire_ba: Vec<TcpSegment> = Vec::new();
    let mut received = Vec::new();
    let mut now = 0u64;
    let mut drop_idx = 0;
    let mut writes_iter = writes.iter();
    wire_ab.extend(a.connect(now).segments);
    // Bounded event loop: alternate deliveries, ticks and writes.
    for _round in 0..400 {
        now += RTO / 2;
        // Feed one pending write once established.
        if a.is_established() {
            if let Some(w) = writes_iter.next() {
                wire_ab.extend(a.send(w, now).segments);
            }
        }
        // Deliver queued segments, dropping per the pattern.
        let ab: Vec<TcpSegment> = wire_ab.drain(..).collect();
        for seg in ab {
            let dropped = drop_pattern.get(drop_idx).copied().unwrap_or(false);
            drop_idx += 1;
            if dropped {
                continue;
            }
            let out = b.on_segment(&seg, now);
            received.extend(out.delivered);
            wire_ba.extend(out.segments);
        }
        let ba: Vec<TcpSegment> = wire_ba.drain(..).collect();
        for seg in ba {
            let dropped = drop_pattern.get(drop_idx).copied().unwrap_or(false);
            drop_idx += 1;
            if dropped {
                continue;
            }
            let out = a.on_segment(&seg, now);
            wire_ab.extend(out.segments);
        }
        // Retransmission.
        wire_ab.extend(a.tick(now).segments);
        wire_ba.extend(b.tick(now).segments);
        if a.is_established()
            && a.unacked() == 0
            && wire_ab.is_empty()
            && wire_ba.is_empty()
            && writes_iter.len() == 0
        {
            break;
        }
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stream_is_in_order_exactly_once_despite_loss(
        writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..6),
        drops in proptest::collection::vec(any::<bool>(), 0..12),
    ) {
        // Cap the loss density: with every frame dropped nothing can flow.
        let lossy: Vec<bool> = drops.iter().enumerate()
            .map(|(i, &d)| d && i % 3 != 0)
            .collect();
        let expect: Vec<u8> = writes.iter().flatten().copied().collect();
        let got = lossy_exchange(&writes, &lossy);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn connect_is_idempotent_on_state(isn in any::<u32>()) {
        let mut c = TcpConn::new(1, 2, isn);
        let o1 = c.connect(0);
        prop_assert_eq!(o1.segments.len(), 1);
        prop_assert_eq!(c.state(), TcpState::SynSent);
        // Re-connect resets cleanly.
        let o2 = c.connect(10);
        prop_assert_eq!(o2.segments.len(), 1);
        prop_assert_eq!(c.state(), TcpState::SynSent);
    }
}
