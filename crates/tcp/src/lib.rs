//! # dcn-tcp — a minimal TCP for BGP sessions
//!
//! BGP requires a reliable byte stream; the paper counts this against the
//! BGP/ECMP/BFD stack (MR-MTP builds its modest reliability needs into the
//! protocol instead). This crate provides just enough TCP to reproduce
//! that cost faithfully on the emulator:
//!
//! * three-way handshake and deterministic active/passive roles,
//! * sequenced delivery with cumulative ACKs — a **pure ACK is emitted for
//!   every received data segment** (the 66-byte frames visible between the
//!   keepalives in the paper's Fig. 9 capture),
//! * fixed-RTO retransmission (200 ms, the Linux minimum) so control
//!   traffic survives transient loss,
//! * RST/teardown so BGP can kill sessions on hold-timer expiry.
//!
//! Deliberately omitted (documented here rather than half-implemented):
//! flow control and congestion control — BGP control traffic on an
//! emulated 10 GbE link never approaches either limit, and neither affects
//! any measured quantity.
//!
//! The connection object is transport-only: the owner (the BGP router)
//! wraps outgoing segments in IPv4/Ethernet and feeds incoming segments
//! back. This keeps `dcn-tcp` independent of the emulator's node model.

use std::collections::VecDeque;

use dcn_sim::time::{millis, Duration, Time};
use dcn_wire::{FrameBuf, TcpFlags, TcpSegment};

/// Fixed retransmission timeout (Linux's minimum RTO).
pub const RTO: Duration = millis(200);

/// Maximum segment payload. Large enough that every BGP message fits in
/// one segment (BGP messages max 4096 bytes).
pub const MSS: usize = 4096;

/// Give up retransmitting after this many attempts; the owner will learn
/// of peer death from its own timers (BGP hold / BFD) long before.
pub const MAX_RETX: u32 = 12;

/// Connection state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
}

/// Events surfaced to the owner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcpEvent {
    /// Handshake completed; the stream is usable.
    Established,
    /// The connection died (reset received or retransmission exhausted).
    Closed,
}

/// Output of an operation: segments to put on the wire and in-order
/// application bytes delivered by the peer.
#[derive(Default, Debug)]
pub struct TcpOutput {
    pub segments: Vec<TcpSegment>,
    pub delivered: Vec<u8>,
    pub events: Vec<TcpEvent>,
}

/// One TCP connection endpoint.
#[derive(Debug)]
pub struct TcpConn {
    pub local_port: u16,
    pub remote_port: u16,
    state: TcpState,
    /// Next sequence number to assign to outgoing bytes.
    snd_nxt: u32,
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next expected incoming sequence number.
    rcv_nxt: u32,
    /// Application bytes queued but not yet segmented.
    tx_queue: VecDeque<u8>,
    /// Unacknowledged segments for retransmission: (seq, payload).
    inflight: VecDeque<(u32, FrameBuf)>,
    retx_deadline: Option<Time>,
    retx_count: u32,
    /// Initial sequence number (deterministic for reproducibility).
    isn: u32,
}

impl TcpConn {
    /// Create a closed connection between the given ports. `isn` seeds the
    /// sequence space (pass something deterministic).
    pub fn new(local_port: u16, remote_port: u16, isn: u32) -> TcpConn {
        TcpConn {
            local_port,
            remote_port,
            state: TcpState::Closed,
            snd_nxt: isn,
            snd_una: isn,
            rcv_nxt: 0,
            tx_queue: VecDeque::new(),
            inflight: VecDeque::new(),
            retx_deadline: None,
            retx_count: 0,
            isn,
        }
    }

    pub fn state(&self) -> TcpState {
        self.state
    }

    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    fn seg(&self, now: Time, flags: TcpFlags, seq: u32, payload: impl Into<FrameBuf>) -> TcpSegment {
        TcpSegment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: 65535,
            ts_val: (now / millis(1)) as u32,
            ts_ecr: 0,
            payload: payload.into(),
        }
    }

    /// Active open: emit a SYN.
    pub fn connect(&mut self, now: Time) -> TcpOutput {
        let mut out = TcpOutput::default();
        self.reset_to(TcpState::SynSent);
        let syn = self.seg(now, TcpFlags::SYN, self.snd_nxt, FrameBuf::empty());
        self.inflight.push_back((self.snd_nxt, FrameBuf::empty()));
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // SYN consumes a seq
        self.arm_retx(now);
        out.segments.push(syn);
        out
    }

    /// Passive open: wait for a SYN.
    pub fn listen(&mut self) {
        self.reset_to(TcpState::Listen);
    }

    fn reset_to(&mut self, state: TcpState) {
        self.state = state;
        self.snd_nxt = self.isn;
        self.snd_una = self.isn;
        self.rcv_nxt = 0;
        self.tx_queue.clear();
        self.inflight.clear();
        self.retx_deadline = None;
        self.retx_count = 0;
    }

    /// Hard-close locally and emit an RST for the peer.
    pub fn reset(&mut self, now: Time) -> TcpOutput {
        let mut out = TcpOutput::default();
        if self.state != TcpState::Closed {
            out.segments.push(self.seg(now, TcpFlags::RST, self.snd_nxt, Vec::new()));
            self.state = TcpState::Closed;
            self.retx_deadline = None;
            out.events.push(TcpEvent::Closed);
        }
        out
    }

    /// Queue application bytes and emit as many segments as possible.
    pub fn send(&mut self, data: &[u8], now: Time) -> TcpOutput {
        self.tx_queue.extend(data.iter().copied());
        self.flush(now)
    }

    fn flush(&mut self, now: Time) -> TcpOutput {
        let mut out = TcpOutput::default();
        if self.state != TcpState::Established {
            return out; // queued bytes flow once established
        }
        while !self.tx_queue.is_empty() {
            let take = self.tx_queue.len().min(MSS);
            let payload = FrameBuf::new(self.tx_queue.drain(..take).collect());
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(payload.len() as u32);
            // The inflight entry and the emitted segment share bytes.
            self.inflight.push_back((seq, payload.clone()));
            out.segments
                .push(self.seg(now, TcpFlags::PSH | TcpFlags::ACK, seq, payload));
        }
        if !out.segments.is_empty() {
            self.arm_retx(now);
        }
        out
    }

    fn arm_retx(&mut self, now: Time) {
        if self.retx_deadline.is_none() {
            self.retx_deadline = Some(now + RTO);
        }
    }

    /// Process an incoming segment.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: Time) -> TcpOutput {
        let mut out = TcpOutput::default();
        if seg.flags.contains(TcpFlags::RST) {
            if self.state != TcpState::Closed && self.state != TcpState::Listen {
                self.state = TcpState::Closed;
                self.retx_deadline = None;
                out.events.push(TcpEvent::Closed);
            }
            return out;
        }
        match self.state {
            TcpState::Closed => {
                // Refuse with RST.
                out.segments.push(self.seg(now, TcpFlags::RST, self.snd_nxt, Vec::new()));
            }
            TcpState::Listen => {
                if seg.flags.contains(TcpFlags::SYN) {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.state = TcpState::SynReceived;
                    let synack =
                        self.seg(now, TcpFlags::SYN | TcpFlags::ACK, self.snd_nxt, FrameBuf::empty());
                    self.inflight.push_back((self.snd_nxt, FrameBuf::empty()));
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.arm_retx(now);
                    out.segments.push(synack);
                }
            }
            TcpState::SynSent => {
                if seg.flags.contains(TcpFlags::SYN) && seg.flags.contains(TcpFlags::ACK) {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.accept_ack(seg.ack);
                    self.state = TcpState::Established;
                    out.events.push(TcpEvent::Established);
                    out.segments.push(self.seg(now, TcpFlags::ACK, self.snd_nxt, Vec::new()));
                    let mut flushed = self.flush(now);
                    out.segments.append(&mut flushed.segments);
                }
            }
            TcpState::SynReceived => {
                if seg.flags.contains(TcpFlags::ACK) {
                    self.accept_ack(seg.ack);
                    if self.snd_una == self.snd_nxt {
                        self.state = TcpState::Established;
                        out.events.push(TcpEvent::Established);
                        let mut flushed = self.flush(now);
                        out.segments.append(&mut flushed.segments);
                    }
                }
                self.ingest_data(seg, now, &mut out);
            }
            TcpState::Established => {
                if seg.flags.contains(TcpFlags::ACK) {
                    self.accept_ack(seg.ack);
                }
                self.ingest_data(seg, now, &mut out);
            }
        }
        out
    }

    fn ingest_data(&mut self, seg: &TcpSegment, now: Time, out: &mut TcpOutput) {
        if seg.payload.is_empty() {
            return;
        }
        if seg.seq == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
            out.delivered.extend_from_slice(&seg.payload);
        }
        // Duplicate or out-of-order data still triggers an ACK: the
        // cumulative ack tells the peer where we are.
        out.segments.push(self.seg(now, TcpFlags::ACK, self.snd_nxt, Vec::new()));
    }

    fn accept_ack(&mut self, ack: u32) {
        // Pop fully acknowledged segments (modular comparison).
        while let Some(&(seq, ref payload)) = self.inflight.front() {
            let consumed = if payload.is_empty() { 1 } else { payload.len() as u32 };
            let end = seq.wrapping_add(consumed);
            if end.wrapping_sub(self.snd_una) <= ack.wrapping_sub(self.snd_una) {
                self.snd_una = end;
                self.inflight.pop_front();
                self.retx_count = 0;
            } else {
                break;
            }
        }
        if self.inflight.is_empty() {
            self.retx_deadline = None;
        }
    }

    /// Drive retransmission; call periodically (a few times per RTO).
    pub fn tick(&mut self, now: Time) -> TcpOutput {
        let mut out = TcpOutput::default();
        let Some(deadline) = self.retx_deadline else {
            return out;
        };
        if now < deadline {
            return out;
        }
        self.retx_count += 1;
        if self.retx_count > MAX_RETX {
            self.state = TcpState::Closed;
            self.retx_deadline = None;
            out.events.push(TcpEvent::Closed);
            return out;
        }
        self.retx_deadline = Some(now + RTO);
        if let Some((seq, payload)) = self.inflight.front().cloned() {
            let flags = match self.state {
                TcpState::SynSent => TcpFlags::SYN,
                TcpState::SynReceived => TcpFlags::SYN | TcpFlags::ACK,
                _ => TcpFlags::PSH | TcpFlags::ACK,
            };
            out.segments.push(self.seg(now, flags, seq, payload));
        }
        out
    }

    /// Bytes (or SYN units) in flight awaiting acknowledgement.
    pub fn unacked(&self) -> usize {
        self.inflight.iter().map(|(_, p)| p.len().max(1)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuttle segments between two connections until quiescent.
    fn pump(a: &mut TcpConn, b: &mut TcpConn, first: TcpOutput, now: Time) -> (Vec<u8>, Vec<u8>) {
        let mut to_b: VecDeque<TcpSegment> = first.segments.into();
        let mut to_a: VecDeque<TcpSegment> = VecDeque::new();
        let (mut a_rx, mut b_rx) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            if to_b.is_empty() && to_a.is_empty() {
                break;
            }
            if let Some(seg) = to_b.pop_front() {
                let out = b.on_segment(&seg, now);
                b_rx.extend(out.delivered);
                to_a.extend(out.segments);
            }
            if let Some(seg) = to_a.pop_front() {
                let out = a.on_segment(&seg, now);
                a_rx.extend(out.delivered);
                to_b.extend(out.segments);
            }
        }
        (a_rx, b_rx)
    }

    fn pair() -> (TcpConn, TcpConn) {
        let a = TcpConn::new(40000, 179, 1000);
        let mut b = TcpConn::new(179, 40000, 5000);
        b.listen();
        (a, b)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        assert_eq!(a.state(), TcpState::SynSent);
        pump(&mut a, &mut b, syn, 0);
        assert!(a.is_established());
        assert!(b.is_established());
    }

    #[test]
    fn data_flows_and_is_acked() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        pump(&mut a, &mut b, syn, 0);
        let out = a.send(b"hello bgp", 10);
        let (_, b_rx) = pump(&mut a, &mut b, out, 10);
        assert_eq!(b_rx, b"hello bgp");
        assert_eq!(a.unacked(), 0, "cumulative ack cleared inflight");
    }

    #[test]
    fn data_queued_during_handshake_flows_after() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        let out = a.send(b"early", 0);
        assert!(out.segments.is_empty(), "nothing flows before establishment");
        // The flush happens inside on_segment when the SYN-ACK lands.
        let (_, b_rx) = pump(&mut a, &mut b, syn, 0);
        assert_eq!(b_rx, b"early");
    }

    #[test]
    fn each_data_segment_triggers_a_pure_ack() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        pump(&mut a, &mut b, syn, 0);
        let out = a.send(&[0u8; 19], 10); // one keepalive-sized message
        assert_eq!(out.segments.len(), 1);
        let reply = b.on_segment(&out.segments[0], 11);
        let acks: Vec<&TcpSegment> = reply
            .segments
            .iter()
            .filter(|s| s.payload.is_empty() && s.flags.contains(TcpFlags::ACK))
            .collect();
        assert_eq!(acks.len(), 1, "the Fig. 9 pure-ACK frame");
    }

    #[test]
    fn lost_segment_is_retransmitted_and_recovered() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        pump(&mut a, &mut b, syn, 0);
        let lost = a.send(b"update-1", 10);
        assert_eq!(lost.segments.len(), 1);
        drop(lost); // segment vanishes on the dead link
        assert!(a.tick(10 + RTO - 1).segments.is_empty(), "not before RTO");
        let retx = a.tick(10 + RTO);
        assert_eq!(retx.segments.len(), 1);
        let out = b.on_segment(&retx.segments[0], 10 + RTO);
        assert_eq!(out.delivered, b"update-1");
    }

    #[test]
    fn duplicate_data_is_delivered_once() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        pump(&mut a, &mut b, syn, 0);
        let out = a.send(b"x", 10);
        let seg = out.segments[0].clone();
        let d1 = b.on_segment(&seg, 11);
        let d2 = b.on_segment(&seg, 12);
        assert_eq!(d1.delivered, b"x");
        assert!(d2.delivered.is_empty(), "duplicate suppressed");
        assert!(!d2.segments.is_empty(), "but still acked");
    }

    #[test]
    fn retx_exhaustion_closes() {
        let mut a = TcpConn::new(1, 2, 0);
        let _ = a.connect(0);
        let mut now = 0;
        let mut closed = false;
        for _ in 0..(MAX_RETX + 2) {
            now += RTO;
            let out = a.tick(now);
            if out.events.contains(&TcpEvent::Closed) {
                closed = true;
                break;
            }
        }
        assert!(closed);
        assert_eq!(a.state(), TcpState::Closed);
    }

    #[test]
    fn rst_tears_down_and_is_reported() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        pump(&mut a, &mut b, syn, 0);
        let rst = a.reset(20);
        assert_eq!(rst.segments.len(), 1);
        let out = b.on_segment(&rst.segments[0], 21);
        assert_eq!(out.events, vec![TcpEvent::Closed]);
        assert_eq!(b.state(), TcpState::Closed);
    }

    #[test]
    fn segment_to_closed_port_gets_rst() {
        let mut closed = TcpConn::new(179, 40000, 0);
        let seg = TcpSegment {
            src_port: 40000,
            dst_port: 179,
            seq: 9,
            ack: 0,
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 0,
            ts_val: 0,
            ts_ecr: 0,
            payload: vec![1].into(),
        };
        let out = closed.on_segment(&seg, 0);
        assert!(out.segments[0].flags.contains(TcpFlags::RST));
    }

    #[test]
    fn large_write_is_segmented_at_mss() {
        let (mut a, mut b) = pair();
        let syn = a.connect(0);
        pump(&mut a, &mut b, syn, 0);
        let big = vec![7u8; MSS * 2 + 100];
        let out = a.send(&big, 10);
        assert_eq!(out.segments.len(), 3);
        let (_, b_rx) = pump(&mut a, &mut b, out, 10);
        assert_eq!(b_rx, big);
    }
}
