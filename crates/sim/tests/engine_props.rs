//! Property tests on the emulator engine: causality (no frame arrives
//! before it was sent), per-link FIFO ordering, and trace timestamps
//! matching dispatch order — the invariants every protocol result rests
//! on.

use std::any::Any;

use proptest::prelude::*;

use dcn_sim::link::LinkSpec;
use dcn_sim::{Ctx, FrameBuf, FrameClass, NodeId, PortId, Protocol, SimBuilder, TraceEvent};

/// Sends a scripted sequence of (delay, payload-len) frames on port 0 and
/// records arrivals.
struct Scripted {
    script: Vec<(u64, usize)>,
    next: usize,
    received: Vec<(u64, Vec<u8>)>,
}

impl Protocol for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if !self.script.is_empty() {
            ctx.set_timer(self.script[0].0, 0);
        }
    }
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: &FrameBuf) {
        self.received.push((ctx.now(), frame.to_vec()));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.next >= self.script.len() {
            return;
        }
        let (_, len) = self.script[self.next];
        // Sequence number in the first byte for FIFO checking.
        let mut frame = vec![self.next as u8; len.max(1)];
        frame[0] = self.next as u8;
        ctx.send(PortId(0), frame, FrameClass::Data);
        self.next += 1;
        if self.next < self.script.len() {
            ctx.set_timer(self.script[self.next].0, 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_arrive_in_fifo_order_after_min_latency(
        script in proptest::collection::vec((1u64..50_000, 1usize..200), 1..20),
        propagation in 0u64..10_000,
        bandwidth in 1_000_000u64..10_000_000_000,
    ) {
        let mut b = SimBuilder::new(1);
        let sender = Scripted { script: script.clone(), next: 0, received: Vec::new() };
        let a = b.add_node("a", Box::new(sender));
        let c = b.add_node("b", Box::new(Scripted { script: vec![], next: 0, received: Vec::new() }));
        b.add_link(a, c, LinkSpec { propagation, bandwidth_bps: bandwidth });
        let mut sim = b.build();
        sim.run_until(60_000 * 30 + 1_000_000_000);
        let rx = &sim.node_as::<Scripted>(c).unwrap().received;
        prop_assert_eq!(rx.len(), script.len(), "every frame delivered");
        // FIFO: sequence bytes strictly increasing.
        for w in rx.windows(2) {
            prop_assert!(w[0].1[0] < w[1].1[0], "FIFO violated");
            prop_assert!(w[0].0 <= w[1].0, "arrival times non-decreasing");
        }
        // Causality: arrival ≥ send time + propagation.
        let sends: Vec<u64> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FrameSent { time, node, .. } if *node == NodeId(0) => Some(*time),
                _ => None,
            })
            .collect();
        prop_assert_eq!(sends.len(), rx.len());
        for (sent, (arrived, _)) in sends.iter().zip(rx) {
            prop_assert!(*arrived >= sent + propagation, "faster than light");
        }
    }

    #[test]
    fn trace_times_are_monotone(script in proptest::collection::vec((1u64..10_000, 1usize..64), 1..16)) {
        let mut b = SimBuilder::new(9);
        let a = b.add_node("a", Box::new(Scripted { script, next: 0, received: Vec::new() }));
        let c = b.add_node("b", Box::new(Scripted { script: vec![], next: 0, received: Vec::new() }));
        b.add_link(a, c, LinkSpec::default());
        let mut sim = b.build();
        sim.run_until(1_000_000_000);
        let times: Vec<u64> = sim.trace().events().iter().map(|e| e.time()).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "trace must be time-ordered");
        }
    }
}
