//! Property tests for the barrier-lean synchronization primitives in
//! `dcn_sim::sync`, stressing randomized shapes under real
//! `std::thread` interleavings:
//!
//! * [`SpinBarrier`] — arbitrary participant counts, round counts, and
//!   spin budgets (including 0, the pure park/unpark path) must keep
//!   every thread in lockstep with exactly one leader per phase and no
//!   lost wakeups.
//! * [`SpscQueue`] — arbitrary batch partitions of a sequence must come
//!   out in exact FIFO order, single-threaded and with the consumer
//!   racing the producer.
//!
//! Deterministic single-shape versions of these checks live in the
//! module's unit tests; this suite owns the randomized shapes.

use dcn_sim::{BarrierSense, SpinBarrier, SpscQueue};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads each add their round number to a shared sum between two
    /// barrier phases. Any thread racing a phase ahead — a lost wakeup,
    /// sense confusion, a leaked arrival count — makes some thread
    /// observe a sum that is not exactly `round · N(N+1)/2`'s running
    /// total. Exercised across participant counts, round counts, and
    /// spin budgets straddling the park threshold.
    #[test]
    fn barrier_lockstep_under_random_shapes(
        threads in 1usize..6,
        rounds in 1u64..60,
        spin in prop_oneof![Just(0u32), 1u32..64, Just(dcn_sim::sync::DEFAULT_SPIN)],
    ) {
        let barrier = SpinBarrier::with_spin(threads, spin);
        let sum = AtomicU64::new(0);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut sense = BarrierSense::default();
                    for round in 0..rounds {
                        if barrier.wait(&mut sense) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        sum.fetch_add(round, Ordering::Relaxed);
                        if barrier.wait(&mut sense) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        let expect = (round + 1) * round / 2 * threads as u64;
                        assert_eq!(sum.load(Ordering::Relaxed), expect, "round {round}");
                    }
                });
            }
        });
        // Exactly one leader per phase, two phases per round.
        prop_assert_eq!(leaders.load(Ordering::Relaxed), 2 * rounds);
    }

    /// Splitting `0..n` into arbitrary batches (empties included — the
    /// queue drops them) and draining at arbitrary points must always
    /// reproduce the exact sequence: FIFO across batches, order kept
    /// within each batch, nothing lost, nothing duplicated.
    #[test]
    fn spsc_preserves_order_across_arbitrary_batching(
        sizes in proptest::collection::vec(0usize..12, 1..40),
        drain_every in 1usize..8,
    ) {
        let q = SpscQueue::new();
        let mut out: Vec<u64> = Vec::new();
        let mut next = 0u64;
        let mut nonempty_pushed = 0usize;
        let mut drained_batches = 0usize;
        for (i, &sz) in sizes.iter().enumerate() {
            let batch: Vec<u64> = (next..next + sz as u64).collect();
            next += sz as u64;
            nonempty_pushed += usize::from(sz > 0);
            q.push(batch);
            if i % drain_every == drain_every - 1 {
                drained_batches += q.drain(|b| out.extend(b));
            }
        }
        drained_batches += q.drain(|b| out.extend(b));
        prop_assert_eq!(drained_batches, nonempty_pushed, "empty batches are dropped");
        prop_assert!(q.is_empty());
        let expect: Vec<u64> = (0..next).collect();
        prop_assert_eq!(out, expect);
    }

    /// One producer thread pushes the whole sequence in random batch
    /// sizes while the consumer drains as fast as it can: the consumer
    /// must see `0, 1, 2, …` with no gap, reorder, or duplicate — the
    /// exact guarantee the engine's cross-shard channels rely on.
    #[test]
    fn spsc_fifo_survives_a_racing_consumer(
        sizes in proptest::collection::vec(1usize..8, 1..60),
    ) {
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let q = Arc::new(SpscQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            let sizes = sizes.clone();
            std::thread::spawn(move || {
                let mut next = 0u64;
                for sz in sizes {
                    let batch: Vec<u64> = (next..next + sz as u64).collect();
                    next += sz as u64;
                    q.push(batch);
                }
            })
        };
        let mut seen = 0u64;
        while seen < total {
            q.drain(|batch| {
                for v in batch {
                    assert_eq!(v, seen, "FIFO violated under concurrency");
                    seen += 1;
                }
            });
            std::hint::spin_loop();
        }
        producer.join().expect("producer panicked");
        prop_assert!(q.is_empty());
    }
}
