//! Hierarchical timer wheel — the scale scheduler.
//!
//! `EventQueue`'s binary heap pays `O(log n)` per operation with a large
//! constant (sift-down through a pointer-chasing array) once hundreds of
//! thousands of events are pending. The wheel makes insertion `O(1)`:
//! events land in a bucket addressed by their expiry granule, buckets
//! cascade toward finer levels as the clock approaches them, and only the
//! events of the *current* granule are ever sorted.
//!
//! Layout: time is quantized into 2^10 ns (≈1 µs) granules. Four levels
//! of 64 slots each cover deltas up to 64^4 granules ≈ 17 s ahead of the
//! cursor; anything further sits in an overflow min-heap and is pulled in
//! as the cursor advances. Per-level occupancy bitmasks make "find the
//! next non-empty bucket" a rotate + trailing-zeros, so idle gaps are
//! skipped in constant time instead of granule-by-granule.
//!
//! Ordering contract (the determinism contract of the whole emulator):
//! events pop in exactly the same `(time, key)` order as the heap, where
//! the [`EventKey`] is the engine's content-derived tie-break. Within a
//! granule the drained bucket is sorted; across granules the time
//! quantization preserves order because a later granule's earliest time
//! exceeds an earlier granule's latest. Events scheduled at or before the
//! already-drained cursor go straight into the sorted ready list at their
//! ordered position.

use std::collections::{BinaryHeap, VecDeque};

use crate::event::{Event, EventKey, Scheduled};
use crate::profiler::SchedulerStats;
use crate::time::Time;

/// log2 of the granule width in ns (2^10 ns ≈ 1.02 µs).
const GRANULE_BITS: u32 = 10;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 4;

/// Granule index of a timestamp.
#[inline]
fn granule(time: Time) -> u64 {
    time >> GRANULE_BITS
}

/// Slot width of `level`, in granules.
#[inline]
fn width(level: usize) -> u64 {
    1 << (SLOT_BITS * level as u32)
}

/// Span covered by `level` (64 slots), in granules.
#[inline]
fn span(level: usize) -> u64 {
    1 << (SLOT_BITS * (level as u32 + 1))
}

pub(crate) struct TimerWheel {
    /// Next granule not yet drained; every bucketed event's granule is
    /// `>= cursor`.
    cursor: u64,
    /// `levels[l][slot]` holds events whose granule maps to that slot.
    levels: Vec<Vec<Vec<Scheduled>>>,
    /// Bit `s` of `occupancy[l]` set ⇔ `levels[l][s]` is non-empty.
    occupancy: [u64; LEVELS],
    /// Events with a delta beyond the top level's span.
    overflow: BinaryHeap<Scheduled>,
    /// Events of already-drained granules, sorted ascending by
    /// `(time, key)`; the next pop comes from the front.
    ready: VecDeque<Scheduled>,
    /// Events in `levels` + `overflow` (excludes `ready`).
    bucketed: usize,
    /// Occupancy counters for the engine profiler: how API-level pushes
    /// split between level buckets (incl. the ready list) and the
    /// overflow heap, plus the pending high-water mark. Internal cascade
    /// re-inserts are not counted — each event is attributed once, where
    /// it first landed.
    stats: SchedulerStats,
}

impl Default for TimerWheel {
    fn default() -> TimerWheel {
        TimerWheel {
            cursor: 0,
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            occupancy: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            bucketed: 0,
            stats: SchedulerStats::default(),
        }
    }
}

impl TimerWheel {
    pub fn push(&mut self, time: Time, key: EventKey, event: Event) {
        if self.insert(Scheduled { time, key, event }) {
            self.stats.wheel_overflow_hits += 1;
        } else {
            self.stats.wheel_slot_hits += 1;
        }
        self.stats.pushes += 1;
        let pending = self.len() as u64;
        if pending > self.stats.max_pending {
            self.stats.max_pending = pending;
        }
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        self.ensure_ready();
        self.ready.pop_front()
    }

    pub fn peek_time(&mut self) -> Option<Time> {
        self.ensure_ready();
        self.ready.front().map(|s| s.time)
    }

    pub fn len(&self) -> usize {
        self.ready.len() + self.bucketed
    }

    #[allow(dead_code)] // used by tests and kept for symmetry with EventQueue
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy counters accumulated since construction.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Place `s`; returns `true` when it landed in the overflow heap
    /// (so `push` can attribute the insertion without re-deriving it).
    fn insert(&mut self, s: Scheduled) -> bool {
        let g = granule(s.time);
        if g < self.cursor {
            self.insert_ready(s);
            return false;
        }
        let delta = g - self.cursor;
        for level in 0..LEVELS {
            if delta < span(level) {
                let slot = ((g >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.levels[level][slot].push(s);
                self.occupancy[level] |= 1 << slot;
                self.bucketed += 1;
                return false;
            }
        }
        self.overflow.push(s);
        self.bucketed += 1;
        true
    }

    /// Ordered insert into the ready list (events scheduled at times the
    /// cursor has already passed, e.g. zero-delay timers). Position is
    /// found by binary search on `(time, key)`; an event older than the
    /// whole list simply pops next, exactly as it would from the heap.
    fn insert_ready(&mut self, s: Scheduled) {
        let key = (s.time, s.key);
        let mut lo = 0;
        let mut hi = self.ready.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let m = &self.ready[mid];
            if (m.time, m.key) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.ready.insert(lo, s);
    }

    /// Refill `ready` by advancing the cursor to the next non-empty
    /// granule, cascading outer levels down as their windows open.
    fn ensure_ready(&mut self) {
        while self.ready.is_empty() && self.bucketed > 0 {
            self.advance();
        }
    }

    /// The granule of the earliest bucket at `level`, if any. For level 0
    /// that is an exact event granule; for outer levels it is the start of
    /// the slot's window (a lower bound on its events' granules).
    fn earliest_bucket(&self, level: usize) -> Option<u64> {
        let mut occ = self.occupancy[level];
        if occ == 0 {
            return None;
        }
        let pos = (self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1);
        let w = width(level);
        let aligned = self.cursor & !(w * SLOTS as u64 - 1);
        // The cursor's own slot at an outer level is ambiguous: it holds
        // either the current window (cursor sitting exactly on its base
        // after a jump) or the window one full span ahead. A slot never
        // mixes windows, so any occupant reveals which — round its granule
        // down to the window base.
        let mut best: Option<u64> = None;
        if level > 0 && occ & (1 << pos) != 0 {
            occ &= !(1 << pos);
            let sample = granule(self.levels[level][pos as usize][0].time);
            best = Some(sample & !(w - 1));
        }
        if occ != 0 {
            // Rotate so bit 0 is the cursor's own slot: trailing_zeros
            // then counts whole slots from the cursor position,
            // wrap included.
            let dist = occ.rotate_right(pos as u32).trailing_zeros() as u64;
            let g = aligned + (pos + dist) * w;
            if best.is_none_or(|b| g < b) {
                best = Some(g);
            }
        }
        best
    }

    fn advance(&mut self) {
        debug_assert!(self.bucketed > 0);
        let overflow_g = self.overflow.peek().map(|s| granule(s.time));
        let mut best: Option<(u64, usize)> = None; // (granule, level)
        for level in (0..LEVELS).rev() {
            if let Some(g) = self.earliest_bucket(level) {
                // Strict `<` keeps the outermost level on ties: a cascade
                // at granule X must run before X's level-0 drain.
                if best.is_none_or(|(b, _)| g < b) {
                    best = Some((g, level));
                }
            }
        }
        match (best, overflow_g) {
            // `<=`: an overflow event sharing the earliest granule must be
            // in the wheel before that granule drains, or it would pop
            // late.
            (Some((g, _)), Some(og)) if og <= g => self.refill_overflow(og),
            (None, Some(og)) => self.refill_overflow(og),
            (Some((g, 0)), _) => {
                // Drain one granule into the ready list.
                self.cursor = g;
                let slot = (g & (SLOTS as u64 - 1)) as usize;
                let mut batch = std::mem::take(&mut self.levels[0][slot]);
                self.occupancy[0] &= !(1 << slot);
                self.bucketed -= batch.len();
                debug_assert!(batch.iter().all(|s| granule(s.time) == g));
                batch.sort_unstable_by_key(|s| (s.time, s.key));
                self.ready.extend(batch);
                self.cursor = g + 1;
            }
            (Some((g, level)), _) => {
                // Open the window: move the slot's events down a level.
                self.cursor = g;
                let slot = ((g >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                let batch = std::mem::take(&mut self.levels[level][slot]);
                self.occupancy[level] &= !(1 << slot);
                self.bucketed -= batch.len();
                for s in batch {
                    debug_assert!(granule(s.time) >= g);
                    self.insert(s);
                }
            }
            (None, None) => unreachable!("bucketed > 0 but no bucket found"),
        }
    }

    /// Jump the cursor to the overflow's earliest granule and pull every
    /// overflow event that now fits the wheel's horizon.
    fn refill_overflow(&mut self, first: u64) {
        self.cursor = self.cursor.max(first);
        let horizon = self.cursor + span(LEVELS - 1);
        while self.overflow.peek().is_some_and(|s| granule(s.time) < horizon) {
            let s = self.overflow.pop().expect("peeked");
            self.bucketed -= 1;
            self.insert(s);
        }
    }
}

#[cfg(test)]
fn seq_key(counter: u64) -> EventKey {
    EventKey { creator: 0, counter }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn timer(token: u64) -> Event {
        Event::Timer { node: NodeId(0), token }
    }

    /// Push with an auto-incrementing key counter, mimicking the engine's
    /// per-creator key assignment.
    struct KeyedWheel {
        w: TimerWheel,
        next: u64,
    }

    impl KeyedWheel {
        fn new() -> KeyedWheel {
            KeyedWheel { w: TimerWheel::default(), next: 0 }
        }
        fn push(&mut self, time: Time, event: Event) -> u64 {
            let c = self.next;
            self.next += 1;
            self.w.push(time, seq_key(c), event);
            c
        }
        fn pop(&mut self) -> Option<Scheduled> {
            self.w.pop()
        }
        fn peek_time(&mut self) -> Option<Time> {
            self.w.peek_time()
        }
    }

    fn drain(k: &mut KeyedWheel) -> Vec<(Time, u64)> {
        std::iter::from_fn(|| k.pop()).map(|s| (s.time, s.key.counter)).collect()
    }

    #[test]
    fn pops_in_time_then_key_order() {
        let mut w = KeyedWheel::new();
        for t in [10, 5, 10, 5] {
            w.push(t, timer(t));
        }
        assert_eq!(drain(&mut w), vec![(5, 1), (5, 3), (10, 0), (10, 2)]);
    }

    #[test]
    fn same_time_orders_by_creator_then_counter() {
        let mut w = TimerWheel::default();
        w.push(7, EventKey { creator: 3, counter: 0 }, timer(0));
        w.push(7, EventKey { creator: 1, counter: 8 }, timer(1));
        w.push(7, EventKey { creator: 1, counter: 2 }, timer(2));
        let order: Vec<EventKey> = std::iter::from_fn(|| w.pop()).map(|s| s.key).collect();
        assert_eq!(
            order,
            vec![
                EventKey { creator: 1, counter: 2 },
                EventKey { creator: 1, counter: 8 },
                EventKey { creator: 3, counter: 0 },
            ]
        );
    }

    #[test]
    fn spans_every_level_and_overflow() {
        let mut w = KeyedWheel::new();
        // One event per level band plus one beyond the 17 s horizon.
        let times = [
            1u64 << GRANULE_BITS,                       // level 0
            70 << GRANULE_BITS,                         // level 1
            5_000 << GRANULE_BITS,                      // level 2
            300_000 << GRANULE_BITS,                    // level 3
            (span(LEVELS - 1) + 7) << GRANULE_BITS,     // overflow
        ];
        for &t in times.iter().rev() {
            w.push(t, timer(t));
        }
        assert_eq!(w.w.len(), times.len());
        let popped: Vec<Time> = std::iter::from_fn(|| w.pop()).map(|s| s.time).collect();
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
        assert!(w.w.is_empty());
    }

    #[test]
    fn same_granule_sorts_by_exact_time() {
        let mut w = KeyedWheel::new();
        // All within one 1024 ns granule, inserted out of order.
        for t in [900, 100, 512, 101] {
            w.push(t, timer(t));
        }
        let order: Vec<Time> = std::iter::from_fn(|| w.pop()).map(|s| s.time).collect();
        assert_eq!(order, vec![100, 101, 512, 900]);
    }

    #[test]
    fn occupancy_stats_attribute_each_push_once() {
        let mut w = KeyedWheel::new();
        w.push(100, timer(0)); // level bucket
        w.push((span(LEVELS - 1) + 7) << GRANULE_BITS, timer(1)); // overflow
        let s = w.w.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.wheel_slot_hits, 1);
        assert_eq!(s.wheel_overflow_hits, 1);
        assert_eq!(s.max_pending, 2);
        // Draining cascades overflow back through the wheel; that must
        // not re-attribute the insertions.
        while w.pop().is_some() {}
        let s = w.w.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.wheel_slot_hits + s.wheel_overflow_hits, 2);
        assert_eq!(s.max_pending, 2);
    }

    #[test]
    fn insert_behind_the_cursor_pops_next() {
        let mut w = KeyedWheel::new();
        w.push(5_000_000, timer(1));
        assert_eq!(w.peek_time(), Some(5_000_000)); // cursor advanced past 0
        w.push(10, timer(2)); // in the drained past
        assert_eq!(w.pop().map(|s| s.time), Some(10));
        assert_eq!(w.pop().map(|s| s.time), Some(5_000_000));
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut w = KeyedWheel::new();
        w.push(1_000_000, timer(1));
        w.push(2_000_000, timer(2));
        assert_eq!(w.pop().map(|s| s.time), Some(1_000_000));
        // Scheduled between the popped event and the pending one.
        w.push(1_500_000, timer(3));
        w.push(90_000_000, timer(4));
        assert_eq!(w.pop().map(|s| s.time), Some(1_500_000));
        assert_eq!(w.pop().map(|s| s.time), Some(2_000_000));
        assert_eq!(w.pop().map(|s| s.time), Some(90_000_000));
        assert_eq!(w.pop().map(|s| s.time), None);
    }
}

#[cfg(test)]
mod props {
    use proptest::prelude::*;

    use super::*;
    use crate::event::EventQueue;
    use crate::node::NodeId;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The ordering contract: whatever the schedule, the wheel pops in
        /// ascending `(time, key)` — times from sub-granule to overflow.
        #[test]
        fn pops_in_time_key_order(
            times in proptest::collection::vec(0u64..1 << 38, 1..300),
        ) {
            let mut w = TimerWheel::default();
            for (i, &t) in times.iter().enumerate() {
                w.push(t, seq_key(i as u64), Event::Timer { node: NodeId(0), token: i as u64 });
            }
            let got: Vec<(Time, u64)> =
                std::iter::from_fn(|| w.pop()).map(|s| (s.time, s.key.counter)).collect();
            let mut expect: Vec<(Time, u64)> =
                times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }

        /// Interleaved push/pop rounds against the reference heap: both
        /// backends see the same operations and must produce the same
        /// pop stream (pushes after a pop land relative to its time, the
        /// way protocols re-arm timers).
        #[test]
        fn matches_heap_under_interleaving(
            ops in proptest::collection::vec((0u64..1 << 34, any::<bool>()), 1..300),
        ) {
            let mut w = TimerWheel::default();
            let mut h = EventQueue::default();
            let mut now: Time = 0;
            for (i, &(delta, push)) in ops.iter().enumerate() {
                if push {
                    let ev = |token| Event::Timer { node: NodeId(0), token };
                    w.push(now + delta, seq_key(i as u64), ev(i as u64));
                    h.push(now + delta, seq_key(i as u64), ev(i as u64));
                } else {
                    let (a, b) = (w.pop(), h.pop());
                    prop_assert_eq!(
                        a.as_ref().map(|s| (s.time, s.key)),
                        b.as_ref().map(|s| (s.time, s.key))
                    );
                    if let Some(s) = a {
                        now = s.time;
                    }
                }
            }
            loop {
                match (w.pop(), h.pop()) {
                    (Some(a), Some(b)) => prop_assert_eq!((a.time, a.key), (b.time, b.key)),
                    (None, None) => break,
                    _ => prop_assert!(false, "backends disagree on queue length"),
                }
            }
        }
    }
}

#[cfg(test)]
mod stress {
    use super::*;
    use crate::node::NodeId;

    /// Deterministic LCG stress: random interleaved pushes/pops must match
    /// a reference sort. Exercises cascades, wrap-around and overflow.
    #[test]
    fn randomized_interleaving_matches_reference() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = TimerWheel::default();
        let mut next_counter = 0u64;
        let mut reference: Vec<(Time, EventKey)> = Vec::new();
        let mut now: Time = 0;
        let mut popped: Vec<(Time, EventKey)> = Vec::new();
        for round in 0..20_000u64 {
            if rand() % 3 != 0 {
                // Push at now + random delta spanning all bands.
                let band = rand() % 4;
                let delta = match band {
                    0 => rand() % (1 << 12),
                    1 => rand() % (1 << 18),
                    2 => rand() % (1 << 26),
                    _ => rand() % (1 << 36),
                };
                let t = now + delta;
                let key = seq_key(next_counter);
                next_counter += 1;
                w.push(t, key, Event::Timer { node: NodeId(0), token: round });
                reference.push((t, key));
            } else if let Some(s) = w.pop() {
                assert!(s.time >= now, "time went backwards: {} < {}", s.time, now);
                now = s.time;
                popped.push((s.time, s.key));
            }
        }
        while let Some(s) = w.pop() {
            popped.push((s.time, s.key));
        }
        reference.sort_unstable();
        assert_eq!(popped, reference);
    }
}
