//! Deterministic per-node random number generation.
//!
//! Each node owns an independent generator seeded from the run seed and the
//! node id, so adding a node (or reordering callbacks within one time step)
//! never perturbs the random stream of another node. The generator is
//! SplitMix64 — tiny, fast, and statistically adequate for timer jitter and
//! hash seeding (we are not doing Monte Carlo here).

/// A deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a run seed and a node-specific salt.
    pub fn new(seed: u64, salt: u64) -> Self {
        // Mix the two inputs so (seed, salt) and (salt, seed) differ.
        let mut s = seed ^ salt.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
        if s == 0 {
            s = 0x2545_f491_4f6c_dd1d;
        }
        DetRng { state: s }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free variant is overkill here;
        // a 128-bit multiply gives negligible bias for our bounds (< 2^32).
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_salts_diverge() {
        let mut a = DetRng::new(42, 1);
        let mut b = DetRng::new(42, 2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1, 1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(3, 9);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &b in &buckets {
            // Within 5% of expectation is plenty for SplitMix64.
            assert!((b as i64 - expect as i64).unsigned_abs() < expect as u64 / 20);
        }
    }

    #[test]
    fn zero_seed_is_handled() {
        let mut r = DetRng::new(0, 0);
        // Must not get stuck emitting zeros.
        assert!((0..10).map(|_| r.next_u64()).any(|v| v != 0));
    }
}
