//! Point-to-point links.
//!
//! All links in a folded-Clos DCN are point-to-point fiber; the paper
//! relies on this (e.g. MR-MTP addresses frames to ff:ff:ff:ff:ff:ff and
//! still reaches exactly one device). A link connects two (node, port)
//! endpoints and has a propagation delay and a bandwidth. Each endpoint
//! interface can be administratively failed independently; a frame is
//! delivered only if **both** interfaces are up for the entire flight,
//! which we approximate by checking both at transmit time and the receiver
//! at delivery time.

use crate::node::{NodeId, PortId};
use crate::time::{Duration, Time, MICROS};

/// Identifies a link in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Physical characteristics of a link.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Line rate in bits per second (used for serialization delay).
    pub bandwidth_bps: u64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        // Intra-DC fiber: ~5 µs propagation (1 km equivalent), 10 GbE.
        LinkSpec { propagation: 5 * MICROS, bandwidth_bps: 10_000_000_000 }
    }
}

impl LinkSpec {
    /// Serialization delay of a frame of `wire_len` bytes at line rate.
    #[inline]
    pub fn serialization(&self, wire_len: u32) -> Duration {
        (wire_len as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps
    }
}

/// Per-link impairments for chaos campaigns, applied at transmit time and
/// driven by the engine's deterministic RNG. All-zero (the default) means
/// a clean link and draws nothing from the RNG, so clean runs are
/// bit-identical with or without the impairment machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Impairment {
    /// Probability of silently losing a frame, in parts per million.
    pub loss_ppm: u32,
    /// Probability of corrupting one frame byte in flight, in parts per
    /// million.
    pub corrupt_ppm: u32,
    /// Maximum extra delivery delay; each frame draws uniformly from
    /// `[0, jitter]`.
    pub jitter: Duration,
}

impl Impairment {
    /// A clean link: no loss, no corruption, no jitter.
    pub fn none() -> Impairment {
        Impairment::default()
    }

    /// Does this impairment actually do anything?
    #[inline]
    pub fn is_none(&self) -> bool {
        self.loss_ppm == 0 && self.corrupt_ppm == 0 && self.jitter == 0
    }
}

/// One side of a link.
#[derive(Clone, Copy, Debug)]
pub struct Endpoint {
    pub node: NodeId,
    pub port: PortId,
}

/// Internal link state.
#[derive(Clone, Debug)]
pub struct Link {
    pub spec: LinkSpec,
    pub a: Endpoint,
    pub b: Endpoint,
    /// Administrative state of the `a`-side interface.
    pub a_up: bool,
    /// Administrative state of the `b`-side interface.
    pub b_up: bool,
    /// Earliest time each direction's transmitter is free again (FIFO
    /// serialization). Index 0 = a→b, 1 = b→a.
    pub tx_free: [Time; 2],
    /// Active impairment (clean by default).
    pub impairment: Impairment,
}

impl Link {
    pub fn new(spec: LinkSpec, a: Endpoint, b: Endpoint) -> Self {
        Link { spec, a, b, a_up: true, b_up: true, tx_free: [0, 0], impairment: Impairment::none() }
    }

    /// Is the physical link able to carry frames (both NICs up)?
    #[inline]
    pub fn carries(&self) -> bool {
        self.a_up && self.b_up
    }

    /// The endpoint opposite `node`.
    pub fn peer_of(&self, node: NodeId) -> Endpoint {
        if self.a.node == node {
            self.b
        } else {
            debug_assert_eq!(self.b.node, node);
            self.a
        }
    }

    /// Direction index for a transmission originating at `node`.
    #[inline]
    pub fn dir_from(&self, node: NodeId) -> usize {
        usize::from(self.a.node != node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_is_len_over_rate() {
        let s = LinkSpec { propagation: 0, bandwidth_bps: 1_000_000_000 };
        // 125 bytes at 1 Gb/s = 1 µs.
        assert_eq!(s.serialization(125), MICROS);
        // 10 GbE default: 60-byte frame = 48 ns.
        assert_eq!(LinkSpec::default().serialization(60), 48);
    }

    #[test]
    fn peer_and_direction() {
        let l = Link::new(
            LinkSpec::default(),
            Endpoint { node: NodeId(1), port: PortId(0) },
            Endpoint { node: NodeId(2), port: PortId(3) },
        );
        assert_eq!(l.peer_of(NodeId(1)).node, NodeId(2));
        assert_eq!(l.peer_of(NodeId(2)).port, PortId(0));
        assert_eq!(l.dir_from(NodeId(1)), 0);
        assert_eq!(l.dir_from(NodeId(2)), 1);
        assert!(l.carries());
    }
}
