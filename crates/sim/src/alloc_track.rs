//! Forwarding-path allocation accounting.
//!
//! The traffic soak benchmark claims a concrete number — heap
//! allocations per forwarded data packet — and this module is how that
//! number is measured rather than asserted. Routers bracket their data
//! forwarding code in a [`scope`] guard and tick [`note_forward`] per
//! packet; a binary that installs [`CountingAllocator`] as its
//! `#[global_allocator]` then counts every allocation landing inside a
//! scope. The quotient `scoped_allocs() / forwarded()` is the honest
//! per-packet figure: endpoint work (packet generation, terminal host
//! delivery) and engine bookkeeping stay outside the scope.
//!
//! With no counting allocator installed (the normal case: library tests,
//! the simulation proper) the cost is two relaxed atomic stores per
//! forwarded packet and the counters simply stay zero —
//! [`counting_allocator_installed`] lets reports distinguish "measured
//! zero" from "not measured".
//!
//! The totals are process-wide atomics, but the *scope* flag is
//! per-thread: the sharded engine dispatches forwarding code on several
//! worker threads at once, and a process-global flag would charge one
//! worker's engine bookkeeping to another worker's forwarding scope. A
//! `#[global_allocator]` runs before — and during — thread-local
//! teardown, so the scope state uses a const-initialized `Cell` (no
//! lazy init, no destructor registration on read) accessed with
//! `try_with` and treated as "not in scope" once the thread is tearing
//! down.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

thread_local! {
    /// Forwarding-scope nesting depth of the current thread. Const-init
    /// keeps first access allocation-free, which matters inside the
    /// global allocator.
    static SCOPE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static SCOPED_ALLOCS: AtomicU64 = AtomicU64::new(0);
static FORWARDED: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// RAII guard marking the current extent as forwarding-path code.
/// Nested scopes are harmless (depth-counted); guards are per-thread and
/// must be dropped on the thread that created them (they are `!Send` by
/// construction).
pub struct ScopeGuard {
    /// Guards are thread-affine; forbid sending one across threads.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Enter a forwarding scope: allocations on *this thread* until the
/// guard drops are charged to the forwarding path.
#[inline]
pub fn scope() -> ScopeGuard {
    SCOPE_DEPTH.with(|d| d.set(d.get() + 1));
    ScopeGuard { _not_send: std::marker::PhantomData }
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        SCOPE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Record one forwarded data packet (the denominator).
#[inline]
pub fn note_forward() {
    FORWARDED.fetch_add(1, Relaxed);
}

/// Zero both counters (start of a measurement window).
pub fn reset() {
    SCOPED_ALLOCS.store(0, Relaxed);
    FORWARDED.store(0, Relaxed);
}

/// Allocations observed inside forwarding scopes (any thread) since
/// [`reset`].
pub fn scoped_allocs() -> u64 {
    SCOPED_ALLOCS.load(Relaxed)
}

/// Forwarded packets recorded since [`reset`].
pub fn forwarded() -> u64 {
    FORWARDED.load(Relaxed)
}

/// Has a [`CountingAllocator`] observed any allocation in this process?
/// `false` means `scoped_allocs()` is trivially zero and must not be
/// reported as a measurement.
pub fn counting_allocator_installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// A `System`-delegating allocator that attributes allocations to the
/// active forwarding scope of the allocating thread. Install in a
/// *binary* (never a library):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: dcn_sim::alloc_track::CountingAllocator =
///     dcn_sim::alloc_track::CountingAllocator;
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn count(&self) {
        if !INSTALLED.load(Relaxed) {
            INSTALLED.store(true, Relaxed);
        }
        // `try_with` instead of `with`: the allocator is reachable while
        // this thread's TLS is being torn down, where access fails —
        // teardown allocations are engine bookkeeping, not forwarding.
        let in_scope = SCOPE_DEPTH.try_with(|d| d.get() > 0).unwrap_or(false);
        if in_scope {
            SCOPED_ALLOCS.fetch_add(1, Relaxed);
        }
    }
}

// SAFETY: pure delegation to `System`; the counters never allocate
// (the scope flag is a const-initialized thread-local `Cell`).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow that moves is a fresh allocation from the forwarding
        // path's point of view.
        self.count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_scope() -> bool {
        SCOPE_DEPTH.with(|d| d.get() > 0)
    }

    #[test]
    fn scope_nesting_restores_state() {
        assert!(!in_scope());
        {
            let _a = scope();
            assert!(in_scope());
            {
                let _b = scope();
                assert!(in_scope());
            }
            assert!(in_scope(), "inner guard restored outer scope");
        }
        assert!(!in_scope());
    }

    #[test]
    fn scopes_are_thread_local() {
        let _outer = scope();
        assert!(in_scope());
        // A worker thread starts outside any scope regardless of the
        // spawning thread's state, and its own guards don't leak back.
        std::thread::spawn(|| {
            assert!(!in_scope(), "scope must not leak into worker threads");
            let _inner = scope();
            assert!(in_scope());
        })
        .join()
        .unwrap();
        assert!(in_scope(), "worker scopes must not clobber the spawner");
    }

    #[test]
    fn forward_counter_counts() {
        reset();
        note_forward();
        note_forward();
        assert_eq!(forwarded(), 2);
        reset();
        assert_eq!(forwarded(), 0);
        // No counting allocator in unit tests: scoped allocs stay zero.
        assert_eq!(scoped_allocs(), 0);
    }
}
