//! Forwarding-path allocation accounting.
//!
//! The traffic soak benchmark claims a concrete number — heap
//! allocations per forwarded data packet — and this module is how that
//! number is measured rather than asserted. Routers bracket their data
//! forwarding code in a [`scope`] guard and tick [`note_forward`] per
//! packet; a binary that installs [`CountingAllocator`] as its
//! `#[global_allocator]` then counts every allocation landing inside a
//! scope. The quotient `scoped_allocs() / forwarded()` is the honest
//! per-packet figure: endpoint work (packet generation, terminal host
//! delivery) and engine bookkeeping stay outside the scope.
//!
//! With no counting allocator installed (the normal case: library tests,
//! the simulation proper) the cost is two relaxed atomic stores per
//! forwarded packet and the counters simply stay zero —
//! [`counting_allocator_installed`] lets reports distinguish "measured
//! zero" from "not measured".
//!
//! The counters are process-wide atomics, not thread-locals: the
//! simulator is single-threaded by design, and a `#[global_allocator]`
//! must be safe to call before any thread-local machinery exists.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

static IN_SCOPE: AtomicBool = AtomicBool::new(false);
static SCOPED_ALLOCS: AtomicU64 = AtomicU64::new(0);
static FORWARDED: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// RAII guard marking the current extent as forwarding-path code.
/// Nested scopes are harmless (the guard restores the previous state).
pub struct ScopeGuard {
    prev: bool,
}

/// Enter a forwarding scope: allocations until the guard drops are
/// charged to the forwarding path.
#[inline]
pub fn scope() -> ScopeGuard {
    ScopeGuard { prev: IN_SCOPE.swap(true, Relaxed) }
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        IN_SCOPE.store(self.prev, Relaxed);
    }
}

/// Record one forwarded data packet (the denominator).
#[inline]
pub fn note_forward() {
    FORWARDED.fetch_add(1, Relaxed);
}

/// Zero both counters (start of a measurement window).
pub fn reset() {
    SCOPED_ALLOCS.store(0, Relaxed);
    FORWARDED.store(0, Relaxed);
}

/// Allocations observed inside forwarding scopes since [`reset`].
pub fn scoped_allocs() -> u64 {
    SCOPED_ALLOCS.load(Relaxed)
}

/// Forwarded packets recorded since [`reset`].
pub fn forwarded() -> u64 {
    FORWARDED.load(Relaxed)
}

/// Has a [`CountingAllocator`] observed any allocation in this process?
/// `false` means `scoped_allocs()` is trivially zero and must not be
/// reported as a measurement.
pub fn counting_allocator_installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// A `System`-delegating allocator that attributes allocations to the
/// active forwarding scope. Install in a *binary* (never a library):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: dcn_sim::alloc_track::CountingAllocator =
///     dcn_sim::alloc_track::CountingAllocator;
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn count(&self) {
        if !INSTALLED.load(Relaxed) {
            INSTALLED.store(true, Relaxed);
        }
        if IN_SCOPE.load(Relaxed) {
            SCOPED_ALLOCS.fetch_add(1, Relaxed);
        }
    }
}

// SAFETY: pure delegation to `System`; the counters never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow that moves is a fresh allocation from the forwarding
        // path's point of view.
        self.count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_nesting_restores_state() {
        assert!(!IN_SCOPE.load(Relaxed));
        {
            let _a = scope();
            assert!(IN_SCOPE.load(Relaxed));
            {
                let _b = scope();
                assert!(IN_SCOPE.load(Relaxed));
            }
            assert!(IN_SCOPE.load(Relaxed), "inner guard restored outer scope");
        }
        assert!(!IN_SCOPE.load(Relaxed));
    }

    #[test]
    fn forward_counter_counts() {
        reset();
        note_forward();
        note_forward();
        assert_eq!(forwarded(), 2);
        reset();
        assert_eq!(forwarded(), 0);
        // No counting allocator in unit tests: scoped allocs stay zero.
        assert_eq!(scoped_allocs(), 0);
    }
}
