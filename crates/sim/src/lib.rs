//! # dcn-sim — deterministic discrete-event network emulator
//!
//! This crate is the substrate on which the routing protocols of the paper
//! reproduction run. It replaces the FABRIC testbed used by the authors with
//! a laptop-scale emulation that preserves the properties the paper's
//! measurements depend on:
//!
//! * **Point-to-point links** with configurable propagation delay and
//!   bandwidth (serialization delay is modelled per frame, FIFO per port).
//! * **Asymmetric interface-failure visibility**: when an interface is
//!   administratively failed (the paper's `ip link set down` bash script),
//!   the *owning* node receives a carrier-down notification after a small
//!   detection latency, while the *remote* node receives nothing and must
//!   infer the failure from missing keepalives. This asymmetry is the core
//!   of the paper's TC1–TC4 test-case design.
//! * **Deterministic execution**: events carry content-derived keys
//!   (creator node, per-node counter) giving a total ordering
//!   `(time, key)` that is independent of how the queue is implemented —
//!   per-node seeded RNGs plus per-link impairment streams make every run
//!   bit-reproducible for a given seed.
//! * **Frame tracing**: every transmitted frame is recorded with its wire
//!   length and a [`FrameClass`], so the metrics crate can compute control
//!   overhead, keep-alive overhead and convergence instants exactly the way
//!   the paper's tshark/log-parsing pipeline did.
//!
//! Two execution engines share that ordering contract
//! ([`engine::EngineKind`]): the sequential reference, and a sharded
//! conservative-lookahead parallel engine that partitions the fabric
//! across worker threads (PoD-aligned shards) yet reproduces the
//! sequential trace bit-for-bit. Scenario-level parallelism (fanning
//! independent runs over threads) still lives one level up in the
//! experiment harness; the sharded engine parallelizes *within* one run.

pub mod alloc_track;
pub mod engine;
pub mod event;
pub mod link;
pub mod node;
pub mod profiler;
pub mod rng;
pub mod sync;
pub mod time;
pub mod trace;
pub mod wheel;

pub use dcn_wire::{FrameBuf, FrameMeta};
pub use engine::{EngineKind, Sim, SimBuilder, SimConfig};
pub use event::{scheduler_stress, Event, EventKey, SchedulerKind};
pub use link::{Impairment, LinkId, LinkSpec};
pub use node::{Action, Ctx, NodeId, PortId, Protocol, StatsSnapshot};
pub use profiler::{EngineProfile, SchedulerStats, ShardProfile, WindowRecord};
pub use sync::{BarrierSense, SpinBarrier, SpscQueue};
pub use time::{Duration, Time, MICROS, MILLIS, NANOS, SECONDS};
pub use trace::{FrameClass, RouteChangeKind, SpanEvent, Trace, TraceEvent};
