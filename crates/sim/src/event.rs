//! The event queue.
//!
//! Two interchangeable backends provide a total, deterministic order keyed
//! on `(time, key)`, where the [`EventKey`] is *content-derived*: it names
//! the node that created the event and that node's creation counter,
//! rather than a global insertion sequence. Content-derived keys are what
//! makes the sharded parallel engine possible — every shard assigns the
//! same keys the sequential engine would, so the k-way merge of per-shard
//! streams reproduces the sequential order bit-for-bit (see
//! `engine::Sim::run_until` and DESIGN.md §9).
//!
//! [`EventQueue`] is the reference binary heap;
//! [`crate::wheel::TimerWheel`] is the hierarchical timer wheel used by
//! default for scale. The [`Scheduler`] enum dispatches between them; the
//! equivalence suite in `dcn-experiments` asserts their pop streams are
//! bit-identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dcn_wire::{FrameBuf, FrameMeta};

use crate::link::LinkId;
use crate::node::{NodeId, PortId};
use crate::profiler::SchedulerStats;
use crate::time::Time;
use crate::wheel::TimerWheel;

/// A scheduled occurrence.
#[derive(Debug)]
pub enum Event {
    /// A frame arrives at `node`/`port`. `meta` is the sender's
    /// parse-once metadata (dropped by the engine on in-flight
    /// corruption); it never influences scheduling, tracing, or the
    /// bytes delivered.
    Deliver { node: NodeId, port: PortId, frame: FrameBuf, meta: Option<FrameMeta> },
    /// A protocol timer fires at `node`.
    Timer { node: NodeId, token: u64 },
    /// Failure injection: take `node`'s interface `port` down (carrier
    /// event delivered to `node` only).
    AdminPortDown { node: NodeId, port: PortId },
    /// Recovery injection: bring the interface back.
    AdminPortUp { node: NodeId, port: PortId },
    /// Carrier notification delivered to the interface owner after the
    /// configured detection latency.
    Carrier { node: NodeId, port: PortId, up: bool },
    /// Start a node (delivers `on_start`). Scheduled by the builder.
    Start { node: NodeId },
    /// Sharded-engine bookkeeping: flip one side's up flag on a shard's
    /// local copy of a link, so remote senders' `carries()` checks see an
    /// administrative transition at exactly the instant the owning shard
    /// applies it. Never scheduled by the sequential engine, never
    /// counted, never traced.
    MirrorIface { link: LinkId, side_a: bool, up: bool },
}

impl Event {
    /// The node this event is dispatched at ([`Event::MirrorIface`] is
    /// link bookkeeping and has none). The sharded engine routes events
    /// to worker shards by this.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            Event::Deliver { node, .. }
            | Event::Timer { node, .. }
            | Event::AdminPortDown { node, .. }
            | Event::AdminPortUp { node, .. }
            | Event::Carrier { node, .. }
            | Event::Start { node } => Some(node),
            Event::MirrorIface { .. } => None,
        }
    }
}

/// Content-derived tie-break for events sharing a timestamp: the id of
/// the node whose dispatch created the event, and that creator's own
/// monotone creation counter. Two properties carry the whole determinism
/// story:
///
/// * **Uniqueness** — no two events ever share `(creator, counter)`, so
///   `(time, key)` is a total order.
/// * **Engine independence** — a node's counter advances only while that
///   node's events are dispatched, and every engine dispatches a given
///   node's events in the same relative order; the keys a run assigns do
///   not depend on which engine (sequential or sharded, heap or wheel)
///   executes it.
///
/// Externally injected events (`Start` at build time, admin transitions)
/// use [`EventKey::EXTERNAL`] with a per-[`crate::Sim`] counter; external
/// injection only happens between `run_until` calls, where every engine
/// observes the same call sequence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EventKey {
    /// `NodeId` of the creating node, or [`EventKey::EXTERNAL`].
    pub creator: u32,
    /// Per-creator creation counter.
    pub counter: u64,
}

impl EventKey {
    /// Creator id for events injected from outside the event loop.
    pub const EXTERNAL: u32 = u32::MAX;
}

pub(crate) struct Scheduled {
    pub time: Time,
    pub key: EventKey,
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// Which event-scheduler backend a simulation uses. Both produce the exact
/// same event order; the wheel is faster at scale, the heap is the simple
/// reference kept for equivalence testing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel with an overflow heap (the default).
    #[default]
    Wheel,
    /// The original `BinaryHeap` scheduler.
    Heap,
}

/// Deterministic priority queue of events (reference heap backend).
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    /// Occupancy counters for the engine profiler. The heap has no
    /// slot/overflow split; every push counts as a slot hit so the two
    /// backends report comparable totals.
    stats: SchedulerStats,
}

impl EventQueue {
    pub fn push(&mut self, time: Time, key: EventKey, event: Event) {
        self.heap.push(Scheduled { time, key, event });
        self.stats.pushes += 1;
        self.stats.wheel_slot_hits += 1;
        let pending = self.heap.len() as u64;
        if pending > self.stats.max_pending {
            self.stats.max_pending = pending;
        }
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    #[allow(dead_code)] // used by tests and kept for debugging
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Occupancy counters accumulated since construction.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

/// The engine's scheduler: either backend behind one dispatch surface.
/// Keys are supplied by the engine at push time (content-derived), so for
/// the same push stream both variants produce the same pop stream.
pub(crate) enum Scheduler {
    Heap(EventQueue),
    Wheel(Box<TimerWheel>),
}

impl Scheduler {
    pub fn new(kind: SchedulerKind) -> Scheduler {
        match kind {
            SchedulerKind::Heap => Scheduler::Heap(EventQueue::default()),
            SchedulerKind::Wheel => Scheduler::Wheel(Box::default()),
        }
    }

    pub fn push(&mut self, time: Time, key: EventKey, event: Event) {
        match self {
            Scheduler::Heap(q) => q.push(time, key, event),
            Scheduler::Wheel(w) => w.push(time, key, event),
        }
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        match self {
            Scheduler::Heap(q) => q.pop(),
            Scheduler::Wheel(w) => w.pop(),
        }
    }

    /// Time of the next event. `&mut` because the wheel may advance its
    /// cursor (drain buckets into its ready list) to answer.
    pub fn peek_time(&mut self) -> Option<Time> {
        match self {
            Scheduler::Heap(q) => q.peek_time(),
            Scheduler::Wheel(w) => w.peek_time(),
        }
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Heap(q) => q.len(),
            Scheduler::Wheel(w) => w.len(),
        }
    }

    /// Occupancy counters of the active backend (see
    /// [`crate::profiler::SchedulerStats`]).
    pub fn stats(&self) -> SchedulerStats {
        match self {
            Scheduler::Heap(q) => q.stats(),
            Scheduler::Wheel(w) => w.stats(),
        }
    }
}

/// Scheduler microbenchmark driver: hold `pending` timers in flight and
/// run `cycles` pop-then-re-arm rounds through the chosen backend,
/// mimicking the simulator's steady state (mostly tick-scale re-arms, an
/// occasional far-future timer). Returns a checksum over popped times so
/// the work cannot be optimized away; the caller measures wall time.
///
/// Lives here because the backends themselves are crate-private.
pub fn scheduler_stress(kind: SchedulerKind, pending: usize, cycles: u64) -> u64 {
    let mut q = Scheduler::new(kind);
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let node = NodeId(0);
    let mut counter = 0u64;
    let mut key = move || {
        let k = EventKey { creator: 0, counter };
        counter += 1;
        k
    };
    for i in 0..pending as u64 {
        q.push(rand() % (1 << 24), key(), Event::Timer { node, token: i });
    }
    let mut acc = 0u64;
    for _ in 0..cycles {
        let s = q.pop().expect("pending timers never drain");
        acc = acc.wrapping_add(s.time);
        let delta = if rand() % 16 == 0 {
            rand() % (1 << 34) // far future: outer wheel levels / overflow
        } else {
            1 + rand() % (20 * crate::time::MILLIS) // tick-scale re-arm
        };
        q.push(s.time + delta, key(), Event::Timer { node, token: 0 });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn seq_key(counter: u64) -> EventKey {
        EventKey { creator: 0, counter }
    }

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q = EventQueue::default();
        q.push(10, seq_key(1), Event::Timer { node: NodeId(0), token: 1 });
        q.push(5, seq_key(2), Event::Timer { node: NodeId(0), token: 2 });
        q.push(10, seq_key(3), Event::Timer { node: NodeId(0), token: 3 });
        q.push(5, seq_key(4), Event::Timer { node: NodeId(0), token: 4 });

        let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                Event::Timer { token, .. } => (s.time, token),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(5, 2), (5, 4), (10, 1), (10, 3)]);
    }

    #[test]
    fn same_time_orders_by_creator_then_counter() {
        let mut q = EventQueue::default();
        let ev = |token| Event::Timer { node: NodeId(0), token };
        q.push(7, EventKey { creator: 2, counter: 0 }, ev(1));
        q.push(7, EventKey { creator: 1, counter: 9 }, ev(2));
        q.push(7, EventKey { creator: 1, counter: 3 }, ev(3));
        q.push(7, EventKey { creator: EventKey::EXTERNAL, counter: 0 }, ev(4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        // Lower creator first; within a creator, lower counter; EXTERNAL
        // (u32::MAX) sorts after every real node.
        assert_eq!(order, vec![3, 2, 1, 4]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(42, seq_key(0), Event::Timer { node: NodeId(1), token: 0 });
        q.push(7, seq_key(1), Event::Timer { node: NodeId(1), token: 0 });
        assert_eq!(q.peek_time(), Some(7));
        q.pop();
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn backends_pop_identical_streams() {
        let mut heap = Scheduler::new(SchedulerKind::Heap);
        let mut wheel = Scheduler::new(SchedulerKind::Wheel);
        // A deliberately messy schedule: ties, zero times, far-future,
        // cross-granule interleavings.
        let times = [10u64, 5, 5, 0, 1 << 20, 3, 1 << 30, 10, 2048, 2047];
        for (i, &t) in times.iter().enumerate() {
            let ev = || Event::Timer { node: NodeId(0), token: i as u64 };
            heap.push(t, seq_key(i as u64), ev());
            wheel.push(t, seq_key(i as u64), ev());
        }
        loop {
            assert_eq!(heap.peek_time(), wheel.peek_time());
            match (heap.pop(), wheel.pop()) {
                (Some(a), Some(b)) => {
                    assert_eq!((a.time, a.key), (b.time, b.key));
                }
                (None, None) => break,
                _ => panic!("backends disagree on queue length"),
            }
        }
    }
}
