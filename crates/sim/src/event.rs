//! The event queue.
//!
//! A binary heap keyed on `(time, sequence)` gives a total, deterministic
//! order: events scheduled earlier in wall-clock-of-scheduling order win
//! ties. The sequence number is assigned by the engine at insertion.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{NodeId, PortId};
use crate::time::Time;

/// A scheduled occurrence.
#[derive(Debug)]
pub enum Event {
    /// A frame arrives at `node`/`port`.
    Deliver { node: NodeId, port: PortId, frame: Vec<u8> },
    /// A protocol timer fires at `node`.
    Timer { node: NodeId, token: u64 },
    /// Failure injection: take `node`'s interface `port` down (carrier
    /// event delivered to `node` only).
    AdminPortDown { node: NodeId, port: PortId },
    /// Recovery injection: bring the interface back.
    AdminPortUp { node: NodeId, port: PortId },
    /// Carrier notification delivered to the interface owner after the
    /// configured detection latency.
    Carrier { node: NodeId, port: PortId, up: bool },
    /// Start a node (delivers `on_start`). Scheduled by the builder.
    Start { node: NodeId },
}

pub(crate) struct Scheduled {
    pub time: Time,
    pub seq: u64,
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    #[allow(dead_code)] // used by tests and kept for debugging
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::default();
        q.push(10, Event::Timer { node: NodeId(0), token: 1 });
        q.push(5, Event::Timer { node: NodeId(0), token: 2 });
        q.push(10, Event::Timer { node: NodeId(0), token: 3 });
        q.push(5, Event::Timer { node: NodeId(0), token: 4 });

        let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                Event::Timer { token, .. } => (s.time, token),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(5, 2), (5, 4), (10, 1), (10, 3)]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(42, Event::Timer { node: NodeId(1), token: 0 });
        q.push(7, Event::Timer { node: NodeId(1), token: 0 });
        assert_eq!(q.peek_time(), Some(7));
        q.pop();
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
