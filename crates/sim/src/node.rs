//! Node identities, the [`Protocol`] trait implemented by every emulated
//! device (routers, servers), and the [`Ctx`] handle through which a
//! protocol interacts with the engine during a callback.

use std::any::Any;

use dcn_wire::{FrameBuf, FrameMeta};

use crate::rng::DetRng;
use crate::time::{Duration, Time};
use crate::trace::{FrameClass, RouteChangeKind, SpanEvent, TraceEvent};

/// Identifies a node (device) in the emulated fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a port (interface) local to one node. Port indices are dense
/// and assigned in wiring order; protocols derive the paper's 1-based "port
/// numbers" (used in VID derivation) as `PortId.0 + 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

impl PortId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The 1-based port label used by MR-MTP VID derivation ("appending the
    /// port number on which the request arrived").
    #[inline]
    pub fn label(self) -> u8 {
        (self.0 + 1) as u8
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// Deferred effects produced by a protocol callback; the engine applies
/// them after the callback returns, keeping borrows simple and execution
/// order deterministic.
#[derive(Debug)]
pub enum Action {
    /// Transmit `frame` out of `port`. `class` is metadata for tracing only;
    /// it never affects delivery. `meta` is optional parse-once metadata
    /// delivered alongside the frame to the receiving protocol; it never
    /// affects the wire bytes, the trace, or delivery order.
    Send {
        port: PortId,
        frame: FrameBuf,
        class: FrameClass,
        meta: Option<FrameMeta>,
    },
    /// Deliver `on_timer(token)` back to this node after `delay`.
    Timer { delay: Duration, token: u64 },
    /// Deliver `on_timer(token)` after `first`, then again every `every`,
    /// managed by the engine: one standing timer per node instead of a
    /// fresh queue entry armed from every callback. Re-arming an already
    /// periodic token replaces its cadence.
    Periodic {
        first: Duration,
        every: Duration,
        token: u64,
    },
    /// Record a trace event attributed to this node.
    Trace(TraceEvent),
}

/// Per-port view handed to protocols: whether the local interface is
/// administratively up and whether anything is wired to it.
#[derive(Clone, Copy, Debug)]
pub struct PortView {
    pub connected: bool,
    /// Local interface state. `false` after a failure has been injected on
    /// this side of the link.
    pub up: bool,
}

/// The callback context. Everything a protocol may do during a callback
/// goes through this handle.
pub struct Ctx<'a> {
    pub(crate) now: Time,
    pub(crate) node: NodeId,
    pub(crate) ports: &'a [PortView],
    pub(crate) up_mask: u128,
    pub(crate) out: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut DetRng,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The node this callback is running on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of ports on this node.
    #[inline]
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Local state of a port.
    #[inline]
    pub fn port(&self, port: PortId) -> PortView {
        self.ports[port.index()]
    }

    /// Bitmask of administratively-up ports: bit `i` set ⟺
    /// `self.port(PortId(i)).up`, for the first 128 ports. Maintained
    /// incrementally by the engine so compiled-FIB candidate selection is
    /// a branchless mask-and-pick instead of a per-port loop.
    #[inline]
    pub fn port_up_mask(&self) -> u128 {
        self.up_mask
    }

    /// Iterate over all connected ports.
    pub fn connected_ports(&self) -> impl Iterator<Item = PortId> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.connected)
            .map(|(i, _)| PortId(i as u16))
    }

    /// Transmit a frame. Frames sent on a down or unconnected port are
    /// counted in the trace (the NIC driver accepted them) but silently
    /// dropped by the engine, mirroring a real kernel's behaviour with a
    /// carrier-less interface.
    pub fn send(&mut self, port: PortId, frame: impl Into<FrameBuf>, class: FrameClass) {
        self.out.push(Action::Send { port, frame: frame.into(), class, meta: None });
    }

    /// Transmit a frame with parse-once metadata attached. The metadata
    /// rides alongside the bytes to the receiving protocol's
    /// [`Protocol::on_frame_meta`]; it must describe exactly what the
    /// frame encodes (attach it only where the frame is encoded). The
    /// engine drops it if impairment corrupts the frame in flight.
    pub fn send_meta(
        &mut self,
        port: PortId,
        frame: impl Into<FrameBuf>,
        class: FrameClass,
        meta: FrameMeta,
    ) {
        self.out.push(Action::Send { port, frame: frame.into(), class, meta: Some(meta) });
    }

    /// Arm a one-shot timer. There is deliberately no cancellation: stale
    /// fires are cheap and protocols validate tokens against their own
    /// state, which keeps the engine simple and the event order obvious.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.out.push(Action::Timer { delay, token });
    }

    /// Arm an engine-managed periodic timer: `on_timer(token)` fires after
    /// `first`, then every `every` until the node is torn down. Protocols
    /// with per-tick batched work (keepalive TX, BFD TX, retransmit scans)
    /// use this instead of re-arming a one-shot from every `on_timer`, so
    /// the engine keeps a single standing entry per node tick.
    pub fn set_periodic(&mut self, first: Duration, every: Duration, token: u64) {
        self.out.push(Action::Periodic { first, every, token });
    }

    /// Record that this node changed destination-forwarding state. This is
    /// the event the blast-radius metric counts (see DESIGN.md §5).
    pub fn trace_route_change(&mut self, kind: RouteChangeKind, detail: u64) {
        let ev = TraceEvent::RouteChange {
            time: self.now,
            node: self.node,
            kind,
            detail,
        };
        self.out.push(Action::Trace(ev));
    }

    /// Record a typed protocol span event (convergence storyboarding:
    /// FSM transitions, detection verdicts, flood waves, batch windows).
    pub fn trace_span(&mut self, span: SpanEvent) {
        let ev = TraceEvent::Span {
            time: self.now,
            node: self.node,
            span,
        };
        self.out.push(Action::Trace(ev));
    }

    /// Record a free-form protocol annotation (ad-hoc debugging; prefer
    /// [`Ctx::trace_span`] for anything an analyzer should consume).
    pub fn trace_proto(&mut self, tag: &'static str, info: u64) {
        let ev = TraceEvent::Proto {
            time: self.now,
            node: self.node,
            tag,
            info,
        };
        self.out.push(Action::Trace(ev));
    }

    /// Deterministic per-node pseudo-randomness (used e.g. for ECMP hash
    /// seeds and timer jitter).
    #[inline]
    pub fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    #[inline]
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }
}

/// A uniform counter/gauge surface over per-protocol stats structs, so
/// harness code (`fcr report`, telemetry samplers, chaos bundles) can
/// dump every router's counters without downcasting per stack.
///
/// Names must be stable `&'static str`s: they become JSONL field names
/// and time-series keys.
pub trait StatsSnapshot {
    /// Monotonic counters as (name, cumulative value) pairs, in a stable
    /// order.
    fn counters(&self) -> Vec<(&'static str, u64)>;

    /// Point-in-time gauges (table sizes, session FSM states, queue
    /// depths), in a stable order.
    fn gauges(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// A protocol instance bound to one emulated node.
///
/// Implementations exist for MR-MTP routers (`dcn-mrmtp`), BGP/ECMP(/BFD)
/// routers (`dcn-bgp`) and traffic-generating servers (`dcn-traffic`).
pub trait Protocol: Send {
    /// Called once at the node's start time (time zero unless staggered).
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// A frame arrived on `port`. `FrameBuf` derefs to `&[u8]`, so decoders
    /// consume it unchanged; forwarding planes clone it to re-send the same
    /// bytes without copying.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf);

    /// A frame arrived on `port`, possibly with parse-once metadata
    /// attached by the sender (see [`Ctx::send_meta`]). This is the entry
    /// point the engine actually calls; the default implementation
    /// ignores the metadata and delegates to [`Protocol::on_frame`], so
    /// protocols without a fast path need not change. Implementations
    /// overriding this must treat the metadata as advisory: behavior with
    /// and without it must be identical.
    fn on_frame_meta(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        frame: &FrameBuf,
        _meta: Option<FrameMeta>,
    ) {
        self.on_frame(ctx, port, frame)
    }

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// The local interface `port` lost carrier (failure injected on this
    /// side). The remote side of the link gets **no** callback.
    fn on_port_down(&mut self, _ctx: &mut Ctx<'_>, _port: PortId) {}

    /// The local interface `port` regained carrier.
    fn on_port_up(&mut self, _ctx: &mut Ctx<'_>, _port: PortId) {}

    /// Uniform stats access (None for protocols without counters, e.g.
    /// plain traffic hosts). See [`StatsSnapshot`].
    fn stats_snapshot(&self) -> Option<&dyn StatsSnapshot> {
        None
    }

    /// Downcasting hook so the harness can inspect routing tables after a
    /// run (`sim.node_as::<MrmtpRouter>(id)`).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting hook.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_labels_are_one_based() {
        assert_eq!(PortId(0).label(), 1);
        assert_eq!(PortId(3).label(), 4);
        assert_eq!(format!("{}", PortId(2)), "eth2");
        assert_eq!(format!("{}", NodeId(7)), "n7");
    }
}
