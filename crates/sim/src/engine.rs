//! The simulation engine: node registry, wiring, event dispatch.

use std::any::Any;

use dcn_wire::FrameBuf;

use crate::event::{Event, Scheduler, SchedulerKind};
use crate::link::{Endpoint, Impairment, Link, LinkId, LinkSpec};
use crate::node::{Action, Ctx, NodeId, PortId, PortView, Protocol};
use crate::rng::DetRng;
use crate::time::{Duration, Time, MICROS};
use crate::trace::{Trace, TraceEvent};

/// Minimum Ethernet frame length as captured by tshark (without FCS).
/// Shorter frames are padded on the wire; the trace records the padded
/// length because that is what the paper's byte counts are based on.
pub const MIN_WIRE_LEN: u32 = 60;

struct NodeSlot {
    proto: Option<Box<dyn Protocol>>,
    name: String,
    /// Link attached to each port, in wiring order.
    port_links: Vec<LinkId>,
    /// Per-port view handed to protocol callbacks.
    views: Vec<PortView>,
    /// Target admin state of each port as of the latest scheduled
    /// transition (guards flap schedules against down-on-down /
    /// up-on-up double scheduling).
    admin_target: Vec<bool>,
    /// Engine-managed periodic timers: `(token, every)`. At most a
    /// handful per node (a coalesced protocol tick), hence a flat vec.
    periodic: Vec<(u64, Duration)>,
    /// Bit `i` set ⟺ `views[i].up`, for the first 128 ports. Kept in
    /// lockstep with `views` so [`Ctx::port_up_mask`] is a load instead
    /// of a per-port scan on every forwarded packet.
    up_mask: u128,
    rng: DetRng,
}

/// Engine configuration, collapsed into one struct so experiment layers
/// pass a single value instead of threading loose builder knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Record a [`Trace`] (disable only for microbenchmarks).
    pub trace: bool,
    /// How long after an injected interface failure the owning node's
    /// protocol hears about it (netlink notification delay).
    pub carrier_latency: Duration,
    /// Impairment installed on every link at build time (individual links
    /// can still be overridden later via [`Sim::set_impairment`]).
    pub impairment: Impairment,
    /// Event-scheduler backend. Both orders are bit-identical; the wheel
    /// is the fast default, the heap the reference for equivalence tests.
    pub scheduler: SchedulerKind,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            trace: true,
            carrier_latency: 500 * MICROS,
            impairment: Impairment::none(),
            scheduler: SchedulerKind::default(),
        }
    }
}

/// Builder for a [`Sim`]. Add nodes, wire them with links (ports are
/// assigned in wiring order, which is how the topology crate reproduces the
/// paper's port numbering), then `build()`.
pub struct SimBuilder {
    seed: u64,
    config: SimConfig,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
}

impl SimBuilder {
    /// A builder with the default [`SimConfig`].
    pub fn new(seed: u64) -> Self {
        SimBuilder::with_config(seed, SimConfig::default())
    }

    /// A builder with an explicit engine configuration.
    pub fn with_config(seed: u64, config: SimConfig) -> Self {
        SimBuilder {
            seed,
            config,
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Register a node running `proto`. Ports are added later by wiring.
    pub fn add_node(&mut self, name: impl Into<String>, proto: Box<dyn Protocol>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            proto: Some(proto),
            name: name.into(),
            port_links: Vec::new(),
            views: Vec::new(),
            admin_target: Vec::new(),
            periodic: Vec::new(),
            up_mask: 0,
            rng: DetRng::new(self.seed, id.0 as u64),
        });
        id
    }

    /// Wire `a` to `b` with a new link; appends one port to each node and
    /// returns `(link, a_port, b_port)`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, PortId, PortId) {
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        let ap = self.attach_port(a, id);
        let bp = self.attach_port(b, id);
        self.links.push(Link::new(
            spec,
            Endpoint { node: a, port: ap },
            Endpoint { node: b, port: bp },
        ));
        (id, ap, bp)
    }

    fn attach_port(&mut self, node: NodeId, link: LinkId) -> PortId {
        let slot = &mut self.nodes[node.index()];
        let p = PortId(slot.port_links.len() as u16);
        slot.port_links.push(link);
        slot.views.push(PortView { connected: true, up: true });
        if p.index() < 128 {
            slot.up_mask |= 1 << p.index();
        }
        slot.admin_target.push(true);
        p
    }

    /// Finalize. Every node receives `on_start` at time zero.
    pub fn build(self) -> Sim {
        let mut queue = Scheduler::new(self.config.scheduler);
        for i in 0..self.nodes.len() {
            queue.push(0, Event::Start { node: NodeId(i as u32) });
        }
        let mut links = self.links;
        if !self.config.impairment.is_none() {
            for link in &mut links {
                link.impairment = self.config.impairment;
            }
        }
        Sim {
            time: 0,
            queue,
            nodes: self.nodes,
            links,
            trace: if self.config.trace { Trace::enabled() } else { Trace::disabled() },
            carrier_latency: self.config.carrier_latency,
            scratch: Vec::with_capacity(64),
            periodic_just_set: Vec::new(),
            events_processed: 0,
            frames_delivered: 0,
            // Salted far away from node ids so adding nodes never
            // perturbs the impairment stream and vice versa.
            chaos_rng: DetRng::new(self.seed, 0xC4A0_51D3_0C4A_051D),
            frames_lost_to_impairment: 0,
            frames_corrupted: 0,
        }
    }
}

/// A running simulation.
pub struct Sim {
    time: Time,
    queue: Scheduler,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
    trace: Trace,
    carrier_latency: Duration,
    scratch: Vec<Action>,
    /// Tokens the current callback armed via `set_periodic`, so the
    /// engine's automatic re-arm doesn't double-schedule a tick the
    /// protocol just re-armed itself (e.g. a cadence change).
    periodic_just_set: Vec<u64>,
    events_processed: u64,
    frames_delivered: u64,
    /// Dedicated generator for link impairments; untouched (and never
    /// advanced) while every link is clean.
    chaos_rng: DetRng,
    frames_lost_to_impairment: u64,
    frames_corrupted: u64,
}

impl Sim {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.time
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Total events dispatched so far (engine throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total frames delivered so far.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The link attached to `node`'s `port`, if any.
    pub fn link_at(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.nodes[node.index()].port_links.get(port.index()).copied()
    }

    /// The remote endpoint of `node`'s `port`.
    pub fn peer_of(&self, node: NodeId, port: PortId) -> Option<Endpoint> {
        let lid = self.link_at(node, port)?;
        Some(self.links[lid.index()].peer_of(node))
    }

    /// Number of ports on `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()].port_links.len()
    }

    /// Administrative state of `node`'s `port` (invariant checkers need
    /// the same interface view the protocols get).
    pub fn port_up(&self, node: NodeId, port: PortId) -> bool {
        self.nodes[node.index()].views[port.index()].up
    }

    /// Uniform counter/gauge access to a node's protocol, if it exposes
    /// one (routers do; traffic hosts don't). See
    /// [`crate::node::StatsSnapshot`].
    pub fn stats_snapshot_of(&self, node: NodeId) -> Option<&dyn crate::node::StatsSnapshot> {
        self.nodes[node.index()]
            .proto
            .as_ref()
            .and_then(|p| p.stats_snapshot())
    }

    /// Downcast a node's protocol for inspection.
    pub fn node_as<T: Any>(&self, node: NodeId) -> Option<&T> {
        self.nodes[node.index()]
            .proto
            .as_ref()
            .and_then(|p| p.as_any().downcast_ref::<T>())
    }

    /// Downcast a node's protocol mutably.
    pub fn node_as_mut<T: Any>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes[node.index()]
            .proto
            .as_mut()
            .and_then(|p| p.as_any_mut().downcast_mut::<T>())
    }

    /// Schedule an interface failure (the paper's failure-injection bash
    /// script). The owning node gets a carrier-down callback after the
    /// configured carrier latency; the remote node gets nothing.
    ///
    /// No-op transitions are deduplicated: scheduling down on a port
    /// whose latest scheduled transition already targets down returns
    /// `false` without enqueuing anything (flap schedules would
    /// otherwise desync `views[port].up` from the carrier events).
    /// Transitions must be scheduled in chronological order for the
    /// guard to match execution order.
    pub fn schedule_port_down(&mut self, at: Time, node: NodeId, port: PortId) -> bool {
        self.schedule_admin(at, node, port, false)
    }

    /// Schedule an interface recovery. Deduplicated like
    /// [`Sim::schedule_port_down`].
    pub fn schedule_port_up(&mut self, at: Time, node: NodeId, port: PortId) -> bool {
        self.schedule_admin(at, node, port, true)
    }

    fn schedule_admin(&mut self, at: Time, node: NodeId, port: PortId, up: bool) -> bool {
        assert!(at >= self.time, "cannot schedule in the past");
        let target = &mut self.nodes[node.index()].admin_target[port.index()];
        if *target == up {
            return false; // already heading to that state: drop the duplicate
        }
        *target = up;
        let event = if up {
            Event::AdminPortUp { node, port }
        } else {
            Event::AdminPortDown { node, port }
        };
        self.queue.push(at, event);
        true
    }

    /// Replace the impairment on one link.
    pub fn set_impairment(&mut self, link: LinkId, imp: Impairment) {
        self.links[link.index()].impairment = imp;
    }

    /// Replace the impairment on every link (e.g. to end a chaos window).
    pub fn set_impairment_all(&mut self, imp: Impairment) {
        for link in &mut self.links {
            link.impairment = imp;
        }
    }

    /// Frames silently dropped by link-impairment loss so far.
    pub fn frames_lost_to_impairment(&self) -> u64 {
        self.frames_lost_to_impairment
    }

    /// Frames with a byte corrupted in flight so far.
    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted
    }

    /// Run until simulated time reaches `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: Time) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let s = self.queue.pop().expect("peeked");
            self.time = s.time;
            self.dispatch(s.event);
        }
        self.time = self.time.max(t);
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.time + d);
    }

    fn dispatch(&mut self, event: Event) {
        self.events_processed += 1;
        match event {
            Event::Start { node } => {
                self.with_proto(node, |proto, ctx| proto.on_start(ctx));
            }
            Event::Timer { node, token } => {
                self.with_proto(node, |proto, ctx| proto.on_timer(ctx, token));
                // Engine-managed re-arm of periodic ticks: pushed after the
                // callback's own actions (exactly where a protocol's
                // trailing `set_timer` re-arm used to sit), and suppressed
                // when the callback itself re-armed the token.
                if !self.periodic_just_set.contains(&token) {
                    let every = self.nodes[node.index()]
                        .periodic
                        .iter()
                        .find(|(t, _)| *t == token)
                        .map(|(_, every)| *every);
                    if let Some(every) = every {
                        self.queue.push(self.time + every, Event::Timer { node, token });
                    }
                }
            }
            Event::Deliver { node, port, frame, meta } => {
                // Receiver interface must still be up.
                if self.nodes[node.index()].views[port.index()].up {
                    self.frames_delivered += 1;
                    self.with_proto(node, |proto, ctx| {
                        proto.on_frame_meta(ctx, port, &frame, meta)
                    });
                }
            }
            Event::AdminPortDown { node, port } => {
                self.set_iface(node, port, false);
                self.trace.push(TraceEvent::PortDown { time: self.time, node, port });
                let t = self.time + self.carrier_latency;
                self.queue.push(t, Event::Carrier { node, port, up: false });
            }
            Event::AdminPortUp { node, port } => {
                self.set_iface(node, port, true);
                self.trace.push(TraceEvent::PortUp { time: self.time, node, port });
                let t = self.time + self.carrier_latency;
                self.queue.push(t, Event::Carrier { node, port, up: true });
            }
            Event::Carrier { node, port, up } => {
                self.with_proto(node, |proto, ctx| {
                    if up {
                        proto.on_port_up(ctx, port);
                    } else {
                        proto.on_port_down(ctx, port);
                    }
                });
            }
        }
    }

    fn set_iface(&mut self, node: NodeId, port: PortId, up: bool) {
        let slot = &mut self.nodes[node.index()];
        slot.views[port.index()].up = up;
        if port.index() < 128 {
            if up {
                slot.up_mask |= 1 << port.index();
            } else {
                slot.up_mask &= !(1 << port.index());
            }
        }
        let lid = slot.port_links[port.index()];
        let link = &mut self.links[lid.index()];
        if link.a.node == node && link.a.port == port {
            link.a_up = up;
        } else {
            link.b_up = up;
        }
    }

    /// Run a protocol callback with a [`Ctx`], then apply its actions.
    fn with_proto<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Protocol>, &mut Ctx<'_>),
    {
        let mut proto = match self.nodes[node.index()].proto.take() {
            Some(p) => p,
            None => return, // node is being inspected externally; drop event
        };
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let slot = &mut self.nodes[node.index()];
            let mut ctx = Ctx {
                now: self.time,
                node,
                ports: &slot.views,
                up_mask: slot.up_mask,
                out: &mut actions,
                rng: &mut slot.rng,
            };
            // Carrier tokens are engine-internal timers translated into the
            // dedicated callbacks here.
            f(&mut proto, &mut ctx);
        }
        self.nodes[node.index()].proto = Some(proto);
        self.apply_actions(node, &mut actions);
        actions.clear();
        self.scratch = actions;
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        // Actions can cascade only through the queue, never recursively.
        self.periodic_just_set.clear();
        for action in actions.drain(..) {
            match action {
                Action::Send { port, frame, class, meta } => {
                    self.transmit(node, port, frame, class, meta)
                }
                Action::Timer { delay, token } => {
                    self.queue.push(self.time + delay, Event::Timer { node, token });
                }
                Action::Periodic { first, every, token } => {
                    let slot = &mut self.nodes[node.index()];
                    match slot.periodic.iter_mut().find(|(t, _)| *t == token) {
                        Some(entry) => entry.1 = every,
                        None => slot.periodic.push((token, every)),
                    }
                    self.periodic_just_set.push(token);
                    self.queue.push(self.time + first, Event::Timer { node, token });
                }
                Action::Trace(ev) => self.trace.push(ev),
            }
        }
    }

    fn transmit(
        &mut self,
        node: NodeId,
        port: PortId,
        mut frame: FrameBuf,
        class: crate::trace::FrameClass,
        mut meta: Option<dcn_wire::FrameMeta>,
    ) {
        let slot = &self.nodes[node.index()];
        let Some(&lid) = slot.port_links.get(port.index()) else {
            return; // unconnected port: nothing to do
        };
        if !slot.views[port.index()].up {
            return; // kernel refuses to transmit on a downed interface
        }
        let capture_len = frame.len() as u32;
        let wire_len = capture_len.max(MIN_WIRE_LEN);
        self.trace.push(TraceEvent::FrameSent {
            time: self.time,
            node,
            port,
            wire_len,
            capture_len,
            class,
        });
        let link = &mut self.links[lid.index()];
        let dir = link.dir_from(node);
        let start = self.time.max(link.tx_free[dir]);
        let end = start + link.spec.serialization(wire_len);
        link.tx_free[dir] = end;
        if !link.carries() {
            return; // transmitted into a dead link: frame lost
        }
        let peer = link.peer_of(node);
        let mut arrive = end + link.spec.propagation;
        let imp = link.impairment;
        if !imp.is_none() {
            // Draw in a fixed order (loss, corruption, jitter) so the
            // chaos stream is reproducible per seed. Each knob draws
            // only when enabled, keeping partial configs independent.
            if imp.loss_ppm > 0 && self.chaos_rng.below(1_000_000) < imp.loss_ppm as u64 {
                self.frames_lost_to_impairment += 1;
                return;
            }
            if imp.corrupt_ppm > 0
                && self.chaos_rng.below(1_000_000) < imp.corrupt_ppm as u64
                && !frame.is_empty()
            {
                let idx = self.chaos_rng.below(frame.len() as u64) as usize;
                // XOR with a nonzero byte guarantees a real change; the
                // copy-on-write keeps sharers of the buffer (retransmit
                // queues, frame caches) unaffected by in-flight damage.
                frame = frame.with_corrupted_byte(idx, 1 + self.chaos_rng.below(255) as u8);
                // The metadata described the original bytes; after
                // corruption it would lie, so the receiver must re-parse.
                meta = None;
                self.frames_corrupted += 1;
            }
            if imp.jitter > 0 {
                arrive += self.chaos_rng.below(imp.jitter + 1);
            }
        }
        self.queue
            .push(arrive, Event::Deliver { node: peer.node, port: peer.port, frame, meta });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FrameClass;
    use std::any::Any;

    /// A test protocol that echoes every received frame back out the same
    /// port and counts what it sees.
    struct Echo {
        received: Vec<(Time, PortId, Vec<u8>)>,
        timers: Vec<(Time, u64)>,
        downs: Vec<(Time, PortId)>,
        ups: Vec<(Time, PortId)>,
        send_on_start: Option<(PortId, Vec<u8>)>,
        periodic: Option<Duration>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
                downs: Vec::new(),
                ups: Vec::new(),
                send_on_start: None,
                periodic: None,
            }
        }
    }

    impl Protocol for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some((port, frame)) = self.send_on_start.take() {
                ctx.send(port, frame, FrameClass::Data);
            }
            if let Some(p) = self.periodic {
                ctx.set_timer(p, 1);
            }
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf) {
            self.received.push((ctx.now(), port, frame.to_vec()));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
            if let Some(p) = self.periodic {
                ctx.set_timer(p, token + 1);
            }
        }
        fn on_port_down(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
            self.downs.push((ctx.now(), port));
        }
        fn on_port_up(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
            self.ups.push((ctx.now(), port));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_nodes() -> (Sim, NodeId, NodeId) {
        let mut b =
            SimBuilder::with_config(1, SimConfig { carrier_latency: 1000, ..SimConfig::default() });
        let a = b.add_node("a", Box::new(Echo::new()));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 1000, bandwidth_bps: 1_000_000_000 });
        (b.build(), a, c)
    }

    #[test]
    fn frame_crosses_link_with_delay() {
        let mut b = SimBuilder::new(1);
        let mut ea = Echo::new();
        ea.send_on_start = Some((PortId(0), vec![0xAB; 100]));
        let a = b.add_node("a", Box::new(ea));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 1000, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.run_until(1_000_000);
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        assert_eq!(rx.len(), 1);
        // 100 bytes at 1 Gb/s = 800 ns serialization + 1000 ns propagation.
        assert_eq!(rx[0].0, 1800);
        assert_eq!(rx[0].2.len(), 100);
        assert_eq!(sim.frames_delivered(), 1);
    }

    #[test]
    fn short_frames_are_padded_to_min_wire_len() {
        let mut b = SimBuilder::new(1);
        let mut ea = Echo::new();
        ea.send_on_start = Some((PortId(0), vec![1u8; 15]));
        let a = b.add_node("a", Box::new(ea));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 0, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.run_until(1_000_000);
        // Serialization reflects padding (60 B = 480 ns), payload doesn't.
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        assert_eq!(rx[0].0, 480);
        assert_eq!(rx[0].2.len(), 15);
        let sent: Vec<u32> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FrameSent { wire_len, .. } => Some(*wire_len),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![60]);
    }

    #[test]
    fn failure_notifies_owner_only_and_drops_frames() {
        let (mut sim, a, c) = two_nodes();
        sim.schedule_port_down(10_000, a, PortId(0));
        sim.run_until(20_000);
        let ea = sim.node_as::<Echo>(a).unwrap();
        assert_eq!(ea.downs, vec![(11_000, PortId(0))]); // carrier latency 1000
        let eb = sim.node_as::<Echo>(c).unwrap();
        assert!(eb.downs.is_empty(), "remote side must not get carrier events");
    }

    #[test]
    fn frames_into_dead_link_are_traced_but_lost() {
        let (mut sim, a, c) = two_nodes();
        sim.schedule_port_down(10_000, c, PortId(0));
        sim.run_until(15_000);
        // a transmits toward b's dead interface.
        {
            let ea = sim.node_as_mut::<Echo>(a).unwrap();
            ea.send_on_start = Some((PortId(0), vec![7; 80]));
        }
        // Re-start is not available; drive a send via a manual deliver:
        // instead use the public API — schedule another node... simplest:
        // bring the port back up and check recovery delivery works.
        sim.schedule_port_up(20_000, c, PortId(0));
        sim.run_until(30_000);
        let eb = sim.node_as::<Echo>(c).unwrap();
        assert_eq!(eb.ups, vec![(21_000, PortId(0))]);
    }

    #[test]
    fn timers_fire_in_order_and_reschedule() {
        let mut b = SimBuilder::new(1);
        let mut e = Echo::new();
        e.periodic = Some(5_000);
        let a = b.add_node("a", Box::new(e));
        let mut sim = b.build();
        sim.run_until(20_000);
        let timers = &sim.node_as::<Echo>(a).unwrap().timers;
        assert_eq!(
            timers,
            &vec![(5_000, 1), (10_000, 2), (15_000, 3), (20_000, 4)]
        );
        assert_eq!(sim.now(), 20_000);
    }

    #[test]
    fn engine_periodic_matches_self_rearm_cadence() {
        // A protocol arming `set_periodic(first, every, token)` sees the
        // exact fire times a self-re-arming one-shot would produce.
        struct Tick {
            fires: Vec<Time>,
        }
        impl Protocol for Tick {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_periodic(5_000, 5_000, 1);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                assert_eq!(token, 1);
                self.fires.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Tick { fires: Vec::new() }));
        let mut sim = b.build();
        sim.run_until(20_000);
        let fires = &sim.node_as::<Tick>(a).unwrap().fires;
        assert_eq!(fires, &vec![5_000, 10_000, 15_000, 20_000]);
    }

    #[test]
    fn set_periodic_inside_on_timer_replaces_cadence_without_doubling() {
        struct Retick {
            fires: Vec<Time>,
        }
        impl Protocol for Retick {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_periodic(1_000, 1_000, 7);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                self.fires.push(ctx.now());
                if self.fires.len() == 2 {
                    // Slow the tick down mid-run.
                    ctx.set_periodic(3_000, 3_000, 7);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Retick { fires: Vec::new() }));
        let mut sim = b.build();
        sim.run_until(11_000);
        let fires = &sim.node_as::<Retick>(a).unwrap().fires;
        // 1 ms cadence twice, then the re-arm takes over: no doubled fire
        // at 3 ms from the engine's automatic re-arm.
        assert_eq!(fires, &vec![1_000, 2_000, 5_000, 8_000, 11_000]);
    }

    #[test]
    fn heap_and_wheel_schedulers_produce_identical_traces() {
        let run = |kind: SchedulerKind| {
            let cfg = SimConfig { scheduler: kind, ..SimConfig::default() };
            let mut b = SimBuilder::with_config(17, cfg);
            let mut e = Echo::new();
            e.periodic = Some(3_000);
            e.send_on_start = Some((PortId(0), vec![9; 64]));
            let a = b.add_node("a", Box::new(e));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec::default());
            let mut sim = b.build();
            sim.schedule_port_down(20_000, a, PortId(0));
            sim.schedule_port_up(35_000, a, PortId(0));
            sim.run_until(80_000);
            let rendered: Vec<String> =
                sim.trace().events().iter().map(|e| format!("{e:?}")).collect();
            (sim.events_processed(), sim.frames_delivered(), rendered)
        };
        assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Wheel));
    }

    #[test]
    fn per_direction_fifo_serialization() {
        // Two frames sent back-to-back must serialize one after the other.
        struct Burst;
        impl Protocol for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(PortId(0), vec![0; 125], FrameClass::Data);
                ctx.send(PortId(0), vec![1; 125], FrameClass::Data);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Burst));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 0, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.run_until(1_000_000);
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        // 125 B at 1 Gb/s = 1 µs each: arrivals at 1 µs and 2 µs.
        assert_eq!(rx[0].0, 1_000);
        assert_eq!(rx[1].0, 2_000);
    }

    #[test]
    fn double_scheduling_same_transition_is_deduplicated() {
        let (mut sim, a, _) = two_nodes();
        assert!(sim.schedule_port_down(10_000, a, PortId(0)));
        assert!(!sim.schedule_port_down(12_000, a, PortId(0)), "down-on-down dropped");
        assert!(sim.schedule_port_up(15_000, a, PortId(0)));
        assert!(!sim.schedule_port_up(16_000, a, PortId(0)), "up-on-up dropped");
        assert!(sim.schedule_port_down(17_000, a, PortId(0)));
        assert!(sim.schedule_port_up(18_000, a, PortId(0)));
        sim.run_until(30_000);
        let ea = sim.node_as::<Echo>(a).unwrap();
        // Exactly one carrier callback per scheduled transition; the
        // duplicates produced neither events nor desynced view state.
        assert_eq!(ea.downs, vec![(11_000, PortId(0)), (18_000, PortId(0))]);
        assert_eq!(ea.ups, vec![(16_000, PortId(0)), (19_000, PortId(0))]);
        assert!(sim.nodes[a.index()].views[0].up);
    }

    #[test]
    fn impairment_loss_drops_frames() {
        // Sender on `c` emits one frame per ms; with 100% loss none
        // arrive at `a`, and every transmission is counted as lost.
        let run = |loss_ppm: u32| {
            let mut b = SimBuilder::new(9);
            let a = b.add_node("a", Box::new(Echo::new()));
            let c = b.add_node("b", Box::new(Sender));
            b.add_link(a, c, LinkSpec { propagation: 100, bandwidth_bps: 1_000_000_000 });
            let mut sim = b.build();
            sim.set_impairment_all(Impairment { loss_ppm, ..Impairment::none() });
            sim.run_until(10_500_000);
            let got = sim.node_as::<Echo>(a).unwrap().received.len() as u64;
            (got, sim.frames_lost_to_impairment())
        };
        let (clean, lost0) = run(0);
        let (none, lost_all) = run(1_000_000);
        assert_eq!(clean, 10);
        assert_eq!(lost0, 0);
        assert_eq!(none, 0);
        assert_eq!(lost_all, clean);
    }

    /// Emits a frame every millisecond.
    struct Sender;
    impl Protocol for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(1_000_000, 1);
        }
        fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            ctx.send(PortId(0), vec![0x5A; 80], FrameClass::Data);
            ctx.set_timer(1_000_000, token + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn impairment_corruption_flips_exactly_one_byte() {
        let mut b = SimBuilder::new(3);
        let mut ea = Echo::new();
        ea.send_on_start = Some((PortId(0), vec![0x77; 64]));
        let a = b.add_node("a", Box::new(ea));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec::default());
        let mut sim = b.build();
        sim.set_impairment_all(Impairment { corrupt_ppm: 1_000_000, ..Impairment::none() });
        sim.run_until(1_000_000);
        assert_eq!(sim.frames_corrupted(), 1);
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        assert_eq!(rx.len(), 1, "corruption must not drop the frame");
        let diffs = rx[0].2.iter().filter(|&&x| x != 0x77).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn impairment_jitter_delays_but_delivers() {
        let deliver_time = |jitter| {
            let mut b = SimBuilder::new(5);
            let mut ea = Echo::new();
            ea.send_on_start = Some((PortId(0), vec![1; 100]));
            let a = b.add_node("a", Box::new(ea));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec { propagation: 1000, bandwidth_bps: 1_000_000_000 });
            let mut sim = b.build();
            sim.set_impairment_all(Impairment { jitter, ..Impairment::none() });
            sim.run_until(10_000_000);
            sim.node_as::<Echo>(c).unwrap().received[0].0
        };
        let base = deliver_time(0);
        assert_eq!(base, 1800);
        let jittered = deliver_time(50_000);
        assert!(jittered >= base && jittered <= base + 50_000, "jittered: {jittered}");
    }

    #[test]
    fn clean_links_draw_nothing_from_chaos_rng() {
        // A run with the impairment machinery but all-clean links must be
        // bit-identical to the seed behavior: same trace, same deliveries.
        let run = |imp: Option<Impairment>| {
            let mut b = SimBuilder::new(11);
            let mut e = Echo::new();
            e.periodic = Some(3_000);
            e.send_on_start = Some((PortId(0), vec![9; 64]));
            let a = b.add_node("a", Box::new(e));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec::default());
            let mut sim = b.build();
            if let Some(imp) = imp {
                sim.set_impairment_all(imp);
            }
            sim.run_until(50_000);
            (sim.trace().len(), sim.frames_delivered())
        };
        assert_eq!(run(None), run(Some(Impairment::none())));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut b = SimBuilder::new(seed);
            let mut e = Echo::new();
            e.periodic = Some(3_000);
            e.send_on_start = Some((PortId(0), vec![9; 64]));
            let a = b.add_node("a", Box::new(e));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec::default());
            let mut sim = b.build();
            sim.run_until(50_000);
            sim.trace().len()
        };
        assert_eq!(run(7), run(7));
    }
}
