//! The simulation engine: node registry, wiring, event dispatch — and the
//! sharded conservative-lookahead parallel engine.
//!
//! Two engines share one dispatch core ([`Core`]):
//!
//! * **Sequential** ([`EngineKind::Sequential`], the default and the
//!   equivalence reference): one [`Core`] holding every node, popping one
//!   global `(time, key)`-ordered queue.
//! * **Sharded** ([`EngineKind::Sharded`]): the node set is partitioned
//!   across worker threads (see [`Sim::set_partition`]); each shard is a
//!   [`Core`] owning its nodes' slots and a private copy of the link
//!   table. Shards advance through bounded time windows whose width is
//!   the **conservative lookahead** — the minimum over cross-shard links
//!   of `serialization(MIN_WIRE_LEN) + propagation`, a static lower bound
//!   on how far one shard's action can reach into another shard's future
//!   (queueing and jitter only add delay). Cross-shard frame deliveries
//!   are exchanged through per-shard mailboxes at window barriers.
//!
//! Determinism is carried entirely by the content-derived
//! [`EventKey`]s: both engines dispatch events in ascending
//! `(time, key)` order, all same-time causality is intra-shard (a
//! cross-shard effect is at least one lookahead in the future), so the
//! k-way merge of per-shard streams by `(time, key)` *is* the sequential
//! order — traces, counters and RNG streams come out bit-identical.
//! DESIGN.md §9 gives the full argument.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dcn_wire::FrameBuf;

use crate::event::{Event, EventKey, Scheduled, Scheduler, SchedulerKind};
use crate::link::{Endpoint, Impairment, Link, LinkId, LinkSpec};
use crate::node::{Action, Ctx, NodeId, PortId, PortView, Protocol};
use crate::profiler::{EngineProfile, ShardProfile, WindowRecord};
use crate::rng::DetRng;
use crate::sync::{BarrierSense, SpinBarrier, SpscQueue, DEFAULT_SPIN};
use crate::time::{Duration, Time, MICROS};
use crate::trace::{Trace, TraceEvent};

/// Minimum Ethernet frame length as captured by tshark (without FCS).
/// Shorter frames are padded on the wire; the trace records the padded
/// length because that is what the paper's byte counts are based on.
pub const MIN_WIRE_LEN: u32 = 60;

/// Salt base for the per-(link, direction) impairment streams. Salted far
/// away from node ids so adding nodes never perturbs the impairment
/// streams and vice versa; stream `link * 2 + direction` is offset from
/// this base.
const CHAOS_SALT: u64 = 0xC4A0_51D3_0C4A_051D;

struct NodeSlot {
    proto: Option<Box<dyn Protocol>>,
    name: String,
    /// Link attached to each port, in wiring order.
    port_links: Vec<LinkId>,
    /// Per-port view handed to protocol callbacks.
    views: Vec<PortView>,
    /// Target admin state of each port as of the latest scheduled
    /// transition (guards flap schedules against down-on-down /
    /// up-on-up double scheduling).
    admin_target: Vec<bool>,
    /// Engine-managed periodic timers: `(token, every)`. At most a
    /// handful per node (a coalesced protocol tick), hence a flat vec.
    periodic: Vec<(u64, Duration)>,
    /// Bit `i` set ⟺ `views[i].up`, for the first 128 ports. Kept in
    /// lockstep with `views` so [`Ctx::port_up_mask`] is a load instead
    /// of a per-port scan on every forwarded packet.
    up_mask: u128,
    rng: DetRng,
    /// Next [`EventKey::counter`] for events this node's dispatches
    /// create. Advances identically in every engine because only this
    /// node's own event processing bumps it.
    key_counter: u64,
}

impl NodeSlot {
    /// A vacant stand-in for a node another shard owns. Shard cores keep
    /// full-length node vectors so ids index directly; foreign slots are
    /// never dispatched to, so they carry no protocol and no state.
    fn foreign() -> NodeSlot {
        NodeSlot {
            proto: None,
            name: String::new(),
            port_links: Vec::new(),
            views: Vec::new(),
            admin_target: Vec::new(),
            periodic: Vec::new(),
            up_mask: 0,
            rng: DetRng::new(0, 0),
            key_counter: 0,
        }
    }
}

/// Which execution engine a simulation uses. Both produce bit-identical
/// traces; `Sequential` is the reference, `Sharded` buys wall-clock
/// speed on multi-core hosts for large fabrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// One thread, one global event queue (the default).
    #[default]
    Sequential,
    /// Conservative-lookahead parallel engine with up to `workers`
    /// shards. `workers <= 1` degenerates to sequential execution. The
    /// node→shard map comes from [`Sim::set_partition`] (the topology
    /// layer provides a PoD-aligned one) or defaults to round-robin.
    Sharded { workers: usize },
}

/// Engine configuration, collapsed into one struct so experiment layers
/// pass a single value instead of threading loose builder knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Record a [`Trace`] (disable only for microbenchmarks).
    pub trace: bool,
    /// How long after an injected interface failure the owning node's
    /// protocol hears about it (netlink notification delay).
    pub carrier_latency: Duration,
    /// Impairment installed on every link at build time (individual links
    /// can still be overridden later via [`Sim::set_impairment`]).
    pub impairment: Impairment,
    /// Event-scheduler backend. Both orders are bit-identical; the wheel
    /// is the fast default, the heap the reference for equivalence tests.
    pub scheduler: SchedulerKind,
    /// Execution engine (sequential reference or sharded parallel).
    pub engine: EngineKind,
    /// Record an [`EngineProfile`] (per-shard window accounting,
    /// barrier-stall attribution, scheduler occupancy — see
    /// [`crate::profiler`]). Durations come from the host's monotonic
    /// clock only, so the simulated run — trace, counters, digests — is
    /// bit-identical with this on or off. Collect the result with
    /// [`Sim::take_profile`].
    pub profile: bool,
    /// Adaptive window batching on the sharded engine: after every round
    /// of next-event-time reports, a shard may run past the horizon right
    /// up to one lookahead beyond the *other* shards' earliest pending
    /// event (see [`window_bounds`]), fusing what would have been K
    /// barrier rounds into one. On by default; trace digests are
    /// bit-identical either way (the equivalence suite runs both), so
    /// turning it off is only useful for overhead measurements.
    pub batch_windows: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            trace: true,
            carrier_latency: 500 * MICROS,
            impairment: Impairment::none(),
            scheduler: SchedulerKind::default(),
            engine: EngineKind::default(),
            profile: false,
            batch_windows: true,
        }
    }
}

/// Builder for a [`Sim`]. Add nodes, wire them with links (ports are
/// assigned in wiring order, which is how the topology crate reproduces the
/// paper's port numbering), then `build()`.
pub struct SimBuilder {
    seed: u64,
    config: SimConfig,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
}

impl SimBuilder {
    /// A builder with the default [`SimConfig`].
    pub fn new(seed: u64) -> Self {
        SimBuilder::with_config(seed, SimConfig::default())
    }

    /// A builder with an explicit engine configuration.
    pub fn with_config(seed: u64, config: SimConfig) -> Self {
        SimBuilder {
            seed,
            config,
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Register a node running `proto`. Ports are added later by wiring.
    pub fn add_node(&mut self, name: impl Into<String>, proto: Box<dyn Protocol>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            proto: Some(proto),
            name: name.into(),
            port_links: Vec::new(),
            views: Vec::new(),
            admin_target: Vec::new(),
            periodic: Vec::new(),
            up_mask: 0,
            rng: DetRng::new(self.seed, id.0 as u64),
            key_counter: 0,
        });
        id
    }

    /// Wire `a` to `b` with a new link; appends one port to each node and
    /// returns `(link, a_port, b_port)`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, PortId, PortId) {
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        let ap = self.attach_port(a, id);
        let bp = self.attach_port(b, id);
        self.links.push(Link::new(
            spec,
            Endpoint { node: a, port: ap },
            Endpoint { node: b, port: bp },
        ));
        (id, ap, bp)
    }

    fn attach_port(&mut self, node: NodeId, link: LinkId) -> PortId {
        let slot = &mut self.nodes[node.index()];
        let p = PortId(slot.port_links.len() as u16);
        slot.port_links.push(link);
        slot.views.push(PortView { connected: true, up: true });
        if p.index() < 128 {
            slot.up_mask |= 1 << p.index();
        }
        slot.admin_target.push(true);
        p
    }

    /// Finalize. Every node receives `on_start` at time zero.
    pub fn build(self) -> Sim {
        let mut queue = Scheduler::new(self.config.scheduler);
        let mut nodes = self.nodes;
        for (i, slot) in nodes.iter_mut().enumerate() {
            // The start event takes the node's counter 0 slot.
            let key = EventKey { creator: i as u32, counter: 0 };
            queue.push(0, key, Event::Start { node: NodeId(i as u32) });
            slot.key_counter = 1;
        }
        let mut links = self.links;
        if !self.config.impairment.is_none() {
            for link in &mut links {
                link.impairment = self.config.impairment;
            }
        }
        let chaos = (0..links.len())
            .map(|li| {
                [
                    DetRng::new(self.seed, CHAOS_SALT.wrapping_add(li as u64 * 2)),
                    DetRng::new(self.seed, CHAOS_SALT.wrapping_add(li as u64 * 2 + 1)),
                ]
            })
            .collect();
        let profile = self.config.profile.then(|| Box::new(EngineProfile::new(nodes.len())));
        let prof = profile
            .as_ref()
            .map(|ep| Box::new(ShardProfile::new(0, nodes.len(), 1, ep.epoch)));
        Sim {
            core: Core {
                time: 0,
                queue,
                nodes,
                links,
                chaos,
                trace: if self.config.trace { Trace::enabled() } else { Trace::disabled() },
                groups: Vec::new(),
                record_groups: false,
                carrier_latency: self.config.carrier_latency,
                scratch: Vec::with_capacity(64),
                periodic_just_set: Vec::new(),
                events_processed: 0,
                frames_delivered: 0,
                frames_lost_to_impairment: 0,
                frames_corrupted: 0,
                shard_of: Vec::new(),
                my_shard: 0,
                outbox: Vec::new(),
                prof,
            },
            config: self.config,
            ext_counter: 0,
            partition: None,
            profile,
        }
    }
}

/// A dispatch trace-attribution record: the shard-local trace events
/// produced while dispatching the event identified by `(time, key)`.
/// The parallel merge concatenates shard trace segments in ascending
/// `(time, key)` order — the sequential dispatch order.
pub(crate) type TraceGroup = (Time, EventKey, u32);

/// The dispatch core shared by both engines: everything event processing
/// reads or writes. The sequential engine is one `Core` owning every
/// node; a shard is a `Core` owning its partition's nodes (foreign ids
/// hold vacant slots) plus a private copy of the link/chaos tables and a
/// per-destination outbox for cross-shard deliveries.
struct Core {
    time: Time,
    queue: Scheduler,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
    /// Per-(link, direction) impairment streams, index 0 = the `a` side
    /// transmits. Each stream is advanced only by the shard owning that
    /// direction's sender, so draws happen in sender dispatch order —
    /// the same relative subsequence the sequential engine draws.
    chaos: Vec<[DetRng; 2]>,
    trace: Trace,
    /// Per-dispatch trace attribution, recorded only while sharded (and
    /// tracing): what the merge needs to interleave shard traces.
    groups: Vec<TraceGroup>,
    record_groups: bool,
    carrier_latency: Duration,
    scratch: Vec<Action>,
    /// Tokens the current callback armed via `set_periodic`, so the
    /// engine's automatic re-arm doesn't double-schedule a tick the
    /// protocol just re-armed itself (e.g. a cadence change).
    periodic_just_set: Vec<u64>,
    events_processed: u64,
    frames_delivered: u64,
    frames_lost_to_impairment: u64,
    frames_corrupted: u64,
    /// Node → shard map while sharded; empty in sequential mode (all
    /// events are local).
    shard_of: Vec<u32>,
    my_shard: u32,
    /// Cross-shard events staged during the current window, one bucket
    /// per destination shard.
    outbox: Vec<Vec<(Time, EventKey, Event)>>,
    /// Runtime profile of this core, when [`SimConfig::profile`] is set:
    /// the sequential engine records into the master core's profile, a
    /// shard records into its own and [`Sim::merge_shards`] folds it
    /// back. Pure observer — dispatch never reads it.
    prof: Option<Box<ShardProfile>>,
}

impl Core {
    /// Run until simulated time reaches `t` (inclusive of events at `t`).
    fn run_sequential(&mut self, t: Time) {
        // When profiling, a sequential span is one execute-only window
        // (there are no barriers to stall on).
        let span = self.prof.as_ref().map(|_| (Instant::now(), self.events_processed, self.time));
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let s = self.queue.pop().expect("peeked");
            self.dispatch(s);
        }
        self.time = self.time.max(t);
        if let Some((t0, ev0, horizon)) = span {
            let elapsed = t0.elapsed().as_nanos() as u64;
            let events = self.events_processed - ev0;
            let prof = self.prof.as_mut().expect("profiling enabled");
            prof.wall_ns += elapsed;
            prof.record_window(WindowRecord {
                start_ns: t0.duration_since(prof.epoch).as_nanos() as u64,
                horizon,
                window_end: t.saturating_add(1),
                events,
                k: 1,
                execute_ns: elapsed,
                ..WindowRecord::default()
            });
        }
    }

    /// Mint the key for an event created while dispatching at `node`.
    #[inline]
    fn next_key(&mut self, node: NodeId) -> EventKey {
        let slot = &mut self.nodes[node.index()];
        let key = EventKey { creator: node.0, counter: slot.key_counter };
        slot.key_counter += 1;
        key
    }

    /// Enqueue locally, or stage into the outbox when the destination
    /// node lives on another shard.
    #[inline]
    fn push_event(&mut self, time: Time, key: EventKey, event: Event) {
        if !self.shard_of.is_empty() {
            if let Some(dest) = event.node() {
                let shard = self.shard_of[dest.index()];
                if shard != self.my_shard {
                    if let Some(prof) = &mut self.prof {
                        // The cross-shard frame matrix: a plain counter
                        // bump into a pre-sized vector (zero-alloc safe).
                        prof.frames_to[shard as usize] += 1;
                    }
                    self.outbox[shard as usize].push((time, key, event));
                    return;
                }
            }
        }
        self.queue.push(time, key, event);
    }

    fn dispatch(&mut self, s: Scheduled) {
        self.time = s.time;
        let Scheduled { time, key, event } = s;
        if let Event::MirrorIface { link, side_a, up } = event {
            // Silent bookkeeping injected by the sharded setup: keep this
            // shard's copy of a remote interface flag honest so the
            // sender-side `carries()` check matches the sequential run.
            // Not counted, not traced — parallel counters must equal
            // sequential ones.
            let l = &mut self.links[link.index()];
            if side_a {
                l.a_up = up;
            } else {
                l.b_up = up;
            }
            return;
        }
        debug_assert!(
            self.shard_of.is_empty()
                || event.node().is_none_or(|n| self.shard_of[n.index()] == self.my_shard),
            "event routed to a shard that does not own its node"
        );
        let trace_before = self.trace.len();
        self.events_processed += 1;
        if let Some(prof) = &mut self.prof {
            // Hot-node attribution: every non-mirror event has a node.
            // A counter bump into a pre-sized vector (zero-alloc safe).
            if let Some(n) = event.node() {
                prof.node_events[n.index()] += 1;
            }
        }
        match event {
            Event::Start { node } => {
                self.with_proto(node, |proto, ctx| proto.on_start(ctx));
            }
            Event::Timer { node, token } => {
                self.with_proto(node, |proto, ctx| proto.on_timer(ctx, token));
                // Engine-managed re-arm of periodic ticks: pushed after the
                // callback's own actions (exactly where a protocol's
                // trailing `set_timer` re-arm used to sit), and suppressed
                // when the callback itself re-armed the token.
                if !self.periodic_just_set.contains(&token) {
                    let every = self.nodes[node.index()]
                        .periodic
                        .iter()
                        .find(|(t, _)| *t == token)
                        .map(|(_, every)| *every);
                    if let Some(every) = every {
                        let k = self.next_key(node);
                        self.push_event(self.time + every, k, Event::Timer { node, token });
                    }
                }
            }
            Event::Deliver { node, port, frame, meta } => {
                // Receiver interface must still be up.
                if self.nodes[node.index()].views[port.index()].up {
                    self.frames_delivered += 1;
                    self.with_proto(node, |proto, ctx| {
                        proto.on_frame_meta(ctx, port, &frame, meta)
                    });
                }
            }
            Event::AdminPortDown { node, port } => {
                self.set_iface(node, port, false);
                self.trace.push(TraceEvent::PortDown { time: self.time, node, port });
                let t = self.time + self.carrier_latency;
                let k = self.next_key(node);
                self.push_event(t, k, Event::Carrier { node, port, up: false });
            }
            Event::AdminPortUp { node, port } => {
                self.set_iface(node, port, true);
                self.trace.push(TraceEvent::PortUp { time: self.time, node, port });
                let t = self.time + self.carrier_latency;
                let k = self.next_key(node);
                self.push_event(t, k, Event::Carrier { node, port, up: true });
            }
            Event::Carrier { node, port, up } => {
                self.with_proto(node, |proto, ctx| {
                    if up {
                        proto.on_port_up(ctx, port);
                    } else {
                        proto.on_port_down(ctx, port);
                    }
                });
            }
            Event::MirrorIface { .. } => unreachable!("handled above"),
        }
        if self.record_groups {
            let produced = (self.trace.len() - trace_before) as u32;
            if produced > 0 {
                self.groups.push((time, key, produced));
            }
        }
    }

    fn set_iface(&mut self, node: NodeId, port: PortId, up: bool) {
        let slot = &mut self.nodes[node.index()];
        slot.views[port.index()].up = up;
        if port.index() < 128 {
            if up {
                slot.up_mask |= 1 << port.index();
            } else {
                slot.up_mask &= !(1 << port.index());
            }
        }
        let lid = slot.port_links[port.index()];
        let link = &mut self.links[lid.index()];
        if link.a.node == node && link.a.port == port {
            link.a_up = up;
        } else {
            link.b_up = up;
        }
    }

    /// Run a protocol callback with a [`Ctx`], then apply its actions.
    fn with_proto<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Protocol>, &mut Ctx<'_>),
    {
        let mut proto = match self.nodes[node.index()].proto.take() {
            Some(p) => p,
            None => return, // node is being inspected externally; drop event
        };
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let slot = &mut self.nodes[node.index()];
            let mut ctx = Ctx {
                now: self.time,
                node,
                ports: &slot.views,
                up_mask: slot.up_mask,
                out: &mut actions,
                rng: &mut slot.rng,
            };
            // Carrier tokens are engine-internal timers translated into the
            // dedicated callbacks here.
            f(&mut proto, &mut ctx);
        }
        self.nodes[node.index()].proto = Some(proto);
        self.apply_actions(node, &mut actions);
        actions.clear();
        self.scratch = actions;
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        // Actions can cascade only through the queue, never recursively.
        self.periodic_just_set.clear();
        for action in actions.drain(..) {
            match action {
                Action::Send { port, frame, class, meta } => {
                    self.transmit(node, port, frame, class, meta)
                }
                Action::Timer { delay, token } => {
                    let k = self.next_key(node);
                    self.push_event(self.time + delay, k, Event::Timer { node, token });
                }
                Action::Periodic { first, every, token } => {
                    let slot = &mut self.nodes[node.index()];
                    match slot.periodic.iter_mut().find(|(t, _)| *t == token) {
                        Some(entry) => entry.1 = every,
                        None => slot.periodic.push((token, every)),
                    }
                    self.periodic_just_set.push(token);
                    let k = self.next_key(node);
                    self.push_event(self.time + first, k, Event::Timer { node, token });
                }
                Action::Trace(ev) => self.trace.push(ev),
            }
        }
    }

    fn transmit(
        &mut self,
        node: NodeId,
        port: PortId,
        mut frame: FrameBuf,
        class: crate::trace::FrameClass,
        mut meta: Option<dcn_wire::FrameMeta>,
    ) {
        let slot = &self.nodes[node.index()];
        let Some(&lid) = slot.port_links.get(port.index()) else {
            return; // unconnected port: nothing to do
        };
        if !slot.views[port.index()].up {
            return; // kernel refuses to transmit on a downed interface
        }
        let capture_len = frame.len() as u32;
        let wire_len = capture_len.max(MIN_WIRE_LEN);
        self.trace.push(TraceEvent::FrameSent {
            time: self.time,
            node,
            port,
            wire_len,
            capture_len,
            class,
        });
        let link = &mut self.links[lid.index()];
        let dir = link.dir_from(node);
        let start = self.time.max(link.tx_free[dir]);
        let end = start + link.spec.serialization(wire_len);
        link.tx_free[dir] = end;
        if !link.carries() {
            return; // transmitted into a dead link: frame lost
        }
        let peer = link.peer_of(node);
        let mut arrive = end + link.spec.propagation;
        let imp = link.impairment;
        if !imp.is_none() {
            // Draw in a fixed order (loss, corruption, jitter) so the
            // chaos stream is reproducible per seed. Each knob draws
            // only when enabled, keeping partial configs independent.
            // The stream belongs to this (link, direction) pair, so the
            // draw order depends only on this sender's dispatch order —
            // identical in every engine.
            let rng = &mut self.chaos[lid.index()][dir];
            if imp.loss_ppm > 0 && rng.below(1_000_000) < imp.loss_ppm as u64 {
                self.frames_lost_to_impairment += 1;
                return;
            }
            if imp.corrupt_ppm > 0
                && rng.below(1_000_000) < imp.corrupt_ppm as u64
                && !frame.is_empty()
            {
                let idx = rng.below(frame.len() as u64) as usize;
                // XOR with a nonzero byte guarantees a real change; the
                // copy-on-write keeps sharers of the buffer (retransmit
                // queues, frame caches) unaffected by in-flight damage.
                let flip = 1 + rng.below(255) as u8;
                frame = frame.with_corrupted_byte(idx, flip);
                // The metadata described the original bytes; after
                // corruption it would lie, so the receiver must re-parse.
                meta = None;
                self.frames_corrupted += 1;
            }
            if imp.jitter > 0 {
                arrive += rng.below(imp.jitter + 1);
            }
        }
        let key = self.next_key(node);
        self.push_event(arrive, key, Event::Deliver { node: peer.node, port: peer.port, frame, meta });
    }
}

/// The node→shard map plus what the engine derives from it once.
struct PartitionPlan {
    shard_of: Vec<u32>,
    shards: usize,
    /// Minimum cross-shard reaction delay (`Time::MAX` when no link
    /// crosses shards — shards are then fully independent).
    lookahead: Duration,
}

/// A running simulation.
pub struct Sim {
    core: Core,
    config: SimConfig,
    /// Counter for externally injected events ([`EventKey::EXTERNAL`]
    /// creator). Injection only happens between `run_until` calls, so
    /// this sequence — and therefore the keys — is engine-independent.
    ext_counter: u64,
    partition: Option<PartitionPlan>,
    /// Runtime profile accumulated across spans, when
    /// [`SimConfig::profile`] is set. Sequential execution records into
    /// the master core and is folded in by [`Sim::take_profile`].
    profile: Option<Box<EngineProfile>>,
}

impl Sim {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.time
    }

    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }

    pub fn link_count(&self) -> usize {
        self.core.links.len()
    }

    pub fn node_name(&self, node: NodeId) -> &str {
        &self.core.nodes[node.index()].name
    }

    /// Total events dispatched so far (engine throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Total frames delivered so far.
    pub fn frames_delivered(&self) -> u64 {
        self.core.frames_delivered
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.core.trace
    }

    /// The link attached to `node`'s `port`, if any.
    pub fn link_at(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.core.nodes[node.index()].port_links.get(port.index()).copied()
    }

    /// The remote endpoint of `node`'s `port`.
    pub fn peer_of(&self, node: NodeId, port: PortId) -> Option<Endpoint> {
        let lid = self.link_at(node, port)?;
        Some(self.core.links[lid.index()].peer_of(node))
    }

    /// Both endpoints of a link, `a` side first.
    pub fn link_ends(&self, link: LinkId) -> (Endpoint, Endpoint) {
        let l = &self.core.links[link.index()];
        (l.a, l.b)
    }

    /// Physical characteristics of a link.
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.core.links[link.index()].spec
    }

    /// Number of ports on `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.core.nodes[node.index()].port_links.len()
    }

    /// Administrative state of `node`'s `port` (invariant checkers need
    /// the same interface view the protocols get).
    pub fn port_up(&self, node: NodeId, port: PortId) -> bool {
        self.core.nodes[node.index()].views[port.index()].up
    }

    /// Uniform counter/gauge access to a node's protocol, if it exposes
    /// one (routers do; traffic hosts don't). See
    /// [`crate::node::StatsSnapshot`].
    pub fn stats_snapshot_of(&self, node: NodeId) -> Option<&dyn crate::node::StatsSnapshot> {
        self.core.nodes[node.index()]
            .proto
            .as_ref()
            .and_then(|p| p.stats_snapshot())
    }

    /// Downcast a node's protocol for inspection.
    pub fn node_as<T: Any>(&self, node: NodeId) -> Option<&T> {
        self.core.nodes[node.index()]
            .proto
            .as_ref()
            .and_then(|p| p.as_any().downcast_ref::<T>())
    }

    /// Downcast a node's protocol mutably.
    pub fn node_as_mut<T: Any>(&mut self, node: NodeId) -> Option<&mut T> {
        self.core.nodes[node.index()]
            .proto
            .as_mut()
            .and_then(|p| p.as_any_mut().downcast_mut::<T>())
    }

    /// Install the node→shard map the sharded engine partitions by.
    /// Shard ids must be dense from 0; the shard count is
    /// `max(shard_of) + 1` (capped nowhere — the topology layer sizes the
    /// map to the requested worker count). Also precomputes the
    /// conservative lookahead from the static link graph. A no-op for
    /// sequential runs.
    pub fn set_partition(&mut self, shard_of: Vec<u32>) {
        assert_eq!(
            shard_of.len(),
            self.core.nodes.len(),
            "partition must assign every node exactly one shard"
        );
        let shards = shard_of.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let lookahead = lookahead_of(&self.core.links, &shard_of);
        self.partition = Some(PartitionPlan { shard_of, shards, lookahead });
    }

    /// The installed node→shard map, if any.
    pub fn partition(&self) -> Option<&[u32]> {
        self.partition.as_ref().map(|p| p.shard_of.as_slice())
    }

    /// The conservative lookahead derived from the installed partition:
    /// minimum over cross-shard links of
    /// `serialization(MIN_WIRE_LEN) + propagation` (`Time::MAX` when no
    /// link crosses shards).
    pub fn lookahead(&self) -> Option<Duration> {
        self.partition.as_ref().map(|p| p.lookahead)
    }

    /// The configured execution engine.
    pub fn engine_kind(&self) -> EngineKind {
        self.config.engine
    }

    /// Whether the engine is recording a runtime profile.
    pub fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// Consume the runtime profile accumulated so far (sequential
    /// execution folds into shard 0, including the master queue's
    /// occupancy stats). `None` unless [`SimConfig::profile`] was set;
    /// profiling stops once taken.
    pub fn take_profile(&mut self) -> Option<EngineProfile> {
        let mut ep = *self.profile.take()?;
        if let Some(mut master) = self.core.prof.take() {
            master.sched.absorb(self.core.queue.stats());
            ep.absorb_shard(*master);
        }
        Some(ep)
    }

    /// Schedule an interface failure (the paper's failure-injection bash
    /// script). The owning node gets a carrier-down callback after the
    /// configured carrier latency; the remote node gets nothing.
    ///
    /// No-op transitions are deduplicated: scheduling down on a port
    /// whose latest scheduled transition already targets down returns
    /// `false` without enqueuing anything (flap schedules would
    /// otherwise desync `views[port].up` from the carrier events).
    /// Transitions must be scheduled in chronological order for the
    /// guard to match execution order.
    pub fn schedule_port_down(&mut self, at: Time, node: NodeId, port: PortId) -> bool {
        self.schedule_admin(at, node, port, false)
    }

    /// Schedule an interface recovery. Deduplicated like
    /// [`Sim::schedule_port_down`].
    pub fn schedule_port_up(&mut self, at: Time, node: NodeId, port: PortId) -> bool {
        self.schedule_admin(at, node, port, true)
    }

    fn schedule_admin(&mut self, at: Time, node: NodeId, port: PortId, up: bool) -> bool {
        assert!(at >= self.core.time, "cannot schedule in the past");
        let target = &mut self.core.nodes[node.index()].admin_target[port.index()];
        if *target == up {
            return false; // already heading to that state: drop the duplicate
        }
        *target = up;
        let key = EventKey { creator: EventKey::EXTERNAL, counter: self.ext_counter };
        self.ext_counter += 1;
        let event = if up {
            Event::AdminPortUp { node, port }
        } else {
            Event::AdminPortDown { node, port }
        };
        self.core.queue.push(at, key, event);
        true
    }

    /// Replace the impairment on one link.
    pub fn set_impairment(&mut self, link: LinkId, imp: Impairment) {
        self.core.links[link.index()].impairment = imp;
    }

    /// Replace the impairment on every link (e.g. to end a chaos window).
    pub fn set_impairment_all(&mut self, imp: Impairment) {
        for link in &mut self.core.links {
            link.impairment = imp;
        }
    }

    /// Frames silently dropped by link-impairment loss so far.
    pub fn frames_lost_to_impairment(&self) -> u64 {
        self.core.frames_lost_to_impairment
    }

    /// Frames with a byte corrupted in flight so far.
    pub fn frames_corrupted(&self) -> u64 {
        self.core.frames_corrupted
    }

    /// Run until simulated time reaches `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: Time) {
        let workers = match self.config.engine {
            EngineKind::Sharded { workers } => workers,
            EngineKind::Sequential => 1,
        };
        if workers > 1 && self.core.nodes.len() > 1 {
            self.run_until_sharded(t);
        } else {
            self.core.run_sequential(t);
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.core.time + d);
    }

    /// The parallel span: dismantle the master state into shard cores,
    /// advance them through lookahead-bounded windows on scoped worker
    /// threads, then merge everything back so the master is again the
    /// single source of truth (stats accessors, telemetry, further
    /// scheduling all work between spans exactly as in sequential mode).
    fn run_until_sharded(&mut self, target: Time) {
        if self.partition.is_none() {
            let workers = match self.config.engine {
                EngineKind::Sharded { workers } => workers,
                EngineKind::Sequential => unreachable!("sharded path requires Sharded engine"),
            };
            let n = self.core.nodes.len();
            self.set_partition((0..n).map(|i| (i % workers) as u32).collect());
        }
        let (shards, lookahead) = {
            let p = self.partition.as_ref().expect("just installed");
            (p.shards, p.lookahead)
        };
        if shards <= 1 || lookahead == 0 {
            // One shard, or a graph so fast the lookahead vanished:
            // windows would be empty, so run the reference engine.
            return self.core.run_sequential(target);
        }
        if self.core.queue.peek_time().is_none_or(|t| t > target) {
            self.core.time = self.core.time.max(target);
            return;
        }
        let shard_of = self.partition.as_ref().expect("installed").shard_of.clone();
        let trace_enabled = self.core.trace.is_enabled();
        if let Some(ep) = self.profile.as_mut() {
            ep.lookahead = Some(lookahead);
            ep.spans += 1;
        }

        let mut cores = self.build_shards(&shard_of, shards, trace_enabled);
        run_windows(&mut cores, target, lookahead, self.config.batch_windows);
        self.merge_shards(cores, &shard_of, trace_enabled);
        self.core.time = target;
    }

    /// Split the master core into per-shard cores: nodes by partition,
    /// private link/chaos copies, pending events routed to their owner —
    /// with admin transitions additionally fanned out as silent
    /// [`Event::MirrorIface`] copies (same `(time, key)`!) so every
    /// shard's link flags flip at the instant the owning shard applies
    /// the transition.
    fn build_shards(&mut self, shard_of: &[u32], shards: usize, trace_enabled: bool) -> Vec<Core> {
        let kind = self.config.scheduler;
        let mut queues: Vec<Scheduler> = (0..shards).map(|_| Scheduler::new(kind)).collect();
        while let Some(s) = self.core.queue.pop() {
            let Some(node) = s.event.node() else {
                continue; // master never holds mirrors; drop defensively
            };
            let home = shard_of[node.index()] as usize;
            match s.event {
                Event::AdminPortDown { node, port } | Event::AdminPortUp { node, port } => {
                    let up = matches!(s.event, Event::AdminPortUp { .. });
                    let lid = self.core.nodes[node.index()].port_links[port.index()];
                    let l = &self.core.links[lid.index()];
                    let side_a = l.a.node == node && l.a.port == port;
                    for (sh, q) in queues.iter_mut().enumerate() {
                        if sh != home {
                            q.push(s.time, s.key, Event::MirrorIface { link: lid, side_a, up });
                        }
                    }
                }
                _ => {}
            }
            queues[home].push(s.time, s.key, s.event);
        }
        let n_nodes = self.core.nodes.len();
        let mut shard_nodes: Vec<Vec<NodeSlot>> =
            (0..shards).map(|_| Vec::with_capacity(n_nodes)).collect();
        for (i, slot) in std::mem::take(&mut self.core.nodes).into_iter().enumerate() {
            let home = shard_of[i] as usize;
            for (sh, nodes) in shard_nodes.iter_mut().enumerate() {
                if sh != home {
                    nodes.push(NodeSlot::foreign());
                }
            }
            shard_nodes[home].push(slot);
        }
        queues
            .into_iter()
            .zip(shard_nodes)
            .enumerate()
            .map(|(sh, (queue, nodes))| Core {
                time: self.core.time,
                queue,
                nodes,
                links: self.core.links.clone(),
                chaos: self.core.chaos.clone(),
                trace: if trace_enabled { Trace::enabled() } else { Trace::disabled() },
                groups: Vec::new(),
                record_groups: trace_enabled,
                carrier_latency: self.core.carrier_latency,
                scratch: Vec::with_capacity(64),
                periodic_just_set: Vec::new(),
                events_processed: 0,
                frames_delivered: 0,
                frames_lost_to_impairment: 0,
                frames_corrupted: 0,
                shard_of: shard_of.to_vec(),
                my_shard: sh as u32,
                outbox: (0..shards).map(|_| Vec::new()).collect(),
                prof: self
                    .profile
                    .as_ref()
                    .map(|ep| Box::new(ShardProfile::new(sh as u32, n_nodes, shards, ep.epoch))),
            })
            .collect()
    }

    /// Reassemble the master core from finished shards. Every direction
    /// of every link (tx FIFO, up flag, chaos stream) is authoritative in
    /// the shard owning that direction's transmitting node; node slots
    /// return by id; counters sum; surviving future events return to the
    /// master queue (mirrors are dropped — they are regenerated per
    /// span); shard traces interleave by their dispatch `(time, key)`
    /// attribution, which is the sequential dispatch order.
    fn merge_shards(&mut self, mut cores: Vec<Core>, shard_of: &[u32], trace_enabled: bool) {
        for core in &cores {
            self.core.events_processed += core.events_processed;
            self.core.frames_delivered += core.frames_delivered;
            self.core.frames_lost_to_impairment += core.frames_lost_to_impairment;
            self.core.frames_corrupted += core.frames_corrupted;
        }
        for core in &mut cores {
            if let Some(mut prof) = core.prof.take() {
                prof.sched.absorb(core.queue.stats());
                self.profile.as_mut().expect("shards profile only when sim does").absorb_shard(*prof);
            }
        }
        for core in &mut cores {
            debug_assert!(core.outbox.iter().all(Vec::is_empty), "undelivered cross-shard events");
            while let Some(s) = core.queue.pop() {
                if matches!(s.event, Event::MirrorIface { .. }) {
                    continue;
                }
                self.core.queue.push(s.time, s.key, s.event);
            }
        }
        for (li, link) in self.core.links.iter_mut().enumerate() {
            let sa = shard_of[link.a.node.index()] as usize;
            let sb = shard_of[link.b.node.index()] as usize;
            let (la, lb) = (&cores[sa].links[li], &cores[sb].links[li]);
            link.tx_free = [la.tx_free[0], lb.tx_free[1]];
            link.a_up = la.a_up;
            link.b_up = lb.b_up;
            self.core.chaos[li] =
                [cores[sa].chaos[li][0].clone(), cores[sb].chaos[li][1].clone()];
        }
        let n_nodes = shard_of.len();
        let mut rebuilt: Vec<NodeSlot> = Vec::with_capacity(n_nodes);
        {
            let mut drains: Vec<_> = cores.iter_mut().map(|c| c.nodes.drain(..)).collect();
            for &home in shard_of.iter().take(n_nodes) {
                for (sh, drain) in drains.iter_mut().enumerate() {
                    let slot = drain.next().expect("shard node vectors cover every id");
                    if sh == home as usize {
                        rebuilt.push(slot);
                    }
                }
            }
        }
        self.core.nodes = rebuilt;
        if trace_enabled {
            merge_traces(&mut self.core.trace, cores);
        }
    }
}

/// Minimum over cross-shard links of the earliest a transmission can
/// reach the other side: serialization of a minimum-size frame plus
/// propagation. Queueing (tx FIFO) and jitter only push arrivals later,
/// so this is a sound conservative lookahead.
fn lookahead_of(links: &[Link], shard_of: &[u32]) -> Duration {
    let mut min = Time::MAX;
    for link in links {
        if shard_of[link.a.node.index()] != shard_of[link.b.node.index()] {
            let d = link.spec.serialization(MIN_WIRE_LEN) + link.spec.propagation;
            min = min.min(d);
        }
    }
    min
}

/// The window one shard may execute after a round of next-event-time
/// reports, or `None` when the global horizon is past `target` and every
/// shard stops. Pure — every shard computes it from the same published
/// `next_times`, so the stop decision is unanimous by construction.
///
/// Unbatched (`batching == false`), the window is the PR 7 protocol
/// verbatim: `[T, T + L)` with `T = min(next_times)` and `L` the
/// conservative lookahead, identical for every shard.
///
/// Batched, shard `d` may instead run to
///
/// ```text
/// bound_d = min( min over other shards s of next_times[s],
///                next_times[d] + L ) + L
/// ```
///
/// — the earliest instant anything can *ever* reach `d` from this point
/// on. An event reaches `d` along a chain of `k >= 1` cross-shard hops
/// starting from some shard's currently pending work, and each hop adds
/// at least one lookahead: one hop from `s != d` gives
/// `next_times[s] + L`; two hops bouncing `d`'s own output off a peer
/// give `next_times[d] + 2L`; longer chains only add more `L`. The
/// minimum over all chains is exactly `bound_d`, so `d` executing right
/// up to (exclusive) that bound can never pass an in-flight event — in
/// this round or any later one. The second term is what makes the bound
/// sound across rounds: without it, a shard racing `K` lookaheads ahead
/// of an idle fleet could have its own output echo back (via a peer
/// woken next round) *inside* the span it already executed.
///
/// When `d` holds the globally earliest work and every other shard is
/// idle at least one lookahead out, the bound fuses two lookahead
/// windows into one barrier round (`K = 2` — the uniform-lookahead
/// optimum, since `d`'s own send at the horizon can bounce back at
/// `horizon + 2L`). When any other shard is close, it degenerates to
/// `T + L`: the automatic K=1 fallback.
///
/// Both bounds are clamped to `target + 1` (events *at* `target`
/// included, later ones left for the next span).
pub fn window_bounds(
    shard: usize,
    next_times: &[Time],
    lookahead: Duration,
    target: Time,
    batching: bool,
) -> Option<(Time, Time)> {
    let horizon = next_times.iter().copied().min().expect("at least one shard");
    if horizon > target {
        return None;
    }
    let base = if batching {
        let others = next_times
            .iter()
            .enumerate()
            .filter(|&(s, _)| s != shard)
            .map(|(_, &t)| t)
            .min()
            .unwrap_or(Time::MAX);
        others.min(next_times[shard].saturating_add(lookahead))
    } else {
        horizon
    };
    let end = base.saturating_add(lookahead).min(target.saturating_add(1));
    Some((horizon, end))
}

/// Advance all shards to `target` through lookahead-bounded windows.
///
/// Each round (all shards in lockstep, two [`SpinBarrier`] waits):
/// 1. **Barrier A** — every deposit from the previous window is visible;
///    each shard drains its per-sender [`SpscQueue`] channels into its
///    local queue, then publishes the time of its next pending event.
/// 2. **Barrier B** — every report is visible; each shard independently
///    computes the same global horizon `T = min(reports)`. If `T` is past
///    `target`, all stop. Otherwise each processes its local events up to
///    its [`window_bounds`] — `T + lookahead`, or with batching the
///    adaptive multiple of it — staging cross-shard deliveries in
///    outboxes, and deposits those into the destination channels before
///    looping back to barrier A.
///
/// Any event a shard creates for another shard arrives at or after the
/// receiver's window end — so deposits are always for a *future* window
/// and never reorder the present one. Deposit order across senders is
/// nondeterministic, but the receiver's queue re-sorts by `(time, key)`,
/// which is globally unique and engine-independent.
fn run_windows(cores: &mut [Core], target: Time, lookahead: Duration, batching: bool) {
    let shards = cores.len();
    // Spinning at a barrier only pays while every shard owns a core;
    // oversubscribed, a spinner just burns the timeslice the straggler
    // needs, so park immediately.
    let spin = std::thread::available_parallelism()
        .map(|p| if p.get() >= shards { DEFAULT_SPIN } else { 0 })
        .unwrap_or(0);
    let barrier = SpinBarrier::with_spin(shards, spin);
    let next_times: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    // One SPSC channel per (sender, receiver) pair, receiver-major so a
    // shard drains a contiguous row: `channels[dst * shards + src]`.
    let channels: Vec<SpscQueue<(Time, EventKey, Event)>> =
        (0..shards * shards).map(|_| SpscQueue::new()).collect();
    std::thread::scope(|scope| {
        for (sh, core) in cores.iter_mut().enumerate() {
            let barrier = &barrier;
            let next_times = &next_times;
            let channels = &channels;
            scope.spawn(move || {
                // Host-clock window profiling (see [`crate::profiler`]):
                // timestamps bracket each phase of the protocol. Taken
                // only when profiling; none of it feeds back into
                // execution.
                let profiling = core.prof.is_some();
                let span_start = profiling.then(Instant::now);
                let mut sense = BarrierSense::default();
                let mut published: Vec<Time> = vec![0; shards];
                loop {
                    let t0 = profiling.then(Instant::now);
                    // (A) prior deposits are complete; absorb mine.
                    barrier.wait(&mut sense);
                    let t1 = profiling.then(Instant::now);
                    for src in 0..shards {
                        channels[sh * shards + src].drain(|batch| {
                            for (time, key, event) in batch {
                                core.queue.push(time, key, event);
                            }
                        });
                    }
                    let next = core.queue.peek_time().unwrap_or(Time::MAX);
                    next_times[sh].store(next, Ordering::Relaxed);
                    let t2 = profiling.then(Instant::now);
                    // (B) all reports in; everyone computes the same window.
                    barrier.wait(&mut sense);
                    let t3 = profiling.then(Instant::now);
                    for (slot, t) in published.iter_mut().zip(next_times.iter()) {
                        *slot = t.load(Ordering::Relaxed);
                    }
                    let Some((horizon, window_end)) =
                        window_bounds(sh, &published, lookahead, target, batching)
                    else {
                        // The last round's barrier waits land in the
                        // span's unattributed ("other") time.
                        break;
                    };
                    let ev0 = core.events_processed;
                    while core.queue.peek_time().is_some_and(|t| t < window_end) {
                        let s = core.queue.pop().expect("peeked");
                        core.dispatch(s);
                    }
                    let t4 = profiling.then(Instant::now);
                    for dst in 0..shards {
                        if dst != sh && !core.outbox[dst].is_empty() {
                            channels[dst * shards + sh]
                                .push(std::mem::take(&mut core.outbox[dst]));
                        }
                    }
                    if let (Some(t0), Some(t1), Some(t2), Some(t3), Some(t4)) =
                        (t0, t1, t2, t3, t4)
                    {
                        let t5 = Instant::now();
                        let events = core.events_processed - ev0;
                        let prof = core.prof.as_mut().expect("profiling on");
                        prof.record_window(WindowRecord {
                            start_ns: t0.duration_since(prof.epoch).as_nanos() as u64,
                            horizon,
                            window_end,
                            events,
                            k: (window_end - horizon).div_ceil(lookahead).max(1),
                            barrier_a_ns: t1.duration_since(t0).as_nanos() as u64,
                            drain_ns: t2.duration_since(t1).as_nanos() as u64,
                            barrier_b_ns: t3.duration_since(t2).as_nanos() as u64,
                            execute_ns: t4.duration_since(t3).as_nanos() as u64,
                            deposit_ns: t5.duration_since(t4).as_nanos() as u64,
                        });
                    }
                }
                core.time = target;
                if let (Some(start), Some(prof)) = (span_start, core.prof.as_mut()) {
                    prof.wall_ns += start.elapsed().as_nanos() as u64;
                }
            });
        }
    });
}

/// Interleave finished shard traces into the master trace using the
/// per-dispatch `(time, key, count)` attribution: always take the group
/// with the smallest `(time, key)` — the order the sequential engine
/// would have dispatched in.
fn merge_traces(master: &mut Trace, cores: Vec<Core>) {
    let streams: Vec<(Vec<TraceGroup>, Vec<TraceEvent>)> = cores
        .into_iter()
        .map(|mut core| (std::mem::take(&mut core.groups), core.trace.take_events()))
        .collect();
    merge_group_streams(streams, |ev| master.push(ev));
}

/// The k-way merge under [`merge_traces`], generic so its ordering
/// contract is property-testable: each stream is a list of
/// `(time, key, count)` group markers (ascending by `(time, key)`, as a
/// shard records them) plus a flat event list the counts segment. Emit
/// the segments of the globally smallest `(time, key)` head first; exact
/// ties — impossible in real runs, where keys are globally unique — go
/// to the lowest stream index, making the merge total and stable on any
/// input.
pub(crate) fn merge_group_streams<E>(
    streams: Vec<(Vec<TraceGroup>, Vec<E>)>,
    mut emit: impl FnMut(E),
) {
    struct Stream<E> {
        groups: std::vec::IntoIter<TraceGroup>,
        events: std::vec::IntoIter<E>,
        head: Option<TraceGroup>,
    }
    let mut streams: Vec<Stream<E>> = streams
        .into_iter()
        .map(|(groups, events)| {
            let mut groups = groups.into_iter();
            let head = groups.next();
            Stream { groups, events: events.into_iter(), head }
        })
        .collect();
    loop {
        let mut best: Option<usize> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some((time, key, _)) = s.head {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (bt, bk, _) = streams[b].head.expect("best has a head");
                        (time, key) < (bt, bk)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let Some(i) = best else { break };
        let (_, _, count) = streams[i].head.expect("chosen stream has a head");
        for _ in 0..count {
            let ev = streams[i].events.next().expect("group count matches stream length");
            emit(ev);
        }
        streams[i].head = streams[i].groups.next();
    }
    for s in &mut streams {
        debug_assert!(s.events.next().is_none(), "stream events not covered by groups");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FrameClass;
    use std::any::Any;

    /// A test protocol that echoes every received frame back out the same
    /// port and counts what it sees.
    struct Echo {
        received: Vec<(Time, PortId, Vec<u8>)>,
        timers: Vec<(Time, u64)>,
        downs: Vec<(Time, PortId)>,
        ups: Vec<(Time, PortId)>,
        send_on_start: Option<(PortId, Vec<u8>)>,
        periodic: Option<Duration>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
                downs: Vec::new(),
                ups: Vec::new(),
                send_on_start: None,
                periodic: None,
            }
        }
    }

    impl Protocol for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some((port, frame)) = self.send_on_start.take() {
                ctx.send(port, frame, FrameClass::Data);
            }
            if let Some(p) = self.periodic {
                ctx.set_timer(p, 1);
            }
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf) {
            self.received.push((ctx.now(), port, frame.to_vec()));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
            if let Some(p) = self.periodic {
                ctx.set_timer(p, token + 1);
            }
        }
        fn on_port_down(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
            self.downs.push((ctx.now(), port));
        }
        fn on_port_up(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
            self.ups.push((ctx.now(), port));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_nodes() -> (Sim, NodeId, NodeId) {
        let mut b =
            SimBuilder::with_config(1, SimConfig { carrier_latency: 1000, ..SimConfig::default() });
        let a = b.add_node("a", Box::new(Echo::new()));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 1000, bandwidth_bps: 1_000_000_000 });
        (b.build(), a, c)
    }

    #[test]
    fn frame_crosses_link_with_delay() {
        let mut b = SimBuilder::new(1);
        let mut ea = Echo::new();
        ea.send_on_start = Some((PortId(0), vec![0xAB; 100]));
        let a = b.add_node("a", Box::new(ea));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 1000, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.run_until(1_000_000);
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        assert_eq!(rx.len(), 1);
        // 100 bytes at 1 Gb/s = 800 ns serialization + 1000 ns propagation.
        assert_eq!(rx[0].0, 1800);
        assert_eq!(rx[0].2.len(), 100);
        assert_eq!(sim.frames_delivered(), 1);
    }

    #[test]
    fn short_frames_are_padded_to_min_wire_len() {
        let mut b = SimBuilder::new(1);
        let mut ea = Echo::new();
        ea.send_on_start = Some((PortId(0), vec![1u8; 15]));
        let a = b.add_node("a", Box::new(ea));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 0, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.run_until(1_000_000);
        // Serialization reflects padding (60 B = 480 ns), payload doesn't.
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        assert_eq!(rx[0].0, 480);
        assert_eq!(rx[0].2.len(), 15);
        let sent: Vec<u32> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FrameSent { wire_len, .. } => Some(*wire_len),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![60]);
    }

    #[test]
    fn failure_notifies_owner_only_and_drops_frames() {
        let (mut sim, a, c) = two_nodes();
        sim.schedule_port_down(10_000, a, PortId(0));
        sim.run_until(20_000);
        let ea = sim.node_as::<Echo>(a).unwrap();
        assert_eq!(ea.downs, vec![(11_000, PortId(0))]); // carrier latency 1000
        let eb = sim.node_as::<Echo>(c).unwrap();
        assert!(eb.downs.is_empty(), "remote side must not get carrier events");
    }

    #[test]
    fn frames_into_dead_link_are_traced_but_lost() {
        let (mut sim, a, c) = two_nodes();
        sim.schedule_port_down(10_000, c, PortId(0));
        sim.run_until(15_000);
        // a transmits toward b's dead interface.
        {
            let ea = sim.node_as_mut::<Echo>(a).unwrap();
            ea.send_on_start = Some((PortId(0), vec![7; 80]));
        }
        // Re-start is not available; drive a send via a manual deliver:
        // instead use the public API — schedule another node... simplest:
        // bring the port back up and check recovery delivery works.
        sim.schedule_port_up(20_000, c, PortId(0));
        sim.run_until(30_000);
        let eb = sim.node_as::<Echo>(c).unwrap();
        assert_eq!(eb.ups, vec![(21_000, PortId(0))]);
    }

    #[test]
    fn timers_fire_in_order_and_reschedule() {
        let mut b = SimBuilder::new(1);
        let mut e = Echo::new();
        e.periodic = Some(5_000);
        let a = b.add_node("a", Box::new(e));
        let mut sim = b.build();
        sim.run_until(20_000);
        let timers = &sim.node_as::<Echo>(a).unwrap().timers;
        assert_eq!(
            timers,
            &vec![(5_000, 1), (10_000, 2), (15_000, 3), (20_000, 4)]
        );
        assert_eq!(sim.now(), 20_000);
    }

    #[test]
    fn engine_periodic_matches_self_rearm_cadence() {
        // A protocol arming `set_periodic(first, every, token)` sees the
        // exact fire times a self-re-arming one-shot would produce.
        struct Tick {
            fires: Vec<Time>,
        }
        impl Protocol for Tick {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_periodic(5_000, 5_000, 1);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                assert_eq!(token, 1);
                self.fires.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Tick { fires: Vec::new() }));
        let mut sim = b.build();
        sim.run_until(20_000);
        let fires = &sim.node_as::<Tick>(a).unwrap().fires;
        assert_eq!(fires, &vec![5_000, 10_000, 15_000, 20_000]);
    }

    #[test]
    fn set_periodic_inside_on_timer_replaces_cadence_without_doubling() {
        struct Retick {
            fires: Vec<Time>,
        }
        impl Protocol for Retick {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_periodic(1_000, 1_000, 7);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                self.fires.push(ctx.now());
                if self.fires.len() == 2 {
                    // Slow the tick down mid-run.
                    ctx.set_periodic(3_000, 3_000, 7);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Retick { fires: Vec::new() }));
        let mut sim = b.build();
        sim.run_until(11_000);
        let fires = &sim.node_as::<Retick>(a).unwrap().fires;
        // 1 ms cadence twice, then the re-arm takes over: no doubled fire
        // at 3 ms from the engine's automatic re-arm.
        assert_eq!(fires, &vec![1_000, 2_000, 5_000, 8_000, 11_000]);
    }

    #[test]
    fn heap_and_wheel_schedulers_produce_identical_traces() {
        let run = |kind: SchedulerKind| {
            let cfg = SimConfig { scheduler: kind, ..SimConfig::default() };
            let mut b = SimBuilder::with_config(17, cfg);
            let mut e = Echo::new();
            e.periodic = Some(3_000);
            e.send_on_start = Some((PortId(0), vec![9; 64]));
            let a = b.add_node("a", Box::new(e));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec::default());
            let mut sim = b.build();
            sim.schedule_port_down(20_000, a, PortId(0));
            sim.schedule_port_up(35_000, a, PortId(0));
            sim.run_until(80_000);
            let rendered: Vec<String> =
                sim.trace().events().iter().map(|e| format!("{e:?}")).collect();
            (sim.events_processed(), sim.frames_delivered(), rendered)
        };
        assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Wheel));
    }

    #[test]
    fn per_direction_fifo_serialization() {
        // Two frames sent back-to-back must serialize one after the other.
        struct Burst;
        impl Protocol for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(PortId(0), vec![0; 125], FrameClass::Data);
                ctx.send(PortId(0), vec![1; 125], FrameClass::Data);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Burst));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec { propagation: 0, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.run_until(1_000_000);
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        // 125 B at 1 Gb/s = 1 µs each: arrivals at 1 µs and 2 µs.
        assert_eq!(rx[0].0, 1_000);
        assert_eq!(rx[1].0, 2_000);
    }

    #[test]
    fn double_scheduling_same_transition_is_deduplicated() {
        let (mut sim, a, _) = two_nodes();
        assert!(sim.schedule_port_down(10_000, a, PortId(0)));
        assert!(!sim.schedule_port_down(12_000, a, PortId(0)), "down-on-down dropped");
        assert!(sim.schedule_port_up(15_000, a, PortId(0)));
        assert!(!sim.schedule_port_up(16_000, a, PortId(0)), "up-on-up dropped");
        assert!(sim.schedule_port_down(17_000, a, PortId(0)));
        assert!(sim.schedule_port_up(18_000, a, PortId(0)));
        sim.run_until(30_000);
        let ea = sim.node_as::<Echo>(a).unwrap();
        // Exactly one carrier callback per scheduled transition; the
        // duplicates produced neither events nor desynced view state.
        assert_eq!(ea.downs, vec![(11_000, PortId(0)), (18_000, PortId(0))]);
        assert_eq!(ea.ups, vec![(16_000, PortId(0)), (19_000, PortId(0))]);
        assert!(sim.core.nodes[a.index()].views[0].up);
    }

    #[test]
    fn impairment_loss_drops_frames() {
        // Sender on `c` emits one frame per ms; with 100% loss none
        // arrive at `a`, and every transmission is counted as lost.
        let run = |loss_ppm: u32| {
            let mut b = SimBuilder::new(9);
            let a = b.add_node("a", Box::new(Echo::new()));
            let c = b.add_node("b", Box::new(Sender));
            b.add_link(a, c, LinkSpec { propagation: 100, bandwidth_bps: 1_000_000_000 });
            let mut sim = b.build();
            sim.set_impairment_all(Impairment { loss_ppm, ..Impairment::none() });
            sim.run_until(10_500_000);
            let got = sim.node_as::<Echo>(a).unwrap().received.len() as u64;
            (got, sim.frames_lost_to_impairment())
        };
        let (clean, lost0) = run(0);
        let (none, lost_all) = run(1_000_000);
        assert_eq!(clean, 10);
        assert_eq!(lost0, 0);
        assert_eq!(none, 0);
        assert_eq!(lost_all, clean);
    }

    /// Emits a frame every millisecond.
    struct Sender;
    impl Protocol for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(1_000_000, 1);
        }
        fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: &FrameBuf) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            ctx.send(PortId(0), vec![0x5A; 80], FrameClass::Data);
            ctx.set_timer(1_000_000, token + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn impairment_corruption_flips_exactly_one_byte() {
        let mut b = SimBuilder::new(3);
        let mut ea = Echo::new();
        ea.send_on_start = Some((PortId(0), vec![0x77; 64]));
        let a = b.add_node("a", Box::new(ea));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec::default());
        let mut sim = b.build();
        sim.set_impairment_all(Impairment { corrupt_ppm: 1_000_000, ..Impairment::none() });
        sim.run_until(1_000_000);
        assert_eq!(sim.frames_corrupted(), 1);
        let rx = &sim.node_as::<Echo>(c).unwrap().received;
        assert_eq!(rx.len(), 1, "corruption must not drop the frame");
        let diffs = rx[0].2.iter().filter(|&&x| x != 0x77).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn impairment_jitter_delays_but_delivers() {
        let deliver_time = |jitter| {
            let mut b = SimBuilder::new(5);
            let mut ea = Echo::new();
            ea.send_on_start = Some((PortId(0), vec![1; 100]));
            let a = b.add_node("a", Box::new(ea));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec { propagation: 1000, bandwidth_bps: 1_000_000_000 });
            let mut sim = b.build();
            sim.set_impairment_all(Impairment { jitter, ..Impairment::none() });
            sim.run_until(10_000_000);
            sim.node_as::<Echo>(c).unwrap().received[0].0
        };
        let base = deliver_time(0);
        assert_eq!(base, 1800);
        let jittered = deliver_time(50_000);
        assert!(jittered >= base && jittered <= base + 50_000, "jittered: {jittered}");
    }

    #[test]
    fn clean_links_draw_nothing_from_chaos_rng() {
        // A run with the impairment machinery but all-clean links must be
        // bit-identical to the seed behavior: same trace, same deliveries.
        let run = |imp: Option<Impairment>| {
            let mut b = SimBuilder::new(11);
            let mut e = Echo::new();
            e.periodic = Some(3_000);
            e.send_on_start = Some((PortId(0), vec![9; 64]));
            let a = b.add_node("a", Box::new(e));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec::default());
            let mut sim = b.build();
            if let Some(imp) = imp {
                sim.set_impairment_all(imp);
            }
            sim.run_until(50_000);
            (sim.trace().len(), sim.frames_delivered())
        };
        assert_eq!(run(None), run(Some(Impairment::none())));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut b = SimBuilder::new(seed);
            let mut e = Echo::new();
            e.periodic = Some(3_000);
            e.send_on_start = Some((PortId(0), vec![9; 64]));
            let a = b.add_node("a", Box::new(e));
            let c = b.add_node("b", Box::new(Echo::new()));
            b.add_link(a, c, LinkSpec::default());
            let mut sim = b.build();
            sim.run_until(50_000);
            sim.trace().len()
        };
        assert_eq!(run(7), run(7));
    }

    // ------------------------------------------------------------------
    // Sharded engine equivalence
    // ------------------------------------------------------------------

    /// Full observable fingerprint of a run: every counter plus the
    /// rendered trace (which embeds times, nodes, ports, lengths).
    fn fingerprint(sim: &Sim) -> (u64, u64, u64, u64, Vec<String>) {
        (
            sim.events_processed(),
            sim.frames_delivered(),
            sim.frames_corrupted(),
            sim.frames_lost_to_impairment(),
            sim.trace().events().iter().map(|e| format!("{e:?}")).collect(),
        )
    }

    /// A 4-node chain `s0 - e0 - e1 - s1` with periodic senders at both
    /// ends, admin flaps on the middle (cross-shard) link, and chaos
    /// impairment — every determinism hazard the sharded engine must
    /// handle, in one small fabric.
    fn chain_run(engine: EngineKind, partition: Option<Vec<u32>>, split_spans: bool) -> (u64, u64, u64, u64, Vec<String>) {
        let cfg = SimConfig { engine, ..SimConfig::default() };
        let mut b = SimBuilder::with_config(23, cfg);
        let s0 = b.add_node("s0", Box::new(Sender));
        let e0 = b.add_node("e0", Box::new(Echo::new()));
        let e1 = b.add_node("e1", Box::new(Echo::new()));
        let s1 = b.add_node("s1", Box::new(Sender));
        b.add_link(s0, e0, LinkSpec::default());
        b.add_link(e0, e1, LinkSpec::default()); // the cross-shard middle
        b.add_link(e1, s1, LinkSpec::default());
        let mut sim = b.build();
        if let Some(p) = partition {
            sim.set_partition(p);
        }
        sim.set_impairment_all(Impairment {
            loss_ppm: 50_000,
            corrupt_ppm: 50_000,
            jitter: 2_000,
        });
        // Flap e0's side of the middle link: the far shard must see the
        // flag flip at the same instant (MirrorIface), or its sender's
        // carries() check diverges from the sequential run.
        sim.schedule_port_down(3_500_000, e0, PortId(1));
        sim.schedule_port_up(5_500_000, e0, PortId(1));
        if split_spans {
            // Exercise the dismantle/merge cycle mid-run, with external
            // scheduling between spans.
            sim.run_until(4_000_000);
            sim.schedule_port_down(6_200_000, e1, PortId(1));
            sim.schedule_port_up(7_100_000, e1, PortId(1));
            sim.run_until(10_500_000);
        } else {
            sim.schedule_port_down(6_200_000, e1, PortId(1));
            sim.schedule_port_up(7_100_000, e1, PortId(1));
            sim.run_until(10_500_000);
        }
        fingerprint(&sim)
    }

    #[test]
    fn sharded_engine_matches_sequential_bit_for_bit() {
        let reference = chain_run(EngineKind::Sequential, None, false);
        let sharded = chain_run(
            EngineKind::Sharded { workers: 2 },
            Some(vec![0, 0, 1, 1]),
            false,
        );
        assert_eq!(reference, sharded);
    }

    #[test]
    fn sharded_engine_survives_span_splits_and_default_partition() {
        let reference = chain_run(EngineKind::Sequential, None, true);
        // Round-robin default partition, one shard per node, plus a
        // mid-run dismantle/merge.
        let sharded = chain_run(EngineKind::Sharded { workers: 4 }, None, true);
        assert_eq!(reference, sharded);
        // Degenerate worker counts fall back to sequential.
        let one = chain_run(EngineKind::Sharded { workers: 1 }, None, true);
        assert_eq!(reference, one);
    }

    /// Resends every received frame back out its arrival port.
    struct Bouncer;
    impl Protocol for Bouncer {
        fn on_start(&mut self, _: &mut Ctx<'_>) {}
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf) {
            ctx.send(port, frame.to_vec(), FrameClass::Data);
        }
        fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn profiler_is_invisible_and_accounts_every_event() {
        let run = |profile: bool, engine: EngineKind| {
            let cfg = SimConfig { engine, profile, ..SimConfig::default() };
            let mut b = SimBuilder::with_config(23, cfg);
            let s0 = b.add_node("s0", Box::new(Sender));
            let e0 = b.add_node("e0", Box::new(Bouncer));
            let e1 = b.add_node("e1", Box::new(Echo::new()));
            let s1 = b.add_node("s1", Box::new(Sender));
            b.add_link(s0, e0, LinkSpec::default());
            b.add_link(e0, e1, LinkSpec::default());
            b.add_link(e1, s1, LinkSpec::default());
            let mut sim = b.build();
            // s0 alone on shard 0: its sends cross 0→1, the bounces
            // cross back 1→0.
            sim.set_partition(vec![0, 1, 1, 1]);
            sim.schedule_port_down(3_500_000, e0, PortId(1));
            sim.schedule_port_up(5_500_000, e0, PortId(1));
            sim.run_until(10_500_000);
            let prof = sim.take_profile();
            (fingerprint(&sim), prof)
        };
        let (seq_off, no_prof) = run(false, EngineKind::Sequential);
        assert!(no_prof.is_none(), "no profile unless requested");

        let (seq_on, seq_prof) = run(true, EngineKind::Sequential);
        assert_eq!(seq_off, seq_on, "sequential run must be bit-identical profiled");
        let p = seq_prof.expect("profile recorded");
        assert_eq!(p.total_events(), seq_off.0, "every dispatch attributed");
        assert_eq!(p.shards.len(), 1);
        let s = &p.shards[0];
        assert!(s.windows_total >= 1 && s.wall_ns > 0 && s.execute_ns > 0);
        assert!(s.sched.pushes > 0 && s.sched.max_pending > 0);
        assert_eq!(s.node_events.iter().sum::<u64>(), seq_off.0);

        let (sh_on, sh_prof) = run(true, EngineKind::Sharded { workers: 2 });
        assert_eq!(seq_off, sh_on, "sharded run must be bit-identical profiled");
        let p = sh_prof.expect("profile recorded");
        assert_eq!(p.total_events(), seq_off.0);
        assert!(p.shards.len() == 2 && p.spans >= 1);
        assert_eq!(p.lookahead, Some(LinkSpec::default().serialization(MIN_WIRE_LEN)
            + LinkSpec::default().propagation));
        // Deliveries crossed the middle link both ways.
        let m = p.frame_matrix();
        assert!(m[0][1] > 0 && m[1][0] > 0, "cross-shard matrix populated: {m:?}");
        for s in &p.shards {
            assert!(s.windows_total > 0 && s.wall_ns > 0);
            // Kept records and the histogram agree with the totals.
            assert_eq!(s.window_hist.iter().sum::<u64>(), s.windows_total);
            assert_eq!(s.windows.len() as u64 + s.windows_dropped, s.windows_total);
        }
        assert_eq!(
            p.shards.iter().map(|s| s.node_events.iter().sum::<u64>()).sum::<u64>(),
            seq_off.0
        );
    }

    #[test]
    fn lookahead_is_min_cross_shard_link_delay() {
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Echo::new()));
        let c = b.add_node("b", Box::new(Echo::new()));
        let d = b.add_node("c", Box::new(Echo::new()));
        // a-c intra-shard (fast), c-d cross-shard (slow): only the
        // cross-shard link bounds the window.
        b.add_link(a, c, LinkSpec { propagation: 10, bandwidth_bps: 1_000_000_000 });
        b.add_link(c, d, LinkSpec { propagation: 7_000, bandwidth_bps: 1_000_000_000 });
        let mut sim = b.build();
        sim.set_partition(vec![0, 0, 1]);
        // 60 B at 1 Gb/s = 480 ns serialization + 7 µs propagation.
        assert_eq!(sim.lookahead(), Some(7_480));
        assert_eq!(sim.partition(), Some(&[0, 0, 1][..]));
    }

    #[test]
    fn disjoint_shards_have_infinite_lookahead() {
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(Echo::new()));
        let c = b.add_node("b", Box::new(Echo::new()));
        b.add_link(a, c, LinkSpec::default());
        let mut sim = b.build();
        sim.set_partition(vec![0, 0]);
        assert_eq!(sim.lookahead(), Some(Time::MAX));
    }
}

#[cfg(test)]
mod merge_props {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The k-way shard-trace merge is total (every event emitted
        /// exactly once) and stable (groups come out in `(time, key)`
        /// order; exact collisions — across streams AND repeated within
        /// a stream — break toward the lowest stream index, preserving
        /// each stream's recorded order). Real runs never collide (keys
        /// are globally unique); this pins the behavior for all inputs.
        #[test]
        fn kway_merge_is_total_and_stable(
            raw in proptest::collection::vec(
                proptest::collection::vec((0u64..16, 0u32..3, 0u64..3, 1u32..4), 0..12),
                2..=8usize,
            ),
        ) {
            type Stream = (Vec<TraceGroup>, Vec<(usize, usize, u32)>);
            let mut streams: Vec<Stream> = Vec::new();
            let mut all: Vec<(Time, EventKey, usize, usize, u32)> = Vec::new();
            for (sh, groups) in raw.iter().enumerate() {
                let mut gs: Vec<TraceGroup> = groups
                    .iter()
                    .map(|&(t, creator, counter, count)| {
                        (t, EventKey { creator, counter }, count)
                    })
                    .collect();
                // A shard records groups in dispatch order: ascending
                // (time, key), collisions adjacent.
                gs.sort_by_key(|&(t, k, _)| (t, k));
                let mut events = Vec::new();
                for (pos, &(t, k, count)) in gs.iter().enumerate() {
                    all.push((t, k, sh, pos, count));
                    for i in 0..count {
                        events.push((sh, pos, i));
                    }
                }
                streams.push((gs, events));
            }
            let mut emitted: Vec<(usize, usize, u32)> = Vec::new();
            merge_group_streams(streams, |e| emitted.push(e));
            // The merged order must be exactly a stable sort of every
            // group by (time, key, stream): per-stream order was already
            // (time, key, position), so the full key is total.
            all.sort_by_key(|&(t, k, sh, pos, _)| (t, k, sh, pos));
            let mut expect = Vec::new();
            for &(_, _, sh, pos, count) in &all {
                for i in 0..count {
                    expect.push((sh, pos, i));
                }
            }
            prop_assert_eq!(emitted, expect);
        }
    }
}
