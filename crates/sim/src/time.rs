//! Simulated time.
//!
//! Time is a monotonically increasing nanosecond counter starting at zero.
//! All protocol timers in the reproduction (MR-MTP 50 ms hello, BGP 1 s
//! keepalive, BFD 100 ms transmit interval, …) are expressed in these units.

/// Absolute simulated time in nanoseconds since the start of the run.
pub type Time = u64;

/// A span of simulated time in nanoseconds.
pub type Duration = u64;

/// One nanosecond.
pub const NANOS: Duration = 1;
/// One microsecond.
pub const MICROS: Duration = 1_000;
/// One millisecond.
pub const MILLIS: Duration = 1_000_000;
/// One second.
pub const SECONDS: Duration = 1_000_000_000;

/// Convert a simulated [`Time`] or [`Duration`] to fractional milliseconds.
///
/// The paper reports convergence times in milliseconds; this is the
/// conversion used everywhere results are rendered.
#[inline]
pub fn as_millis_f64(t: Time) -> f64 {
    t as f64 / MILLIS as f64
}

/// Convert a simulated [`Time`] or [`Duration`] to fractional seconds.
#[inline]
pub fn as_secs_f64(t: Time) -> f64 {
    t as f64 / SECONDS as f64
}

/// Build a duration from integer milliseconds.
#[inline]
pub const fn millis(ms: u64) -> Duration {
    ms * MILLIS
}

/// Build a duration from integer microseconds.
#[inline]
pub const fn micros(us: u64) -> Duration {
    us * MICROS
}

/// Build a duration from integer seconds.
#[inline]
pub const fn secs(s: u64) -> Duration {
    s * SECONDS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(1000 * NANOS, MICROS);
        assert_eq!(1000 * MICROS, MILLIS);
        assert_eq!(1000 * MILLIS, SECONDS);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(millis(50), 50 * MILLIS);
        assert_eq!(micros(7), 7 * MICROS);
        assert_eq!(secs(3), 3 * SECONDS);
        assert!((as_millis_f64(millis(1500)) - 1500.0).abs() < 1e-9);
        assert!((as_secs_f64(secs(2)) - 2.0).abs() < 1e-12);
    }
}
