//! Simulation tracing.
//!
//! The paper's measurement pipeline captured frames with tshark and parsed
//! router logs; this module is its emulated equivalent. Every frame
//! transmission and every routing-state change lands in a [`Trace`], from
//! which `dcn-metrics` computes convergence time, blast radius, control
//! overhead and keep-alive overhead.

use crate::node::{NodeId, PortId};
use crate::time::Time;

/// Classification of a transmitted frame. Purely observational — the
/// engine delivers all classes identically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameClass {
    /// Hello/keepalive traffic: MR-MTP 1-byte hellos, BGP KEEPALIVEs, BFD
    /// control packets in steady state.
    Keepalive,
    /// Routing updates disseminated after a topology change: BGP UPDATE
    /// messages, MR-MTP lost-root/recover notifications. This is what the
    /// paper's Fig. 6 control-overhead metric sums.
    Update,
    /// Session management: BGP OPEN/NOTIFICATION, TCP handshake/teardown,
    /// MR-MTP tree construction (advertise/join/offer/accept).
    Session,
    /// Reliability acknowledgements: TCP pure ACKs, MR-MTP update ACKs.
    Ack,
    /// End-host application traffic (the sequenced generator packets).
    Data,
}

/// What kind of destination-forwarding state changed at a router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RouteChangeKind {
    /// A route/ECMP member was withdrawn or a negative-reachability entry
    /// was installed.
    Withdraw,
    /// A route was (re)installed or a negative entry cleared.
    Install,
}

/// One trace record.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A frame left `node` on `port`. `wire_len` is the layer-2 length
    /// on a physical wire (minimum 60 bytes, no FCS); `capture_len` is the
    /// unpadded frame length, which is what tshark reports on the paper's
    /// virtualized testbed NICs (virtio does not pad short frames).
    FrameSent {
        time: Time,
        node: NodeId,
        port: PortId,
        wire_len: u32,
        capture_len: u32,
        class: FrameClass,
    },
    /// Failure injection: the interface owner's carrier dropped.
    PortDown { time: Time, node: NodeId, port: PortId },
    /// Recovery injection: carrier restored.
    PortUp { time: Time, node: NodeId, port: PortId },
    /// A router changed destination-forwarding state (blast radius).
    RouteChange {
        time: Time,
        node: NodeId,
        kind: RouteChangeKind,
        detail: u64,
    },
    /// Protocol-specific annotation (convergence bookkeeping, debugging).
    Proto {
        time: Time,
        node: NodeId,
        tag: &'static str,
        info: u64,
    },
}

impl TraceEvent {
    /// Timestamp of the event.
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::FrameSent { time, .. }
            | TraceEvent::PortDown { time, .. }
            | TraceEvent::PortUp { time, .. }
            | TraceEvent::RouteChange { time, .. }
            | TraceEvent::Proto { time, .. } => *time,
        }
    }

    /// Node the event is attributed to.
    pub fn node(&self) -> NodeId {
        match self {
            TraceEvent::FrameSent { node, .. }
            | TraceEvent::PortDown { node, .. }
            | TraceEvent::PortUp { node, .. }
            | TraceEvent::RouteChange { node, .. }
            | TraceEvent::Proto { node, .. } => *node,
        }
    }
}

/// An append-only log of [`TraceEvent`]s for one simulation run.
#[derive(Default, Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace { events: Vec::with_capacity(4096), enabled: true }
    }

    /// A trace that drops everything (for microbenchmarks where tracing
    /// overhead would pollute timings).
    pub fn disabled() -> Self {
        Trace { events: Vec::new(), enabled: false }
    }

    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// All recorded events in time order (the engine appends them in
    /// dispatch order, which is time order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events at or after `t0`.
    pub fn events_since(&self, t0: Time) -> impl Iterator<Item = &TraceEvent> {
        // Events are appended in nondecreasing time order; binary search
        // for the cut point.
        let idx = self.events.partition_point(|e| e.time() < t0);
        self.events[idx..].iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all events before `t0` (used to keep long warm-up phases from
    /// bloating memory in sweep experiments).
    pub fn discard_before(&mut self, t0: Time) {
        let idx = self.events.partition_point(|e| e.time() < t0);
        self.events.drain(..idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time) -> TraceEvent {
        TraceEvent::Proto { time: t, node: NodeId(0), tag: "t", info: 0 }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.push(ev(5));
        assert!(tr.is_empty());
    }

    #[test]
    fn events_since_uses_partition_point() {
        let mut tr = Trace::enabled();
        for t in [1u64, 2, 2, 5, 9] {
            tr.push(ev(t));
        }
        assert_eq!(tr.events_since(0).count(), 5);
        assert_eq!(tr.events_since(2).count(), 4);
        assert_eq!(tr.events_since(3).count(), 2);
        assert_eq!(tr.events_since(10).count(), 0);
    }

    #[test]
    fn discard_before_trims_prefix() {
        let mut tr = Trace::enabled();
        for t in [1u64, 2, 3, 4] {
            tr.push(ev(t));
        }
        tr.discard_before(3);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events()[0].time(), 3);
    }
}
