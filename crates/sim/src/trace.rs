//! Simulation tracing.
//!
//! The paper's measurement pipeline captured frames with tshark and parsed
//! router logs; this module is its emulated equivalent. Every frame
//! transmission and every routing-state change lands in a [`Trace`], from
//! which `dcn-metrics` computes convergence time, blast radius, control
//! overhead and keep-alive overhead.

use crate::node::{NodeId, PortId};
use crate::time::Time;

/// Classification of a transmitted frame. Purely observational — the
/// engine delivers all classes identically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameClass {
    /// Hello/keepalive traffic: MR-MTP 1-byte hellos, BGP KEEPALIVEs, BFD
    /// control packets in steady state.
    Keepalive,
    /// Routing updates disseminated after a topology change: BGP UPDATE
    /// messages, MR-MTP lost-root/recover notifications. This is what the
    /// paper's Fig. 6 control-overhead metric sums.
    Update,
    /// Session management: BGP OPEN/NOTIFICATION, TCP handshake/teardown,
    /// MR-MTP tree construction (advertise/join/offer/accept).
    Session,
    /// Reliability acknowledgements: TCP pure ACKs, MR-MTP update ACKs.
    Ack,
    /// End-host application traffic (the sequenced generator packets).
    Data,
}

impl FrameClass {
    /// Every class, in rendering order.
    pub const ALL: [FrameClass; 5] = [
        FrameClass::Keepalive,
        FrameClass::Update,
        FrameClass::Session,
        FrameClass::Ack,
        FrameClass::Data,
    ];

    /// Stable lowercase name (table keys, JSONL fields, capture lines).
    pub fn name(self) -> &'static str {
        match self {
            FrameClass::Keepalive => "keepalive",
            FrameClass::Update => "update",
            FrameClass::Session => "session",
            FrameClass::Ack => "ack",
            FrameClass::Data => "data",
        }
    }
}

/// What kind of destination-forwarding state changed at a router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RouteChangeKind {
    /// A route/ECMP member was withdrawn or a negative-reachability entry
    /// was installed.
    Withdraw,
    /// A route was (re)installed or a negative entry cleared.
    Install,
}

/// A typed protocol span event: the structured successor of the
/// free-form `Proto { tag, info }` annotations. Each variant marks one
/// step of a convergence episode, so a post-hoc analyzer can reconstruct
/// *why* a failure took as long as it did (who detected, via carrier or
/// timeout; how updates batched; when trees were rebuilt) instead of just
/// *that* updates stopped at some instant.
///
/// Protocol-specific state names are carried as `&'static str` so the
/// emulator core stays protocol-agnostic and tracing stays allocation
/// free on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanEvent {
    /// BGP session FSM transition (RFC 4271 states, condensed).
    BgpFsm {
        port: PortId,
        from: &'static str,
        to: &'static str,
    },
    /// A BGP session was torn down. `carrier` is true when the teardown
    /// was driven by an instant local carrier notification rather than a
    /// timeout or protocol error.
    BgpSessionDown {
        port: PortId,
        reason: &'static str,
        carrier: bool,
    },
    /// One re-export pass flushed a batched set of UPDATEs (the MRAI
    /// batch window of this implementation): `peers` peers received
    /// messages covering `prefixes` re-evaluated prefixes.
    BgpUpdateBatch { peers: u8, prefixes: u8 },
    /// MR-MTP neighbor declared down — by carrier loss (`carrier`) or by
    /// the missed-hello dead sweep.
    NeighborDown { port: PortId, carrier: bool },
    /// MR-MTP neighbor (re-)established after Slow-to-Accept.
    NeighborUp { port: PortId },
    /// Tree construction: a VID for tree `root` was installed via `port`.
    VidInstall { root: u8, port: PortId },
    /// Tree teardown: the VID for tree `root` via `port` was removed.
    VidRemove { root: u8, port: PortId },
    /// A Lost (`lost`) or Recovered flood wave left this router: `roots`
    /// tree roots toward `fanout` neighbor ports.
    LossFlood { roots: u8, fanout: u8, lost: bool },
    /// The loss-aggregation hold-down window opened (upper-loss reports
    /// are batching; the MR-MTP analog of an MRAI window).
    HolddownArm,
    /// The hold-down window resolved: `negatives` negative-reachability
    /// entries installed, `totals` total-loss roots propagated downward.
    HolddownResolve { negatives: u8, totals: u8 },
    /// Every uplink lost tree `root`: total upper loss handed downward.
    UpperLossTotal { root: u8 },
    /// Local fast reroute engaged: the data plane steered traffic around
    /// a locally-dead egress onto `port` using the precomputed backup
    /// FIB, before the control plane converged. Emitted once per
    /// destination per FIB generation (not per packet), so the storyboard
    /// can date the first in-data-plane repair without trace bloat.
    LocalRepair { port: PortId },
}

impl SpanEvent {
    /// Stable snake_case kind tag (JSONL `kind` field, storyboard lines).
    pub fn kind(&self) -> &'static str {
        match self {
            SpanEvent::BgpFsm { .. } => "bgp_fsm",
            SpanEvent::BgpSessionDown { .. } => "bgp_session_down",
            SpanEvent::BgpUpdateBatch { .. } => "bgp_update_batch",
            SpanEvent::NeighborDown { .. } => "neighbor_down",
            SpanEvent::NeighborUp { .. } => "neighbor_up",
            SpanEvent::VidInstall { .. } => "vid_install",
            SpanEvent::VidRemove { .. } => "vid_remove",
            SpanEvent::LossFlood { .. } => "loss_flood",
            SpanEvent::HolddownArm => "holddown_arm",
            SpanEvent::HolddownResolve { .. } => "holddown_resolve",
            SpanEvent::UpperLossTotal { .. } => "upper_loss_total",
            SpanEvent::LocalRepair { .. } => "local_repair",
        }
    }

    /// Whether this span marks local *failure detection*, and how:
    /// `Some(true)` for carrier-driven detection, `Some(false)` for
    /// timeout-driven detection (hold timer, BFD, missed hellos, TCP
    /// retransmit exhaustion), `None` for everything else.
    pub fn detection(&self) -> Option<bool> {
        match self {
            SpanEvent::NeighborDown { carrier, .. } => Some(*carrier),
            SpanEvent::BgpSessionDown { reason, carrier, .. } => match *reason {
                "carrier_down" => Some(true),
                "bgp_hold_expired" | "bfd_down" | "tcp_retx_exhausted" => Some(*carrier),
                _ => None,
            },
            _ => None,
        }
    }

    /// Whether this span reflects a routing/tree *state change* at the
    /// emitting router (as opposed to a pure transmission marker like a
    /// flood or update batch).
    pub fn is_state_change(&self) -> bool {
        !matches!(
            self,
            SpanEvent::LossFlood { .. }
                | SpanEvent::BgpUpdateBatch { .. }
                | SpanEvent::LocalRepair { .. }
        )
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A frame left `node` on `port`. `wire_len` is the layer-2 length
    /// on a physical wire (minimum 60 bytes, no FCS); `capture_len` is the
    /// unpadded frame length, which is what tshark reports on the paper's
    /// virtualized testbed NICs (virtio does not pad short frames).
    FrameSent {
        time: Time,
        node: NodeId,
        port: PortId,
        wire_len: u32,
        capture_len: u32,
        class: FrameClass,
    },
    /// Failure injection: the interface owner's carrier dropped.
    PortDown { time: Time, node: NodeId, port: PortId },
    /// Recovery injection: carrier restored.
    PortUp { time: Time, node: NodeId, port: PortId },
    /// A router changed destination-forwarding state (blast radius).
    RouteChange {
        time: Time,
        node: NodeId,
        kind: RouteChangeKind,
        detail: u64,
    },
    /// Protocol-specific annotation (ad-hoc debugging; structured
    /// convergence bookkeeping uses [`TraceEvent::Span`]).
    Proto {
        time: Time,
        node: NodeId,
        tag: &'static str,
        info: u64,
    },
    /// A typed protocol span event (see [`SpanEvent`]).
    Span {
        time: Time,
        node: NodeId,
        span: SpanEvent,
    },
}

impl TraceEvent {
    /// Timestamp of the event.
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::FrameSent { time, .. }
            | TraceEvent::PortDown { time, .. }
            | TraceEvent::PortUp { time, .. }
            | TraceEvent::RouteChange { time, .. }
            | TraceEvent::Proto { time, .. }
            | TraceEvent::Span { time, .. } => *time,
        }
    }

    /// Node the event is attributed to.
    pub fn node(&self) -> NodeId {
        match self {
            TraceEvent::FrameSent { node, .. }
            | TraceEvent::PortDown { node, .. }
            | TraceEvent::PortUp { node, .. }
            | TraceEvent::RouteChange { node, .. }
            | TraceEvent::Proto { node, .. }
            | TraceEvent::Span { node, .. } => *node,
        }
    }
}

/// An append-only log of [`TraceEvent`]s for one simulation run.
#[derive(Default, Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace { events: Vec::with_capacity(4096), enabled: true }
    }

    /// A trace that drops everything (for microbenchmarks where tracing
    /// overhead would pollute timings).
    pub fn disabled() -> Self {
        Trace { events: Vec::new(), enabled: false }
    }

    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            // `events_since`/`discard_before` binary-search on time and
            // silently return wrong cuts if events ever land out of order.
            debug_assert!(
                self.events.last().is_none_or(|last| last.time() <= ev.time()),
                "trace events must be pushed in nondecreasing time order"
            );
            self.events.push(ev);
        }
    }

    /// All recorded events in time order (the engine appends them in
    /// dispatch order, which is time order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events at or after `t0`.
    pub fn events_since(&self, t0: Time) -> impl Iterator<Item = &TraceEvent> {
        // Events are appended in nondecreasing time order; binary search
        // for the cut point.
        let idx = self.events.partition_point(|e| e.time() < t0);
        self.events[idx..].iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether this trace records events at all (shard traces inherit
    /// the master's setting).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Take ownership of the recorded events, leaving the trace empty
    /// (the sharded engine's merge consumes shard traces this way).
    pub(crate) fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all events before `t0` (used to keep long warm-up phases from
    /// bloating memory in sweep experiments).
    pub fn discard_before(&mut self, t0: Time) {
        let idx = self.events.partition_point(|e| e.time() < t0);
        self.events.drain(..idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time) -> TraceEvent {
        TraceEvent::Proto { time: t, node: NodeId(0), tag: "t", info: 0 }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.push(ev(5));
        assert!(tr.is_empty());
    }

    #[test]
    fn events_since_uses_partition_point() {
        let mut tr = Trace::enabled();
        for t in [1u64, 2, 2, 5, 9] {
            tr.push(ev(t));
        }
        assert_eq!(tr.events_since(0).count(), 5);
        assert_eq!(tr.events_since(2).count(), 4);
        assert_eq!(tr.events_since(3).count(), 2);
        assert_eq!(tr.events_since(10).count(), 0);
    }

    #[test]
    fn frame_class_names_are_stable() {
        let names: Vec<&str> = FrameClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["keepalive", "update", "session", "ack", "data"]);
    }

    #[test]
    fn span_detection_classifies_carrier_vs_timeout() {
        let carrier = SpanEvent::NeighborDown { port: PortId(1), carrier: true };
        assert_eq!(carrier.detection(), Some(true));
        let swept = SpanEvent::NeighborDown { port: PortId(1), carrier: false };
        assert_eq!(swept.detection(), Some(false));
        let hold = SpanEvent::BgpSessionDown {
            port: PortId(0),
            reason: "bgp_hold_expired",
            carrier: false,
        };
        assert_eq!(hold.detection(), Some(false));
        let note = SpanEvent::BgpSessionDown {
            port: PortId(0),
            reason: "bgp_notification",
            carrier: false,
        };
        assert_eq!(note.detection(), None);
        assert_eq!(hold.kind(), "bgp_session_down");
        assert!(hold.is_state_change());
        assert!(!SpanEvent::BgpUpdateBatch { peers: 1, prefixes: 1 }.is_state_change());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn out_of_order_push_asserts_in_debug() {
        let mut tr = Trace::enabled();
        tr.push(ev(10));
        tr.push(ev(5));
    }

    #[test]
    fn discard_before_trims_prefix() {
        let mut tr = Trace::enabled();
        for t in [1u64, 2, 3, 4] {
            tr.push(ev(t));
        }
        tr.discard_before(3);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events()[0].time(), 3);
    }
}
