//! Engine runtime profiler: per-shard window accounting with
//! barrier-stall attribution.
//!
//! PR 7's sharded engine is proven bit-identical to the sequential
//! reference, but `fcr bench --scale` only showed end-to-end wall time —
//! a bad speedup could mean barrier waits, inbox-mutex contention, short
//! lookahead windows or a hot spine shard, and nothing distinguished
//! them. This module observes the *runtime itself* (where
//! `dcn-telemetry` observes the protocols): when [`crate::SimConfig`]
//! has `profile` set, every shard records one [`WindowRecord`] per
//! barrier window — events executed, and host-clock durations for each
//! phase of the window protocol (barrier A wait, inbox drain, barrier B
//! wait, execute, outbox deposit) — plus per-node event counts, a
//! shard→shard cross-frame matrix and scheduler occupancy stats.
//!
//! ## Why profiling cannot perturb digests
//!
//! All durations come from [`std::time::Instant`] — the host's monotonic
//! clock — and are written into pre-sized buffers owned by the shard.
//! Nothing here reads or influences simulated time, event keys, RNG
//! streams or the queue order, and no profiling state is consulted by
//! dispatch. The profiler is a pure observer: per-seed trace digests are
//! bit-identical with it on or off (enforced in
//! `dcn-experiments/tests/equivalence.rs`), and the counters it bumps on
//! the forwarding path are plain integer increments into pre-allocated
//! vectors, so the zero-alloc forwarding gate holds with profiling
//! enabled (`tests/zero_alloc.rs`).

use std::time::Instant;

/// Per-window records kept verbatim per shard; beyond this the profile
/// keeps aggregating totals and histograms but drops the raw record
/// (counted in [`ShardProfile::windows_dropped`]). Bounds both memory
/// and the size of the exported Chrome trace.
pub const WINDOW_KEEP: usize = 8192;

/// Number of log2 buckets in the events-per-window histogram; the last
/// bucket absorbs everything `>= 2^(WINDOW_HIST_BUCKETS-2)`.
pub const WINDOW_HIST_BUCKETS: usize = 17;

/// One barrier window as one shard saw it. All `*_ns` fields are
/// host-monotonic durations; `start_ns` is the offset of the window's
/// begin from the profile epoch. `horizon`/`window_end` are simulated
/// time (the window executed events in `[horizon, window_end)`).
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowRecord {
    /// Host-clock offset of this window's start from the profile epoch.
    pub start_ns: u64,
    /// Global horizon `T` (simulated ns) every shard agreed on.
    pub horizon: u64,
    /// Exclusive end of the executed window (simulated ns).
    pub window_end: u64,
    /// Events this shard dispatched inside the window.
    pub events: u64,
    /// Lookahead windows this barrier round fused for this shard
    /// (`ceil((window_end - horizon) / lookahead)`): 1 is the unbatched
    /// PR 7 protocol, anything larger is adaptive window batching
    /// skipping rounds the shard would have crossed idle. 0 only in
    /// hand-built records.
    pub k: u64,
    /// Host time spent blocked on barrier A (deposit visibility).
    pub barrier_a_ns: u64,
    /// Host time draining the inbox into the local queue.
    pub drain_ns: u64,
    /// Host time blocked on barrier B (next-event-time reports).
    pub barrier_b_ns: u64,
    /// Host time executing local events.
    pub execute_ns: u64,
    /// Host time depositing outboxes into destination inboxes.
    pub deposit_ns: u64,
}

/// Scheduler occupancy counters, accumulated by both queue backends.
///
/// `wheel_slot_hits` / `wheel_overflow_hits` split wheel insertions by
/// whether the event landed in a level bucket (or the sorted ready
/// list) versus the beyond-horizon overflow heap; the heap backend
/// counts every insertion as a slot hit. `max_pending` is the
/// high-water mark of events pending at once. In sharded mode each span
/// re-pushes the surviving queue into fresh shard schedulers, so push
/// counts include those re-pushes (they are real scheduler work).
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerStats {
    /// Total insertions this queue accepted.
    pub pushes: u64,
    /// Insertions that landed in a wheel level bucket or the ready list.
    pub wheel_slot_hits: u64,
    /// Insertions that landed in the wheel's overflow heap.
    pub wheel_overflow_hits: u64,
    /// Most events pending at once.
    pub max_pending: u64,
}

impl SchedulerStats {
    /// Fold another queue's counters into this one (hits sum, the
    /// high-water mark takes the max).
    pub fn absorb(&mut self, other: SchedulerStats) {
        self.pushes += other.pushes;
        self.wheel_slot_hits += other.wheel_slot_hits;
        self.wheel_overflow_hits += other.wheel_overflow_hits;
        self.max_pending = self.max_pending.max(other.max_pending);
    }
}

/// Everything one shard (or the whole sequential engine, which profiles
/// as shard 0) recorded. Accumulates across parallel spans: the engine
/// dismantles and reassembles shards on every `run_until`, folding each
/// span's records into the [`EngineProfile`] kept on the `Sim`.
#[derive(Clone, Debug)]
pub struct ShardProfile {
    /// Shard id (0 for sequential execution).
    pub shard: u32,
    /// Host-clock epoch shared by every shard of the profile.
    pub epoch: Instant,
    /// First [`WINDOW_KEEP`] windows, verbatim.
    pub windows: Vec<WindowRecord>,
    /// Windows beyond [`WINDOW_KEEP`] (still aggregated below).
    pub windows_dropped: u64,
    /// Total barrier windows (sequential: one per `run_until` span).
    pub windows_total: u64,
    /// Barrier rounds where adaptive batching fused more than one
    /// lookahead window for this shard ([`WindowRecord::k`] > 1).
    pub windows_batched: u64,
    /// Sum of [`WindowRecord::k`] — `k_sum / windows_total` is the mean
    /// batching factor; with batching off it equals `windows_total`.
    pub k_sum: u64,
    /// Events dispatched.
    pub events: u64,
    /// Host ns executing events.
    pub execute_ns: u64,
    /// Host ns blocked on barriers (A + B).
    pub barrier_ns: u64,
    /// Host ns draining the inbox.
    pub drain_ns: u64,
    /// Host ns depositing outboxes.
    pub deposit_ns: u64,
    /// Host ns this shard's worker was alive inside `run_windows`
    /// (sequential: inside `run_sequential`). `other` time is
    /// `wall_ns - (execute + barrier + drain + deposit)`.
    pub wall_ns: u64,
    /// Events dispatched per node id (hot-node attribution).
    pub node_events: Vec<u64>,
    /// Frames staged to each destination shard (cross-shard matrix row).
    pub frames_to: Vec<u64>,
    /// log2 histogram of events-per-window: bucket 0 counts empty
    /// windows, bucket `b > 0` counts windows with
    /// `2^(b-1) <= events < 2^b`, the last bucket absorbs the tail.
    pub window_hist: [u64; WINDOW_HIST_BUCKETS],
    /// Occupancy stats of this shard's event queue.
    pub sched: SchedulerStats,
}

impl ShardProfile {
    /// A fresh profile for `shard` of an engine with `nodes` nodes and
    /// `shards` shards, sharing `epoch` with its siblings.
    pub fn new(shard: u32, nodes: usize, shards: usize, epoch: Instant) -> ShardProfile {
        ShardProfile {
            shard,
            epoch,
            windows: Vec::with_capacity(256),
            windows_dropped: 0,
            windows_total: 0,
            windows_batched: 0,
            k_sum: 0,
            events: 0,
            execute_ns: 0,
            barrier_ns: 0,
            drain_ns: 0,
            deposit_ns: 0,
            wall_ns: 0,
            node_events: vec![0; nodes],
            frames_to: vec![0; shards],
            window_hist: [0; WINDOW_HIST_BUCKETS],
            sched: SchedulerStats::default(),
        }
    }

    /// Record one finished window: aggregate always, keep the raw record
    /// while under [`WINDOW_KEEP`].
    pub fn record_window(&mut self, rec: WindowRecord) {
        self.windows_total += 1;
        self.windows_batched += (rec.k > 1) as u64;
        self.k_sum += rec.k;
        self.events += rec.events;
        self.execute_ns += rec.execute_ns;
        self.barrier_ns += rec.barrier_a_ns + rec.barrier_b_ns;
        self.drain_ns += rec.drain_ns;
        self.deposit_ns += rec.deposit_ns;
        let bucket = match rec.events {
            0 => 0,
            n => (64 - n.leading_zeros() as usize).min(WINDOW_HIST_BUCKETS - 1),
        };
        self.window_hist[bucket] += 1;
        if self.windows.len() < WINDOW_KEEP {
            self.windows.push(rec);
        } else {
            self.windows_dropped += 1;
        }
    }

    /// Fold a finished span's profile for the same shard into this one.
    pub fn absorb(&mut self, other: ShardProfile) {
        debug_assert_eq!(self.node_events.len(), other.node_events.len());
        for rec in &other.windows {
            if self.windows.len() < WINDOW_KEEP {
                self.windows.push(*rec);
            } else {
                self.windows_dropped += 1;
            }
        }
        self.windows_dropped += other.windows_dropped;
        self.windows_total += other.windows_total;
        self.windows_batched += other.windows_batched;
        self.k_sum += other.k_sum;
        self.events += other.events;
        self.execute_ns += other.execute_ns;
        self.barrier_ns += other.barrier_ns;
        self.drain_ns += other.drain_ns;
        self.deposit_ns += other.deposit_ns;
        self.wall_ns += other.wall_ns;
        for (a, b) in self.node_events.iter_mut().zip(&other.node_events) {
            *a += b;
        }
        if self.frames_to.len() < other.frames_to.len() {
            self.frames_to.resize(other.frames_to.len(), 0);
        }
        for (a, b) in self.frames_to.iter_mut().zip(&other.frames_to) {
            *a += b;
        }
        for (a, b) in self.window_hist.iter_mut().zip(&other.window_hist) {
            *a += b;
        }
        self.sched.absorb(other.sched);
    }

    /// Mean batching factor: lookahead windows fused per barrier round
    /// (1.0 with batching off or before any round completed).
    pub fn k_mean(&self) -> f64 {
        if self.windows_total == 0 {
            1.0
        } else {
            self.k_sum as f64 / self.windows_total as f64
        }
    }

    /// Host ns not attributed to any phase (loop overhead, horizon
    /// computation, scheduling noise). Clamped at zero.
    pub fn other_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.execute_ns + self.barrier_ns + self.drain_ns + self.deposit_ns)
    }
}

/// The whole engine's profile: one [`ShardProfile`] per shard (index =
/// shard id; sequential execution accumulates into shard 0), plus the
/// run parameters a report needs for attribution.
#[derive(Clone, Debug)]
pub struct EngineProfile {
    /// Host-clock epoch all window `start_ns` offsets are relative to.
    pub epoch: Instant,
    /// Nodes in the simulation (`node_events` length).
    pub nodes: usize,
    /// Per-shard accumulated records.
    pub shards: Vec<ShardProfile>,
    /// Conservative lookahead of the partition, once a sharded span ran.
    pub lookahead: Option<u64>,
    /// Parallel spans executed (dismantle/merge cycles).
    pub spans: u64,
}

impl EngineProfile {
    /// An empty profile for an engine with `nodes` nodes.
    pub fn new(nodes: usize) -> EngineProfile {
        EngineProfile {
            epoch: Instant::now(),
            nodes,
            shards: Vec::new(),
            lookahead: None,
            spans: 0,
        }
    }

    /// Fold a span's shard profile into the accumulated one, growing the
    /// shard vector as needed.
    pub fn absorb_shard(&mut self, prof: ShardProfile) {
        let sh = prof.shard as usize;
        while self.shards.len() <= sh {
            let id = self.shards.len() as u32;
            self.shards.push(ShardProfile::new(id, self.nodes, sh + 1, self.epoch));
        }
        self.shards[sh].absorb(prof);
    }

    /// Events dispatched across every shard.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// The longest per-shard wall time — the engine's critical path.
    pub fn max_wall_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.wall_ns).max().unwrap_or(0)
    }

    /// Top `k` nodes by events dispatched, as `(node id, events)` sorted
    /// descending (ties toward the lower id, so output is total).
    pub fn hottest_nodes(&self, k: usize) -> Vec<(u32, u64)> {
        let mut totals = vec![0u64; self.nodes];
        for s in &self.shards {
            for (i, &n) in s.node_events.iter().enumerate() {
                totals[i] += n;
            }
        }
        let mut ranked: Vec<(u32, u64)> =
            totals.into_iter().enumerate().map(|(i, n)| (i as u32, n)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.retain(|&(_, n)| n > 0);
        ranked
    }

    /// Events-per-window histogram summed over shards.
    pub fn window_hist(&self) -> [u64; WINDOW_HIST_BUCKETS] {
        let mut hist = [0u64; WINDOW_HIST_BUCKETS];
        for s in &self.shards {
            for (a, b) in hist.iter_mut().zip(&s.window_hist) {
                *a += b;
            }
        }
        hist
    }

    /// The shard→shard frame matrix: `matrix[src][dst]` frames staged.
    /// Square over the max shard count seen; intra-shard cells are 0.
    pub fn frame_matrix(&self) -> Vec<Vec<u64>> {
        let n = self
            .shards
            .iter()
            .map(|s| s.frames_to.len())
            .max()
            .unwrap_or(0)
            .max(self.shards.len());
        let mut m = vec![vec![0u64; n]; n];
        for s in &self.shards {
            for (dst, &count) in s.frames_to.iter().enumerate() {
                m[s.shard as usize][dst] += count;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_hist_buckets_by_log2() {
        let mut p = ShardProfile::new(0, 4, 1, Instant::now());
        for events in [0u64, 1, 2, 3, 4, 1 << 16, 1 << 40] {
            p.record_window(WindowRecord { events, ..WindowRecord::default() });
        }
        assert_eq!(p.window_hist[0], 1); // empty window
        assert_eq!(p.window_hist[1], 1); // 1
        assert_eq!(p.window_hist[2], 2); // 2, 3
        assert_eq!(p.window_hist[3], 1); // 4
        assert_eq!(p.window_hist[WINDOW_HIST_BUCKETS - 1], 2); // tail
        assert_eq!(p.windows_total, 7);
        assert_eq!(p.windows.len(), 7);
    }

    #[test]
    fn batched_windows_counted_and_k_summed() {
        let mut p = ShardProfile::new(0, 1, 1, Instant::now());
        for k in [1u64, 1, 4, 2, 1] {
            p.record_window(WindowRecord { k, ..WindowRecord::default() });
        }
        assert_eq!(p.windows_total, 5);
        assert_eq!(p.windows_batched, 2); // the k=4 and k=2 rounds
        assert_eq!(p.k_sum, 9);
        assert!((p.k_mean() - 1.8).abs() < 1e-12);
        let mut other = ShardProfile::new(0, 1, 1, p.epoch);
        other.record_window(WindowRecord { k: 3, ..WindowRecord::default() });
        p.absorb(other);
        assert_eq!(p.windows_batched, 3);
        assert_eq!(p.k_sum, 12);
    }

    #[test]
    fn window_records_cap_but_totals_keep_counting() {
        let mut p = ShardProfile::new(0, 1, 1, Instant::now());
        for _ in 0..WINDOW_KEEP + 10 {
            p.record_window(WindowRecord { events: 1, execute_ns: 2, ..Default::default() });
        }
        assert_eq!(p.windows.len(), WINDOW_KEEP);
        assert_eq!(p.windows_dropped, 10);
        assert_eq!(p.windows_total, (WINDOW_KEEP + 10) as u64);
        assert_eq!(p.events, (WINDOW_KEEP + 10) as u64);
        assert_eq!(p.execute_ns, 2 * (WINDOW_KEEP + 10) as u64);
    }

    #[test]
    fn absorb_merges_spans_and_other_ns_clamps() {
        let epoch = Instant::now();
        let mut a = ShardProfile::new(1, 3, 4, epoch);
        a.record_window(WindowRecord {
            events: 5,
            execute_ns: 100,
            barrier_a_ns: 10,
            barrier_b_ns: 20,
            drain_ns: 5,
            deposit_ns: 5,
            ..Default::default()
        });
        a.wall_ns = 200;
        a.node_events[2] = 5;
        a.frames_to[0] = 3;
        let mut b = ShardProfile::new(1, 3, 4, epoch);
        b.record_window(WindowRecord { events: 2, execute_ns: 50, ..Default::default() });
        b.wall_ns = 50;
        b.node_events[0] = 2;
        b.frames_to[3] = 1;
        a.absorb(b);
        assert_eq!(a.events, 7);
        assert_eq!(a.windows_total, 2);
        assert_eq!(a.wall_ns, 250);
        assert_eq!(a.execute_ns, 150);
        assert_eq!(a.barrier_ns, 30);
        assert_eq!(a.node_events, vec![2, 0, 5]);
        assert_eq!(a.frames_to, vec![3, 0, 0, 1]);
        assert_eq!(a.other_ns(), 250 - (150 + 30 + 5 + 5));
        // A profile whose phases exceed its wall clamps at zero instead
        // of wrapping.
        let mut c = ShardProfile::new(0, 1, 1, epoch);
        c.record_window(WindowRecord { events: 1, execute_ns: 500, ..Default::default() });
        c.wall_ns = 100;
        assert_eq!(c.other_ns(), 0);
    }

    #[test]
    fn engine_profile_ranks_hot_nodes_and_builds_matrix() {
        let mut ep = EngineProfile::new(4);
        let mut s0 = ShardProfile::new(0, 4, 2, ep.epoch);
        s0.node_events = vec![7, 0, 3, 0];
        s0.frames_to = vec![0, 11];
        s0.events = 10;
        let mut s1 = ShardProfile::new(1, 4, 2, ep.epoch);
        s1.node_events = vec![0, 9, 3, 0];
        s1.frames_to = vec![4, 0];
        s1.events = 12;
        ep.absorb_shard(s0);
        ep.absorb_shard(s1);
        assert_eq!(ep.total_events(), 22);
        // node 1: 9, node 0: 7, node 2: 6; node 3 (zero) dropped.
        assert_eq!(ep.hottest_nodes(10), vec![(1, 9), (0, 7), (2, 6)]);
        assert_eq!(ep.hottest_nodes(2), vec![(1, 9), (0, 7)]);
        assert_eq!(ep.frame_matrix(), vec![vec![0, 11], vec![4, 0]]);
    }
}
