//! Barrier-lean synchronization primitives for the sharded engine.
//!
//! The window protocol in [`crate::engine`] is two barrier waits plus a
//! mailbox exchange per lookahead window — and with windows only a few
//! microseconds of simtime wide, the engine crosses them millions of
//! times per run. `std::sync::Barrier` takes a mutex and parks through a
//! condvar on every wait, and a `Mutex<Vec>` inbox serializes every
//! depositor against the drainer. Both costs are pure overhead the
//! profiler (`crate::profiler`) attributes to `barrier` and `drain`.
//! This module replaces them with two small, dependency-free primitives:
//!
//! * [`SpinBarrier`] — a sense-reversing barrier whose fast path is one
//!   `fetch_add` plus a bounded spin on an atomic word. Only when the
//!   spin budget runs out does a waiter fall back to
//!   [`std::thread::park`], so on a machine with enough cores the hot
//!   path never enters the kernel, while oversubscribed hosts (budget 0)
//!   park immediately instead of burning their timeslice.
//! * [`SpscQueue`] — an unbounded single-producer/single-consumer
//!   segment queue moving whole `Vec` batches through one `AtomicPtr`.
//!   The engine gives every (sender, receiver) shard pair its own queue,
//!   so a deposit is one allocation-free-on-the-reader-side pointer push
//!   and a drain is one `swap` — no lock, no contention between
//!   depositors for different receivers.
//!
//! Both primitives are memory-safe under arbitrary thread interleavings
//! (the queue even tolerates multiple producers, though the engine never
//! uses it that way) and are stress-tested under `std::thread` in this
//! module's tests plus the `sync_props` proptest suite.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;

/// Default bound on busy-wait iterations before a [`SpinBarrier`] waiter
/// parks. Two orders of magnitude more than a typical barrier rendezvous
/// takes when every participant has its own core, and small enough that
/// a genuinely stalled peer (preempted, page fault) costs microseconds,
/// not a timeslice.
pub const DEFAULT_SPIN: u32 = 1 << 12;

/// A sense-reversing barrier with a spin-then-park slow path.
///
/// Every participant calls [`SpinBarrier::wait`] with its own
/// [`BarrierSense`] (per-thread phase parity). The last arriver of a
/// phase resets the arrival counter, flips the shared sense word, and
/// unparks any waiter that gave up spinning. Reusable across unlimited
/// phases — consecutive phases are distinguished by the alternating
/// sense, so a fast thread entering phase `k+1` can never release or
/// consume phase `k`'s rendezvous.
pub struct SpinBarrier {
    n: usize,
    spin: u32,
    arrived: AtomicUsize,
    sense: AtomicBool,
    /// Waiters that exhausted their spin budget. Slow path only: the
    /// mutex is never touched while the rendezvous completes within the
    /// spin budget.
    parked: Mutex<Vec<Thread>>,
}

/// Per-thread phase parity for a [`SpinBarrier`]. Each participating
/// thread owns one and passes it to every [`SpinBarrier::wait`] call.
#[derive(Default)]
pub struct BarrierSense(bool);

impl SpinBarrier {
    /// A barrier for `n` participants with the default spin budget.
    pub fn new(n: usize) -> SpinBarrier {
        SpinBarrier::with_spin(n, DEFAULT_SPIN)
    }

    /// A barrier for `n` participants spinning at most `spin` iterations
    /// before parking. `spin == 0` parks immediately — the right setting
    /// when threads outnumber cores and spinning only delays the peer
    /// that holds the missing arrival.
    pub fn with_spin(n: usize, spin: u32) -> SpinBarrier {
        assert!(n > 0, "a barrier needs at least one participant");
        SpinBarrier {
            n,
            spin,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Block until all `n` participants of the current phase arrive.
    /// Returns `true` on exactly one participant per phase (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self, sense: &mut BarrierSense) -> bool {
        let target = !sense.0;
        sense.0 = target;
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset for the next phase *before* releasing
            // this one — nobody can re-arrive until they observe the
            // sense flip, so the counter is quiescent here.
            self.arrived.store(0, Ordering::Release);
            self.sense.store(target, Ordering::Release);
            let waiters = std::mem::take(&mut *self.parked.lock().expect("barrier poisoned"));
            for t in waiters {
                t.unpark();
            }
            return true;
        }
        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) != target {
            if spins < self.spin {
                spins += 1;
                std::hint::spin_loop();
            } else {
                // Register, then re-check, then park: the releaser flips
                // the sense before draining the park list, so either we
                // see the flip here, or our handle is in the list when
                // the releaser drains it. A handle left behind by the
                // re-check race only costs a spurious unpark, which the
                // loop's predicate absorbs.
                self.parked.lock().expect("barrier poisoned").push(std::thread::current());
                if self.sense.load(Ordering::Acquire) == target {
                    break;
                }
                std::thread::park();
            }
        }
        false
    }
}

struct Segment<T> {
    batch: Vec<T>,
    next: *mut Segment<T>,
}

/// An unbounded lock-free queue of `Vec<T>` segments, built for the
/// engine's one-deposit-per-window pattern: the producer pushes a whole
/// batch as one segment (one allocation, one CAS), the consumer takes
/// everything with one `swap`. FIFO per producer: segments come out in
/// push order, and elements within a segment keep their order.
///
/// Internally a Treiber-style LIFO list reversed at drain time — with a
/// single producer that reversal *is* FIFO. Safe (if unordered across
/// producers) even when misused with several producers, so the type
/// needs no runtime ownership checks.
pub struct SpscQueue<T> {
    head: AtomicPtr<Segment<T>>,
}

unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> Default for SpscQueue<T> {
    fn default() -> SpscQueue<T> {
        SpscQueue::new()
    }
}

impl<T> SpscQueue<T> {
    /// An empty queue.
    pub fn new() -> SpscQueue<T> {
        SpscQueue { head: AtomicPtr::new(ptr::null_mut()) }
    }

    /// Push one batch. Empty batches are dropped (a drain would observe
    /// nothing anyway, and the engine only deposits non-empty outboxes).
    pub fn push(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let seg = Box::into_raw(Box::new(Segment { batch, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            unsafe { (*seg).next = head };
            match self.head.compare_exchange_weak(head, seg, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Take every pushed batch, calling `f` once per batch in FIFO push
    /// order. Returns the number of batches drained.
    pub fn drain(&self, mut f: impl FnMut(Vec<T>)) -> usize {
        let mut head = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        // Reverse the LIFO list in place so `f` sees push order.
        let mut prev: *mut Segment<T> = ptr::null_mut();
        while !head.is_null() {
            let next = unsafe { (*head).next };
            unsafe { (*head).next = prev };
            prev = head;
            head = next;
        }
        let mut n = 0;
        while !prev.is_null() {
            let seg = unsafe { Box::from_raw(prev) };
            prev = seg.next;
            f(seg.batch);
            n += 1;
        }
        n
    }

    /// Whether nothing is currently pushed. Racy by nature (another
    /// thread may push concurrently); meant for asserts and tests.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        self.drain(drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        let mut s = BarrierSense::default();
        for _ in 0..1000 {
            assert!(b.wait(&mut s), "sole participant is always the leader");
        }
    }

    /// The classic lockstep check: N threads each add their round number
    /// to a shared sum between barrier phases; any thread racing a phase
    /// ahead (lost wakeup, sense confusion) makes a sum observably wrong.
    fn lockstep(threads: usize, rounds: u64, spin: u32) {
        let barrier = SpinBarrier::with_spin(threads, spin);
        let sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut sense = BarrierSense::default();
                    for round in 0..rounds {
                        barrier.wait(&mut sense);
                        sum.fetch_add(round, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        let expect = (round + 1) * round / 2 * threads as u64;
                        assert_eq!(sum.load(Ordering::Relaxed), expect, "round {round}");
                    }
                });
            }
        });
    }

    #[test]
    fn barrier_keeps_threads_in_lockstep_spinning() {
        lockstep(4, 500, DEFAULT_SPIN);
    }

    #[test]
    fn barrier_keeps_threads_in_lockstep_park_only() {
        // Spin budget 0 forces the park/unpark slow path on every wait:
        // 500 rounds x 4 threads of pure parking shakes out lost wakeups.
        lockstep(4, 500, 0);
    }

    #[test]
    fn barrier_leader_flag_is_unique_per_phase() {
        let threads = 3;
        let barrier = SpinBarrier::with_spin(threads, 8);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut sense = BarrierSense::default();
                    for _ in 0..200 {
                        if barrier.wait(&mut sense) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn spsc_fifo_within_and_across_batches() {
        let q = SpscQueue::new();
        q.push(vec![1, 2, 3]);
        q.push(Vec::new()); // dropped
        q.push(vec![4]);
        q.push(vec![5, 6]);
        let mut out = Vec::new();
        let batches = q.drain(|b| out.extend(b));
        assert_eq!(batches, 3);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        assert!(q.is_empty());
        assert_eq!(q.drain(|_| panic!("empty")), 0);
    }

    #[test]
    fn spsc_concurrent_producer_consumer_loses_nothing() {
        const BATCHES: u64 = 2_000;
        let q = Arc::new(SpscQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut next = 0u64;
                for _ in 0..BATCHES {
                    let batch: Vec<u64> = (next..next + 3).collect();
                    next += 3;
                    q.push(batch);
                }
            })
        };
        let mut seen = 0u64;
        while seen < BATCHES * 3 {
            q.drain(|batch| {
                for v in batch {
                    assert_eq!(v, seen, "FIFO violated under concurrency");
                    seen += 1;
                }
            });
            std::hint::spin_loop();
        }
        producer.join().expect("producer");
        assert!(q.is_empty());
    }

    #[test]
    fn spsc_drop_frees_undrained_segments() {
        let q = SpscQueue::new();
        q.push(vec![String::from("leak-check")]);
        q.push(vec![String::from("a"), String::from("b")]);
        drop(q); // Miri/asan would flag a leak or double free here.
    }
}
