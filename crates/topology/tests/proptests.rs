//! Property tests: structural invariants of generated fabrics hold for
//! arbitrary (valid) Clos parameters.

use proptest::prelude::*;

use dcn_topology::{Addressing, ClosParams, Fabric, FailureCase, PortKind, Role};

fn arb_params() -> impl Strategy<Value = ClosParams> {
    (2usize..=6, 1usize..=3, 1usize..=4, 1usize..=3, 1usize..=2).prop_map(
        |(pods, spines, tors, uplinks, servers)| ClosParams {
            pods,
            spines_per_pod: spines,
            tors_per_pod: tors,
            uplinks_per_spine: uplinks,
            servers_per_tor: servers,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_and_link_counts_are_consistent(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        prop_assert_eq!(f.nodes.len(), p.num_routers() + p.num_servers());
        let expect_links = p.pods * p.spines_per_pod * p.uplinks_per_spine
            + p.pods * p.tors_per_pod * p.spines_per_pod
            + p.num_servers();
        prop_assert_eq!(f.links.len(), expect_links);
    }

    #[test]
    fn every_port_backref_is_consistent(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        for (li, &(a, b)) in f.links.iter().enumerate() {
            let pa = f.ports[a].iter().find(|pr| pr.link == li).expect("a backref");
            let pb = f.ports[b].iter().find(|pr| pr.link == li).expect("b backref");
            prop_assert_eq!(pa.peer, b);
            prop_assert_eq!(pb.peer, a);
        }
    }

    #[test]
    fn router_port_order_is_up_down_host(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        for n in f.routers() {
            let mut seen_down = false;
            let mut seen_host = false;
            for pr in &f.ports[n] {
                match pr.kind {
                    PortKind::Up => {
                        prop_assert!(!seen_down && !seen_host, "up ports come first");
                    }
                    PortKind::Down => {
                        prop_assert!(!seen_host, "down ports precede host ports");
                        seen_down = true;
                    }
                    PortKind::Host => seen_host = true,
                }
            }
        }
    }

    #[test]
    fn tor_vids_are_unique_and_sequential(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        let mut vids = Vec::new();
        for n in f.routers() {
            if let Role::Tor { vid, .. } = f.nodes[n].role {
                vids.push(vid);
            }
        }
        let expect: Vec<u8> = (0..p.num_tors()).map(|i| 11 + i as u8).collect();
        prop_assert_eq!(vids, expect);
    }

    #[test]
    fn strided_wiring_covers_every_top_spine_once_per_pod(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        for k in 0..p.top_spines() {
            let t = f.top_spine(k);
            prop_assert_eq!(f.ports[t].len(), p.pods, "one down-link per PoD");
            for (pod, pr) in f.ports[t].iter().enumerate() {
                // Strided: top spine k connects to pod spine (k mod S).
                prop_assert_eq!(pr.peer, f.pod_spine(pod, k % p.spines_per_pod));
            }
        }
    }

    #[test]
    fn failure_points_are_valid_interfaces(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        for tc in FailureCase::ALL {
            let (node, port) = f.failure_point(tc);
            prop_assert!(port < f.ports[node].len());
            prop_assert!(f.nodes[node].role.is_router());
        }
    }

    #[test]
    fn addressing_is_complete_and_unique(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        let a = Addressing::new(&f);
        let mut subnets = std::collections::HashSet::new();
        for n in f.routers() {
            prop_assert!(a.asn(n).is_some());
            if matches!(f.nodes[n].role, Role::Tor { .. }) {
                let rack = a.rack_subnet(n).expect("rack subnet");
                prop_assert!(subnets.insert(rack.normalized().addr.0), "unique rack");
            }
        }
        for li in 0..f.links.len() {
            if let Some(la) = a.link(li) {
                prop_assert!(subnets.insert(la.subnet.normalized().addr.0), "unique link subnet");
                prop_assert_ne!(la.a_addr, la.b_addr);
            }
        }
    }

    #[test]
    fn every_server_has_an_address_behind_its_tor(p in arb_params()) {
        prop_assume!(p.validate().is_ok());
        let f = Fabric::build(p);
        let a = Addressing::new(&f);
        for pod in 0..p.pods {
            for t in 0..p.tors_per_pod {
                let tor = f.tor(pod, t);
                let rack = a.rack_subnet(tor).unwrap();
                for s in 0..p.servers_per_tor {
                    let ip = a.server_addr(tor, s).expect("server address");
                    prop_assert!(rack.contains(ip));
                }
            }
        }
    }
}
