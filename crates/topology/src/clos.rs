//! Folded-Clos fabric model and builder.


/// Parameters of a 3-tier folded-Clos fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClosParams {
    /// Number of PoDs (points of delivery).
    pub pods: usize,
    /// Tier-2 spines per PoD.
    pub spines_per_pod: usize,
    /// ToRs (leaves) per PoD.
    pub tors_per_pod: usize,
    /// Uplinks from each PoD spine into the top tier. The top tier has
    /// `spines_per_pod * uplinks_per_spine` spines.
    pub uplinks_per_spine: usize,
    /// Servers attached to each ToR (the paper could afford one per rack
    /// on FABRIC).
    pub servers_per_tor: usize,
}

impl ClosParams {
    /// The paper's 2-PoD test topology (Fig. 2 / Fig. 3): 4 ToRs, 4 PoD
    /// spines, 4 top spines, 1 server per rack — 12 routers.
    pub fn two_pod() -> ClosParams {
        ClosParams {
            pods: 2,
            spines_per_pod: 2,
            tors_per_pod: 2,
            uplinks_per_spine: 2,
            servers_per_tor: 1,
        }
    }

    /// The paper's 4-PoD test topology: 8 ToRs, 8 PoD spines, 4 top
    /// spines — 20 routers ("15 of the 20 routers updated…").
    pub fn four_pod() -> ClosParams {
        ClosParams { pods: 4, ..ClosParams::two_pod() }
    }

    /// A scaled topology with `pods` PoDs and otherwise the paper's
    /// per-PoD shape (used by the §IX scalability extension and the
    /// sharded-engine scaling benchmarks: 32, 64 and 128 PoDs are the
    /// supported mega-fabric shapes).
    ///
    /// The PoD count must be even and at least 2: each top-tier spine
    /// splits its down-facing radix symmetrically across PoD pairs, so an
    /// odd count would leave stranded ports. ToR VIDs derive from a
    /// one-byte subnet octet starting at 11, capping the fabric at 244
    /// ToRs — beyond 122 PoDs the per-PoD rack count narrows to one ToR
    /// so 128-PoD fabrics still address cleanly (the spine layers keep
    /// the paper's shape). Degenerate shapes are rejected with a
    /// descriptive error rather than building a fabric that violates the
    /// addressing scheme.
    pub fn scaled(pods: usize) -> Result<ClosParams, String> {
        if pods < 2 {
            return Err(format!(
                "scaled fabric needs at least 2 PoDs for a folded-Clos top tier, got {pods}"
            ));
        }
        if !pods.is_multiple_of(2) {
            return Err(format!(
                "scaled fabric needs an even PoD count so top-tier spine radix \
                 splits symmetrically across PoD pairs, got {pods}"
            ));
        }
        let base = ClosParams::two_pod();
        // 11 + pods * tors_per_pod must stay within the one-byte VID
        // space; 122 PoDs is the last shape that fits two ToRs per PoD.
        let max_two_tor_pods = (255 - 11) / base.tors_per_pod;
        let params = if pods <= max_two_tor_pods {
            ClosParams { pods, ..base }
        } else if pods <= 255 - 11 {
            ClosParams { pods, tors_per_pod: 1, ..base }
        } else {
            return Err(format!(
                "scaled fabric is capped at {} PoDs by one-byte ToR VID \
                 derivation (VIDs 11..=255, one ToR per PoD minimum), got {pods}",
                255 - 11
            ));
        };
        params.validate()?;
        Ok(params)
    }

    pub fn top_spines(&self) -> usize {
        self.spines_per_pod * self.uplinks_per_spine
    }

    pub fn num_tors(&self) -> usize {
        self.pods * self.tors_per_pod
    }

    pub fn num_routers(&self) -> usize {
        self.num_tors() + self.pods * self.spines_per_pod + self.top_spines()
    }

    pub fn num_servers(&self) -> usize {
        self.num_tors() * self.servers_per_tor
    }

    /// Validate structural constraints. Rejections name the offending
    /// parameter, its value, and the allowed range.
    pub fn validate(&self) -> Result<(), String> {
        if self.pods < 2 {
            return Err(format!(
                "pods = {} is below the folded-Clos minimum (allowed: pods >= 2)",
                self.pods
            ));
        }
        for (name, value) in [
            ("spines_per_pod", self.spines_per_pod),
            ("tors_per_pod", self.tors_per_pod),
            ("uplinks_per_spine", self.uplinks_per_spine),
        ] {
            if value == 0 {
                return Err(format!("{name} = 0 leaves a disconnected tier (allowed: {name} >= 1)"));
            }
        }
        // ToR VIDs are derived from the third subnet octet and must stay
        // unique within one byte, starting at 11.
        if 11 + self.num_tors() > 255 {
            return Err(format!(
                "pods * tors_per_pod = {} * {} = {} ToRs overflows one-byte VID \
                 derivation (VIDs 11..=255 allow at most 244 ToRs)",
                self.pods,
                self.tors_per_pod,
                self.num_tors()
            ));
        }
        Ok(())
    }
}

/// What a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Tier-1 leaf. `vid` is its MR-MTP root VID (= rack subnet third
    /// octet).
    Tor { pod: usize, idx: usize, vid: u8 },
    /// PoD-level spine (tier 2).
    PodSpine { pod: usize, idx: usize },
    /// Zone-level spine (tier 3 of a four-tier fabric). Zones group PoDs;
    /// the paper's §IX asks for exactly this kind of scaling study.
    ZoneSpine { zone: usize, idx: usize },
    /// Top-tier spine (tier 3 in the paper's fabrics, tier 4 in the
    /// four-tier extension).
    TopSpine { idx: usize },
    /// Tier-0 compute node.
    Server { pod: usize, tor_idx: usize, idx: usize },
}

impl Role {
    pub fn is_router(&self) -> bool {
        !matches!(self, Role::Server { .. })
    }
}

/// Direction of a port relative to the tier structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortKind {
    /// Toward a higher tier.
    Up,
    /// Toward a lower tier (router).
    Down,
    /// Toward a server rack.
    Host,
}

/// One port of one node.
#[derive(Clone, Copy, Debug)]
pub struct PortRef {
    /// Index into [`Fabric::links`].
    pub link: usize,
    /// The node on the other end.
    pub peer: usize,
    pub kind: PortKind,
}

/// One node of the fabric.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    pub name: String,
    pub role: Role,
    /// Tier per the paper's convention: servers are tier 0, ToRs tier 1,
    /// and the top tier is 3 (paper fabrics) or 4 (the multi-tier
    /// extension).
    pub tier: u8,
}

/// The four interface-failure points of the paper's Fig. 3. All failures
/// are on the link chain ToR₁₁ ↔ S1_1 ↔ S2_1 (named L-1-1, S-1-1, T-1
/// here); what varies is which *interface* fails, and therefore which end
/// learns of the failure from carrier loss vs. keepalive timeout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FailureCase {
    /// ToR₁₁'s uplink interface to S1_1 fails. The ToR sees carrier-down;
    /// S1_1 must time out.
    Tc1,
    /// S1_1's downlink interface to ToR₁₁ fails. S1_1 sees carrier-down;
    /// the ToR must time out.
    Tc2,
    /// S1_1's uplink interface to S2_1 fails. S1_1 sees carrier-down;
    /// S2_1 must time out.
    Tc3,
    /// S2_1's downlink interface to S1_1 fails. S2_1 sees carrier-down;
    /// S1_1 must time out.
    Tc4,
}

impl FailureCase {
    pub const ALL: [FailureCase; 4] =
        [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4];

    pub fn label(self) -> &'static str {
        match self {
            FailureCase::Tc1 => "TC1",
            FailureCase::Tc2 => "TC2",
            FailureCase::Tc3 => "TC3",
            FailureCase::Tc4 => "TC4",
        }
    }
}

/// Shape parameters of the four-tier extension (§IX: "scaling the DCN to
/// multiple tiers"). Zones group PoDs under a zone-spine layer; top
/// spines interconnect zones.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FourTierParams {
    pub zones: usize,
    pub pods_per_zone: usize,
    pub spines_per_pod: usize,
    pub tors_per_pod: usize,
    /// Uplinks from each PoD spine into its zone's spine layer (zone
    /// layer width = spines_per_pod × this).
    pub uplinks_per_spine: usize,
    /// Uplinks from each zone spine into the top tier (top tier width =
    /// zone layer width × this).
    pub zone_uplinks: usize,
    pub servers_per_tor: usize,
}

impl FourTierParams {
    /// A small but fully-meshed four-tier fabric: 2 zones × 2 PoDs,
    /// paper-like PoD internals — 32 routers.
    pub fn small() -> FourTierParams {
        FourTierParams {
            zones: 2,
            pods_per_zone: 2,
            spines_per_pod: 2,
            tors_per_pod: 2,
            uplinks_per_spine: 2,
            zone_uplinks: 2,
            servers_per_tor: 1,
        }
    }

    pub fn pods(&self) -> usize {
        self.zones * self.pods_per_zone
    }

    pub fn zone_width(&self) -> usize {
        self.spines_per_pod * self.uplinks_per_spine
    }

    pub fn top_spines(&self) -> usize {
        self.zone_width() * self.zone_uplinks
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.zones < 2 {
            return Err("need at least 2 zones".into());
        }
        if self.pods_per_zone == 0
            || self.spines_per_pod == 0
            || self.tors_per_pod == 0
            || self.uplinks_per_spine == 0
            || self.zone_uplinks == 0
        {
            return Err("all widths must be nonzero".into());
        }
        if 11 + self.pods() * self.tors_per_pod > 255 {
            return Err("too many ToRs for one-byte VID derivation".into());
        }
        Ok(())
    }
}

/// A fully-wired folded-Clos fabric: nodes, links (in wiring order — the
/// order determines port indices in the emulator), and per-node port maps.
/// Three-tier (the paper's fabrics) or four-tier (the §IX extension).
#[derive(Clone, Debug)]
pub struct Fabric {
    /// Per-PoD shape. For four-tier fabrics, `pods` is the global PoD
    /// count and `top_spines()` does **not** apply — use the explicit
    /// layout fields below.
    pub params: ClosParams,
    /// 3 for the paper's fabrics, 4 for the zone extension.
    pub tiers: u8,
    pub nodes: Vec<NodeSpec>,
    /// Links as (node a, node b). Node `a`'s port to this link is
    /// allocated before node `b`'s.
    pub links: Vec<(usize, usize)>,
    /// Per-node ports in allocation order (index = emulator `PortId`).
    pub ports: Vec<Vec<PortRef>>,
    // Layout offsets (node-index bases per layer).
    pod_spine_base: usize,
    zone_spine_base: usize,
    zones: usize,
    zone_width: usize,
    top_base: usize,
    top_count: usize,
    server_base: usize,
}

impl Fabric {
    /// Build the paper's three-tier fabric. Panics on invalid parameters
    /// (validate first for a `Result`).
    pub fn build(params: ClosParams) -> Fabric {
        params.validate().expect("invalid Clos parameters");
        let mut f = Fabric {
            params,
            tiers: 3,
            nodes: Vec::new(),
            links: Vec::new(),
            ports: Vec::new(),
            pod_spine_base: params.num_tors(),
            zone_spine_base: 0,
            zones: 0,
            zone_width: 0,
            top_base: params.num_tors() + params.pods * params.spines_per_pod,
            top_count: params.top_spines(),
            server_base: params.num_routers(),
        };

        // --- Nodes. Creation order fixes node indices: ToRs, PoD spines,
        // top spines, servers.
        for p in 0..params.pods {
            for i in 0..params.tors_per_pod {
                let vid = (11 + f.tor_count()) as u8;
                f.push_node(format!("L-{}-{}", p + 1, i + 1), Role::Tor { pod: p, idx: i, vid }, 1);
            }
        }
        for p in 0..params.pods {
            for j in 0..params.spines_per_pod {
                f.push_node(format!("S-{}-{}", p + 1, j + 1), Role::PodSpine { pod: p, idx: j }, 2);
            }
        }
        for k in 0..params.top_spines() {
            f.push_node(format!("T-{}", k + 1), Role::TopSpine { idx: k }, 3);
        }
        for p in 0..params.pods {
            for i in 0..params.tors_per_pod {
                for s in 0..params.servers_per_tor {
                    f.push_node(
                        format!("H-{}-{}-{}", p + 1, i + 1, s + 1),
                        Role::Server { pod: p, tor_idx: i, idx: s },
                        0,
                    );
                }
            }
        }

        // --- Links. Order matters: every router's up-ports first.
        //
        // (1) PoD-spine ↔ top-spine, PoD-major then spine then uplink.
        //     PoD spine j's up-ports come in stride order (T_j, T_{j+S});
        //     top spine k's down-ports come in PoD order.
        for p in 0..params.pods {
            for j in 0..params.spines_per_pod {
                for k in 0..params.uplinks_per_spine {
                    let spine = f.pod_spine(p, j);
                    let top = f.top_spine(j + k * params.spines_per_pod);
                    f.push_link(spine, PortKind::Up, top, PortKind::Down);
                }
            }
        }
        // (2) ToR ↔ PoD-spine: ToR's up-ports in spine order; spine's
        //     down-ports in ToR order.
        for p in 0..params.pods {
            for i in 0..params.tors_per_pod {
                for j in 0..params.spines_per_pod {
                    let tor = f.tor(p, i);
                    let spine = f.pod_spine(p, j);
                    f.push_link(tor, PortKind::Up, spine, PortKind::Down);
                }
            }
        }
        // (3) ToR ↔ servers: the rack port comes after all fabric ports
        //     (the paper's `leavesNetworkPortDict` tells each leaf which
        //     interface faces the rack).
        for p in 0..params.pods {
            for i in 0..params.tors_per_pod {
                for s in 0..params.servers_per_tor {
                    let tor = f.tor(p, i);
                    let server = f.server(p, i, s);
                    f.push_link(tor, PortKind::Host, server, PortKind::Up);
                }
            }
        }
        f
    }

    /// Build the four-tier zone extension: ToRs → PoD spines → zone
    /// spines → top spines, with strided plane wiring at every level and
    /// the same up-ports-first port numbering MR-MTP's VID derivation
    /// relies on.
    pub fn build_four_tier(p4: FourTierParams) -> Fabric {
        p4.validate().expect("invalid four-tier parameters");
        let pods = p4.pods();
        let params = ClosParams {
            pods,
            spines_per_pod: p4.spines_per_pod,
            tors_per_pod: p4.tors_per_pod,
            uplinks_per_spine: p4.uplinks_per_spine,
            servers_per_tor: p4.servers_per_tor,
        };
        let num_tors = pods * p4.tors_per_pod;
        let pod_spines = pods * p4.spines_per_pod;
        let zone_spines = p4.zones * p4.zone_width();
        let mut f = Fabric {
            params,
            tiers: 4,
            nodes: Vec::new(),
            links: Vec::new(),
            ports: Vec::new(),
            pod_spine_base: num_tors,
            zone_spine_base: num_tors + pod_spines,
            zones: p4.zones,
            zone_width: p4.zone_width(),
            top_base: num_tors + pod_spines + zone_spines,
            top_count: p4.top_spines(),
            server_base: num_tors + pod_spines + zone_spines + p4.top_spines(),
        };

        // Nodes: ToRs, PoD spines, zone spines, top spines, servers.
        for p in 0..pods {
            for i in 0..p4.tors_per_pod {
                let vid = (11 + f.tor_count()) as u8;
                f.push_node(format!("L-{}-{}", p + 1, i + 1), Role::Tor { pod: p, idx: i, vid }, 1);
            }
        }
        for p in 0..pods {
            for j in 0..p4.spines_per_pod {
                f.push_node(format!("S-{}-{}", p + 1, j + 1), Role::PodSpine { pod: p, idx: j }, 2);
            }
        }
        for z in 0..p4.zones {
            for m in 0..p4.zone_width() {
                f.push_node(format!("Z-{}-{}", z + 1, m + 1), Role::ZoneSpine { zone: z, idx: m }, 3);
            }
        }
        for k in 0..p4.top_spines() {
            f.push_node(format!("T-{}", k + 1), Role::TopSpine { idx: k }, 4);
        }
        for p in 0..pods {
            for i in 0..p4.tors_per_pod {
                for s in 0..p4.servers_per_tor {
                    f.push_node(
                        format!("H-{}-{}-{}", p + 1, i + 1, s + 1),
                        Role::Server { pod: p, tor_idx: i, idx: s },
                        0,
                    );
                }
            }
        }

        // Links, up-ports first at every node.
        // (1) zone spine ↔ top spine, strided.
        for z in 0..p4.zones {
            for m in 0..p4.zone_width() {
                for k in 0..p4.zone_uplinks {
                    let zs = f.zone_spine(z, m);
                    let top = f.top_spine(m + k * p4.zone_width());
                    f.push_link(zs, PortKind::Up, top, PortKind::Down);
                }
            }
        }
        // (2) PoD spine ↔ zone spine, strided within the zone.
        for z in 0..p4.zones {
            for pz in 0..p4.pods_per_zone {
                let pod = z * p4.pods_per_zone + pz;
                for j in 0..p4.spines_per_pod {
                    for k in 0..p4.uplinks_per_spine {
                        let ps = f.pod_spine(pod, j);
                        let zs = f.zone_spine(z, j + k * p4.spines_per_pod);
                        f.push_link(ps, PortKind::Up, zs, PortKind::Down);
                    }
                }
            }
        }
        // (3) ToR ↔ PoD spine.
        for pod in 0..pods {
            for i in 0..p4.tors_per_pod {
                for j in 0..p4.spines_per_pod {
                    let tor = f.tor(pod, i);
                    let ps = f.pod_spine(pod, j);
                    f.push_link(tor, PortKind::Up, ps, PortKind::Down);
                }
            }
        }
        // (4) ToR ↔ servers.
        for pod in 0..pods {
            for i in 0..p4.tors_per_pod {
                for s in 0..p4.servers_per_tor {
                    let tor = f.tor(pod, i);
                    let server = f.server(pod, i, s);
                    f.push_link(tor, PortKind::Host, server, PortKind::Up);
                }
            }
        }
        f
    }

    fn push_node(&mut self, name: String, role: Role, tier: u8) {
        self.nodes.push(NodeSpec { name, role, tier });
        self.ports.push(Vec::new());
    }

    fn tor_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.role, Role::Tor { .. }))
            .count()
    }

    fn push_link(&mut self, a: usize, ka: PortKind, b: usize, kb: PortKind) {
        let link = self.links.len();
        self.links.push((a, b));
        self.ports[a].push(PortRef { link, peer: b, kind: ka });
        self.ports[b].push(PortRef { link, peer: a, kind: kb });
    }

    // --- Node index helpers (must mirror creation order). ---

    /// Node index of ToR `idx` in (global) `pod`.
    pub fn tor(&self, pod: usize, idx: usize) -> usize {
        pod * self.params.tors_per_pod + idx
    }

    /// Node index of PoD spine `idx` in (global) `pod`.
    pub fn pod_spine(&self, pod: usize, idx: usize) -> usize {
        self.pod_spine_base + pod * self.params.spines_per_pod + idx
    }

    /// Node index of zone spine `idx` in `zone` (four-tier fabrics only).
    pub fn zone_spine(&self, zone: usize, idx: usize) -> usize {
        assert_eq!(self.tiers, 4, "zone spines exist only in four-tier fabrics");
        self.zone_spine_base + zone * self.zone_width + idx
    }

    /// Number of zones (0 for three-tier fabrics).
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Node index of top spine `idx`.
    pub fn top_spine(&self, idx: usize) -> usize {
        self.top_base + idx
    }

    /// Number of top-tier spines.
    pub fn top_spine_count(&self) -> usize {
        self.top_count
    }

    /// Node index of server `s` under ToR `idx` in (global) `pod`.
    pub fn server(&self, pod: usize, tor_idx: usize, s: usize) -> usize {
        self.server_base
            + (pod * self.params.tors_per_pod + tor_idx) * self.params.servers_per_tor
            + s
    }

    /// Number of router nodes.
    pub fn num_routers(&self) -> usize {
        self.server_base
    }

    /// Iterate over router node indices.
    pub fn routers(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].role.is_router())
    }

    /// The port index on `node` that leads to `peer`, if directly linked.
    pub fn port_to(&self, node: usize, peer: usize) -> Option<usize> {
        self.ports[node].iter().position(|p| p.peer == peer)
    }

    /// Router hops a data packet crosses between servers in *different*
    /// PoDs: up one side of the folded Clos and down the other (ToR →
    /// PoD spine → top spine → PoD spine → ToR = 5 in three-tier
    /// fabrics; four-tier adds a zone-spine layer each way). The traffic
    /// soak benchmark reports its workload as N flows × this many hops.
    pub fn cross_pod_router_hops(&self) -> usize {
        match self.tiers {
            3 => 5,
            _ => 7,
        }
    }

    /// MR-MTP root VID of a ToR node.
    pub fn tor_vid(&self, node: usize) -> Option<u8> {
        match self.nodes[node].role {
            Role::Tor { vid, .. } => Some(vid),
            _ => None,
        }
    }

    /// Node→shard map for the sharded parallel engine, sized for
    /// `workers` threads: the fabric-wide spine layers (top spines, and
    /// zone spines in four-tier fabrics) — the shared crossroads every
    /// PoD talks through — occupy the leading shard(s), while PoDs (each
    /// ToR/PoD spine/server subtree) are dealt round-robin across the
    /// remaining shards, keeping the dense intra-PoD mesh (the ToR↔spine
    /// links carrying most events) inside one shard.
    ///
    /// Normally one shard holds the whole spine layer. But when `workers`
    /// exceeds the PoD shard groups plus that one spine shard, the spare
    /// workers would idle — and the profiler shows the spine shard as the
    /// critical path at high worker counts — so the spine layer is itself
    /// partitioned round-robin across the spare shards (shards
    /// `0..spine_shards`). Spine nodes never link to each other within a
    /// tier, so splitting them adds no cross-shard link class that could
    /// shrink the engine's conservative lookahead: every cross-shard link
    /// remains an inter-tier uplink, whose serialization + propagation
    /// delay bounds the lookahead exactly as with one spine shard.
    ///
    /// `workers <= 1` (or a single PoD) collapses to one shard.
    pub fn shard_map(&self, workers: usize) -> Vec<u32> {
        let pod_shards = self.params.pods.min(workers.saturating_sub(1));
        if pod_shards == 0 {
            return vec![0; self.nodes.len()];
        }
        let spine_count = self
            .nodes
            .iter()
            .filter(|n| matches!(n.role, Role::TopSpine { .. } | Role::ZoneSpine { .. }))
            .count();
        let spine_shards = workers.saturating_sub(pod_shards).clamp(1, spine_count.max(1)) as u32;
        let mut spine_seq = 0u32;
        self.nodes
            .iter()
            .map(|n| match n.role {
                Role::TopSpine { .. } | Role::ZoneSpine { .. } => {
                    let s = spine_seq % spine_shards;
                    spine_seq += 1;
                    s
                }
                Role::Tor { pod, .. }
                | Role::PodSpine { pod, .. }
                | Role::Server { pod, .. } => spine_shards + (pod % pod_shards) as u32,
            })
            .collect()
    }

    /// Resolve a paper failure case to the failing `(node, port)`
    /// interface. Generic over tier count: TC3/TC4 sit on S-1-1's first
    /// uplink, whose remote end is T-1 in three-tier fabrics and Z-1-1 in
    /// four-tier ones.
    pub fn failure_point(&self, tc: FailureCase) -> (usize, usize) {
        let tor = self.tor(0, 0); // L-1-1 (ToR VID 11)
        let spine = self.pod_spine(0, 0); // S-1-1
        let upper = self.ports[spine][0].peer; // first uplink's far end
        match tc {
            FailureCase::Tc1 => (tor, self.port_to(tor, spine).unwrap()),
            FailureCase::Tc2 => (spine, self.port_to(spine, tor).unwrap()),
            FailureCase::Tc3 => (spine, 0),
            FailureCase::Tc4 => (upper, self.port_to(upper, spine).unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pod_counts_match_paper() {
        let p = ClosParams::two_pod();
        assert_eq!(p.num_routers(), 12);
        assert_eq!(p.num_tors(), 4);
        assert_eq!(p.top_spines(), 4);
        let f = Fabric::build(p);
        assert_eq!(f.nodes.len(), 12 + 4); // + servers
        // Links: 2*2*2 (spine-top) + 2*2*2 (tor-spine) + 4 (servers).
        assert_eq!(f.links.len(), 8 + 8 + 4);
    }

    #[test]
    fn four_pod_counts_match_paper() {
        let p = ClosParams::four_pod();
        assert_eq!(p.num_routers(), 20, "the paper says 15 of the 20 routers");
        let f = Fabric::build(p);
        assert_eq!(f.nodes.len(), 20 + 8);
    }

    #[test]
    fn cross_pod_hop_count_by_tier() {
        assert_eq!(Fabric::build(ClosParams::two_pod()).cross_pod_router_hops(), 5);
        assert_eq!(
            Fabric::build_four_tier(FourTierParams::small()).cross_pod_router_hops(),
            7
        );
    }

    #[test]
    fn tor_vids_start_at_11_in_rack_order() {
        let f = Fabric::build(ClosParams::two_pod());
        let vids: Vec<u8> = (0..4).map(|i| f.tor_vid(i).unwrap()).collect();
        assert_eq!(vids, vec![11, 12, 13, 14]);
        assert_eq!(f.nodes[f.tor(0, 0)].name, "L-1-1");
        assert_eq!(f.nodes[f.tor(1, 1)].name, "L-2-2");
    }

    #[test]
    fn strided_plane_wiring_matches_fig2() {
        let f = Fabric::build(ClosParams::two_pod());
        let s11 = f.pod_spine(0, 0);
        let s12 = f.pod_spine(0, 1);
        // S1_1's up-ports are its first two ports, to T-1 (S2_1) then T-3
        // (S2_3).
        assert_eq!(f.ports[s11][0].peer, f.top_spine(0));
        assert_eq!(f.ports[s11][1].peer, f.top_spine(2));
        assert_eq!(f.ports[s12][0].peer, f.top_spine(1));
        assert_eq!(f.ports[s12][1].peer, f.top_spine(3));
        assert!(matches!(f.ports[s11][0].kind, PortKind::Up));
        // Down-ports follow, in ToR order.
        assert_eq!(f.ports[s11][2].peer, f.tor(0, 0));
        assert_eq!(f.ports[s11][3].peer, f.tor(0, 1));
        assert!(matches!(f.ports[s11][2].kind, PortKind::Down));
    }

    #[test]
    fn tor_port_order_is_up_then_host() {
        let f = Fabric::build(ClosParams::two_pod());
        let t = f.tor(0, 0);
        assert_eq!(f.ports[t][0].peer, f.pod_spine(0, 0));
        assert_eq!(f.ports[t][1].peer, f.pod_spine(0, 1));
        assert!(matches!(f.ports[t][2].kind, PortKind::Host));
        assert_eq!(f.ports[t].len(), 3);
    }

    #[test]
    fn top_spine_down_ports_in_pod_order() {
        let f = Fabric::build(ClosParams::four_pod());
        let t1 = f.top_spine(0);
        assert_eq!(f.ports[t1].len(), 4, "one down-link per PoD");
        for (p, port) in f.ports[t1].iter().enumerate() {
            assert_eq!(port.peer, f.pod_spine(p, 0), "T-1 connects to S-p-1");
            assert!(matches!(port.kind, PortKind::Down));
        }
    }

    #[test]
    fn failure_points_resolve_to_expected_interfaces() {
        let f = Fabric::build(ClosParams::two_pod());
        let (n1, p1) = f.failure_point(FailureCase::Tc1);
        assert_eq!(n1, f.tor(0, 0));
        assert_eq!(p1, 0); // ToR's first up-port → S-1-1
        let (n2, p2) = f.failure_point(FailureCase::Tc2);
        assert_eq!(n2, f.pod_spine(0, 0));
        assert_eq!(p2, 2); // S-1-1's first down-port → L-1-1
        let (n3, p3) = f.failure_point(FailureCase::Tc3);
        assert_eq!((n3, p3), (f.pod_spine(0, 0), 0)); // up-port → T-1
        let (n4, p4) = f.failure_point(FailureCase::Tc4);
        assert_eq!(n4, f.top_spine(0));
        assert_eq!(p4, 0); // T-1's down-port → S-1-1 (PoD 1 first)
    }

    #[test]
    fn every_link_endpoint_has_a_backref() {
        let f = Fabric::build(ClosParams::four_pod());
        for (li, &(a, b)) in f.links.iter().enumerate() {
            assert!(f.ports[a].iter().any(|p| p.link == li && p.peer == b));
            assert!(f.ports[b].iter().any(|p| p.link == li && p.peer == a));
        }
    }

    #[test]
    fn validation_rejects_degenerate_fabrics() {
        assert!(ClosParams { pods: 1, ..ClosParams::two_pod() }.validate().is_err());
        assert!(ClosParams { spines_per_pod: 0, ..ClosParams::two_pod() }
            .validate()
            .is_err());
        let too_many = ClosParams { pods: 200, tors_per_pod: 2, ..ClosParams::two_pod() };
        assert!(too_many.validate().is_err());
        assert!(ClosParams::scaled(8).is_ok());
    }

    #[test]
    fn validation_errors_name_the_parameter_and_range() {
        // Every rejection path names the offending parameter, its value,
        // and the allowed range — not just a bare complaint.
        let err = ClosParams { pods: 1, ..ClosParams::two_pod() }.validate().unwrap_err();
        assert!(err.contains("pods = 1") && err.contains("pods >= 2"), "got: {err}");
        for (name, p) in [
            ("spines_per_pod", ClosParams { spines_per_pod: 0, ..ClosParams::two_pod() }),
            ("tors_per_pod", ClosParams { tors_per_pod: 0, ..ClosParams::two_pod() }),
            ("uplinks_per_spine", ClosParams { uplinks_per_spine: 0, ..ClosParams::two_pod() }),
        ] {
            let err = p.validate().unwrap_err();
            assert!(
                err.contains(&format!("{name} = 0")) && err.contains(&format!("{name} >= 1")),
                "{name}: got: {err}"
            );
        }
        let err = ClosParams { pods: 200, tors_per_pod: 2, ..ClosParams::two_pod() }
            .validate()
            .unwrap_err();
        assert!(
            err.contains("200 * 2 = 400 ToRs") && err.contains("at most 244"),
            "got: {err}"
        );
    }

    #[test]
    fn scaled_rejects_degenerate_pod_counts() {
        let err = ClosParams::scaled(1).unwrap_err();
        assert!(err.contains("at least 2 PoDs"), "got: {err}");
        let err = ClosParams::scaled(3).unwrap_err();
        assert!(err.contains("even PoD count"), "got: {err}");
        assert!(ClosParams::scaled(0).is_err());
        // Even counts within the addressing budget build fine.
        let p = ClosParams::scaled(16).unwrap();
        assert_eq!(p.pods, 16);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn scaled_supports_mega_fabric_shapes() {
        // The benchmark ladder: 32/64 keep the paper's two-ToR PoDs.
        for pods in [32, 64] {
            let p = ClosParams::scaled(pods).unwrap();
            assert_eq!((p.pods, p.tors_per_pod), (pods, 2));
            assert!(p.validate().is_ok());
        }
        assert_eq!(ClosParams::scaled(64).unwrap().num_routers(), 260);
        // Past the two-ToR VID budget the rack layer narrows to one ToR
        // per PoD instead of failing.
        let p = ClosParams::scaled(128).unwrap();
        assert_eq!((p.pods, p.tors_per_pod), (128, 1));
        assert!(p.validate().is_ok());
        // The hard cap is descriptive.
        let err = ClosParams::scaled(246).unwrap_err();
        assert!(err.contains("capped at 244 PoDs"), "got: {err}");
    }

    #[test]
    fn shard_map_groups_pods_and_isolates_spines() {
        let f = Fabric::build(ClosParams::scaled(8).unwrap());
        let map = f.shard_map(4);
        assert_eq!(map.len(), f.nodes.len());
        // Workers <= pod groups + 1: spines share shard 0, PoDs
        // round-robin over shards 1..=3.
        for k in 0..f.top_spine_count() {
            assert_eq!(map[f.top_spine(k)], 0);
        }
        for p in 0..8 {
            let expect = 1 + (p % 3) as u32;
            assert_eq!(map[f.tor(p, 0)], expect);
            assert_eq!(map[f.pod_spine(p, 1)], expect);
            assert_eq!(map[f.server(p, 0, 0)], expect);
        }
        // Degenerate worker counts collapse to one shard.
        assert!(f.shard_map(1).iter().all(|&s| s == 0));
        assert!(f.shard_map(0).iter().all(|&s| s == 0));
    }

    #[test]
    fn shard_map_splits_spines_when_workers_exceed_pod_groups() {
        let f = Fabric::build(ClosParams::scaled(8).unwrap());
        let tops = f.top_spine_count();
        // workers = pods + 2: one spare worker beyond one-shard-per-PoD
        // plus a spine shard, so the spine layer splits in two.
        let map = f.shard_map(10);
        let spine_shards: std::collections::BTreeSet<u32> =
            (0..tops).map(|k| map[f.top_spine(k)]).collect();
        assert_eq!(spine_shards, [0u32, 1].into_iter().collect());
        // Round-robin balance: shard populations differ by at most one.
        let per_shard = [
            (0..tops).filter(|&k| map[f.top_spine(k)] == 0).count(),
            (0..tops).filter(|&k| map[f.top_spine(k)] == 1).count(),
        ];
        assert!(per_shard[0].abs_diff(per_shard[1]) <= 1, "{per_shard:?}");
        // PoDs follow after the spine shards, one shard each, ids dense.
        for p in 0..8 {
            assert_eq!(map[f.tor(p, 0)], 2 + p as u32);
            assert_eq!(map[f.pod_spine(p, 0)], 2 + p as u32);
        }
        assert_eq!(*map.iter().max().unwrap(), 9);
        // Spine shards never exceed the spine population even with an
        // absurd worker count.
        let wide = f.shard_map(1000);
        let wide_spines: std::collections::BTreeSet<u32> =
            (0..tops).map(|k| wide[f.top_spine(k)]).collect();
        assert_eq!(wide_spines.len(), tops);
    }

    #[test]
    fn tier_assignment() {
        let f = Fabric::build(ClosParams::two_pod());
        assert_eq!(f.nodes[f.tor(0, 0)].tier, 1);
        assert_eq!(f.nodes[f.pod_spine(0, 0)].tier, 2);
        assert_eq!(f.nodes[f.top_spine(0)].tier, 3);
        assert_eq!(f.nodes[f.server(0, 0, 0)].tier, 0);
    }
}

#[cfg(test)]
mod four_tier_tests {
    use super::*;

    #[test]
    fn small_four_tier_counts_and_layout() {
        let p4 = FourTierParams::small();
        let f = Fabric::build_four_tier(p4);
        assert_eq!(f.tiers, 4);
        assert_eq!(f.zones(), 2);
        // 8 ToRs + 8 PoD spines + 8 zone spines + 8 top = 32 routers.
        assert_eq!(f.num_routers(), 32);
        assert_eq!(f.top_spine_count(), 8);
        assert_eq!(f.nodes[f.zone_spine(0, 0)].name, "Z-1-1");
        assert_eq!(f.nodes[f.zone_spine(1, 3)].name, "Z-2-4");
        assert_eq!(f.nodes[f.zone_spine(0, 0)].tier, 3);
        assert_eq!(f.nodes[f.top_spine(0)].tier, 4);
        assert_eq!(f.nodes[f.server(3, 1, 0)].tier, 0);
    }

    #[test]
    fn four_tier_port_order_is_up_first() {
        let f = Fabric::build_four_tier(FourTierParams::small());
        // Zone spine: 2 up-ports (to top) then one down-port per PoD in
        // the zone (the stride maps each (spine, uplink) pair to a
        // distinct zone spine).
        let zs = f.zone_spine(0, 0);
        assert!(matches!(f.ports[zs][0].kind, PortKind::Up));
        assert!(matches!(f.ports[zs][1].kind, PortKind::Up));
        assert!(matches!(f.ports[zs][2].kind, PortKind::Down));
        assert_eq!(f.ports[zs].len(), 2 + 2);
        // PoD spine: ups to zone spines first.
        let ps = f.pod_spine(0, 0);
        assert_eq!(f.ports[ps][0].peer, f.zone_spine(0, 0));
        assert_eq!(f.ports[ps][1].peer, f.zone_spine(0, 2), "strided");
        // Top spine: one down-link per zone spine index match per zone.
        let t = f.top_spine(0);
        assert_eq!(f.ports[t].len(), 2, "one link per zone");
        assert_eq!(f.ports[t][0].peer, f.zone_spine(0, 0));
        assert_eq!(f.ports[t][1].peer, f.zone_spine(1, 0));
    }

    #[test]
    fn four_tier_failure_points_resolve() {
        let f = Fabric::build_four_tier(FourTierParams::small());
        let (n3, p3) = f.failure_point(FailureCase::Tc3);
        assert_eq!((n3, p3), (f.pod_spine(0, 0), 0));
        let (n4, _) = f.failure_point(FailureCase::Tc4);
        assert_eq!(n4, f.zone_spine(0, 0), "TC4 moves to the zone layer");
    }

    #[test]
    fn four_tier_backrefs_consistent() {
        let f = Fabric::build_four_tier(FourTierParams::small());
        for (li, &(a, b)) in f.links.iter().enumerate() {
            assert!(f.ports[a].iter().any(|p| p.link == li && p.peer == b));
            assert!(f.ports[b].iter().any(|p| p.link == li && p.peer == a));
        }
    }
}
