//! Router-configuration rendering — the paper's §VII-G comparison.
//!
//! BGP needs one configuration *per router*, growing with its interface
//! count (Listing 1); MR-MTP needs a single JSON file for the whole fabric
//! that tells each node its tier and each leaf its rack-facing interface
//! (Listing 2). [`ConfigStats`] quantifies the gap.

use crate::addressing::Addressing;
use crate::clos::{Fabric, PortKind, Role};
use crate::json::Json;

/// Render the FRR-style BGP configuration for one router, in the shape of
/// the paper's Listing 1 (datacenter defaults, per-neighbor BFD peers with
/// a lowered-interval profile).
pub fn bgp_router_config(fabric: &Fabric, addr: &Addressing, node: usize, bfd: bool) -> String {
    let spec = &fabric.nodes[node];
    assert!(spec.role.is_router(), "servers do not run BGP");
    let asn = addr.asn(node).expect("router has an ASN");
    let mut out = String::new();
    out.push_str("frr version 10.0\n");
    out.push_str("frr defaults datacenter\n");
    out.push_str(&format!("hostname {}\n", spec.name));
    out.push_str("log file /var/log/frr/bgpd.log\n");
    out.push_str("log timestamp precision 3\n");
    out.push_str("no ipv6 forwarding\n");
    out.push_str("debug bgp updates in\ndebug bgp updates out\ndebug bgp updates detail\n");
    out.push_str(&format!("router bgp {asn}\n"));
    out.push_str(" timers bgp 1 3\n");
    let mut peers = Vec::new();
    for port in &fabric.ports[node] {
        if matches!(port.kind, PortKind::Host) {
            continue;
        }
        let la = addr.link(port.link).expect("router link has addressing");
        let (a, _) = fabric.links[port.link];
        let peer_ip = if a == node { la.b_addr } else { la.a_addr };
        let peer_as = addr.asn(port.peer).expect("peer is a router");
        out.push_str(&format!(" neighbor {peer_ip} remote-as {peer_as}\n"));
        if bfd {
            out.push_str(&format!(" neighbor {peer_ip} bfd\n"));
        }
        peers.push(peer_ip);
    }
    // Originate the rack subnet on ToRs.
    if let Some(rack) = addr.rack_subnet(node) {
        out.push_str(" address-family ipv4 unicast\n");
        out.push_str(&format!("  network {rack}\n"));
        out.push_str("  maximum-paths 64\n");
        out.push_str(" exit-address-family\n");
    } else {
        out.push_str(" address-family ipv4 unicast\n");
        out.push_str("  maximum-paths 64\n");
        out.push_str(" exit-address-family\n");
    }
    if bfd {
        out.push_str("bfd\n profile lowerIntervals\n  transmit-interval 100\n  receive-interval 100\n");
        for peer_ip in peers {
            out.push_str(&format!(" peer {peer_ip}\n  profile lowerIntervals\n"));
        }
    }
    out
}

/// Render the single MR-MTP fabric configuration file, in the shape of the
/// paper's Listing 2: leaf list, the leaf→rack-interface dictionary, top
/// spines, and per-PoD spine lists. Nodes learn everything else (VIDs,
/// neighbors, trees) from the protocol itself.
pub fn mrmtp_fabric_config(fabric: &Fabric) -> String {
    let leaves: Vec<Json> = fabric
        .routers()
        .filter(|&n| matches!(fabric.nodes[n].role, Role::Tor { .. }))
        .map(|n| Json::str(&fabric.nodes[n].name))
        .collect();
    // Which interface on each leaf faces the rack (the only per-node fact
    // MR-MTP cannot self-derive).
    let mut leaf_ports = Vec::new();
    for n in fabric.routers() {
        if !matches!(fabric.nodes[n].role, Role::Tor { .. }) {
            continue;
        }
        let rack_port = fabric.ports[n]
            .iter()
            .position(|p| matches!(p.kind, PortKind::Host))
            .expect("every leaf has a rack port");
        leaf_ports.push((
            fabric.nodes[n].name.clone(),
            Json::str(format!("eth{rack_port}")),
        ));
    }
    let top: Vec<Json> = (0..fabric.params.top_spines())
        .map(|k| Json::str(&fabric.nodes[fabric.top_spine(k)].name))
        .collect();
    let pods: Vec<Json> = (0..fabric.params.pods)
        .map(|p| {
            let spines: Vec<Json> = (0..fabric.params.spines_per_pod)
                .map(|j| Json::str(&fabric.nodes[fabric.pod_spine(p, j)].name))
                .collect();
            Json::obj(vec![("podSpines", Json::Arr(spines))])
        })
        .collect();
    Json::obj(vec![(
        "topology",
        Json::Obj(vec![
            ("leaves".into(), Json::Arr(leaves)),
            (
                "leavesNetworkPortDict".into(),
                Json::Obj(leaf_ports),
            ),
            ("topSpines".into(), Json::Arr(top)),
            ("pods".into(), Json::Arr(pods)),
        ]),
    )])
    .pretty()
}

/// Configuration-burden statistics for the §VII-G comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigStats {
    pub routers: usize,
    /// Total configuration bytes across the fabric.
    pub total_bytes: usize,
    /// Total non-empty configuration lines across the fabric.
    pub total_lines: usize,
}

impl ConfigStats {
    /// Stats for configuring the whole fabric with BGP (one file per
    /// router).
    pub fn for_bgp(fabric: &Fabric, addr: &Addressing, bfd: bool) -> ConfigStats {
        let mut total_bytes = 0;
        let mut total_lines = 0;
        let mut routers = 0;
        for n in fabric.routers() {
            let cfg = bgp_router_config(fabric, addr, n, bfd);
            total_bytes += cfg.len();
            total_lines += cfg.lines().filter(|l| !l.trim().is_empty()).count();
            routers += 1;
        }
        ConfigStats { routers, total_bytes, total_lines }
    }

    /// Stats for configuring the whole fabric with MR-MTP (one shared
    /// file).
    pub fn for_mrmtp(fabric: &Fabric) -> ConfigStats {
        let cfg = mrmtp_fabric_config(fabric);
        ConfigStats {
            routers: fabric.num_routers(),
            total_bytes: cfg.len(),
            total_lines: cfg.lines().filter(|l| !l.trim().is_empty()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::ClosParams;

    fn four_pod() -> (Fabric, Addressing) {
        let f = Fabric::build(ClosParams::four_pod());
        let a = Addressing::new(&f);
        (f, a)
    }

    #[test]
    fn t1_config_matches_listing1_shape() {
        let (f, a) = four_pod();
        let cfg = bgp_router_config(&f, &a, f.top_spine(0), true);
        assert!(cfg.contains("router bgp 64512"));
        assert!(cfg.contains("timers bgp 1 3"));
        // T-1 peers with one spine per PoD: four neighbors, ASes 64513-16.
        for asn in [64513, 64514, 64515, 64516] {
            assert!(cfg.contains(&format!("remote-as {asn}")), "missing {asn}:\n{cfg}");
        }
        assert_eq!(cfg.matches("remote-as").count(), 4);
        assert_eq!(cfg.matches(" bfd\n").count(), 4);
        assert!(cfg.contains("profile lowerIntervals"));
        assert!(cfg.contains("transmit-interval 100"));
    }

    #[test]
    fn tor_config_originates_rack_subnet() {
        let (f, a) = four_pod();
        let cfg = bgp_router_config(&f, &a, f.tor(0, 0), false);
        assert!(cfg.contains("network 192.168.11.0/24"));
        assert!(!cfg.contains("bfd"));
        assert_eq!(cfg.matches("remote-as").count(), 2, "ToR has two uplinks");
    }

    #[test]
    fn mrmtp_config_matches_listing2_shape() {
        let (f, _) = four_pod();
        let cfg = mrmtp_fabric_config(&f);
        assert!(cfg.contains("\"leaves\""));
        assert!(cfg.contains("\"leavesNetworkPortDict\""));
        assert!(cfg.contains("\"topSpines\": [\"T-1\", \"T-2\", \"T-3\", \"T-4\"]"));
        assert!(cfg.contains("\"L-4-2\""));
        assert_eq!(cfg.matches("podSpines").count(), 4);
        // Every leaf's rack port is its third interface (two uplinks
        // first).
        assert!(cfg.contains("\"L-1-1\": \"eth2\""));
    }

    #[test]
    fn config_burden_gap_grows_with_fabric() {
        let (f2, a2) = (Fabric::build(ClosParams::two_pod()), ());
        let _ = a2;
        let addr2 = Addressing::new(&f2);
        let (f4, addr4) = four_pod();
        let bgp2 = ConfigStats::for_bgp(&f2, &addr2, true);
        let bgp4 = ConfigStats::for_bgp(&f4, &addr4, true);
        let mtp2 = ConfigStats::for_mrmtp(&f2);
        let mtp4 = ConfigStats::for_mrmtp(&f4);
        // BGP config grows with routers and interfaces; MR-MTP's single
        // file is far smaller, and the gap widens from 2-PoD to 4-PoD.
        assert!(bgp2.total_bytes > 4 * mtp2.total_bytes);
        assert!(bgp4.total_bytes > 4 * mtp4.total_bytes);
        assert!(
            bgp4.total_bytes as f64 / mtp4.total_bytes as f64
                > bgp2.total_bytes as f64 / mtp2.total_bytes as f64
        );
        assert!(bgp4.total_lines > bgp2.total_lines);
    }
}
