//! # dcn-topology — folded-Clos fabric construction
//!
//! Builds the 3-tier folded-Clos topologies of the paper (Figs. 2–3),
//! generalized over PoD count, spines per PoD, ToRs per PoD, uplinks per
//! spine and servers per ToR. The builder fixes three conventions that the
//! rest of the reproduction depends on:
//!
//! 1. **Wiring order = port numbering.** Links are emitted so that every
//!    router's *up-facing* ports come first, giving the 1-based port labels
//!    MR-MTP appends during VID derivation. With the paper's 2-PoD
//!    topology this reproduces Fig. 2 exactly: S1_1 acquires `11.1` via
//!    ToR 11's port 1, S2_1 acquires `11.1.1` via S1_1's port 1, S2_3
//!    acquires `11.1.2` via S1_1's port 2.
//! 2. **Strided top-tier plane wiring.** PoD spine *j* uplinks to top
//!    spines `{j, j+S, j+2S, …}` (S = spines per PoD), so S1_1 connects to
//!    S2_1/S2_3 and S1_2 to S2_2/S2_4 as in Fig. 2.
//! 3. **Addressing per the paper.** Rack subnets `192.168.V.0/24` with the
//!    third octet `V = 11 + global ToR index` (the MR-MTP VID source),
//!    `/24` point-to-point router subnets under `172.16.0.0/16`
//!    (Listing 3), and the RFC 7938 ASN plan of Listing 1 (top spines
//!    64512, PoD-p spines 64513+p, per-ToR ASNs from 65001).
//!
//! The crate also renders the two configuration artifacts the paper
//! compares in §VII-G: per-router FRR-style BGP configuration (Listing 1)
//! and the single MR-MTP JSON file (Listing 2).

pub mod addressing;
pub mod clos;
pub mod config;
pub mod json;

pub use addressing::{Addressing, RouterLinkAddr};
pub use clos::{ClosParams, Fabric, FailureCase, FourTierParams, NodeSpec, PortKind, PortRef, Role};
pub use config::{bgp_router_config, mrmtp_fabric_config, ConfigStats};
