//! IP and ASN assignment for a fabric.
//!
//! Reproduces the paper's plan:
//! * rack subnets `192.168.V.0/24`, `V = 11 + global ToR index` (the MR-MTP
//!   VID derivation input), servers at `.1`, `.2`, …, ToR rack interface at
//!   `.254`;
//! * one `/24` under `172.16.0.0/16` per router-to-router link (Listing 3
//!   shows `172.16.0.0/24`, `172.16.8.0/24`, …), with the *upper*-tier end
//!   at `.1` and the lower end at `.2` (Listing 1: T-1's neighbors are all
//!   `.2`);
//! * RFC 7938 ASNs: all top spines share 64512, PoD-`p` spines share
//!   `64513 + p`, ToRs get unique ASNs from 65001 (Listing 1: T-1 is
//!   64512 and peers with 64513…64516 in the 4-PoD fabric).

use dcn_wire::{IpAddr4, Prefix};

use crate::clos::{Fabric, Role};

/// Addresses of the two ends of one router-to-router link.
#[derive(Clone, Copy, Debug)]
pub struct RouterLinkAddr {
    pub subnet: Prefix,
    /// Address of the `a`-side (first) endpoint of `Fabric::links[i]`.
    pub a_addr: IpAddr4,
    /// Address of the `b`-side endpoint.
    pub b_addr: IpAddr4,
}

/// Complete addressing for a fabric.
#[derive(Clone, Debug)]
pub struct Addressing {
    /// Rack subnet per ToR node index (None for non-ToRs).
    rack_subnet: Vec<Option<Prefix>>,
    /// Link addressing per link index (None for server links).
    link_addr: Vec<Option<RouterLinkAddr>>,
    /// ASN per node index (None for servers).
    asn: Vec<Option<u32>>,
    /// Router ID per router node index.
    router_id: Vec<u32>,
}

impl Addressing {
    pub fn new(fabric: &Fabric) -> Addressing {
        let n = fabric.nodes.len();
        let mut rack_subnet = vec![None; n];
        let mut asn = vec![None; n];
        let mut router_id = vec![0u32; n];

        for (i, node) in fabric.nodes.iter().enumerate() {
            match node.role {
                Role::Tor { vid, .. } => {
                    rack_subnet[i] = Some(Prefix::new(IpAddr4::new(192, 168, vid, 0), 24));
                    asn[i] = Some(65001 + (vid as u32 - 11));
                }
                Role::PodSpine { pod, .. } => {
                    asn[i] = Some(64513 + pod as u32);
                }
                Role::ZoneSpine { zone, .. } => {
                    // Zone-level aggregation layer of the four-tier
                    // extension: one AS per zone, above the PoD range.
                    asn[i] = Some(64800 + zone as u32);
                }
                Role::TopSpine { .. } => {
                    asn[i] = Some(64512);
                }
                Role::Server { .. } => {}
            }
            // Router IDs: 10.0.0.x by node index — unique and stable.
            router_id[i] = IpAddr4::new(10, 0, (i >> 8) as u8, (i & 0xFF) as u8).0;
        }

        // One /24 per router-to-router link, allocated by a dense index:
        // 172.(16+i/65536).((i/256)%256).0/24 with i < 256 giving the
        // 172.16.x.0/24 look of Listing 3. The builder emits links as
        // (lower tier, upper tier); Listing 1 puts the upper end at .1.
        let mut link_addr = vec![None; fabric.links.len()];
        let mut idx: u32 = 0;
        for (li, &(a, b)) in fabric.links.iter().enumerate() {
            if !fabric.nodes[a].role.is_router() || !fabric.nodes[b].role.is_router() {
                continue; // rack links use the rack subnet
            }
            let second = 16 + (idx >> 8) as u8;
            let third = (idx & 0xFF) as u8;
            let subnet = Prefix::new(IpAddr4::new(172, second, third, 0), 24);
            debug_assert!(idx < 256 * 240, "link-subnet space exhausted");
            let upper_is_b = fabric.nodes[b].tier > fabric.nodes[a].tier;
            let (a_last, b_last) = if upper_is_b { (2, 1) } else { (1, 2) };
            link_addr[li] = Some(RouterLinkAddr {
                subnet,
                a_addr: IpAddr4::new(172, second, third, a_last),
                b_addr: IpAddr4::new(172, second, third, b_last),
            });
            idx += 1;
        }

        Addressing { rack_subnet, link_addr, asn, router_id }
    }

    /// The rack subnet of a ToR.
    pub fn rack_subnet(&self, node: usize) -> Option<Prefix> {
        self.rack_subnet[node]
    }

    /// The ToR's own address on its rack subnet (`.254`).
    pub fn tor_rack_addr(&self, node: usize) -> Option<IpAddr4> {
        self.rack_subnet[node].map(|p| IpAddr4(p.addr.0 | 254))
    }

    /// Address of server `s` (0-based) on its ToR's rack subnet.
    pub fn server_addr(&self, tor_node: usize, s: usize) -> Option<IpAddr4> {
        self.rack_subnet[tor_node].map(|p| IpAddr4(p.addr.0 | (s as u32 + 1)))
    }

    /// Addressing of a router-to-router link.
    pub fn link(&self, link_idx: usize) -> Option<RouterLinkAddr> {
        self.link_addr[link_idx]
    }

    /// The address of `node`'s end of link `link_idx`.
    pub fn addr_on_link(&self, fabric: &Fabric, node: usize, link_idx: usize) -> Option<IpAddr4> {
        let la = self.link_addr[link_idx]?;
        let (a, _b) = fabric.links[link_idx];
        Some(if a == node { la.a_addr } else { la.b_addr })
    }

    /// ASN of a router.
    pub fn asn(&self, node: usize) -> Option<u32> {
        self.asn[node]
    }

    /// BGP router ID of a router.
    pub fn router_id(&self, node: usize) -> u32 {
        self.router_id[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::ClosParams;

    #[test]
    fn rack_subnets_match_paper() {
        let f = Fabric::build(ClosParams::two_pod());
        let a = Addressing::new(&f);
        assert_eq!(a.rack_subnet(f.tor(0, 0)).unwrap().to_string(), "192.168.11.0/24");
        assert_eq!(a.rack_subnet(f.tor(1, 1)).unwrap().to_string(), "192.168.14.0/24");
        assert_eq!(a.server_addr(f.tor(0, 0), 0).unwrap().to_string(), "192.168.11.1");
        assert_eq!(a.tor_rack_addr(f.tor(0, 0)).unwrap().to_string(), "192.168.11.254");
        assert_eq!(a.rack_subnet(f.pod_spine(0, 0)), None);
    }

    #[test]
    fn asn_plan_matches_listing1() {
        let f = Fabric::build(ClosParams::four_pod());
        let a = Addressing::new(&f);
        assert_eq!(a.asn(f.top_spine(0)), Some(64512));
        assert_eq!(a.asn(f.top_spine(3)), Some(64512));
        assert_eq!(a.asn(f.pod_spine(0, 0)), Some(64513));
        assert_eq!(a.asn(f.pod_spine(3, 1)), Some(64516));
        assert_eq!(a.asn(f.tor(0, 0)), Some(65001));
        assert_eq!(a.asn(f.server(0, 0, 0)), None);
    }

    #[test]
    fn link_addressing_upper_end_is_dot1() {
        let f = Fabric::build(ClosParams::two_pod());
        let a = Addressing::new(&f);
        // Link 0 is (S-1-1, T-1): b = top spine = upper ⇒ b gets .1.
        let la = a.link(0).unwrap();
        assert_eq!(la.b_addr.octets()[3], 1);
        assert_eq!(la.a_addr.octets()[3], 2);
        assert!(la.subnet.contains(la.a_addr));
        assert!(la.subnet.contains(la.b_addr));
    }

    #[test]
    fn link_subnets_are_unique() {
        let f = Fabric::build(ClosParams::scaled(8).unwrap());
        let a = Addressing::new(&f);
        let mut seen = std::collections::HashSet::new();
        for li in 0..f.links.len() {
            if let Some(la) = a.link(li) {
                assert!(seen.insert(la.subnet.normalized().addr.0), "dup {:?}", la.subnet);
            }
        }
    }

    #[test]
    fn server_links_have_no_link_addressing() {
        let f = Fabric::build(ClosParams::two_pod());
        let a = Addressing::new(&f);
        // The last links are rack links.
        let last = f.links.len() - 1;
        assert!(a.link(last).is_none());
    }

    #[test]
    fn router_ids_are_unique() {
        let f = Fabric::build(ClosParams::four_pod());
        let a = Addressing::new(&f);
        let mut ids: Vec<u32> = f.routers().map(|r| a.router_id(r)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), f.num_routers());
    }
}
