//! A minimal JSON value and pretty-printer.
//!
//! Only the MR-MTP configuration file (the paper's Listing 2) is emitted
//! as JSON, and `serde_json` is not in the sanctioned offline dependency
//! set, so this hand-rolled emitter covers exactly what we need: objects
//! with ordered keys, arrays, and strings/numbers with standard escaping.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    Str(String),
    Num(i64),
    Bool(bool),
    Arr(Vec<Json>),
    /// Ordered key/value pairs (insertion order preserved — configuration
    /// files read better that way).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Render with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Short arrays of scalars render on one line (matches the
                // look of the paper's listing).
                let scalar = items.iter().all(|i| matches!(i, Json::Str(_) | Json::Num(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    let _ = write!(out, "\"{k}\": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Num(42).pretty(), "42");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::str("eth3").pretty(), "\"eth3\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").pretty(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").pretty(), "\"\\u0001\"");
    }

    #[test]
    fn scalar_arrays_inline() {
        let j = Json::arr([Json::str("L-1-1"), Json::str("L-1-2")]);
        assert_eq!(j.pretty(), r#"["L-1-1", "L-1-2"]"#);
        assert_eq!(Json::arr([]).pretty(), "[]");
    }

    #[test]
    fn nested_object_renders_indented() {
        let j = Json::obj(vec![
            ("topology", Json::obj(vec![("leaves", Json::arr([Json::str("L-1-1")]))])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"topology\": {"));
        assert!(s.contains("  \"leaves\": [\"L-1-1\"]"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn array_of_objects_is_multiline() {
        let j = Json::arr([Json::obj(vec![("a", Json::Num(1))]), Json::obj(vec![])]);
        let s = j.pretty();
        assert!(s.starts_with("[\n"));
        assert!(s.contains("{}"));
    }
}
