//! The typed metrics registry: named series scoped to the fabric, a node
//! or a link, each backed by a fixed-capacity ring of timestamped samples.

use std::collections::BTreeMap;

use dcn_sim::time::Time;

use crate::ring::RingBuffer;

/// What a series is attached to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Scope {
    /// Fabric-wide (engine counters, trace sizes).
    Global,
    /// One router/host, by node index.
    Node(u32),
    /// One physical link, by link index.
    Link(u32),
}

impl Scope {
    /// Stable tag used in JSONL export.
    pub fn tag(self) -> &'static str {
        match self {
            Scope::Global => "global",
            Scope::Node(_) => "node",
            Scope::Link(_) => "link",
        }
    }

    /// The scope's numeric id (0 for global).
    pub fn id(self) -> u32 {
        match self {
            Scope::Global => 0,
            Scope::Node(i) | Scope::Link(i) => i,
        }
    }
}

/// Whether a series is a monotonic counter or a point-in-time gauge —
/// exported so analyzers know whether to diff consecutive samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeriesKind {
    Counter,
    Gauge,
}

impl SeriesKind {
    pub fn tag(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One registered time series.
#[derive(Clone, Debug)]
pub struct Series {
    pub scope: Scope,
    pub name: &'static str,
    pub kind: SeriesKind,
    samples: RingBuffer<(Time, u64)>,
}

impl Series {
    /// Oldest-to-newest retained samples.
    pub fn samples(&self) -> impl Iterator<Item = (Time, u64)> + '_ {
        self.samples.iter().copied()
    }

    pub fn last(&self) -> Option<(Time, u64)> {
        self.samples.last().copied()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.samples.dropped()
    }
}

/// All series of one instrumented run. Series are created lazily on
/// first record; iteration order is deterministic (BTreeMap keyed by
/// scope + name).
#[derive(Clone, Debug)]
pub struct Registry {
    capacity: usize,
    series: BTreeMap<(Scope, &'static str), Series>,
}

impl Registry {
    /// `capacity` is the per-series ring size.
    pub fn new(capacity: usize) -> Registry {
        Registry { capacity, series: BTreeMap::new() }
    }

    /// Record one sample, creating the series on first use.
    pub fn record(&mut self, scope: Scope, name: &'static str, kind: SeriesKind, t: Time, v: u64) {
        let s = self.series.entry((scope, name)).or_insert_with(|| Series {
            scope,
            name,
            kind,
            samples: RingBuffer::new(self.capacity),
        });
        s.samples.push((t, v));
    }

    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    pub fn get(&self, scope: Scope, name: &'static str) -> Option<&Series> {
        self.series.get(&(scope, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_created_lazily_and_ordered() {
        let mut r = Registry::new(8);
        r.record(Scope::Node(2), "rib_routes", SeriesKind::Gauge, 10, 4);
        r.record(Scope::Global, "events", SeriesKind::Counter, 10, 100);
        r.record(Scope::Node(2), "rib_routes", SeriesKind::Gauge, 20, 5);
        assert_eq!(r.series_count(), 2);
        let order: Vec<(Scope, &str)> = r.series().map(|s| (s.scope, s.name)).collect();
        assert_eq!(order[0].0, Scope::Global, "global sorts first");
        let s = r.get(Scope::Node(2), "rib_routes").unwrap();
        assert_eq!(s.samples().collect::<Vec<_>>(), vec![(10, 4), (20, 5)]);
        assert_eq!(s.last(), Some((20, 5)));
        assert_eq!(s.kind, SeriesKind::Gauge);
    }

    #[test]
    fn capacity_bounds_every_series() {
        let mut r = Registry::new(2);
        for t in 0..5u64 {
            r.record(Scope::Link(0), "link_up", SeriesKind::Gauge, t, t);
        }
        let s = r.get(Scope::Link(0), "link_up").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.samples().collect::<Vec<_>>(), vec![(3, 3), (4, 4)]);
    }

    #[test]
    fn scope_tags_are_stable() {
        assert_eq!(Scope::Global.tag(), "global");
        assert_eq!(Scope::Node(3).tag(), "node");
        assert_eq!(Scope::Link(1).tag(), "link");
        assert_eq!(Scope::Node(3).id(), 3);
        assert_eq!(SeriesKind::Counter.tag(), "counter");
    }
}
