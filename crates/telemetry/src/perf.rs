//! Engine performance reports: turning a [`dcn_sim::EngineProfile`]
//! into artifacts a human (or CI) can consume.
//!
//! Three exporters share one [`PerfReport`]:
//!
//! * [`PerfReport::render_text`] — a terminal stall-breakdown table
//!   (per-shard execute/barrier/drain/deposit/other as % of that
//!   shard's wall time, hottest nodes, scheduler occupancy).
//! * [`PerfReport::to_json`] — the `perf_report/v2` schema, consumed by
//!   CI and by `fcr bench`'s embedded breakdowns (v2 added the adaptive
//!   window-batching counters: per-shard `windows_batched`, `k_sum`,
//!   `k_mean`).
//! * [`PerfReport::to_chrome_trace`] — Chrome trace-event JSON loadable
//!   in `chrome://tracing` or Perfetto: one track per shard, one
//!   duration event per window phase.
//!
//! [`render_comparison`] lines several reports of the same scenario up
//! side by side (one column per worker count) for `fcr profile
//! --compare`.
//!
//! Durations come from the host monotonic clock (see
//! `dcn_sim::profiler`); nothing here feeds back into the simulation.

use dcn_sim::{EngineProfile, ShardProfile};
use std::fmt::Write as _;

use crate::json::Json;

/// `part` as a percentage of `whole` (0 when `whole` is 0).
fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

/// Where an engine's wall time went, as percentages of the wall summed
/// over shards. `fcr bench --scale` embeds one of these per row.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StallBreakdown {
    pub execute_pct: f64,
    pub barrier_pct: f64,
    pub drain_pct: f64,
    pub deposit_pct: f64,
    pub other_pct: f64,
}

/// A finished run's engine profile plus the context needed to label it.
#[derive(Clone, Debug)]
pub struct PerfReport {
    profile: EngineProfile,
    /// Human label for the run (e.g. `"mrmtp tc1 seed 1"`).
    pub label: String,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// `std::thread::available_parallelism()` on the host (0 unknown).
    pub cores: u64,
    /// Router names indexed by node id (for hot-node attribution).
    pub node_names: Vec<String>,
}

/// The host's available parallelism, or 0 when it cannot be queried.
pub fn host_cores() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0)
}

/// Stall percentages of `profile`, aggregated over every shard's wall
/// time ([`PerfReport::stall_breakdown`] without the report).
pub fn stall_breakdown_of(profile: &EngineProfile) -> StallBreakdown {
    let (mut exec, mut barrier, mut drain, mut deposit, mut other, mut wall) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for s in &profile.shards {
        exec += s.execute_ns;
        barrier += s.barrier_ns;
        drain += s.drain_ns;
        deposit += s.deposit_ns;
        other += s.other_ns();
        wall += s.wall_ns;
    }
    StallBreakdown {
        execute_pct: pct(exec, wall),
        barrier_pct: pct(barrier, wall),
        drain_pct: pct(drain, wall),
        deposit_pct: pct(deposit, wall),
        other_pct: pct(other, wall),
    }
}

impl PerfReport {
    pub fn new(
        profile: EngineProfile,
        label: impl Into<String>,
        workers: usize,
        node_names: Vec<String>,
    ) -> PerfReport {
        PerfReport { profile, label: label.into(), workers, cores: host_cores(), node_names }
    }

    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    fn name_of(&self, node: u32) -> String {
        self.node_names
            .get(node as usize)
            .cloned()
            .unwrap_or_else(|| format!("n{node}"))
    }

    /// `"sharded"` once a parallel span ran, else `"sequential"`.
    pub fn engine(&self) -> &'static str {
        if self.profile.spans > 0 {
            "sharded"
        } else {
            "sequential"
        }
    }

    /// Stall percentages aggregated over every shard's wall time.
    pub fn stall_breakdown(&self) -> StallBreakdown {
        stall_breakdown_of(&self.profile)
    }

    /// The terminal stall-breakdown table.
    pub fn render_text(&self) -> String {
        let p = &self.profile;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf report: {} ({}, workers {}, cores {})",
            self.label,
            self.engine(),
            self.workers,
            self.cores
        );
        if let Some(la) = p.lookahead {
            let _ = writeln!(
                out,
                "lookahead {:.2}us, {} parallel span(s)",
                la as f64 / 1e3,
                p.spans
            );
        }
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>8} {:>7} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>10}",
            "shard", "events", "windows", "batch%", "meanK", "exec%", "barr%", "drain%", "dep%",
            "other%", "wall"
        );
        for s in &p.shards {
            let _ = writeln!(
                out,
                "{:>5} {:>10} {:>8} {:>7.1} {:>6.2} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>10}",
                s.shard,
                s.events,
                s.windows_total,
                pct(s.windows_batched, s.windows_total),
                s.k_mean(),
                pct(s.execute_ns, s.wall_ns),
                pct(s.barrier_ns, s.wall_ns),
                pct(s.drain_ns, s.wall_ns),
                pct(s.deposit_ns, s.wall_ns),
                pct(s.other_ns(), s.wall_ns),
                fmt_ms(s.wall_ns),
            );
        }
        let _ = writeln!(
            out,
            "total {} events, critical path {}",
            p.total_events(),
            fmt_ms(p.max_wall_ns())
        );
        let sched = p.shards.iter().fold(dcn_sim::SchedulerStats::default(), |mut acc, s| {
            acc.absorb(s.sched);
            acc
        });
        let _ = writeln!(
            out,
            "scheduler: {} pushes, {} wheel slot ({:.1}%), {} overflow heap, max pending {}",
            sched.pushes,
            sched.wheel_slot_hits,
            pct(sched.wheel_slot_hits, sched.pushes),
            sched.wheel_overflow_hits,
            sched.max_pending,
        );
        let hot = p.hottest_nodes(10);
        if !hot.is_empty() {
            let names: Vec<String> = hot
                .iter()
                .map(|&(node, events)| format!("{} ({})", self.name_of(node), events))
                .collect();
            let _ = writeln!(out, "hot nodes: {}", names.join(", "));
        }
        let hist = p.window_hist();
        let mut buckets = Vec::new();
        for (b, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bound = match b {
                0 => "0".to_string(),
                b => format!("<{}", 1u64 << b),
            };
            buckets.push(format!("{bound}:{count}"));
        }
        if !buckets.is_empty() {
            let _ = writeln!(out, "events/window hist: {}", buckets.join(" "));
        }
        let dropped: u64 = p.shards.iter().map(|s| s.windows_dropped).sum();
        if dropped > 0 {
            let _ = writeln!(
                out,
                "note: {dropped} window record(s) beyond the retention cap were aggregated only"
            );
        }
        out
    }

    fn shard_json(&self, s: &ShardProfile) -> Json {
        Json::obj(vec![
            ("shard", Json::UInt(s.shard as u64)),
            ("events", Json::UInt(s.events)),
            ("windows", Json::UInt(s.windows_total)),
            ("windows_batched", Json::UInt(s.windows_batched)),
            ("k_sum", Json::UInt(s.k_sum)),
            ("k_mean", Json::Float(s.k_mean())),
            ("windows_dropped", Json::UInt(s.windows_dropped)),
            ("execute_ns", Json::UInt(s.execute_ns)),
            ("barrier_ns", Json::UInt(s.barrier_ns)),
            ("drain_ns", Json::UInt(s.drain_ns)),
            ("deposit_ns", Json::UInt(s.deposit_ns)),
            ("other_ns", Json::UInt(s.other_ns())),
            ("wall_ns", Json::UInt(s.wall_ns)),
            ("execute_pct", Json::Float(pct(s.execute_ns, s.wall_ns))),
            ("barrier_pct", Json::Float(pct(s.barrier_ns, s.wall_ns))),
            ("drain_pct", Json::Float(pct(s.drain_ns, s.wall_ns))),
            ("deposit_pct", Json::Float(pct(s.deposit_ns, s.wall_ns))),
            ("other_pct", Json::Float(pct(s.other_ns(), s.wall_ns))),
            (
                "sched",
                Json::obj(vec![
                    ("pushes", Json::UInt(s.sched.pushes)),
                    ("wheel_slot_hits", Json::UInt(s.sched.wheel_slot_hits)),
                    ("wheel_overflow_hits", Json::UInt(s.sched.wheel_overflow_hits)),
                    ("max_pending", Json::UInt(s.sched.max_pending)),
                ]),
            ),
        ])
    }

    /// The `perf_report/v2` JSON document (v2 added the window-batching
    /// counters).
    pub fn to_json(&self) -> Json {
        let p = &self.profile;
        let hist = p.window_hist();
        Json::obj(vec![
            ("schema", Json::str("perf_report/v2")),
            ("label", Json::str(self.label.clone())),
            ("engine", Json::str(self.engine())),
            ("workers", Json::UInt(self.workers as u64)),
            ("cores", Json::UInt(self.cores)),
            (
                "lookahead_ns",
                p.lookahead.map(Json::UInt).unwrap_or(Json::Null),
            ),
            ("spans", Json::UInt(p.spans)),
            ("events", Json::UInt(p.total_events())),
            ("wall_ns", Json::UInt(p.max_wall_ns())),
            (
                "shards",
                Json::Arr(p.shards.iter().map(|s| self.shard_json(s)).collect()),
            ),
            (
                "hot_nodes",
                Json::Arr(
                    p.hottest_nodes(10)
                        .into_iter()
                        .map(|(node, events)| {
                            Json::obj(vec![
                                ("node", Json::str(self.name_of(node))),
                                ("events", Json::UInt(events)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "window_hist",
                Json::Arr(hist.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            (
                "frame_matrix",
                Json::Arr(
                    p.frame_matrix()
                        .into_iter()
                        .map(|row| Json::Arr(row.into_iter().map(Json::UInt).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto): one
    /// track per shard (`pid` 1, `tid` = shard id), every retained
    /// window's phases as `ph:"X"` duration events with `ts`/`dur` in
    /// microseconds of host time since the profile epoch. Hand-formatted
    /// because traces can run to tens of thousands of events; the output
    /// is still valid JSON (CI parses it).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(line);
        };
        for s in &self.profile.shards {
            emit(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"shard {}\"}}}}",
                    s.shard, s.shard
                ),
            );
            for w in &s.windows {
                let mut at = w.start_ns;
                for (name, dur) in [
                    ("barrier_a", w.barrier_a_ns),
                    ("drain", w.drain_ns),
                    ("barrier_b", w.barrier_b_ns),
                    ("execute", w.execute_ns),
                    ("deposit", w.deposit_ns),
                ] {
                    if dur == 0 {
                        at += dur;
                        continue;
                    }
                    let mut line = format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                         \"name\":\"{}\",\"cat\":\"window\"",
                        s.shard,
                        at as f64 / 1e3,
                        dur as f64 / 1e3,
                        name
                    );
                    if name == "execute" {
                        let _ = write!(
                            line,
                            ",\"args\":{{\"events\":{},\"horizon\":{},\"window_end\":{},\"k\":{}}}",
                            w.events, w.horizon, w.window_end, w.k
                        );
                    }
                    line.push('}');
                    emit(&mut out, &line);
                    at += dur;
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Side-by-side stall comparison of several reports of the *same*
/// scenario — one column per report (labeled by its worker count), one
/// row per aggregate metric, plus a delta column (last minus first) when
/// at least two reports are given. Backs `fcr profile --compare`.
pub fn render_comparison(reports: &[PerfReport]) -> String {
    let mut out = String::new();
    if reports.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "perf compare: {} (cores {})",
        reports[0].label, reports[0].cores
    );
    struct Row {
        name: &'static str,
        unit: &'static str,
        values: Vec<f64>,
    }
    let agg = |f: &dyn Fn(&PerfReport) -> f64| reports.iter().map(f).collect::<Vec<f64>>();
    let rows = [
        Row { name: "events", unit: "", values: agg(&|r| r.profile().total_events() as f64) },
        Row {
            name: "windows",
            unit: "",
            values: agg(&|r| r.profile().shards.iter().map(|s| s.windows_total).sum::<u64>() as f64),
        },
        Row {
            name: "batched",
            unit: "%",
            values: agg(&|r| {
                let p = r.profile();
                pct(
                    p.shards.iter().map(|s| s.windows_batched).sum(),
                    p.shards.iter().map(|s| s.windows_total).sum(),
                )
            }),
        },
        Row {
            name: "mean K",
            unit: "",
            values: agg(&|r| {
                let p = r.profile();
                let (k, w): (u64, u64) = (
                    p.shards.iter().map(|s| s.k_sum).sum(),
                    p.shards.iter().map(|s| s.windows_total).sum(),
                );
                if w == 0 { 1.0 } else { k as f64 / w as f64 }
            }),
        },
        Row { name: "execute", unit: "%", values: agg(&|r| r.stall_breakdown().execute_pct) },
        Row { name: "barrier", unit: "%", values: agg(&|r| r.stall_breakdown().barrier_pct) },
        Row { name: "drain", unit: "%", values: agg(&|r| r.stall_breakdown().drain_pct) },
        Row { name: "deposit", unit: "%", values: agg(&|r| r.stall_breakdown().deposit_pct) },
        Row { name: "other", unit: "%", values: agg(&|r| r.stall_breakdown().other_pct) },
        Row {
            name: "wall",
            unit: "ms",
            values: agg(&|r| r.profile().max_wall_ns() as f64 / 1e6),
        },
    ];
    let _ = write!(out, "{:>10}", "metric");
    for r in reports {
        let _ = write!(out, " {:>12}", format!("w={}", r.workers));
    }
    if reports.len() >= 2 {
        let _ = write!(out, " {:>12}", "delta");
    }
    out.push('\n');
    for row in &rows {
        let _ = write!(out, "{:>10}", row.name);
        let integral = row.unit.is_empty() && row.name != "mean K";
        let fmt = |v: f64| {
            if integral {
                format!("{v:.0}")
            } else {
                format!("{v:.2}{}", row.unit)
            }
        };
        for v in &row.values {
            let _ = write!(out, " {:>12}", fmt(*v));
        }
        if row.values.len() >= 2 {
            let d = row.values[row.values.len() - 1] - row.values[0];
            let _ = write!(out, " {:>12}", format!("{}{}", if d >= 0.0 { "+" } else { "" }, fmt(d)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::profiler::WINDOW_HIST_BUCKETS;
    use dcn_sim::{ShardProfile, WindowRecord};

    fn toy_report() -> PerfReport {
        let mut ep = EngineProfile::new(3);
        let mut s0 = ShardProfile::new(0, 3, 2, ep.epoch);
        s0.record_window(WindowRecord {
            start_ns: 1_000,
            horizon: 5_000,
            window_end: 6_000,
            k: 2,
            events: 4,
            barrier_a_ns: 100,
            drain_ns: 50,
            barrier_b_ns: 200,
            execute_ns: 600,
            deposit_ns: 50,
        });
        s0.wall_ns = 1_100;
        s0.node_events = vec![3, 1, 0];
        s0.frames_to = vec![0, 2];
        s0.sched.pushes = 10;
        s0.sched.wheel_slot_hits = 9;
        s0.sched.wheel_overflow_hits = 1;
        s0.sched.max_pending = 4;
        let mut s1 = ShardProfile::new(1, 3, 2, ep.epoch);
        s1.record_window(WindowRecord {
            start_ns: 1_200,
            horizon: 5_000,
            window_end: 6_000,
            k: 1,
            events: 2,
            execute_ns: 300,
            ..Default::default()
        });
        s1.wall_ns = 400;
        s1.node_events = vec![0, 0, 2];
        s1.frames_to = vec![1, 0];
        ep.absorb_shard(s0);
        ep.absorb_shard(s1);
        ep.lookahead = Some(1_480);
        ep.spans = 1;
        let names = vec!["e0".to_string(), "e1".to_string(), "s0".to_string()];
        PerfReport::new(ep, "toy run", 2, names)
    }

    #[test]
    fn json_export_round_trips_with_schema_and_sane_percentages() {
        let report = toy_report();
        let doc = Json::parse(&report.to_json().render()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("perf_report/v2"));
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("sharded"));
        assert_eq!(doc.get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("events").unwrap().as_u64(), Some(6));
        assert_eq!(doc.get("lookahead_ns").unwrap().as_u64(), Some(1_480));
        assert!(doc.get("cores").unwrap().as_u64().is_some());
        let shards = doc.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 2);
        // v2 batching counters: shard 0 recorded one fused round (k=2),
        // shard 1 one plain round.
        assert_eq!(shards[0].get("windows_batched").unwrap().as_u64(), Some(1));
        assert_eq!(shards[0].get("k_sum").unwrap().as_u64(), Some(2));
        assert_eq!(shards[0].get("k_mean").unwrap().as_f64(), Some(2.0));
        assert_eq!(shards[1].get("windows_batched").unwrap().as_u64(), Some(0));
        assert_eq!(shards[1].get("k_mean").unwrap().as_f64(), Some(1.0));
        for sh in shards {
            let total: f64 = ["execute_pct", "barrier_pct", "drain_pct", "deposit_pct", "other_pct"]
                .iter()
                .map(|k| sh.get(k).unwrap().as_f64().unwrap())
                .sum();
            assert!(
                (total - 100.0).abs() < 5.0,
                "phases + other account for the wall: {total}"
            );
        }
        let hot = doc.get("hot_nodes").unwrap().as_arr().unwrap();
        assert_eq!(hot[0].get("node").unwrap().as_str(), Some("e0"));
        assert_eq!(hot[0].get("events").unwrap().as_u64(), Some(3));
        let matrix = doc.get("frame_matrix").unwrap().as_arr().unwrap();
        assert_eq!(matrix[0].as_arr().unwrap()[1].as_u64(), Some(2));
        assert_eq!(matrix[1].as_arr().unwrap()[0].as_u64(), Some(1));
        let hist = doc.get("window_hist").unwrap().as_arr().unwrap();
        assert_eq!(hist.len(), WINDOW_HIST_BUCKETS);
    }

    #[test]
    fn chrome_trace_parses_and_orders_phases_within_a_window() {
        let report = toy_report();
        let doc = Json::parse(&report.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread_name metadata + 5 phases on shard 0 + execute on shard 1.
        assert_eq!(events.len(), 8);
        let meta: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("M")).collect();
        assert_eq!(meta.len(), 2);
        let shard0: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("tid").unwrap().as_u64() == Some(0)
            })
            .collect();
        assert_eq!(shard0.len(), 5);
        let mut last_end = 0.0f64;
        for e in &shard0 {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            assert!(ts >= last_end - 1e-9, "phases are back-to-back, non-overlapping");
            assert!(dur > 0.0, "zero-duration phases are skipped");
            last_end = ts + dur;
        }
        assert_eq!(shard0[3].get("name").unwrap().as_str(), Some("execute"));
        assert_eq!(
            shard0[3].get("args").unwrap().get("events").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(shard0[3].get("args").unwrap().get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn text_report_names_shards_and_hot_nodes() {
        let report = toy_report();
        let text = report.render_text();
        assert!(text.contains("perf report: toy run (sharded, workers 2"));
        assert!(text.contains("lookahead 1.48us"));
        assert!(text.contains("hot nodes: e0 (3)"));
        assert!(text.contains("scheduler: 10 pushes"));
        // One row per shard plus the header.
        assert_eq!(text.lines().filter(|l| l.trim_start().starts_with(['0', '1'])).count(), 2);
    }

    #[test]
    fn text_report_shows_batching_columns() {
        let text = toy_report().render_text();
        let header = text.lines().nth(2).expect("column header line");
        assert!(header.contains("batch%") && header.contains("meanK"), "{header}");
        // Shard 0: 1 of 1 windows batched at k=2.
        let row0 = text.lines().nth(3).unwrap();
        assert!(row0.contains("100.0") && row0.contains("2.00"), "{row0}");
    }

    #[test]
    fn comparison_lines_reports_up_with_deltas() {
        let a = toy_report();
        let mut b = toy_report();
        b.workers = 4;
        let text = render_comparison(&[a, b]);
        assert!(text.starts_with("perf compare: toy run"));
        let header = text.lines().nth(1).unwrap();
        assert!(
            header.contains("w=2") && header.contains("w=4") && header.contains("delta"),
            "{header}"
        );
        for metric in ["events", "windows", "batched", "mean K", "barrier", "wall"] {
            assert!(text.contains(metric), "missing row {metric}");
        }
        // Identical profiles: every delta is +0-something.
        let events_row = text.lines().find(|l| l.trim_start().starts_with("events")).unwrap();
        assert!(events_row.trim_end().ends_with("+0"), "{events_row}");
        assert!(render_comparison(&[]).is_empty());
    }

    #[test]
    fn stall_breakdown_aggregates_over_shards() {
        let report = toy_report();
        let b = report.stall_breakdown();
        let total =
            b.execute_pct + b.barrier_pct + b.drain_pct + b.deposit_pct + b.other_pct;
        assert!((total - 100.0).abs() < 1.0, "breakdown covers the wall: {total}");
        // execute = 900ns of 1500ns total wall.
        assert!((b.execute_pct - 60.0).abs() < 1.0, "{}", b.execute_pct);
    }
}
