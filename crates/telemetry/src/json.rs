//! A minimal JSON value with renderer and parser.
//!
//! The workspace builds offline with no external crates, so exporters
//! hand-roll their JSON. `u64` values (timestamps in nanoseconds,
//! counters) round-trip exactly through [`Json::UInt`] — they are never
//! coerced through `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case: times, counters). Kept
    /// separate from `Float` so 64-bit values round-trip exactly.
    UInt(u64),
    /// Negative integers.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let v = parse_value(b, pos)?;
                fields.push((key, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        let v = Json::UInt(u64::MAX);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v, "no f64 coercion");
    }

    #[test]
    fn object_round_trips_preserving_order() {
        let v = Json::obj(vec![
            ("name", Json::str("rib_routes")),
            ("id", Json::UInt(7)),
            ("neg", Json::Int(-3)),
            ("pi", Json::Float(3.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("samples", Json::Arr(vec![
                Json::Arr(vec![Json::UInt(1_000_000), Json::UInt(4)]),
            ])),
        ]);
        let text = v.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("rib_routes"));
        assert_eq!(parsed.get("none"), Some(&Json::Null));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.render();
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }
}
