//! Exporters: JSONL span/series dumps, per-interface frame captures, and
//! self-contained trace bundles (the artifact a chaos invariant violation
//! leaves behind).

use std::io;
use std::path::{Path, PathBuf};

use dcn_sim::time::Time;
use dcn_sim::{NodeId, RouteChangeKind, Sim, SpanEvent, Trace, TraceEvent};

use crate::json::Json;
use crate::registry::Registry;
use crate::sampler::Telemetry;

fn span_fields(span: &SpanEvent) -> Vec<(&'static str, Json)> {
    match span {
        SpanEvent::BgpFsm { port, from, to } => vec![
            ("port", Json::UInt(port.0 as u64)),
            ("from", Json::str(*from)),
            ("to", Json::str(*to)),
        ],
        SpanEvent::BgpSessionDown { port, reason, carrier } => vec![
            ("port", Json::UInt(port.0 as u64)),
            ("reason", Json::str(*reason)),
            ("carrier", Json::Bool(*carrier)),
        ],
        SpanEvent::BgpUpdateBatch { peers, prefixes } => vec![
            ("peers", Json::UInt(*peers as u64)),
            ("prefixes", Json::UInt(*prefixes as u64)),
        ],
        SpanEvent::NeighborDown { port, carrier } => vec![
            ("port", Json::UInt(port.0 as u64)),
            ("carrier", Json::Bool(*carrier)),
        ],
        SpanEvent::NeighborUp { port } => vec![("port", Json::UInt(port.0 as u64))],
        SpanEvent::VidInstall { root, port } | SpanEvent::VidRemove { root, port } => vec![
            ("root", Json::UInt(*root as u64)),
            ("port", Json::UInt(port.0 as u64)),
        ],
        SpanEvent::LossFlood { roots, fanout, lost } => vec![
            ("roots", Json::UInt(*roots as u64)),
            ("fanout", Json::UInt(*fanout as u64)),
            ("lost", Json::Bool(*lost)),
        ],
        SpanEvent::HolddownArm => vec![],
        SpanEvent::HolddownResolve { negatives, totals } => vec![
            ("negatives", Json::UInt(*negatives as u64)),
            ("totals", Json::UInt(*totals as u64)),
        ],
        SpanEvent::UpperLossTotal { root } => vec![("root", Json::UInt(*root as u64))],
        SpanEvent::LocalRepair { port } => vec![("port", Json::UInt(port.0 as u64))],
    }
}

/// All non-frame trace events as JSONL, one event per line: spans,
/// routing changes, port up/down injections and legacy proto tags.
/// `name_of` maps node ids to router names.
pub fn spans_jsonl(trace: &Trace, name_of: impl Fn(NodeId) -> String) -> String {
    let mut out = String::new();
    for ev in trace.events() {
        let mut fields: Vec<(&str, Json)> = vec![
            ("t", Json::UInt(ev.time())),
            ("node", Json::str(name_of(ev.node()))),
        ];
        match ev {
            TraceEvent::FrameSent { .. } => continue, // captures cover frames
            TraceEvent::Span { span, .. } => {
                fields.push(("type", Json::str("span")));
                fields.push(("kind", Json::str(span.kind())));
                if let Some(carrier) = span.detection() {
                    fields.push(("detection", Json::str(if carrier { "carrier" } else { "timeout" })));
                }
                fields.extend(span_fields(span));
            }
            TraceEvent::PortDown { port, .. } => {
                fields.push(("type", Json::str("port_down")));
                fields.push(("port", Json::UInt(port.0 as u64)));
            }
            TraceEvent::PortUp { port, .. } => {
                fields.push(("type", Json::str("port_up")));
                fields.push(("port", Json::UInt(port.0 as u64)));
            }
            TraceEvent::RouteChange { kind, detail, .. } => {
                fields.push(("type", Json::str("route_change")));
                fields.push((
                    "kind",
                    Json::str(match kind {
                        RouteChangeKind::Withdraw => "withdraw",
                        RouteChangeKind::Install => "install",
                    }),
                ));
                fields.push(("detail", Json::UInt(*detail)));
            }
            TraceEvent::Proto { tag, info, .. } => {
                fields.push(("type", Json::str("proto")));
                fields.push(("tag", Json::str(*tag)));
                fields.push(("info", Json::UInt(*info)));
            }
        }
        out.push_str(&Json::obj(fields).render());
        out.push('\n');
    }
    out
}

/// Every registered time series as JSONL, one series per line with its
/// retained `[time_ns, value]` samples.
pub fn series_jsonl(reg: &Registry, name_of_node: impl Fn(u32) -> String) -> String {
    let mut out = String::new();
    for s in reg.series() {
        let mut fields: Vec<(&str, Json)> = vec![
            ("scope", Json::str(s.scope.tag())),
            ("id", Json::UInt(s.scope.id() as u64)),
        ];
        if let crate::registry::Scope::Node(i) = s.scope {
            fields.push(("node", Json::str(name_of_node(i))));
        }
        fields.push(("name", Json::str(s.name)));
        fields.push(("kind", Json::str(s.kind.tag())));
        fields.push(("dropped", Json::UInt(s.dropped())));
        fields.push((
            "samples",
            Json::Arr(
                s.samples()
                    .map(|(t, v)| Json::Arr(vec![Json::UInt(t), Json::UInt(v)]))
                    .collect(),
            ),
        ));
        out.push_str(&Json::obj(fields).render());
        out.push('\n');
    }
    out
}

/// The per-[`dcn_sim::FrameClass`] wire-length histograms as JSONL, one
/// class per line with its `[upper_bound, count]` buckets (the overflow
/// bucket reports `u64::MAX` as its bound).
pub fn hists_jsonl(tel: &Telemetry) -> String {
    let mut out = String::new();
    for (class, h) in tel.frame_size_hists() {
        let fields: Vec<(&str, Json)> = vec![
            ("class", Json::str(class.name())),
            ("total", Json::UInt(h.total())),
            ("sum_bytes", Json::UInt(h.sum())),
            ("max", Json::UInt(h.max())),
            (
                "buckets",
                Json::Arr(
                    h.buckets()
                        .map(|(b, c)| Json::Arr(vec![Json::UInt(b), Json::UInt(c)]))
                        .collect(),
                ),
            ),
        ];
        out.push_str(&Json::obj(fields).render());
        out.push('\n');
    }
    out
}

/// tshark-style capture of every interface that transmitted in
/// `[t0, t1)`, concatenated with per-interface headers — the bundle's
/// pcap analog.
pub fn capture_dump(sim: &Sim, t0: Time, t1: Time, max_lines_per_port: usize) -> String {
    let mut out = String::new();
    for i in 0..sim.node_count() as u32 {
        let node = NodeId(i);
        for p in 0..sim.port_count(node) as u16 {
            let port = dcn_sim::PortId(p);
            let text = dcn_metrics::capture_text(sim.trace(), node, port, t0, t1, max_lines_per_port);
            if text.is_empty() {
                continue;
            }
            out.push_str(&format!("== {} {} ==\n", sim.node_name(node), port));
            out.push_str(&text);
        }
    }
    out
}

/// A self-contained dump of one instrumented run: a `meta.json` plus any
/// number of named text files, written together into one directory.
#[derive(Clone, Debug)]
pub struct TraceBundle {
    meta: Json,
    files: Vec<(String, String)>,
}

impl TraceBundle {
    pub fn new(meta: Json) -> TraceBundle {
        TraceBundle { meta, files: Vec::new() }
    }

    pub fn add_file(&mut self, name: impl Into<String>, contents: impl Into<String>) {
        self.files.push((name.into(), contents.into()));
    }

    pub fn meta(&self) -> &Json {
        &self.meta
    }

    pub fn files(&self) -> &[(String, String)] {
        &self.files
    }

    /// Write `meta.json` and every file into `dir` (created if needed).
    /// Returns the paths written.
    pub fn write(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let meta_path = dir.join("meta.json");
        std::fs::write(&meta_path, self.meta.render() + "\n")?;
        written.push(meta_path);
        for (name, contents) in &self.files {
            let path = dir.join(name);
            std::fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Scope, SeriesKind};
    use dcn_sim::PortId;

    fn toy_trace() -> Trace {
        let mut tr = Trace::enabled();
        tr.push(TraceEvent::PortDown { time: 5, node: NodeId(0), port: PortId(1) });
        tr.push(TraceEvent::Span {
            time: 6,
            node: NodeId(0),
            span: SpanEvent::NeighborDown { port: PortId(1), carrier: true },
        });
        tr.push(TraceEvent::Span {
            time: 7,
            node: NodeId(1),
            span: SpanEvent::BgpFsm { port: PortId(0), from: "open_sent", to: "established" },
        });
        tr.push(TraceEvent::RouteChange {
            time: 8,
            node: NodeId(1),
            kind: RouteChangeKind::Withdraw,
            detail: 11,
        });
        tr.push(TraceEvent::Proto { time: 9, node: NodeId(0), tag: "dbg", info: 3 });
        tr
    }

    #[test]
    fn spans_jsonl_round_trips_through_the_parser() {
        let text = spans_jsonl(&toy_trace(), |n| format!("n{}", n.0));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("port_down"));
        assert_eq!(first.get("t").unwrap().as_u64(), Some(5));
        let det = Json::parse(lines[1]).unwrap();
        assert_eq!(det.get("kind").unwrap().as_str(), Some("neighbor_down"));
        assert_eq!(det.get("detection").unwrap().as_str(), Some("carrier"));
        assert_eq!(det.get("carrier").unwrap().as_bool(), Some(true));
        let fsm = Json::parse(lines[2]).unwrap();
        assert_eq!(fsm.get("to").unwrap().as_str(), Some("established"));
        assert_eq!(fsm.get("detection"), None, "FSM moves are not detections");
        for line in lines {
            Json::parse(line).expect("every line is valid JSON");
        }
    }

    #[test]
    fn series_jsonl_round_trips_samples_exactly() {
        let mut reg = Registry::new(16);
        let big = u64::MAX - 7;
        reg.record(Scope::Node(3), "rib_routes", SeriesKind::Gauge, 1_000_000, 42);
        reg.record(Scope::Node(3), "rib_routes", SeriesKind::Gauge, 2_000_000, big);
        reg.record(Scope::Global, "events_processed", SeriesKind::Counter, 2_000_000, 9);
        let text = series_jsonl(&reg, |i| format!("node{i}"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Parse back and compare against the registry.
        let parsed = Json::parse(lines[1]).unwrap();
        assert_eq!(parsed.get("scope").unwrap().as_str(), Some("node"));
        assert_eq!(parsed.get("node").unwrap().as_str(), Some("node3"));
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("gauge"));
        let samples = parsed.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].as_arr().unwrap()[0].as_u64(), Some(2_000_000));
        assert_eq!(samples[1].as_arr().unwrap()[1].as_u64(), Some(big), "u64 exact");
    }

    #[test]
    fn bundle_writes_meta_and_files() {
        let mut b = TraceBundle::new(Json::obj(vec![
            ("seed", Json::UInt(7)),
            ("stack", Json::str("mrmtp")),
        ]));
        b.add_file("spans.jsonl", "{}\n");
        b.add_file("series.jsonl", "");
        let dir = std::env::temp_dir().join(format!("dcn-bundle-test-{}", std::process::id()));
        let written = b.write(&dir).unwrap();
        assert_eq!(written.len(), 3);
        let meta = std::fs::read_to_string(dir.join("meta.json")).unwrap();
        let parsed = Json::parse(meta.trim()).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(7));
        assert!(dir.join("spans.jsonl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
