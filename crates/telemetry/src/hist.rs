//! A fixed-boundary histogram for latency/size distributions.

/// Cumulative-friendly histogram over explicit upper bounds.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above every bound land in the overflow bucket.
/// Bounds must be strictly increasing.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` counters (last = overflow).
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Power-of-two bounds from 1 up to `2^(n-1)` (n buckets + overflow) —
    /// the default shape for nanosecond durations and byte sizes.
    pub fn exponential(n: usize) -> Histogram {
        let bounds: Vec<u64> = (0..n as u32).map(|i| 1u64 << i).collect();
        Histogram::new(&bounds)
    }

    pub fn record(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// (upper bound, count) pairs; the overflow bucket reports
    /// `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Smallest bound with cumulative count ≥ `q` of the total (a
    /// bucket-resolution quantile; exact for values on bucket bounds).
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0;
        for (bound, count) in self.buckets() {
            cum += count;
            if cum >= target.max(1) {
                return Some(bound);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_on_bound_fall_into_that_bucket() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.record(0);
        h.record(10); // == bound: first bucket
        h.record(11); // > 10: second bucket
        h.record(100);
        h.record(101);
        h.record(1000);
        h.record(1001); // overflow
        let counts: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(counts, vec![(10, 2), (100, 2), (1000, 2), (u64::MAX, 1)]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.max(), 1001);
    }

    #[test]
    fn exponential_bounds_are_powers_of_two() {
        let h = Histogram::exponential(4);
        let bounds: Vec<u64> = h.buckets().map(|(b, _)| b).collect();
        assert_eq!(bounds, vec![1, 2, 4, 8, u64::MAX]);
    }

    #[test]
    fn quantile_bound_tracks_distribution() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [1, 1, 2, 2, 2, 3, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.quantile_bound(0.5), Some(2), "5 of 8 samples ≤ 2");
        assert_eq!(h.quantile_bound(1.0), Some(u64::MAX), "max is overflow");
        assert_eq!(Histogram::new(&[1]).quantile_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::exponential(8);
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), 15.0);
        assert_eq!(Histogram::exponential(2).mean(), 0.0);
    }
}
