//! The sim-driven sampler: steps the engine to each sample instant and
//! reads router/engine state into the registry.
//!
//! Sampling is scheduled through simulated time (`Sim::run_until`), never
//! wall-clock, and only *reads* state between event batches. The engine
//! processes exactly the same events in exactly the same order as an
//! uninstrumented run, so enabling telemetry cannot perturb a seed's
//! determinism digest.

use dcn_sim::time::{millis, Duration, Time};
use dcn_sim::{FrameClass, NodeId, PortId, Sim, TraceEvent};

use crate::hist::Histogram;
use crate::registry::{Registry, Scope, SeriesKind};

/// Stable per-class series name for the fabric-wide frame counters.
pub(crate) fn frames_series_name(class: FrameClass) -> &'static str {
    match class {
        FrameClass::Keepalive => "frames_keepalive",
        FrameClass::Update => "frames_update",
        FrameClass::Session => "frames_session",
        FrameClass::Ack => "frames_ack",
        FrameClass::Data => "frames_data",
    }
}

fn class_idx(class: FrameClass) -> usize {
    FrameClass::ALL.iter().position(|&c| c == class).expect("class listed in ALL")
}

/// Sampling cadence and retention.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Simulated time between samples.
    pub interval: Duration,
    /// Per-series ring capacity (oldest samples drop beyond this).
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        // 10 ms resolves the paper's fastest dynamics (50 ms hellos,
        // 100 ms BFD) without drowning a multi-second run in samples.
        TelemetryConfig { interval: millis(10), capacity: 4096 }
    }
}

/// A telemetry session: config + registry + frame-size histograms +
/// sample bookkeeping.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    registry: Registry,
    samples_taken: u64,
    /// Per-[`FrameClass`] wire-length distributions, fabric-wide; indexed
    /// as [`FrameClass::ALL`]. Power-of-two buckets up to 2048 B cover
    /// every emulated frame size.
    frame_size: [Histogram; FrameClass::ALL.len()],
    /// How many trace events have already been folded into the
    /// histograms (the trace is append-only during a sampled run).
    trace_cursor: usize,
}

impl Telemetry {
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        Telemetry {
            cfg,
            registry: Registry::new(cfg.capacity),
            samples_taken: 0,
            frame_size: std::array::from_fn(|_| Histogram::exponential(12)),
            trace_cursor: 0,
        }
    }

    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// The wire-length distribution observed for `class` so far.
    pub fn frame_size_hist(&self, class: FrameClass) -> &Histogram {
        &self.frame_size[class_idx(class)]
    }

    /// Every per-class wire-length histogram, in [`FrameClass::ALL`]
    /// order.
    pub fn frame_size_hists(&self) -> impl Iterator<Item = (FrameClass, &Histogram)> {
        FrameClass::ALL.iter().map(move |&c| (c, &self.frame_size[class_idx(c)]))
    }

    /// Read the current state of `sim` into the registry as one sample.
    pub fn sample(&mut self, sim: &Sim) {
        let now = sim.now();

        // Fold newly traced frames into the per-class histograms first,
        // so the per-class counter series below reflect this instant.
        let events = sim.trace().events();
        for ev in &events[self.trace_cursor.min(events.len())..] {
            if let TraceEvent::FrameSent { class, wire_len, .. } = ev {
                self.frame_size[class_idx(*class)].record(*wire_len as u64);
            }
        }
        self.trace_cursor = events.len();

        let reg = &mut self.registry;
        for (i, &class) in FrameClass::ALL.iter().enumerate() {
            reg.record(
                Scope::Global,
                frames_series_name(class),
                SeriesKind::Counter,
                now,
                self.frame_size[i].total(),
            );
        }

        // Engine-wide counters.
        reg.record(Scope::Global, "events_processed", SeriesKind::Counter, now, sim.events_processed());
        reg.record(Scope::Global, "frames_delivered", SeriesKind::Counter, now, sim.frames_delivered());
        reg.record(Scope::Global, "frames_lost_to_impairment", SeriesKind::Counter, now, sim.frames_lost_to_impairment());
        reg.record(Scope::Global, "frames_corrupted", SeriesKind::Counter, now, sim.frames_corrupted());
        reg.record(Scope::Global, "trace_events", SeriesKind::Gauge, now, sim.trace().events().len() as u64);

        // Per-node counters and gauges via the uniform StatsSnapshot
        // surface (None for plain traffic hosts).
        let mut link_endpoints_up: Vec<u32> = vec![0; sim.link_count()];
        for i in 0..sim.node_count() as u32 {
            let node = NodeId(i);
            let mut ports_up = 0u64;
            for p in 0..sim.port_count(node) as u16 {
                let port = PortId(p);
                let up = sim.port_up(node, port);
                ports_up += up as u64;
                if let Some(lid) = sim.link_at(node, port) {
                    link_endpoints_up[lid.index()] += up as u32;
                }
            }
            reg.record(Scope::Node(i), "ports_up", SeriesKind::Gauge, now, ports_up);
            if let Some(ss) = sim.stats_snapshot_of(node) {
                for (name, v) in ss.counters() {
                    reg.record(Scope::Node(i), name, SeriesKind::Counter, now, v);
                }
                for (name, v) in ss.gauges() {
                    reg.record(Scope::Node(i), name, SeriesKind::Gauge, now, v);
                }
            }
        }

        // Per-link carrier state: 2 = both endpoints up, 0 = both down.
        for (l, &ups) in link_endpoints_up.iter().enumerate() {
            reg.record(Scope::Link(l as u32), "endpoints_up", SeriesKind::Gauge, now, ups as u64);
        }

        self.samples_taken += 1;
    }
}

/// Run `sim` to `until`, sampling `tel` every `tel.config().interval`
/// of simulated time (plus a final sample at `until`).
pub fn run_sampled(sim: &mut Sim, until: Time, tel: &mut Telemetry) {
    let interval = tel.cfg.interval.max(1);
    loop {
        let now = sim.now();
        if now >= until {
            break;
        }
        let target = (now + interval).min(until);
        sim.run_until(target);
        tel.sample(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::MILLIS;
    use dcn_sim::{Ctx, LinkSpec, Protocol, SimBuilder, StatsSnapshot};

    /// A protocol that ticks every ms, counting ticks and sending one
    /// 64-byte keepalive per tick.
    struct Ticker {
        ticks: u64,
    }

    impl StatsSnapshot for Ticker {
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("ticks", self.ticks)]
        }

        fn gauges(&self) -> Vec<(&'static str, u64)> {
            vec![("ticks_mod_3", self.ticks % 3)]
        }
    }

    impl Protocol for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(MILLIS, 0);
        }
        fn on_frame(&mut self, _: &mut Ctx<'_>, _: dcn_sim::PortId, _: &dcn_sim::FrameBuf) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
            self.ticks += 1;
            ctx.send(dcn_sim::PortId(0), vec![0u8; 64], FrameClass::Keepalive);
            ctx.set_timer(MILLIS, 0);
        }
        fn stats_snapshot(&self) -> Option<&dyn StatsSnapshot> {
            Some(self)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_node_sim() -> Sim {
        let mut b = SimBuilder::new(7);
        let a = b.add_node("a", Box::new(Ticker { ticks: 0 }));
        let c = b.add_node("b", Box::new(Ticker { ticks: 0 }));
        b.add_link(a, c, LinkSpec::default());
        b.build()
    }

    #[test]
    fn sampling_collects_node_and_link_series() {
        let mut sim = two_node_sim();
        let mut tel = Telemetry::new(TelemetryConfig { interval: millis(10), capacity: 64 });
        run_sampled(&mut sim, millis(100), &mut tel);
        assert_eq!(tel.samples_taken(), 10);
        assert_eq!(sim.now(), millis(100));

        let ticks = tel.registry().get(Scope::Node(0), "ticks").unwrap();
        assert_eq!(ticks.len(), 10);
        let (t_last, v_last) = ticks.last().unwrap();
        assert_eq!(t_last, millis(100));
        assert_eq!(v_last, 100, "one tick per ms");
        assert_eq!(ticks.kind, SeriesKind::Counter);

        let link = tel.registry().get(Scope::Link(0), "endpoints_up").unwrap();
        assert_eq!(link.last().unwrap().1, 2, "both endpoints up");
        let ports = tel.registry().get(Scope::Node(1), "ports_up").unwrap();
        assert_eq!(ports.last().unwrap().1, 1);
    }

    #[test]
    fn sampling_is_read_only_for_the_event_stream() {
        // Same seed, run once plain and once sampled: the protocols must
        // process identical event sequences.
        let mut plain = two_node_sim();
        plain.run_until(millis(100));
        let plain_events = plain.events_processed();

        let mut sampled = two_node_sim();
        let mut tel = Telemetry::new(TelemetryConfig { interval: millis(7), capacity: 8 });
        run_sampled(&mut sampled, millis(100), &mut tel);
        assert_eq!(sampled.events_processed(), plain_events);
        assert_eq!(
            format!("{:?}", plain.trace().events()),
            format!("{:?}", sampled.trace().events()),
        );
    }

    #[test]
    fn frame_histograms_and_class_counters_track_the_trace() {
        let mut sim = two_node_sim();
        let mut tel = Telemetry::new(TelemetryConfig { interval: millis(10), capacity: 64 });
        run_sampled(&mut sim, millis(100), &mut tel);

        // 100 ticks per node, one 64-byte keepalive each.
        let h = tel.frame_size_hist(FrameClass::Keepalive);
        assert_eq!(h.total(), 200);
        assert_eq!(h.mean(), 64.0);
        assert_eq!(h.quantile_bound(0.99), Some(64), "64 B lands on the 2^6 bound");
        assert_eq!(tel.frame_size_hist(FrameClass::Update).total(), 0);

        // The per-class counter series is cumulative and monotone.
        let s = tel.registry().get(Scope::Global, "frames_keepalive").unwrap();
        let samples: Vec<(Time, u64)> = s.samples().collect();
        assert_eq!(samples.last().unwrap().1, 200);
        assert!(samples.windows(2).all(|w| w[0].1 <= w[1].1));

        // JSONL export round-trips the buckets.
        let text = crate::export::hists_jsonl(&tel);
        let line = text.lines().find(|l| l.contains("keepalive")).unwrap();
        let j = crate::json::Json::parse(line).unwrap();
        assert_eq!(j.get("total").unwrap().as_u64(), Some(200));
        assert_eq!(j.get("sum_bytes").unwrap().as_u64(), Some(200 * 64));
        let buckets = j.get("buckets").unwrap().as_arr().unwrap();
        let full: Vec<&crate::json::Json> = buckets
            .iter()
            .filter(|b| b.as_arr().unwrap()[1].as_u64() != Some(0))
            .collect();
        assert_eq!(full.len(), 1, "all frames in the 64 B bucket");
        assert_eq!(full[0].as_arr().unwrap()[0].as_u64(), Some(64));
    }

    #[test]
    fn final_partial_interval_still_sampled() {
        let mut sim = two_node_sim();
        let mut tel = Telemetry::new(TelemetryConfig { interval: millis(30), capacity: 8 });
        run_sampled(&mut sim, millis(100), &mut tel);
        // Samples at 30, 60, 90, 100 ms.
        assert_eq!(tel.samples_taken(), 4);
        let s = tel.registry().get(Scope::Global, "events_processed").unwrap();
        assert_eq!(s.samples().last().unwrap().0, millis(100));
    }
}
