//! Fixed-capacity ring buffer for time-series samples.
//!
//! Telemetry sampling runs for the whole simulated experiment, so an
//! unbounded `Vec` per series would make memory proportional to run
//! length. The ring keeps the most recent `capacity` samples; overwrites
//! are deterministic (purely a function of how many samples were pushed),
//! so enabling telemetry never perturbs the simulation itself.

/// A fixed-capacity overwrite-oldest buffer.
#[derive(Clone, Debug)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    /// Index the next push lands on (wraps at `capacity`).
    head: usize,
    /// Total pushes ever (so callers can tell how much was discarded).
    pushed: u64,
    capacity: usize,
}

impl<T: Clone> RingBuffer<T> {
    /// Create a ring holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> RingBuffer<T> {
        let capacity = capacity.max(1);
        RingBuffer { buf: Vec::with_capacity(capacity.min(1024)), head: 0, pushed: 0, capacity }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Items lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Append, overwriting the oldest item once full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
        }
        self.head = (self.head + 1) % self.capacity;
        self.pushed += 1;
    }

    /// Oldest-to-newest snapshot of the retained items.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let split = if self.buf.len() < self.capacity { 0 } else { self.head };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Most recent item.
    pub fn last(&self) -> Option<&T> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity {
            self.buf.last()
        } else {
            Some(&self.buf[(self.head + self.capacity - 1) % self.capacity])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(r.last(), Some(&2));
        r.push(3);
        r.push(4); // overwrites 1
        r.push(5); // overwrites 2
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(r.last(), Some(&5));
        assert_eq!(r.total_pushed(), 5);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn wraparound_is_stable_over_many_cycles() {
        let mut r = RingBuffer::new(4);
        for i in 0..103u64 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![99, 100, 101, 102]);
        assert_eq!(r.dropped(), 99);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = RingBuffer::new(0);
        assert_eq!(r.capacity(), 1);
        r.push('a');
        r.push('b');
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!['b']);
    }
}
