//! # dcn-telemetry — structured observability for the emulator
//!
//! The paper measured its testbed with tshark captures and router logs;
//! this crate gives the reproduction the equivalent instruments, built on
//! three pillars:
//!
//! 1. **A typed metrics registry** ([`Registry`]): named counter/gauge
//!    series scoped per node, per link or fabric-wide, sampled on a
//!    configurable simulated-time cadence by [`run_sampled`] into
//!    fixed-capacity [`RingBuffer`]s. Routers expose their state through
//!    the [`dcn_sim::StatsSnapshot`] trait — RIB/VID-table sizes, session
//!    FSM states, retransmit queues, malformed-frame drops — without the
//!    harness downcasting per protocol stack.
//! 2. **Structured span analysis**: the routers emit typed
//!    [`dcn_sim::SpanEvent`]s (FSM transitions, detection verdicts, flood
//!    waves, hold-down windows); `dcn_metrics::storyboard` reconstructs a
//!    per-failure convergence storyboard from them, and [`spans_jsonl`]
//!    exports them for offline tooling.
//! 3. **Exporters** ([`export`]): JSONL series/span dumps, tshark-style
//!    per-interface captures and self-contained [`TraceBundle`]s — the
//!    artifact a chaos-campaign invariant violation leaves on disk for
//!    replay.
//!
//! ## Determinism contract
//!
//! Telemetry is attach-only: sampling steps the engine with
//! `Sim::run_until` and *reads* state between event batches, so an
//! instrumented run processes the identical event sequence as a bare run
//! and per-seed determinism digests are unchanged. When no telemetry is
//! requested nothing here runs at all — zero cost when disabled.

pub mod export;
pub mod hist;
pub mod json;
pub mod perf;
pub mod registry;
pub mod ring;
pub mod sampler;

pub use export::{capture_dump, hists_jsonl, series_jsonl, spans_jsonl, TraceBundle};
pub use perf::{host_cores, render_comparison, stall_breakdown_of, PerfReport, StallBreakdown};
pub use hist::Histogram;
pub use json::Json;
pub use registry::{Registry, Scope, Series, SeriesKind};
pub use ring::RingBuffer;
pub use sampler::{run_sampled, Telemetry, TelemetryConfig};
