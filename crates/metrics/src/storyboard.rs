//! Post-hoc convergence storyboards built from typed protocol spans.
//!
//! The paper reports convergence as a single number per failure. The
//! storyboard reconstructs the anatomy *behind* that number from the
//! [`dcn_sim::SpanEvent`]s a run leaves in its trace:
//!
//! * **who detected** the failure, and how — local carrier loss versus a
//!   protocol timeout (missed hellos, BGP hold timer, BFD detection);
//! * **when each router first learned** of the event (its first span or
//!   routing change after `t0`) and when it **last changed state**;
//! * a **per-phase breakdown**: detection (failure → first detection
//!   verdict), propagation (first detection → update messages stop) and
//!   quiescence (trailing state changes that no longer generate updates,
//!   e.g. the far side's hold timer finally expiring).
//!
//! The phase accounting is aligned with [`crate::convergence_time`]:
//! `detection + propagation` equals the paper-style convergence time
//! exactly, and quiescence is the extra tail captured by the stricter
//! [`crate::last_state_change`] variant.

use std::collections::BTreeMap;

use dcn_sim::time::{Time, MILLIS};
use dcn_sim::{FrameClass, NodeId, Trace, TraceEvent};

/// How a router concluded that a neighbor/session was gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detection {
    pub node: NodeId,
    pub time: Time,
    /// `true` for local carrier loss, `false` for a timeout-based verdict.
    pub carrier: bool,
    /// The span kind that carried the verdict (`"neighbor_down"`,
    /// `"bgp_session_down"`, …).
    pub kind: &'static str,
}

/// One router's view of the failure episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterTimeline {
    pub node: NodeId,
    /// First span or routing change this router produced at/after `t0`.
    pub first_learned: Time,
    /// Last state-changing span or routing change it produced.
    pub last_changed: Time,
    /// Spans attributed to this router in the episode.
    pub span_count: u64,
    /// Set when this router itself detected the failure.
    pub detection: Option<Detection>,
}

/// Detection → propagation → quiescence, in fractional milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseBreakdown {
    /// Failure instant to the first detection verdict.
    pub detection_ms: f64,
    /// First detection to the last routing-update frame (so that
    /// `detection + propagation` == paper-style convergence time).
    pub propagation_ms: f64,
    /// Trailing state changes after update messages stopped.
    pub quiescence_ms: f64,
}

/// The assembled storyboard for one failure episode.
#[derive(Clone, Debug, Default)]
pub struct Storyboard {
    /// The failure instant the episode is measured from.
    pub t0: Time,
    /// Every detection verdict, in time order.
    pub detections: Vec<Detection>,
    /// Per-router timelines, ordered by first-learned time.
    pub routers: Vec<RouterTimeline>,
    /// Phase breakdown; `None` when the episode produced no detection.
    pub phases: Option<PhaseBreakdown>,
    /// Paper-style convergence time (last update frame − `t0`), ns.
    pub convergence_ns: Option<u64>,
    /// Stricter last-state-change time − `t0`, ns.
    pub last_change_ns: Option<u64>,
    /// First in-data-plane repair (`local_repair` span) − `t0`, ns. This
    /// is the `repaired-locally` phase: the window in which forwarding
    /// was already healed by the backup FIB while the control plane was
    /// still converging. `None` when no repair fired (e.g. with the
    /// `local_repair` knob off).
    pub first_repair_ns: Option<u64>,
    /// Number of `local_repair` spans in the episode (one per repaired
    /// destination per FIB generation, not per packet).
    pub repair_spans: u64,
}

/// Build the storyboard for the failure at `t0` from a recorded trace.
pub fn build(trace: &Trace, t0: Time) -> Storyboard {
    let mut detections = Vec::new();
    let mut per_node: BTreeMap<NodeId, RouterTimeline> = BTreeMap::new();
    let mut last_update_frame: Option<Time> = None;
    let mut last_change: Option<Time> = None;
    let mut first_repair: Option<Time> = None;
    let mut repair_spans = 0u64;

    for ev in trace.events_since(t0) {
        let (node, time) = (ev.node(), ev.time());
        match ev {
            TraceEvent::Span { span, .. } => {
                if matches!(span, dcn_sim::SpanEvent::LocalRepair { .. }) {
                    first_repair.get_or_insert(time);
                    repair_spans += 1;
                }
                let tl = per_node.entry(node).or_insert(RouterTimeline {
                    node,
                    first_learned: time,
                    last_changed: time,
                    span_count: 0,
                    detection: None,
                });
                tl.span_count += 1;
                if span.is_state_change() {
                    tl.last_changed = time;
                    last_change = Some(time);
                }
                if let Some(carrier) = span.detection() {
                    let d = Detection { node, time, carrier, kind: span.kind() };
                    if tl.detection.is_none() {
                        tl.detection = Some(d);
                    }
                    detections.push(d);
                }
            }
            TraceEvent::RouteChange { .. } => {
                let tl = per_node.entry(node).or_insert(RouterTimeline {
                    node,
                    first_learned: time,
                    last_changed: time,
                    span_count: 0,
                    detection: None,
                });
                tl.last_changed = time;
                last_change = Some(time);
            }
            TraceEvent::FrameSent { class: FrameClass::Update, .. } => {
                per_node.entry(node).or_insert(RouterTimeline {
                    node,
                    first_learned: time,
                    last_changed: time,
                    span_count: 0,
                    detection: None,
                });
                last_update_frame = Some(time);
            }
            _ => {}
        }
    }

    let phases = detections.first().map(|first| {
        let detect_at = first.time;
        // Convergence endpoint: when update messages stop (paper
        // methodology). Falls back to the detection instant for episodes
        // that triggered no updates at all.
        let converge_at = last_update_frame.unwrap_or(detect_at).max(detect_at);
        let quiesce_at = last_change.unwrap_or(converge_at).max(converge_at);
        PhaseBreakdown {
            detection_ms: (detect_at - t0) as f64 / MILLIS as f64,
            propagation_ms: (converge_at - detect_at) as f64 / MILLIS as f64,
            quiescence_ms: (quiesce_at - converge_at) as f64 / MILLIS as f64,
        }
    });

    let mut routers: Vec<RouterTimeline> = per_node.into_values().collect();
    routers.sort_by_key(|tl| (tl.first_learned, tl.node));

    Storyboard {
        t0,
        detections,
        routers,
        phases,
        convergence_ns: last_update_frame.map(|t| t - t0),
        last_change_ns: last_change.map(|t| t - t0),
        first_repair_ns: first_repair.map(|t| t - t0),
        repair_spans,
    }
}

/// Render the storyboard as the human-readable report `fcr report`
/// prints. `name_of` maps node ids to router names.
pub fn render(sb: &Storyboard, name_of: impl Fn(NodeId) -> String) -> String {
    let ms = |ns: u64| ns as f64 / MILLIS as f64;
    let mut out = String::new();
    out.push_str(&format!(
        "failure injected at t0 = {:.3} s\n",
        sb.t0 as f64 / dcn_sim::time::SECONDS as f64
    ));
    if sb.detections.is_empty() {
        out.push_str("no detection verdicts recorded — nothing to storyboard\n");
        return out;
    }
    out.push_str("\ndetections:\n");
    for d in &sb.detections {
        out.push_str(&format!(
            "  +{:>9.3} ms  {:<8} {:<17} via {}\n",
            ms(d.time - sb.t0),
            name_of(d.node),
            d.kind,
            if d.carrier { "carrier (local)" } else { "timeout (inferred)" },
        ));
    }
    if let Some(p) = sb.phases {
        out.push_str(&format!(
            "\nphases: detection {:.3} ms \u{2192} propagation {:.3} ms \u{2192} quiescence {:.3} ms\n",
            p.detection_ms, p.propagation_ms, p.quiescence_ms
        ));
    }
    if let Some(r) = sb.first_repair_ns {
        out.push_str(&format!(
            "repaired-locally: first in-data-plane repair at +{:.3} ms ({} repair span{})\n",
            ms(r),
            sb.repair_spans,
            if sb.repair_spans == 1 { "" } else { "s" },
        ));
    }
    if let Some(c) = sb.convergence_ns {
        out.push_str(&format!("convergence (update messages stop): {:.3} ms\n", ms(c)));
    }
    if let Some(c) = sb.last_change_ns {
        out.push_str(&format!("last state change: {:.3} ms\n", ms(c)));
    }
    out.push_str(&format!(
        "\n{:<8} {:>15} {:>15} {:>7}  detection\n",
        "router", "first learned", "last changed", "spans"
    ));
    for tl in &sb.routers {
        let det = match tl.detection {
            Some(d) if d.carrier => "carrier",
            Some(_) => "timeout",
            None => "-",
        };
        out.push_str(&format!(
            "{:<8} {:>12.3} ms {:>12.3} ms {:>7}  {}\n",
            name_of(tl.node),
            ms(tl.first_learned - sb.t0),
            ms(tl.last_changed - sb.t0),
            tl.span_count,
            det,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::{PortId, SpanEvent};

    fn span(t: Time, node: u32, span: SpanEvent) -> TraceEvent {
        TraceEvent::Span { time: t, node: NodeId(node), span }
    }

    fn update_frame(t: Time, node: u32) -> TraceEvent {
        TraceEvent::FrameSent {
            time: t,
            node: NodeId(node),
            port: PortId(0),
            wire_len: 80,
            capture_len: 80,
            class: FrameClass::Update,
        }
    }

    fn episode() -> Trace {
        let mut tr = Trace::enabled();
        tr.push(TraceEvent::PortDown { time: 100 * MILLIS, node: NodeId(1), port: PortId(0) });
        // n1 detects by carrier immediately; floods.
        tr.push(span(100 * MILLIS, 1, SpanEvent::NeighborDown { port: PortId(0), carrier: true }));
        tr.push(update_frame(101 * MILLIS, 1));
        // n2 learns from the flood, changes state, forwards.
        tr.push(span(102 * MILLIS, 2, SpanEvent::VidRemove { root: 11, port: PortId(1) }));
        tr.push(update_frame(103 * MILLIS, 2));
        // n3 only detects by timeout much later (quiescence tail).
        tr.push(span(
            200 * MILLIS,
            3,
            SpanEvent::NeighborDown { port: PortId(2), carrier: false },
        ));
        tr
    }

    #[test]
    fn detection_and_phases_line_up_with_convergence_time() {
        let tr = episode();
        let t0 = 100 * MILLIS;
        let sb = build(&tr, t0);
        assert_eq!(sb.detections.len(), 2);
        assert!(sb.detections[0].carrier);
        assert_eq!(sb.detections[0].node, NodeId(1));
        assert!(!sb.detections[1].carrier);

        let p = sb.phases.unwrap();
        assert_eq!(p.detection_ms, 0.0);
        assert_eq!(p.propagation_ms, 3.0, "last update frame at +3 ms");
        assert_eq!(p.quiescence_ms, 97.0, "timeout verdict at +100 ms");

        // detection + propagation == paper-style convergence time.
        let conv = crate::convergence_time(&tr, t0).unwrap();
        assert_eq!(
            ((p.detection_ms + p.propagation_ms) * MILLIS as f64) as u64,
            conv
        );
        assert_eq!(sb.convergence_ns, Some(conv));
    }

    #[test]
    fn router_timelines_ordered_by_first_learned() {
        let tr = episode();
        let sb = build(&tr, 100 * MILLIS);
        let order: Vec<NodeId> = sb.routers.iter().map(|r| r.node).collect();
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let n1 = &sb.routers[0];
        assert_eq!(n1.first_learned, 100 * MILLIS);
        assert!(n1.detection.unwrap().carrier);
        let n2 = &sb.routers[1];
        assert_eq!(n2.first_learned, 102 * MILLIS);
        assert!(n2.detection.is_none());
    }

    #[test]
    fn render_mentions_every_router_and_phase() {
        let tr = episode();
        let sb = build(&tr, 100 * MILLIS);
        let text = render(&sb, |n| format!("R{}", n.0));
        assert!(text.contains("R1"), "{text}");
        assert!(text.contains("R3"), "{text}");
        assert!(text.contains("carrier (local)"), "{text}");
        assert!(text.contains("timeout (inferred)"), "{text}");
        assert!(text.contains("propagation"), "{text}");
    }

    #[test]
    fn local_repair_spans_date_the_repaired_locally_phase() {
        let mut tr = Trace::enabled();
        let t0 = 100 * MILLIS;
        tr.push(span(t0, 1, SpanEvent::NeighborDown { port: PortId(0), carrier: true }));
        tr.push(span(t0 + MILLIS / 2, 1, SpanEvent::LocalRepair { port: PortId(3) }));
        tr.push(update_frame(101 * MILLIS, 1));
        tr.push(span(102 * MILLIS, 2, SpanEvent::LocalRepair { port: PortId(1) }));
        let sb = build(&tr, t0);
        assert_eq!(sb.first_repair_ns, Some(MILLIS / 2));
        assert_eq!(sb.repair_spans, 2);
        // Repair spans are transmission markers, not state changes: the
        // late repair must not stretch quiescence.
        assert_eq!(sb.last_change_ns, Some(0));
        let text = render(&sb, |n| format!("R{}", n.0));
        assert!(text.contains("repaired-locally"), "{text}");

        // Without repairs the phase line is absent entirely.
        let sb0 = build(&episode(), t0);
        assert_eq!(sb0.first_repair_ns, None);
        assert!(!render(&sb0, |n| format!("R{}", n.0)).contains("repaired-locally"));
    }

    #[test]
    fn empty_episode_renders_gracefully() {
        let tr = Trace::enabled();
        let sb = build(&tr, 0);
        assert!(sb.phases.is_none());
        let text = render(&sb, |n| n.to_string());
        assert!(text.contains("nothing to storyboard"));
    }
}
