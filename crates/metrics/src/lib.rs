//! # dcn-metrics — extracting the paper's metrics from simulation traces
//!
//! The paper's measurement pipeline recorded the failure-injection
//! instant, captured frames with tshark, and parsed router logs to
//! compute convergence time, blast radius, control overhead and
//! keep-alive overhead. This crate performs the same computations over
//! the emulator's [`dcn_sim::Trace`]:
//!
//! | Paper metric | Definition here |
//! |---|---|
//! | Convergence time (Fig. 4) | failure instant → last routing-update frame or routing-table change |
//! | Blast radius (Fig. 5) | distinct routers with a `RouteChange` event after the failure |
//! | Control overhead (Fig. 6) | Σ layer-2 bytes of `Update`-class frames after the failure |
//! | Keep-alive overhead (Figs. 9–10) | bytes/frames of `Keepalive`-class traffic over a steady-state window, per link |
//! | Packet loss (Figs. 7–8) | from `dcn_traffic::LossReport` (receiver-side analyzer) |

use std::collections::{BTreeMap, BTreeSet};

use dcn_sim::time::{Duration, Time, SECONDS};
use dcn_sim::{FrameClass, NodeId, Trace, TraceEvent};

pub mod storyboard;

/// Convergence time, per the paper's methodology: from `t0` (the failure
/// instant recorded by the injection script) until **update messages
/// stop** ("When the update messages stopped, we recorded the end time").
/// `None` if the failure produced no update messages at all.
///
/// Routing-table changes that generate no update message (e.g. the far
/// side of a failed link silently dropping an ECMP member when its hold
/// timer finally expires) intentionally do not extend convergence — they
/// didn't in the paper's log-based measurement either. Use
/// [`last_state_change`] for the stricter variant.
pub fn convergence_time(trace: &Trace, t0: Time) -> Option<Duration> {
    let mut last = None;
    for ev in trace.events_since(t0) {
        if matches!(ev, TraceEvent::FrameSent { class: FrameClass::Update, .. }) {
            last = Some(ev.time());
        }
    }
    last.map(|t| t - t0)
}

/// Time of the last routing-state change after `t0` (a stricter
/// convergence notion than the paper's update-message-based one).
pub fn last_state_change(trace: &Trace, t0: Time) -> Option<Duration> {
    let mut last = None;
    for ev in trace.events_since(t0) {
        let relevant = matches!(
            ev,
            TraceEvent::FrameSent { class: FrameClass::Update, .. }
                | TraceEvent::RouteChange { .. }
        );
        if relevant {
            last = Some(ev.time());
        }
    }
    last.map(|t| t - t0)
}

/// Blast radius: distinct routers whose destination-forwarding state
/// changed at or after `t0`.
pub fn blast_radius(trace: &Trace, t0: Time) -> usize {
    let nodes: BTreeSet<NodeId> = trace
        .events_since(t0)
        .filter_map(|ev| match ev {
            TraceEvent::RouteChange { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    nodes.len()
}

/// Per-class traffic statistics over a window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    pub frames: u64,
    /// Bytes as on a physical wire (min 60-byte frames).
    pub wire_bytes: u64,
    /// Bytes as tshark captured them on the paper's virtualized testbed
    /// NICs (no padding of short frames) — the paper's Fig. 6 counts are
    /// in these units, which is how an MR-MTP loss update costs ~20 bytes.
    pub capture_bytes: u64,
}

/// Control overhead: capture-length bytes of update messages sent at or
/// after `t0` (optionally bounded by `t1`). This matches the paper's
/// tshark/log-based byte counting.
pub fn control_overhead_bytes(trace: &Trace, t0: Time, t1: Option<Time>) -> u64 {
    class_bytes(trace, FrameClass::Update, t0, t1).capture_bytes
}

/// Statistics for one frame class in a window.
pub fn class_bytes(trace: &Trace, class: FrameClass, t0: Time, t1: Option<Time>) -> ClassStats {
    let mut out = ClassStats::default();
    for ev in trace.events_since(t0) {
        if let Some(end) = t1 {
            if ev.time() >= end {
                break;
            }
        }
        if let TraceEvent::FrameSent { class: c, wire_len, capture_len, .. } = ev {
            if *c == class {
                out.frames += 1;
                out.wire_bytes += *wire_len as u64;
                out.capture_bytes += *capture_len as u64;
            }
        }
    }
    out
}

/// Steady-state keep-alive statistics over a window (Figs. 9–10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KeepaliveStats {
    pub frames: u64,
    pub bytes: u64,
    /// Average keep-alive bytes per second across the whole fabric.
    pub bytes_per_sec: f64,
    /// Average frame size — 60 for MR-MTP hellos, 66/85 for BFD/BGP.
    pub avg_frame_len: f64,
}

/// Keep-alive traffic in `[t0, t1)` (wire lengths: keep-alives are
/// per-link line overhead, so the padded on-wire size is the honest
/// number).
pub fn keepalive_stats(trace: &Trace, t0: Time, t1: Time) -> KeepaliveStats {
    let cs = class_bytes(trace, FrameClass::Keepalive, t0, Some(t1));
    let (frames, bytes) = (cs.frames, cs.wire_bytes);
    let window_s = (t1 - t0) as f64 / SECONDS as f64;
    KeepaliveStats {
        frames,
        bytes,
        bytes_per_sec: if window_s > 0.0 { bytes as f64 / window_s } else { 0.0 },
        avg_frame_len: if frames > 0 { bytes as f64 / frames as f64 } else { 0.0 },
    }
}

/// Full per-class breakdown of a window (diagnostics and the Fig. 1
/// protocol-machinery comparison).
pub fn class_breakdown(
    trace: &Trace,
    t0: Time,
    t1: Option<Time>,
) -> BTreeMap<&'static str, (u64, u64)> {
    let mut map: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for ev in trace.events_since(t0) {
        if let Some(end) = t1 {
            if ev.time() >= end {
                break;
            }
        }
        if let TraceEvent::FrameSent { class, wire_len, .. } = ev {
            let e = map.entry(class.name()).or_insert((0, 0));
            e.0 += 1;
            e.1 += *wire_len as u64;
        }
    }
    map
}

/// Number of update *frames* after `t0` (the paper also discusses message
/// counts).
pub fn update_frames(trace: &Trace, t0: Time) -> u64 {
    class_bytes(trace, FrameClass::Update, t0, None).frames
}

/// The failure-injection instants recorded in the trace.
pub fn failure_instants(trace: &Trace) -> Vec<Time> {
    trace
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::PortDown { time, .. } => Some(*time),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::{PortId, RouteChangeKind};

    fn frame(t: Time, node: u32, class: FrameClass, len: u32) -> TraceEvent {
        TraceEvent::FrameSent {
            time: t,
            node: NodeId(node),
            port: PortId(0),
            wire_len: len.max(60),
            capture_len: len,
            class,
        }
    }

    fn change(t: Time, node: u32) -> TraceEvent {
        TraceEvent::RouteChange {
            time: t,
            node: NodeId(node),
            kind: RouteChangeKind::Withdraw,
            detail: 0,
        }
    }

    fn sample_trace() -> Trace {
        let mut tr = Trace::enabled();
        tr.push(frame(10, 1, FrameClass::Keepalive, 15));
        tr.push(frame(90, 1, FrameClass::Update, 20)); // pre-failure churn
        tr.push(TraceEvent::PortDown { time: 100, node: NodeId(0), port: PortId(0) });
        tr.push(frame(150, 2, FrameClass::Update, 20));
        tr.push(change(160, 3));
        tr.push(frame(170, 3, FrameClass::Update, 93));
        tr.push(change(180, 4));
        tr.push(frame(200, 1, FrameClass::Keepalive, 85));
        tr.push(frame(250, 2, FrameClass::Ack, 66));
        tr
    }

    #[test]
    fn convergence_is_last_update_message() {
        let tr = sample_trace();
        assert_eq!(convergence_time(&tr, 100), Some(70), "last update frame at 170");
        assert_eq!(convergence_time(&tr, 300), None);
        assert_eq!(
            last_state_change(&tr, 100),
            Some(80),
            "route change at 180 extends the strict variant"
        );
    }

    #[test]
    fn blast_radius_counts_distinct_routers() {
        let tr = sample_trace();
        assert_eq!(blast_radius(&tr, 100), 2);
        assert_eq!(blast_radius(&tr, 181), 0);
    }

    #[test]
    fn control_overhead_sums_update_capture_bytes_after_t0() {
        let tr = sample_trace();
        assert_eq!(control_overhead_bytes(&tr, 100, None), 20 + 93);
        assert_eq!(control_overhead_bytes(&tr, 0, None), 20 + 20 + 93);
        assert_eq!(control_overhead_bytes(&tr, 100, Some(160)), 20);
        assert_eq!(update_frames(&tr, 100), 2);
        let cs = class_bytes(&tr, FrameClass::Update, 100, None);
        assert_eq!(cs.wire_bytes, 60 + 93, "wire lengths stay padded");
    }

    #[test]
    fn keepalive_stats_compute_rates() {
        let tr = sample_trace();
        let ks = keepalive_stats(&tr, 0, SECONDS);
        assert_eq!(ks.frames, 2);
        assert_eq!(ks.bytes, 60 + 85, "padded wire lengths");
        assert!((ks.bytes_per_sec - 145.0).abs() < 1e-9);
        assert!((ks.avg_frame_len - 72.5).abs() < 1e-9);
    }

    #[test]
    fn breakdown_covers_all_classes() {
        let tr = sample_trace();
        let b = class_breakdown(&tr, 0, None);
        assert_eq!(b["keepalive"], (2, 145));
        assert_eq!(b["update"], (3, 60 + 60 + 93));
        assert_eq!(b["ack"], (1, 66));
        assert!(!b.contains_key("data"));
    }

    #[test]
    fn failure_instants_found() {
        let tr = sample_trace();
        assert_eq!(failure_instants(&tr), vec![100]);
    }

    #[test]
    fn empty_window_yields_zeroes() {
        let tr = Trace::enabled();
        assert_eq!(convergence_time(&tr, 0), None);
        assert_eq!(blast_radius(&tr, 0), 0);
        let ks = keepalive_stats(&tr, 0, 0);
        assert_eq!(ks.bytes_per_sec, 0.0);
        assert_eq!(ks.avg_frame_len, 0.0);
    }
}

/// A tshark-like rendering of one interface's transmissions — the view
/// the paper's measurement scripts worked from. Each line shows the
/// relative timestamp (seconds), frame class and capture length.
pub fn capture_text(
    trace: &Trace,
    node: NodeId,
    port: dcn_sim::PortId,
    t0: Time,
    t1: Time,
    max_lines: usize,
) -> String {
    let mut out = String::new();
    let mut count = 0usize;
    for ev in trace.events_since(t0) {
        if ev.time() >= t1 {
            break;
        }
        if let TraceEvent::FrameSent { time, node: n, port: p, capture_len, class, .. } = ev {
            if *n != node || *p != port {
                continue;
            }
            count += 1;
            if count <= max_lines {
                out.push_str(&format!(
                    "{:>10.6}  {:<9}  {:>4} bytes\n",
                    (*time - t0) as f64 / SECONDS as f64,
                    class.name(),
                    capture_len
                ));
            }
        }
    }
    if count > max_lines {
        out.push_str(&format!("… {} more frames\n", count - max_lines));
    }
    out
}

#[cfg(test)]
mod capture_tests {
    use super::*;
    use dcn_sim::PortId;

    #[test]
    fn capture_text_filters_and_truncates() {
        let mut tr = Trace::enabled();
        tr.push(TraceEvent::FrameSent {
            time: 0,
            node: NodeId(2), // different node: excluded
            port: PortId(0),
            wire_len: 60,
            capture_len: 15,
            class: FrameClass::Keepalive,
        });
        for i in 0..5u64 {
            tr.push(TraceEvent::FrameSent {
                time: i * 50_000_000,
                node: NodeId(1),
                port: PortId(0),
                wire_len: 60,
                capture_len: 15,
                class: FrameClass::Keepalive,
            });
        }
        let s = capture_text(&tr, NodeId(1), PortId(0), 0, SECONDS, 3);
        assert_eq!(s.lines().count(), 4, "3 frames + truncation notice:\n{s}");
        assert!(s.contains("keepalive"));
        assert!(s.contains("… 2 more frames"));
        assert!(s.contains("  0.000000"));
    }
}
