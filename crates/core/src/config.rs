//! MR-MTP router configuration.
//!
//! The paper's §VII-G point is that MR-MTP needs almost none: a router is
//! told its **tier**, and a ToR additionally which interface faces the
//! rack (from which it derives its VID via the rack subnet). Everything
//! else — VIDs, trees, neighbors, routes — is learned by the protocol.

use dcn_sim::time::{millis, Duration};
use dcn_sim::PortId;
use dcn_wire::{IpAddr4, Prefix};

/// Protocol timers. Defaults are the values used in the paper's
/// evaluation (§VI-F).
#[derive(Clone, Copy, Debug)]
pub struct MrmtpTimers {
    /// Hello interval on idle links (paper: 50 ms).
    pub hello_interval: Duration,
    /// Dead interval — "assume a neighbor down on missing a single hello"
    /// (paper: 100 ms).
    pub dead_interval: Duration,
    /// Slow-to-Accept: consecutive hellos required to re-accept a
    /// previously failed neighbor (paper: 3).
    pub accept_hellos: u32,
    /// Retransmit interval for unacknowledged reliable messages.
    pub retransmit_interval: Duration,
    /// Hold-down applied to loss updates arriving from upper-tier
    /// neighbors, letting reports from all uplinks aggregate before the
    /// router decides between installing negative entries (partial upward
    /// loss) and propagating the loss downward (no upward path left).
    pub loss_holddown: Duration,
    /// Periodic re-advertisement used as a self-healing backstop; the
    /// steady-state tree produces no protocol traffic beyond hellos.
    pub advertise_interval: Duration,
}

impl Default for MrmtpTimers {
    fn default() -> Self {
        MrmtpTimers {
            hello_interval: millis(50),
            dead_interval: millis(100),
            accept_hellos: 3,
            retransmit_interval: millis(20),
            loss_holddown: millis(2),
            advertise_interval: millis(1000),
        }
    }
}

/// ToR-specific configuration.
#[derive(Clone, Debug)]
pub struct TorConfig {
    /// The rack subnet the ToR shares with its servers; the VID is derived
    /// from its third octet (paper §III-A).
    pub rack_subnet: Prefix,
    /// Rack-facing ports and the server address behind each (the paper's
    /// `leavesNetworkPortDict` entry for this leaf, extended to multiple
    /// servers).
    pub host_ports: Vec<(IpAddr4, PortId)>,
}

impl TorConfig {
    /// The auto-derived root VID (paper §III-A: "the third byte in the
    /// subnet IP address that the ToR shares with servers in its rack").
    pub fn derive_vid(&self) -> u8 {
        self.rack_subnet.addr.third_octet()
    }
}

/// Full configuration of one MR-MTP router.
#[derive(Clone, Debug)]
pub struct MrmtpConfig {
    /// Human-readable name (used in printed tables).
    pub name: String,
    /// Tier in the folded-Clos (1 = ToR).
    pub tier: u8,
    /// Present on ToRs only.
    pub tor: Option<TorConfig>,
    pub timers: MrmtpTimers,
    /// Use the compiled FIB and parse-once frame metadata on the data
    /// plane. Behavior (routes chosen, bytes on the wire, trace) is
    /// identical either way — the equivalence suite asserts bit-equal
    /// trace digests — so this stays on except when running that proof.
    pub fast_path: bool,
    /// Local fast reroute: let the data plane steer a packet around a
    /// locally-dead egress using the precomputed backup FIB, without
    /// waiting for the control plane. At most one repair per packet (the
    /// metadata loop guard); requires `fast_path`. Off by default so the
    /// baseline behavior — and the trace digest — is exactly the
    /// pre-repair protocol.
    pub local_repair: bool,
}

impl MrmtpConfig {
    /// Configuration for a spine at `tier` (2 or higher).
    pub fn spine(name: impl Into<String>, tier: u8) -> MrmtpConfig {
        assert!(tier >= 2, "spines live at tier 2+");
        MrmtpConfig {
            name: name.into(),
            tier,
            tor: None,
            timers: MrmtpTimers::default(),
            fast_path: true,
            local_repair: false,
        }
    }

    /// Configuration for a ToR.
    pub fn tor(name: impl Into<String>, tor: TorConfig) -> MrmtpConfig {
        MrmtpConfig {
            name: name.into(),
            tier: 1,
            tor: Some(tor),
            timers: MrmtpTimers::default(),
            fast_path: true,
            local_repair: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_derivation_uses_third_octet() {
        let tor = TorConfig {
            rack_subnet: Prefix::new(IpAddr4::new(192, 168, 11, 0), 24),
            host_ports: vec![(IpAddr4::new(192, 168, 11, 1), PortId(2))],
        };
        assert_eq!(tor.derive_vid(), 11);
    }

    #[test]
    fn default_timers_match_paper() {
        let t = MrmtpTimers::default();
        assert_eq!(t.hello_interval, millis(50));
        assert_eq!(t.dead_interval, millis(100));
        assert_eq!(t.accept_hellos, 3);
        assert_eq!(t.dead_interval, 2 * t.hello_interval, "one missed hello");
    }

    #[test]
    #[should_panic(expected = "tier 2+")]
    fn spine_config_rejects_tier_one() {
        let _ = MrmtpConfig::spine("S", 1);
    }
}
