//! # dcn-mrmtp — the Multi-Root Meshed Tree Protocol
//!
//! This crate is the reproduction's implementation of the paper's primary
//! contribution. MR-MTP is a single layer-3 protocol that, in a
//! folded-Clos DCN, replaces the entire BGP/ECMP/BFD/TCP/UDP/IP stack for
//! fabric-internal routing:
//!
//! * **Meshed trees from auto-assigned VIDs.** Every ToR roots a tree
//!   identified by its VID (derived from the rack subnet's third octet).
//!   Upper-tier spines join the trees of the tier below and receive VIDs
//!   formed by appending the join port's number — `11.1.1` both names a
//!   top spine's position in ToR 11's tree and spells out the loop-free
//!   path back to that ToR. Trees from different ToRs *mesh* at the
//!   spines, giving every ToR-pair multiple disjoint paths with no routing
//!   protocol, no spine addressing, and no per-prefix configuration.
//! * **Forwarding by VID table.** Encapsulated IP packets carry source and
//!   destination ToR VIDs. A router owning a VID rooted at the destination
//!   forwards *down* its port of acquisition; otherwise it hashes the flow
//!   *up* across live uplinks. Negative-reachability entries installed by
//!   loss updates steer flows away from broken subtrees.
//! * **Quick-to-Detect, Slow-to-Accept.** A neighbor is declared down
//!   after a single missed hello (dead interval = 2 × the 50 ms hello
//!   interval) but re-accepted only after three consecutive hellos, which
//!   dampens flapping interfaces. Every MR-MTP frame doubles as a
//!   keep-alive; explicit hellos (one byte on the wire) are sent only on
//!   otherwise-idle links.
//! * **Reliability built in.** Offers and loss/recovery updates carry
//!   sequence numbers and are retransmitted until acknowledged — the
//!   function TCP performs for BGP, at a tiny fraction of the bytes.
//!
//! The implementation follows the paper's §III–§IV description; timer
//! defaults (50 ms hello, 100 ms dead, 3-hello acceptance) are the values
//! used in the paper's evaluation.

pub mod config;
pub mod fib;
pub mod neighbor;
pub mod reliable;
pub mod router;
pub mod vid_table;

pub use config::{MrmtpConfig, MrmtpTimers, TorConfig};
pub use fib::CompiledFib;
pub use neighbor::{NeighborState, NeighborTable};
pub use router::{MrmtpRouter, RouterStats};
pub use vid_table::{OwnVid, VidTable};
