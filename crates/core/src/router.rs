//! The MR-MTP router: tree construction, failure handling, forwarding.
//!
//! ## Loss-update semantics (reproducing the paper's Fig. 5 accounting)
//!
//! When a router loses a tree root downward (its port of acquisition died
//! or a lower neighbor reported the loss), it removes the affected own
//! VIDs and floods a `Lost` update to its remaining neighbors. Routers
//! receiving a `Lost` from a *lower* neighbor do the same — they are the
//! "spines along the way (that) only forward the update message" of the
//! paper: identity-VID removal is not a destination-routing change.
//!
//! Routers receiving `Lost` from *upper* neighbors hold the reports down
//! briefly (2 ms) so reports from parallel uplinks aggregate, then decide:
//!
//! * **partial upward loss** (some uplinks still reach the root): install
//!   negative-reachability entries for the reporting ports — this *is* a
//!   destination-routing change and is what the blast-radius metric
//!   counts;
//! * **total upward loss** (every uplink reported): nothing to
//!   discriminate — propagate the loss to the tier below and store
//!   nothing.
//!
//! This pair of rules yields exactly the paper's numbers: 3/1 updated
//! routers in the 2-PoD fabric and 7/3 in the 4-PoD fabric for failures
//! at TC1/TC2 and TC3/TC4 respectively.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dcn_sim::time::{millis, Duration, Time};
use dcn_sim::{
    alloc_track, Ctx, FrameBuf, FrameClass, FrameMeta, PortId, Protocol, RouteChangeKind,
    SpanEvent, StatsSnapshot,
};
use dcn_wire::{
    flow_hash_of, EtherType, EthernetFrame, IpAddr4, Ipv4Packet, MacAddr, MrmtpMsg, Vid,
};

use crate::config::MrmtpConfig;
use crate::fib::CompiledFib;
use crate::neighbor::{NeighborTable, RxOutcome};
use crate::reliable::ReliableTx;
use crate::vid_table::VidTable;

/// Periodic housekeeping timer token.
const TOKEN_TICK: u64 = 1;
/// Loss-aggregation hold-down timer token.
const TOKEN_HOLDDOWN: u64 = 2;

/// Housekeeping granularity: hellos, dead sweeps and retransmissions are
/// checked on this cadence (well under the 50 ms hello interval).
const TICK: Duration = millis(5);

/// Per-port window of recently processed reliable-message sequence
/// numbers (dedupes retransmissions).
const SEEN_SEQ_WINDOW: usize = 64;

/// Counters exposed for tests, examples and the experiment harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    pub hellos_sent: u64,
    pub advertises_sent: u64,
    pub joins_sent: u64,
    pub offers_sent: u64,
    pub updates_sent: u64,
    pub updates_received: u64,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub data_dropped: u64,
    pub negatives_installed: u64,
    pub negatives_cleared: u64,
    /// Frames that failed wire decoding (e.g. corrupted in flight) and
    /// were dropped instead of processed.
    pub malformed_frames_dropped: u64,
    /// Data packets the local-repair fast path steered around a dead
    /// egress (always 0 with `local_repair` off).
    pub locally_repaired: u64,
    /// Data packets dropped because no forwarding candidate was left —
    /// the loss-window blackhole count. Maintained identically with
    /// `local_repair` on or off so the two can be compared.
    pub blackholed_in_window: u64,
}

/// An MR-MTP router bound to one emulated node.
pub struct MrmtpRouter {
    cfg: MrmtpConfig,
    /// ToR root VID (None on spines).
    my_root: Option<Vid>,
    table: VidTable,
    nbr: NeighborTable,
    rel: ReliableTx,
    /// Roots offered to each child port (propagation targets for loss
    /// updates heading down the meshed trees).
    offered: BTreeMap<PortId, BTreeSet<u8>>,
    /// Recently processed (port, seq) pairs, ring per port.
    seen_seq: BTreeMap<PortId, VecDeque<u16>>,
    /// Aggregating upper-loss reports: root → reporting up-ports.
    pending_upper_loss: BTreeMap<u8, BTreeSet<PortId>>,
    holddown_armed: bool,
    /// Roots this router itself declared lost downward (suppresses echo
    /// processing of its own flood).
    self_lost: BTreeSet<u8>,
    /// Roots known unreachable through every uplink (total upward loss).
    upper_lost: BTreeSet<u8>,
    /// Rack-facing ports (ToR only): server address → port.
    host_ports: Vec<(IpAddr4, PortId)>,
    /// Pre-encoded hello frame per port (hellos are position-dependent but
    /// time-independent, so the keepalive fast path is a refcount bump).
    hello_frames: Vec<Option<FrameBuf>>,
    /// Compiled forwarding table (see [`crate::fib`]).
    fib: CompiledFib,
    /// The `(VidTable, NeighborTable)` versions the FIB was compiled
    /// from; `None` forces a rebuild (also used to invalidate on
    /// `upper_lost` changes, which have no table version of their own).
    fib_key: Option<(u64, u64)>,
    /// Roots (bit per root id) whose first local repair in the current
    /// FIB generation was already traced — the repair span is emitted
    /// once per (root, generation), not per packet.
    repair_noted: [u128; 2],
    last_advertise: Time,
    started: bool,
    stats: RouterStats,
}

impl MrmtpRouter {
    /// Create a router for a node with `ports` ports.
    pub fn new(mut cfg: MrmtpConfig, ports: usize) -> MrmtpRouter {
        let my_root = cfg.tor.as_ref().map(|t| Vid::root(t.derive_vid()));
        // The router owns the config: move the host-port list out instead
        // of cloning it (the config copy is never consulted again).
        let host_ports = cfg
            .tor
            .as_mut()
            .map(|t| std::mem::take(&mut t.host_ports))
            .unwrap_or_default();
        let nbr = NeighborTable::new(ports, cfg.timers.dead_interval, cfg.timers.accept_hellos);
        MrmtpRouter {
            cfg,
            my_root,
            table: VidTable::new(),
            nbr,
            rel: ReliableTx::new(),
            offered: BTreeMap::new(),
            seen_seq: BTreeMap::new(),
            pending_upper_loss: BTreeMap::new(),
            holddown_armed: false,
            self_lost: BTreeSet::new(),
            upper_lost: BTreeSet::new(),
            host_ports,
            hello_frames: vec![None; ports],
            fib: CompiledFib::new(),
            fib_key: None,
            repair_noted: [0; 2],
            last_advertise: 0,
            started: false,
            stats: RouterStats::default(),
        }
    }

    /// This router's tier.
    pub fn tier(&self) -> u8 {
        self.cfg.tier
    }

    /// The ToR's root VID, if this is a ToR.
    pub fn root_vid(&self) -> Option<Vid> {
        self.my_root
    }

    /// The VID table (harness inspection).
    pub fn vid_table(&self) -> &VidTable {
        &self.table
    }

    /// Neighbor liveness (harness inspection).
    pub fn neighbors(&self) -> &NeighborTable {
        &self.nbr
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Router name from configuration.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Render the VID table in the paper's Listing 5 layout.
    pub fn render_table(&self) -> String {
        self.table.render()
    }

    // ------------------------------------------------------------------
    // Transmission helpers
    // ------------------------------------------------------------------

    fn is_host_port(&self, port: PortId) -> bool {
        self.host_ports.iter().any(|&(_, p)| p == port)
    }

    /// Router-facing connected ports.
    fn router_ports<'c>(&self, ctx: &Ctx<'c>) -> Vec<PortId> {
        (0..ctx.port_count() as u16)
            .map(PortId)
            .filter(|&p| ctx.port(p).connected && !self.is_host_port(p))
            .collect()
    }

    fn send_msg(&mut self, ctx: &mut Ctx<'_>, port: PortId, msg: &MrmtpMsg, class: FrameClass) {
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node_port(ctx.node().0, port.0),
            ethertype: EtherType::Mrmtp,
            payload: msg.encode(),
        };
        self.nbr.note_tx(port, ctx.now());
        ctx.send(port, frame.encode(), class);
    }

    /// Send a keep-alive hello from the per-port frame cache (the frame
    /// depends only on the sending port, never on time or state).
    fn send_hello(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        self.stats.hellos_sent += 1;
        let frame = self.hello_frames[port.index()]
            .get_or_insert_with(|| {
                FrameBuf::new(
                    EthernetFrame {
                        dst: MacAddr::BROADCAST,
                        src: MacAddr::for_node_port(ctx.node().0, port.0),
                        ethertype: EtherType::Mrmtp,
                        payload: MrmtpMsg::Hello.encode(),
                    }
                    .encode(),
                )
            })
            .clone();
        self.nbr.note_tx(port, ctx.now());
        ctx.send_meta(port, frame, FrameClass::Keepalive, FrameMeta::MrmtpHello);
    }

    /// Send a reliable (acknowledged, retransmitted) message.
    fn send_reliable(&mut self, ctx: &mut Ctx<'_>, port: PortId, msg: MrmtpMsg, class: FrameClass) {
        let seq = match &msg {
            MrmtpMsg::Offer { seq, .. }
            | MrmtpMsg::Lost { seq, .. }
            | MrmtpMsg::Recovered { seq, .. } => *seq,
            _ => unreachable!("only offers and updates are reliable"),
        };
        let frame = FrameBuf::new(
            EthernetFrame {
                dst: MacAddr::BROADCAST,
                src: MacAddr::for_node_port(ctx.node().0, port.0),
                ethertype: EtherType::Mrmtp,
                payload: msg.encode(),
            }
            .encode(),
        );
        self.nbr.note_tx(port, ctx.now());
        // The retransmit queue shares the allocation with the in-flight
        // frame: both sends are refcount bumps.
        ctx.send(port, frame.clone(), class);
        self.rel
            .track(port, seq, frame, class, ctx.now(), self.cfg.timers.retransmit_interval);
    }

    fn advertise_on(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        let vids = if let Some(root) = self.my_root {
            vec![root]
        } else {
            self.table.primary_vids()
        };
        if vids.is_empty() {
            return;
        }
        let tier = self.cfg.tier;
        self.stats.advertises_sent += 1;
        self.send_msg(ctx, port, &MrmtpMsg::Advertise { tier, vids }, FrameClass::Session);
    }

    fn advertise_all(&mut self, ctx: &mut Ctx<'_>) {
        self.last_advertise = ctx.now();
        for port in self.router_ports(ctx) {
            if ctx.port(port).up {
                self.advertise_on(ctx, port);
            }
        }
    }

    // ------------------------------------------------------------------
    // Tree construction
    // ------------------------------------------------------------------

    fn on_advertise(&mut self, ctx: &mut Ctx<'_>, port: PortId, tier: u8, vids: &[Vid]) {
        self.nbr.set_tier(port, tier);
        if tier + 1 != self.cfg.tier {
            return; // not a potential parent
        }
        // Join if the parent offers any tree we don't already hold via
        // this port.
        let wants = vids
            .iter()
            .any(|v| !self.table.ports_for(v.root_id()).any(|p| p == port));
        if wants {
            let my_tier = self.cfg.tier;
            self.stats.joins_sent += 1;
            self.send_msg(ctx, port, &MrmtpMsg::Join { tier: my_tier }, FrameClass::Session);
        }
    }

    fn on_join(&mut self, ctx: &mut Ctx<'_>, port: PortId, tier: u8) {
        self.nbr.set_tier(port, tier);
        if tier != self.cfg.tier + 1 {
            return; // only upper-tier devices join our trees
        }
        // Derive one child VID per tree we hold, appending this port's
        // 1-based number (paper §III-B).
        let mut vids = Vec::new();
        let mut roots = BTreeSet::new();
        if let Some(root) = self.my_root {
            if let Ok(child) = root.child(port.label()) {
                roots.insert(root.root_id());
                vids.push(child);
            }
        }
        for v in self.table.primary_vids() {
            if let Ok(child) = v.child(port.label()) {
                roots.insert(v.root_id());
                vids.push(child);
            }
        }
        if vids.is_empty() {
            return;
        }
        self.offered.insert(port, roots);
        let seq = self.rel.alloc_seq();
        self.stats.offers_sent += 1;
        self.send_reliable(ctx, port, MrmtpMsg::Offer { seq, vids }, FrameClass::Session);
    }

    fn on_offer(&mut self, ctx: &mut Ctx<'_>, port: PortId, seq: u16, vids: &[Vid]) {
        // Offers come from parents (one tier below).
        self.nbr.set_tier(port, self.cfg.tier - 1);
        self.send_msg(ctx, port, &MrmtpMsg::Accept { seq }, FrameClass::Session);
        if self.already_seen(port, seq) {
            return;
        }
        let mut regained = Vec::new();
        let mut changed = false;
        for &vid in vids {
            let was_absent = self.table.install(vid, port);
            changed = true;
            ctx.trace_span(SpanEvent::VidInstall { root: vid.root_id(), port });
            if was_absent {
                let root = vid.root_id();
                if self.upper_lost.remove(&root) {
                    self.fib_key = None;
                }
                if self.self_lost.remove(&root) {
                    regained.push(root);
                }
            }
        }
        if changed {
            // Propagate the enlarged tree upward immediately.
            self.advertise_all(ctx);
        }
        if !regained.is_empty() {
            // Tell everyone (except the parent that restored us) that the
            // roots are reachable again, clearing negative entries.
            self.flood_update(ctx, &regained, port, false);
        }
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// Flood a `Lost` (or `Recovered`) update for `roots` to all live
    /// router neighbors except `except`.
    fn flood_update(&mut self, ctx: &mut Ctx<'_>, roots: &[u8], except: PortId, lost: bool) {
        let mut fanout = 0u8;
        for port in self.router_ports(ctx) {
            if port == except || !ctx.port(port).up || !self.nbr.is_up(port) {
                continue;
            }
            let seq = self.rel.alloc_seq();
            let msg = if lost {
                MrmtpMsg::Lost { seq, roots: roots.to_vec() }
            } else {
                MrmtpMsg::Recovered { seq, roots: roots.to_vec() }
            };
            self.stats.updates_sent += 1;
            self.send_reliable(ctx, port, msg, FrameClass::Update);
            fanout = fanout.saturating_add(1);
        }
        if fanout > 0 {
            let roots = roots.len().min(u8::MAX as usize) as u8;
            ctx.trace_span(SpanEvent::LossFlood { roots, fanout, lost });
        }
    }

    /// Flood to live neighbors at a specific tier only.
    fn flood_update_to_tier(
        &mut self,
        ctx: &mut Ctx<'_>,
        roots: &[u8],
        tier: u8,
        lost: bool,
    ) {
        let targets: Vec<PortId> = self.nbr.up_ports_at_tier(tier).collect();
        let mut fanout = 0u8;
        for port in targets {
            if !ctx.port(port).up {
                continue;
            }
            let seq = self.rel.alloc_seq();
            let msg = if lost {
                MrmtpMsg::Lost { seq, roots: roots.to_vec() }
            } else {
                MrmtpMsg::Recovered { seq, roots: roots.to_vec() }
            };
            self.stats.updates_sent += 1;
            self.send_reliable(ctx, port, msg, FrameClass::Update);
            fanout = fanout.saturating_add(1);
        }
        if fanout > 0 {
            let roots = roots.len().min(u8::MAX as usize) as u8;
            ctx.trace_span(SpanEvent::LossFlood { roots, fanout, lost });
        }
    }

    /// A neighbor is gone. `carrier` distinguishes how the failure was
    /// detected: local carrier loss (true) vs. a missed-hello timeout
    /// (false) — the storyboard analyzer keys its detection phase off
    /// this flag.
    fn neighbor_down(&mut self, ctx: &mut Ctx<'_>, port: PortId, carrier: bool) {
        self.rel.drop_port(port);
        self.offered.remove(&port);
        ctx.trace_span(SpanEvent::NeighborDown { port, carrier });
        // Which tree roots die with this port?
        let mut lost = Vec::new();
        for root in self.table.roots_via_port(port) {
            if self.table.remove_via(root, port) {
                ctx.trace_span(SpanEvent::VidRemove { root, port });
                lost.push(root);
            }
        }
        if !lost.is_empty() {
            for &r in &lost {
                self.self_lost.insert(r);
            }
            self.flood_update(ctx, &lost, port, true);
        }
    }

    /// A neighbor session just (re-)established. Lost/Recovered floods
    /// are edge-triggered and only target live sessions, so any flood
    /// that fired while this session was down is gone for good — both
    /// sides would otherwise keep stale loss state forever (randomized
    /// fault campaigns surface this as black holes that survive full
    /// physical healing). Re-synchronize both directions:
    ///
    /// * Restored **uplink** (tier above): its pre-failure loss reports
    ///   are stale evidence. Drop the negative entries attributed to it
    ///   and optimistically clear total-loss markers; if a loss is still
    ///   real, the uplink re-asserts it (the branch below, running on
    ///   its side) and the hold-down machinery reinstates the state.
    /// * Restored **downlink** (tier below, the flood target): re-send
    ///   every loss this router still holds, so the neighbor's
    ///   optimistic clearing converges back to the truth.
    fn resync_after_rejoin(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        let Some(nbr_tier) = self.nbr.tier(port) else {
            return; // cold start: no stale state to reconcile
        };
        if nbr_tier == self.cfg.tier + 1 {
            for root in self.table.clear_negatives_on_port(port) {
                self.stats.negatives_cleared += 1;
                ctx.trace_route_change(RouteChangeKind::Install, root as u64);
            }
            let regained: Vec<u8> = std::mem::take(&mut self.upper_lost).into_iter().collect();
            if !regained.is_empty() {
                self.fib_key = None;
            }
            if !regained.is_empty() && self.cfg.tier > 1 {
                self.flood_update_to_tier(ctx, &regained, self.cfg.tier - 1, false);
            }
        } else if nbr_tier + 1 == self.cfg.tier {
            let mut lost: BTreeSet<u8> = self.upper_lost.clone();
            let roots: Vec<u8> = self.table.roots().collect();
            for root in roots {
                if self
                    .forwarding_candidates(root, |p| ctx.port(p).up)
                    .is_empty()
                {
                    lost.insert(root);
                }
            }
            if !lost.is_empty() {
                let roots: Vec<u8> = lost.into_iter().collect();
                let seq = self.rel.alloc_seq();
                self.stats.updates_sent += 1;
                self.send_reliable(
                    ctx,
                    port,
                    MrmtpMsg::Lost { seq, roots },
                    FrameClass::Update,
                );
            }
        }
    }

    fn already_seen(&mut self, port: PortId, seq: u16) -> bool {
        let ring = self.seen_seq.entry(port).or_default();
        if ring.contains(&seq) {
            return true;
        }
        ring.push_back(seq);
        if ring.len() > SEEN_SEQ_WINDOW {
            ring.pop_front();
        }
        false
    }

    fn on_lost(&mut self, ctx: &mut Ctx<'_>, port: PortId, seq: u16, roots: &[u8]) {
        self.send_msg(ctx, port, &MrmtpMsg::UpdateAck { seq }, FrameClass::Ack);
        if self.already_seen(port, seq) {
            return;
        }
        self.stats.updates_received += 1;
        let from_tier = self.nbr.tier(port);
        if from_tier == Some(self.cfg.tier.wrapping_sub(1)) {
            // From a lower neighbor: our VIDs through it died.
            let mut fully_lost = Vec::new();
            for &root in roots {
                if self.table.remove_via(root, port) {
                    ctx.trace_span(SpanEvent::VidRemove { root, port });
                    self.self_lost.insert(root);
                    fully_lost.push(root);
                }
            }
            if !fully_lost.is_empty() {
                self.flood_update(ctx, &fully_lost, port, true);
            }
        } else if from_tier == Some(self.cfg.tier + 1) {
            // From an upper neighbor: aggregate before deciding between
            // negative entries and downward propagation.
            let mut any = false;
            for &root in roots {
                if self.table.has_root(root)
                    || self.my_root.map(|v| v.root_id()) == Some(root)
                    || self.self_lost.contains(&root)
                {
                    continue; // we route this root downward (or declared
                              // the loss ourselves): uplink state is moot
                }
                self.pending_upper_loss.entry(root).or_default().insert(port);
                any = true;
            }
            if any && !self.holddown_armed {
                self.holddown_armed = true;
                ctx.trace_span(SpanEvent::HolddownArm);
                ctx.set_timer(self.cfg.timers.loss_holddown, TOKEN_HOLDDOWN);
            }
        }
        // Updates from unknown-tier neighbors are acknowledged but not
        // acted on (we have no topology context for them yet).
    }

    fn on_holddown(&mut self, ctx: &mut Ctx<'_>) {
        self.holddown_armed = false;
        let pending = std::mem::take(&mut self.pending_upper_loss);
        let upper_tier = self.cfg.tier + 1;
        let mut negatives = 0u8;
        let mut totals = 0u8;
        for (root, reported) in pending {
            let ups: BTreeSet<PortId> = self.nbr.up_ports_at_tier(upper_tier).collect();
            // Total upward loss when every uplink has reported — in this
            // hold-down round or in an earlier one (a previously
            // installed negative entry is an older report; without this,
            // staggered dead timers upstream would leave the tier below
            // forever uninformed).
            let total = !ups.is_empty()
                && ups
                    .iter()
                    .all(|p| reported.contains(p) || self.table.is_negative(root, *p));
            if total {
                // No uplink reaches this root: hand the loss down; there
                // is nothing to discriminate locally.
                self.upper_lost.insert(root);
                self.fib_key = None;
                totals = totals.saturating_add(1);
                ctx.trace_span(SpanEvent::UpperLossTotal { root });
                if self.cfg.tier > 1 {
                    self.flood_update_to_tier(ctx, &[root], self.cfg.tier - 1, true);
                }
            } else {
                // Partial loss: rule the reporting uplinks out. This is
                // the destination-routing change the paper's blast-radius
                // metric counts.
                for p in reported {
                    if self.table.add_negative(root, p) {
                        self.stats.negatives_installed += 1;
                        negatives = negatives.saturating_add(1);
                        ctx.trace_route_change(RouteChangeKind::Withdraw, root as u64);
                    }
                }
            }
        }
        ctx.trace_span(SpanEvent::HolddownResolve { negatives, totals });
    }

    fn on_recovered(&mut self, ctx: &mut Ctx<'_>, port: PortId, seq: u16, roots: &[u8]) {
        self.send_msg(ctx, port, &MrmtpMsg::UpdateAck { seq }, FrameClass::Ack);
        if self.already_seen(port, seq) {
            return;
        }
        self.stats.updates_received += 1;
        let from_tier = self.nbr.tier(port);
        if from_tier == Some(self.cfg.tier.wrapping_sub(1)) {
            // A parent regained trees: re-join so it re-offers our VIDs.
            let my_tier = self.cfg.tier;
            self.stats.joins_sent += 1;
            self.send_msg(ctx, port, &MrmtpMsg::Join { tier: my_tier }, FrameClass::Session);
        } else if from_tier == Some(self.cfg.tier + 1) {
            let mut forward_down = Vec::new();
            for &root in roots {
                if self.table.clear_negative(root, port) {
                    self.stats.negatives_cleared += 1;
                    ctx.trace_route_change(RouteChangeKind::Install, root as u64);
                }
                if self.upper_lost.remove(&root) {
                    self.fib_key = None;
                    forward_down.push(root);
                }
            }
            if !forward_down.is_empty() && self.cfg.tier > 1 {
                self.flood_update_to_tier(ctx, &forward_down, self.cfg.tier - 1, false);
            }
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Choose the output port for traffic to `root` with flow hash
    /// `flow`. Downward VID-table entries win; otherwise hash across live
    /// uplinks, honoring negative entries.
    ///
    /// With the fast path enabled this consults the [`CompiledFib`]
    /// (recompiled lazily when a table version moved) instead of walking
    /// the tables; the decision is identical by construction and by the
    /// property tests in `tests/proptests.rs`.
    fn route_for(&mut self, ctx: &Ctx<'_>, root: u8, flow: u16) -> Option<PortId> {
        if self.cfg.fast_path && ctx.port_count() <= 128 {
            self.ensure_fib();
            return self.fib.lookup(root, flow, ctx.port_up_mask());
        }
        self.forwarding_port(root, flow, |p| ctx.port(p).up)
    }

    /// Recompile the FIB if a table version moved since the last compile.
    /// Version comparisons are equality-only, so the wrapping counters
    /// stay correct across a `u64` wraparound.
    fn ensure_fib(&mut self) {
        let key = (self.table.version(), self.nbr.version());
        if self.fib_key != Some(key) {
            self.fib.rebuild(&self.table, &self.nbr, &self.upper_lost, self.cfg.tier);
            self.fib_key = Some(key);
            // New FIB generation: the once-per-root repair-span dedup
            // starts over.
            self.repair_noted = [0; 2];
        }
    }

    /// Offline forwarding introspection for invariant checkers: the port
    /// this router would choose for traffic to `root` with flow hash
    /// `flow`, given externally-observed interface state. Mirrors the
    /// data-plane decision exactly.
    pub fn forwarding_port(
        &self,
        root: u8,
        flow: u16,
        port_up: impl Fn(PortId) -> bool,
    ) -> Option<PortId> {
        let c = self.forwarding_candidates(root, port_up);
        if c.is_empty() {
            None
        } else {
            Some(c[dcn_wire::ecmp_index(flow as u64, c.len())])
        }
    }

    /// Offline repair introspection for invariant checkers: the backup
    /// candidate set local fast reroute falls back to when every plain
    /// candidate toward `root` is locally dead. Mirrors the compiled
    /// backup mask exactly (see [`crate::fib::reference_backup_candidates`]).
    pub fn repair_candidates(&self, root: u8, port_up: impl Fn(PortId) -> bool) -> Vec<PortId> {
        crate::fib::reference_backup_candidates(&self.table, &self.nbr, self.cfg.tier, root, port_up)
    }

    /// The sorted ECMP candidate set [`MrmtpRouter::forwarding_port`]
    /// hashes over (empty when traffic to `root` would be dropped).
    pub fn forwarding_candidates(&self, root: u8, port_up: impl Fn(PortId) -> bool) -> Vec<PortId> {
        crate::fib::reference_candidates(
            &self.table,
            &self.nbr,
            &self.upper_lost,
            self.cfg.tier,
            root,
            port_up,
        )
    }

    /// An IP packet arrived from a rack port (ToR ingress).
    fn on_host_ip(&mut self, ctx: &mut Ctx<'_>, frame: &EthernetFrame) {
        let Some(my_root) = self.my_root else {
            self.stats.data_dropped += 1;
            return;
        };
        let Ok(pkt) = Ipv4Packet::decode(&frame.payload) else {
            self.stats.data_dropped += 1;
            self.stats.malformed_frames_dropped += 1;
            return;
        };
        // `my_root` is derived from the ToR config, so it is present here;
        // still degrade to a drop rather than panicking mid-simulation.
        let Some(tor) = self.cfg.tor.as_ref() else {
            self.stats.data_dropped += 1;
            return;
        };
        let rack = tor.rack_subnet;
        if rack.contains(pkt.dst) {
            // Intra-rack: bounce to the right server port.
            self.deliver_to_host(ctx, pkt.dst, &frame.payload);
            return;
        }
        // Derive the destination ToR VID from the destination address
        // (paper §III-D) and encapsulate.
        let dst_root = pkt.dst.third_octet();
        let dst_vid = Vid::root(dst_root);
        let flow = (flow_hash_of(&pkt) & 0xFFFF) as u16;
        match self.route_for(ctx, dst_root, flow) {
            Some(port) => {
                self.stats.data_forwarded += 1;
                // Single-allocation encapsulation: Ethernet header +
                // MR-MTP data header + IP bytes composed directly into
                // the output buffer — byte-identical to encoding an
                // `MrmtpMsg::Data` into an `EthernetFrame`, without the
                // intermediate payload copies.
                let hdr = MrmtpMsg::data_header_len(my_root, dst_vid);
                let mut out = Vec::with_capacity(14 + hdr + frame.payload.len());
                EthernetFrame::put_header(
                    &mut out,
                    MacAddr::BROADCAST,
                    MacAddr::for_node_port(ctx.node().0, port.0),
                    EtherType::Mrmtp,
                );
                MrmtpMsg::put_data_header(&mut out, my_root, dst_vid, flow);
                out.extend_from_slice(&frame.payload);
                self.nbr.note_tx(port, ctx.now());
                ctx.send_meta(
                    port,
                    out,
                    FrameClass::Data,
                    FrameMeta::MrmtpData {
                        dst_root,
                        flow,
                        payload_off: (14 + hdr) as u16,
                        ip_dst: pkt.dst,
                        repaired: false,
                    },
                );
            }
            None => {
                self.stats.data_dropped += 1;
                self.stats.blackholed_in_window += 1;
            }
        }
    }

    /// Host ingress with parse-once metadata: same decisions as
    /// [`Self::on_host_ip`] (`flow` is the full hash the slow path would
    /// recompute with `flow_hash_of`), minus the IPv4 decode.
    fn on_host_ip_fast(&mut self, ctx: &mut Ctx<'_>, frame: &FrameBuf, dst: IpAddr4, flow64: u64) {
        let Some(my_root) = self.my_root else {
            self.stats.data_dropped += 1;
            return;
        };
        let Some(tor) = self.cfg.tor.as_ref() else {
            self.stats.data_dropped += 1;
            return;
        };
        let ip_bytes_start = dcn_wire::ETHERNET_HEADER_LEN;
        if tor.rack_subnet.contains(dst) {
            self.deliver_to_host(ctx, dst, &frame[ip_bytes_start..]);
            return;
        }
        let dst_root = dst.third_octet();
        let dst_vid = Vid::root(dst_root);
        let flow = (flow64 & 0xFFFF) as u16;
        match self.route_for(ctx, dst_root, flow) {
            Some(port) => {
                self.stats.data_forwarded += 1;
                let ip_bytes = &frame[ip_bytes_start..];
                let hdr = MrmtpMsg::data_header_len(my_root, dst_vid);
                let mut out = Vec::with_capacity(14 + hdr + ip_bytes.len());
                EthernetFrame::put_header(
                    &mut out,
                    MacAddr::BROADCAST,
                    MacAddr::for_node_port(ctx.node().0, port.0),
                    EtherType::Mrmtp,
                );
                MrmtpMsg::put_data_header(&mut out, my_root, dst_vid, flow);
                out.extend_from_slice(ip_bytes);
                self.nbr.note_tx(port, ctx.now());
                ctx.send_meta(
                    port,
                    out,
                    FrameClass::Data,
                    FrameMeta::MrmtpData {
                        dst_root,
                        flow,
                        payload_off: (14 + hdr) as u16,
                        ip_dst: dst,
                        repaired: false,
                    },
                );
            }
            None => {
                self.stats.data_dropped += 1;
                self.stats.blackholed_in_window += 1;
            }
        }
    }

    fn deliver_to_host(&mut self, ctx: &mut Ctx<'_>, dst: IpAddr4, ip_bytes: &[u8]) {
        let Some(&(_, port)) = self.host_ports.iter().find(|(ip, _)| *ip == dst) else {
            self.stats.data_dropped += 1;
            return;
        };
        // Compose the host-facing frame in one allocation (the host
        // accepts any MAC, so both addresses are this port's).
        let mac = MacAddr::for_node_port(ctx.node().0, port.0);
        let mut out = Vec::with_capacity(14 + ip_bytes.len());
        EthernetFrame::put_header(&mut out, mac, mac, EtherType::Ipv4);
        out.extend_from_slice(ip_bytes);
        self.stats.data_delivered += 1;
        ctx.send(port, out, FrameClass::Data);
    }

    /// An encapsulated data frame arrived from the fabric (slow path:
    /// the frame was re-parsed because no metadata accompanied it).
    fn on_data(&mut self, ctx: &mut Ctx<'_>, raw_frame: &FrameBuf, dst: Vid, flow: u16, payload: &[u8]) {
        let root = dst.root_id();
        if self.my_root.map(|v| v.root_id()) == Some(root) {
            // Terminal ToR: de-encapsulate and hand to the server.
            match Ipv4Packet::decode(payload) {
                Ok(pkt) => self.deliver_to_host(ctx, pkt.dst, payload),
                Err(_) => {
                    self.stats.data_dropped += 1;
                    self.stats.malformed_frames_dropped += 1;
                }
            }
            return;
        }
        match self.route_for(ctx, root, flow) {
            Some(port) => {
                // Forward the original frame bytes unchanged (the MR-MTP
                // header needs no rewriting hop to hop), sharing the
                // buffer: per-hop fan-out costs a refcount, not a copy.
                self.stats.data_forwarded += 1;
                self.nbr.note_tx(port, ctx.now());
                ctx.send(port, raw_frame.clone(), FrameClass::Data);
            }
            None => {
                self.stats.data_dropped += 1;
                self.stats.blackholed_in_window += 1;
            }
        }
    }

    /// Keep-alive accounting shared by the slow and fast receive paths:
    /// every MR-MTP frame proves the neighbor alive; Slow-to-Accept may
    /// suppress protocol processing (returns `true`) while a flapping
    /// neighbor re-proves itself.
    fn note_keepalive(&mut self, ctx: &mut Ctx<'_>, port: PortId) -> bool {
        match self.nbr.note_rx(port, ctx.now()) {
            RxOutcome::SuppressedByDamping => true,
            RxOutcome::CameUp => {
                ctx.trace_span(SpanEvent::NeighborUp { port });
                // Give the neighbor a chance to (re)join our trees.
                self.advertise_on(ctx, port);
                self.resync_after_rejoin(ctx, port);
                false
            }
            RxOutcome::Still => false,
        }
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Quick-to-Detect: sweep silent neighbors.
        for port in self.nbr.sweep_dead(now) {
            self.neighbor_down(ctx, port, false);
        }
        // Retransmit unacknowledged reliable messages.
        let retx = self.cfg.timers.retransmit_interval;
        for (port, frame, class) in self.rel.due(now, retx) {
            if ctx.port(port).up {
                self.nbr.note_tx(port, now);
                ctx.send(port, frame, class);
            }
        }
        // Hellos on idle links only (every MR-MTP frame is a keep-alive).
        let hello_due = self.cfg.timers.hello_interval;
        for port in self.router_ports(ctx) {
            if ctx.port(port).up && now.saturating_sub(self.nbr.last_tx(port)) >= hello_due {
                self.send_hello(ctx, port);
            }
        }
        // Periodic re-advertisement backstop.
        if now.saturating_sub(self.last_advertise) >= self.cfg.timers.advertise_interval {
            self.advertise_all(ctx);
        }
        // The tick itself is engine-managed (`set_periodic` in on_start):
        // no per-callback re-arm entry here.
    }
}

impl StatsSnapshot for MrmtpRouter {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = &self.stats;
        vec![
            ("hellos_sent", s.hellos_sent),
            ("advertises_sent", s.advertises_sent),
            ("joins_sent", s.joins_sent),
            ("offers_sent", s.offers_sent),
            ("updates_sent", s.updates_sent),
            ("updates_received", s.updates_received),
            ("data_forwarded", s.data_forwarded),
            ("data_delivered", s.data_delivered),
            ("data_dropped", s.data_dropped),
            ("negatives_installed", s.negatives_installed),
            ("negatives_cleared", s.negatives_cleared),
            ("malformed_frames_dropped", s.malformed_frames_dropped),
            ("locally_repaired", s.locally_repaired),
            ("blackholed_in_window", s.blackholed_in_window),
        ]
    }

    fn gauges(&self) -> Vec<(&'static str, u64)> {
        let neighbors_up = (0..self.nbr.port_count() as u16)
            .filter(|&p| self.nbr.is_up(PortId(p)))
            .count() as u64;
        vec![
            ("vid_entries", self.table.own_entry_count() as u64),
            ("negative_entries", self.table.negative_entry_count() as u64),
            ("retransmit_queue", self.rel.pending_count() as u64),
            ("neighbors_up", neighbors_up),
            ("upper_lost_roots", self.upper_lost.len() as u64),
        ]
    }
}

impl Protocol for MrmtpRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started = true;
        // Small deterministic jitter decorrelates router timers. The tick
        // is a single engine-managed periodic entry per node, not one
        // queue entry per session or per callback.
        let jitter = ctx.rand_below(millis(1));
        ctx.set_periodic(TICK + jitter, TICK, TOKEN_TICK);
        self.advertise_all(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf) {
        let Ok(eth) = EthernetFrame::decode(frame) else {
            self.stats.malformed_frames_dropped += 1;
            return;
        };
        match eth.ethertype {
            EtherType::Ipv4 if self.is_host_port(port) => {
                self.on_host_ip(ctx, &eth);
                return;
            }
            EtherType::Mrmtp => {}
            _ => return,
        }
        let Ok(msg) = MrmtpMsg::decode(&eth.payload) else {
            self.stats.malformed_frames_dropped += 1;
            return;
        };
        // Every frame is a keep-alive; Slow-to-Accept may suppress
        // protocol processing while a flapping neighbor re-proves itself.
        if self.note_keepalive(ctx, port) {
            return;
        }
        match msg {
            MrmtpMsg::Hello => {}
            MrmtpMsg::Advertise { tier, vids } => self.on_advertise(ctx, port, tier, &vids),
            MrmtpMsg::Join { tier } => self.on_join(ctx, port, tier),
            MrmtpMsg::Offer { seq, vids } => self.on_offer(ctx, port, seq, &vids),
            MrmtpMsg::Accept { seq } => {
                self.rel.ack(port, seq);
            }
            MrmtpMsg::UpdateAck { seq } => {
                self.rel.ack(port, seq);
            }
            MrmtpMsg::Lost { seq, roots } => self.on_lost(ctx, port, seq, &roots),
            MrmtpMsg::Recovered { seq, roots } => self.on_recovered(ctx, port, seq, &roots),
            MrmtpMsg::Data { dst, flow, payload, .. } => {
                self.on_data(ctx, frame, dst, flow, &payload)
            }
        }
    }

    /// The fast path: trust the sender's parse-once metadata instead of
    /// re-decoding the frame at every hop. The engine clears the metadata
    /// if impairment corrupted the frame in flight, so a metadata-bearing
    /// frame always decodes to exactly what the metadata describes — the
    /// branches below are behaviorally identical to [`Self::on_frame`]
    /// (the equivalence suite asserts bit-equal trace digests).
    fn on_frame_meta(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        frame: &FrameBuf,
        meta: Option<FrameMeta>,
    ) {
        if self.cfg.fast_path && ctx.port_count() <= 128 {
            match meta {
                Some(FrameMeta::MrmtpHello) => {
                    // Pure keep-alive: skip both decodes entirely.
                    self.note_keepalive(ctx, port);
                    return;
                }
                Some(FrameMeta::MrmtpData { dst_root, flow, payload_off, ip_dst, repaired }) => {
                    if self.note_keepalive(ctx, port) {
                        return;
                    }
                    if self.my_root.map(|v| v.root_id()) == Some(dst_root) {
                        // Terminal ToR: the metadata already carries the
                        // inner destination, so de-encapsulation is a
                        // slice, not a parse.
                        self.deliver_to_host(ctx, ip_dst, &frame[payload_off as usize..]);
                        return;
                    }
                    // Transit: compiled-FIB pick + refcount re-send. The
                    // alloc_track scope is how the soak benchmark proves
                    // this block allocates nothing in steady state —
                    // including with local repair active: the deduped
                    // repair span is emitted after the scope closes.
                    let mut note_repair = None;
                    {
                        let _scope = alloc_track::scope();
                        // Local fast reroute: the not-yet-repaired packet
                        // may bounce around a locally-dead egress via the
                        // backup FIB. A repaired packet gets exactly the
                        // plain (off-mode) pick — the loop guard.
                        let pick = if self.cfg.local_repair && !repaired {
                            self.ensure_fib();
                            self.fib.lookup_repair(
                                dst_root,
                                flow,
                                ctx.port_up_mask(),
                                1u128 << port.index(),
                            )
                        } else {
                            self.route_for(ctx, dst_root, flow).map(|p| (p, false))
                        };
                        match pick {
                            Some((out, fixed)) => {
                                self.stats.data_forwarded += 1;
                                if fixed {
                                    self.stats.locally_repaired += 1;
                                    let (w, b) =
                                        (dst_root as usize / 128, dst_root as usize % 128);
                                    if self.repair_noted[w] & (1 << b) == 0 {
                                        self.repair_noted[w] |= 1 << b;
                                        note_repair = Some(out);
                                    }
                                }
                                self.nbr.note_tx(out, ctx.now());
                                ctx.send_meta(
                                    out,
                                    frame.clone(),
                                    FrameClass::Data,
                                    FrameMeta::MrmtpData {
                                        dst_root,
                                        flow,
                                        payload_off,
                                        ip_dst,
                                        repaired: repaired || fixed,
                                    },
                                );
                                alloc_track::note_forward();
                            }
                            None => {
                                self.stats.data_dropped += 1;
                                self.stats.blackholed_in_window += 1;
                            }
                        }
                    }
                    if let Some(out) = note_repair {
                        ctx.trace_span(SpanEvent::LocalRepair { port: out });
                    }
                    return;
                }
                Some(FrameMeta::Ipv4Data { dst, flow, .. }) => {
                    // Host ingress without the IPv4 re-parse; IPv4 frames
                    // on fabric ports are ignored exactly as in the slow
                    // path's ethertype dispatch.
                    if self.is_host_port(port) {
                        self.on_host_ip_fast(ctx, frame, dst, flow);
                    }
                    return;
                }
                None => {}
            }
        }
        self.on_frame(ctx, port, frame)
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_TICK => self.tick(ctx),
            TOKEN_HOLDDOWN => self.on_holddown(ctx),
            _ => {}
        }
    }

    fn on_port_down(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        if self.nbr.set_carrier(port, false) {
            self.neighbor_down(ctx, port, true);
        } else {
            self.rel.drop_port(port);
        }
    }

    fn on_port_up(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        self.nbr.set_carrier(port, true);
        // Start proving liveness to the neighbor immediately; tree
        // re-join happens after Slow-to-Accept completes.
        if !self.is_host_port(port) {
            self.send_hello(ctx, port);
        }
    }

    fn stats_snapshot(&self) -> Option<&dyn StatsSnapshot> {
        Some(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MrmtpTimers, TorConfig};
    use dcn_wire::Prefix;

    fn tor_cfg(vid: u8) -> MrmtpConfig {
        MrmtpConfig::tor(
            format!("L-{vid}"),
            TorConfig {
                rack_subnet: Prefix::new(IpAddr4::new(192, 168, vid, 0), 24),
                host_ports: vec![(IpAddr4::new(192, 168, vid, 1), PortId(2))],
            },
        )
    }

    #[test]
    fn tor_root_vid_is_derived() {
        let r = MrmtpRouter::new(tor_cfg(11), 3);
        assert_eq!(r.root_vid(), Some(Vid::root(11)));
        assert_eq!(r.tier(), 1);
        assert!(r.is_host_port(PortId(2)));
        assert!(!r.is_host_port(PortId(0)));
    }

    #[test]
    fn spine_has_no_root() {
        let r = MrmtpRouter::new(MrmtpConfig::spine("S-1-1", 2), 4);
        assert_eq!(r.root_vid(), None);
        assert_eq!(r.tier(), 2);
        assert_eq!(r.vid_table().own_entry_count(), 0);
    }

    #[test]
    fn seen_seq_window_dedupes_and_bounds() {
        let mut r = MrmtpRouter::new(MrmtpConfig::spine("S", 2), 2);
        assert!(!r.already_seen(PortId(0), 5));
        assert!(r.already_seen(PortId(0), 5));
        // Different port: independent window.
        assert!(!r.already_seen(PortId(1), 5));
        // Fill beyond the window: the oldest entry is forgotten.
        for s in 100..(100 + SEEN_SEQ_WINDOW as u16 + 1) {
            assert!(!r.already_seen(PortId(0), s));
        }
        assert!(!r.already_seen(PortId(0), 5), "evicted after window overflow");
    }

    #[test]
    fn timers_default_to_paper_values() {
        let r = MrmtpRouter::new(tor_cfg(11), 3);
        let t: MrmtpTimers = r.cfg.timers;
        assert_eq!(t.hello_interval, millis(50));
        assert_eq!(t.dead_interval, millis(100));
    }
}
