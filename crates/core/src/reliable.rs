//! Built-in reliability for MR-MTP control messages.
//!
//! The paper: "MR-MTP guarantees reliability through request-response and
//! accept-acknowledge messages between peers connected on a link" — the
//! function TCP provides for BGP. Offers and loss/recovery updates carry a
//! sequence number and are retransmitted until the peer acknowledges.

use std::collections::BTreeMap;

use dcn_sim::time::{Duration, Time};
use dcn_sim::{FrameBuf, FrameClass, PortId};

/// One unacknowledged message.
#[derive(Clone, Debug)]
struct Pending {
    frame: FrameBuf,
    class: FrameClass,
    next_retx: Time,
    attempts: u32,
}

/// Retransmission queue for one router (all ports).
#[derive(Clone, Debug, Default)]
pub struct ReliableTx {
    /// Keyed by (port, seq).
    pending: BTreeMap<(PortId, u16), Pending>,
    next_seq: u16,
}

/// Give up after this many transmissions: the neighbor-liveness machinery
/// (not the reliability layer) is responsible for declaring peers dead.
pub const MAX_ATTEMPTS: u32 = 8;

impl ReliableTx {
    pub fn new() -> ReliableTx {
        ReliableTx::default()
    }

    /// Allocate the next sequence number.
    pub fn alloc_seq(&mut self) -> u16 {
        self.next_seq = self.next_seq.wrapping_add(1);
        self.next_seq
    }

    /// Track an already-sent frame for retransmission.
    pub fn track(
        &mut self,
        port: PortId,
        seq: u16,
        frame: FrameBuf,
        class: FrameClass,
        now: Time,
        retx: Duration,
    ) {
        self.pending.insert(
            (port, seq),
            Pending { frame, class, next_retx: now + retx, attempts: 1 },
        );
    }

    /// Acknowledge (port, seq); returns `true` if it was outstanding.
    pub fn ack(&mut self, port: PortId, seq: u16) -> bool {
        self.pending.remove(&(port, seq)).is_some()
    }

    /// Drop all pending messages for a port (neighbor declared dead).
    pub fn drop_port(&mut self, port: PortId) {
        self.pending.retain(|(p, _), _| *p != port);
    }

    /// Collect frames due for retransmission at `now`; reschedules them.
    /// Messages exceeding [`MAX_ATTEMPTS`] are dropped.
    pub fn due(&mut self, now: Time, retx: Duration) -> Vec<(PortId, FrameBuf, FrameClass)> {
        let mut out = Vec::new();
        let mut give_up = Vec::new();
        for (&(port, seq), p) in self.pending.iter_mut() {
            if p.next_retx <= now {
                if p.attempts >= MAX_ATTEMPTS {
                    give_up.push((port, seq));
                } else {
                    p.attempts += 1;
                    p.next_retx = now + retx;
                    // Refcount bump: the retransmitted frame shares the
                    // original allocation.
                    out.push((port, p.frame.clone(), p.class));
                }
            }
        }
        for key in give_up {
            self.pending.remove(&key);
        }
        out
    }

    /// Is anything outstanding (drives whether the retransmit timer needs
    /// to stay armed)?
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RETX: Duration = 20;

    #[test]
    fn ack_clears_pending() {
        let mut r = ReliableTx::new();
        let s = r.alloc_seq();
        r.track(PortId(0), s, vec![1].into(), FrameClass::Update, 0, RETX);
        assert!(r.has_pending());
        assert!(r.ack(PortId(0), s));
        assert!(!r.ack(PortId(0), s), "double ack is a no-op");
        assert!(!r.has_pending());
    }

    #[test]
    fn retransmits_until_acked() {
        let mut r = ReliableTx::new();
        let s = r.alloc_seq();
        r.track(PortId(2), s, vec![7].into(), FrameClass::Update, 0, RETX);
        assert!(r.due(10, RETX).is_empty(), "not due yet");
        let due = r.due(20, RETX);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, PortId(2));
        assert!(r.due(25, RETX).is_empty(), "rescheduled");
        assert_eq!(r.due(40, RETX).len(), 1);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut r = ReliableTx::new();
        let s = r.alloc_seq();
        r.track(PortId(0), s, vec![1].into(), FrameClass::Update, 0, RETX);
        let mut t = 0;
        let mut sends = 1; // initial transmission
        loop {
            t += RETX;
            let due = r.due(t, RETX);
            if due.is_empty() && !r.has_pending() {
                break;
            }
            sends += due.len() as u32;
            assert!(t < 1000, "must terminate");
        }
        assert_eq!(sends, MAX_ATTEMPTS);
    }

    #[test]
    fn drop_port_clears_only_that_port() {
        let mut r = ReliableTx::new();
        let s1 = r.alloc_seq();
        let s2 = r.alloc_seq();
        assert_ne!(s1, s2);
        r.track(PortId(0), s1, vec![1].into(), FrameClass::Update, 0, RETX);
        r.track(PortId(1), s2, vec![2].into(), FrameClass::Session, 0, RETX);
        r.drop_port(PortId(0));
        assert_eq!(r.pending_count(), 1);
        assert!(r.ack(PortId(1), s2));
    }

    #[test]
    fn seq_wraps_without_panicking() {
        let mut r = ReliableTx::new();
        r.next_seq = u16::MAX;
        assert_eq!(r.alloc_seq(), 0);
        assert_eq!(r.alloc_seq(), 1);
    }
}
