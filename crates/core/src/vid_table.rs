//! The VID table: acquired (own) VIDs plus negative-reachability entries.
//!
//! The paper's Listing 5 shows a top-tier spine's VID table as "port →
//! VIDs acquired on it"; [`VidTable::render`] reproduces that layout.

use std::collections::{BTreeMap, BTreeSet};

use dcn_sim::PortId;
use dcn_wire::Vid;

/// One VID this router holds, and the port it was acquired on. The
/// acquisition port points *down* the tree, toward the root ToR — it is
/// the forwarding port for traffic destined to that root.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OwnVid {
    pub vid: Vid,
    pub port: PortId,
}

/// A router's MR-MTP routing state.
#[derive(Clone, Debug, Default)]
pub struct VidTable {
    /// Own VIDs keyed by tree root. A router can in principle hold several
    /// VIDs per root (richer meshes); in a folded-Clos there is exactly
    /// one per reachable root.
    own: BTreeMap<u8, Vec<OwnVid>>,
    /// Negative reachability: for a destination root, ports that loss
    /// updates have ruled out.
    negative: BTreeMap<u8, BTreeSet<PortId>>,
    /// Bumped on every mutation that can change forwarding candidates.
    /// The compiled FIB keys its rebuild on this, so lookups between
    /// route changes never re-scan the table.
    version: u64,
}

impl VidTable {
    pub fn new() -> VidTable {
        VidTable::default()
    }

    /// Change counter (see the `version` field). Bumps use wrapping
    /// arithmetic and consumers compare snapshots for *equality* only,
    /// so the counter stays correct across a `u64` wraparound.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Test hook: park the change counter at an arbitrary value (e.g.
    /// `u64::MAX`) to exercise wraparound.
    #[cfg(test)]
    pub(crate) fn set_version(&mut self, v: u64) {
        self.version = v;
    }

    /// Install an acquired VID. Replaces a previous VID with the same root
    /// acquired on the same port (re-join after recovery). Returns `true`
    /// if the root was previously absent entirely (the router *regained*
    /// the root).
    pub fn install(&mut self, vid: Vid, port: PortId) -> bool {
        self.version = self.version.wrapping_add(1);
        let entry = self.own.entry(vid.root_id()).or_default();
        let was_empty = entry.is_empty();
        if let Some(slot) = entry.iter_mut().find(|o| o.port == port) {
            slot.vid = vid;
        } else {
            entry.push(OwnVid { vid, port });
        }
        was_empty
    }

    /// Remove all VIDs for `root` acquired via `port`. Returns `true` if
    /// the root is now entirely lost.
    pub fn remove_via(&mut self, root: u8, port: PortId) -> bool {
        if let Some(entry) = self.own.get_mut(&root) {
            self.version = self.version.wrapping_add(1);
            let before = entry.len();
            entry.retain(|o| o.port != port);
            let lost = entry.is_empty();
            if lost {
                self.own.remove(&root);
            }
            lost && before > 0
        } else {
            false
        }
    }

    /// Roots that would be entirely lost if `port` disappeared, together
    /// with whether any VID for them is held via that port at all.
    pub fn roots_via_port(&self, port: PortId) -> Vec<u8> {
        self.own
            .iter()
            .filter(|(_, v)| v.iter().any(|o| o.port == port))
            .map(|(&r, _)| r)
            .collect()
    }

    /// All VIDs held for `root`.
    pub fn vids_for(&self, root: u8) -> &[OwnVid] {
        self.own.get(&root).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does the router hold any VID rooted at `root`?
    pub fn has_root(&self, root: u8) -> bool {
        self.own.contains_key(&root)
    }

    /// The primary (first-acquired) VID per root — what the router
    /// advertises upward.
    pub fn primary_vids(&self) -> Vec<Vid> {
        self.own.values().filter_map(|v| v.first()).map(|o| o.vid).collect()
    }

    /// All roots currently held.
    pub fn roots(&self) -> impl Iterator<Item = u8> + '_ {
        self.own.keys().copied()
    }

    /// Ports already holding a VID for `root` (used to dedupe joins).
    pub fn ports_for(&self, root: u8) -> impl Iterator<Item = PortId> + '_ {
        self.vids_for(root).iter().map(|o| o.port)
    }

    /// Install a negative entry. Returns `true` if it is new.
    pub fn add_negative(&mut self, root: u8, port: PortId) -> bool {
        self.version = self.version.wrapping_add(1);
        self.negative.entry(root).or_default().insert(port)
    }

    /// Clear a negative entry. Returns `true` if one was present.
    pub fn clear_negative(&mut self, root: u8, port: PortId) -> bool {
        if let Some(set) = self.negative.get_mut(&root) {
            self.version = self.version.wrapping_add(1);
            let removed = set.remove(&port);
            if set.is_empty() {
                self.negative.remove(&root);
            }
            removed
        } else {
            false
        }
    }

    /// Clear every negative entry involving `port` (e.g. after the
    /// neighbor on `port` fully recovers); returns affected roots.
    pub fn clear_negatives_on_port(&mut self, port: PortId) -> Vec<u8> {
        let mut roots = Vec::new();
        self.negative.retain(|&root, set| {
            if set.remove(&port) {
                roots.push(root);
            }
            !set.is_empty()
        });
        if !roots.is_empty() {
            self.version = self.version.wrapping_add(1);
        }
        roots
    }

    /// Iterate negative entries as `(root, ports ruled out)` (compiled-FIB
    /// rebuild input).
    pub fn negatives(&self) -> impl Iterator<Item = (u8, &BTreeSet<PortId>)> + '_ {
        self.negative.iter().map(|(&r, s)| (r, s))
    }

    /// Is `port` ruled out for `root`?
    pub fn is_negative(&self, root: u8, port: PortId) -> bool {
        self.negative.get(&root).is_some_and(|s| s.contains(&port))
    }

    /// Number of own-VID entries (Listing 5 table size metric).
    pub fn own_entry_count(&self) -> usize {
        self.own.values().map(Vec::len).sum()
    }

    /// Number of negative entries.
    pub fn negative_entry_count(&self) -> usize {
        self.negative.values().map(BTreeSet::len).sum()
    }

    /// Approximate resident bytes of the table (for the Listing 3 vs 5
    /// memory comparison): each own entry is a VID (≤9 bytes) + port;
    /// each negative entry a root + port.
    pub fn approx_bytes(&self) -> usize {
        self.own_entry_count() * (VID_ENTRY_BYTES)
            + self.negative_entry_count() * NEG_ENTRY_BYTES
    }

    /// Render in the paper's Listing 5 layout: one line per port with the
    /// VIDs acquired on it.
    pub fn render(&self) -> String {
        let mut by_port: BTreeMap<PortId, Vec<Vid>> = BTreeMap::new();
        for entry in self.own.values() {
            for o in entry {
                by_port.entry(o.port).or_default().push(o.vid);
            }
        }
        let mut out = String::new();
        for (port, vids) in by_port {
            let list: Vec<String> = vids.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("{:<6} {}\n", port.to_string(), list.join(", ")));
        }
        if self.negative.is_empty() {
            return out;
        }
        out.push_str("negative:\n");
        for (root, ports) in &self.negative {
            let list: Vec<String> = ports.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("  VID {root} not via {}\n", list.join(", ")));
        }
        out
    }
}

/// Stored size of one own-VID entry: VID bytes + length + port.
pub const VID_ENTRY_BYTES: usize = dcn_wire::VID_MAX_LEN + 1 + 2;
/// Stored size of one negative entry: root + port.
pub const NEG_ENTRY_BYTES: usize = 1 + 2;

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Vid {
        s.parse().unwrap()
    }

    #[test]
    fn install_and_query() {
        let mut t = VidTable::new();
        assert!(t.install(v("11.1.1"), PortId(0)));
        assert!(!t.install(v("12.1.1"), PortId(0)) || t.has_root(12));
        assert!(t.has_root(11));
        assert_eq!(t.vids_for(11)[0].port, PortId(0));
        assert_eq!(t.own_entry_count(), 2);
        assert_eq!(t.primary_vids().len(), 2);
    }

    #[test]
    fn reinstall_same_root_same_port_replaces() {
        let mut t = VidTable::new();
        t.install(v("11.1.1"), PortId(0));
        let regained = t.install(v("11.1.2"), PortId(0));
        assert!(!regained, "root was already present");
        assert_eq!(t.vids_for(11).len(), 1);
        assert_eq!(t.vids_for(11)[0].vid, v("11.1.2"));
    }

    #[test]
    fn remove_via_reports_full_loss() {
        let mut t = VidTable::new();
        t.install(v("11.1"), PortId(2));
        t.install(v("12.1"), PortId(3));
        assert!(t.remove_via(11, PortId(2)));
        assert!(!t.has_root(11));
        assert!(!t.remove_via(11, PortId(2)), "already gone");
        assert!(!t.remove_via(12, PortId(9)), "wrong port loses nothing");
        assert!(t.has_root(12));
    }

    #[test]
    fn roots_via_port_lists_dependencies() {
        let mut t = VidTable::new();
        t.install(v("11.1.1"), PortId(0));
        t.install(v("12.1.1"), PortId(0));
        t.install(v("13.1.1"), PortId(1));
        let mut roots = t.roots_via_port(PortId(0));
        roots.sort_unstable();
        assert_eq!(roots, vec![11, 12]);
    }

    #[test]
    fn negative_entries_lifecycle() {
        let mut t = VidTable::new();
        assert!(t.add_negative(11, PortId(1)));
        assert!(!t.add_negative(11, PortId(1)), "duplicate");
        assert!(t.is_negative(11, PortId(1)));
        assert!(!t.is_negative(11, PortId(0)));
        assert!(t.clear_negative(11, PortId(1)));
        assert!(!t.clear_negative(11, PortId(1)));
        assert_eq!(t.negative_entry_count(), 0);
    }

    #[test]
    fn clear_negatives_on_port_sweeps_all_roots() {
        let mut t = VidTable::new();
        t.add_negative(11, PortId(1));
        t.add_negative(12, PortId(1));
        t.add_negative(12, PortId(2));
        let mut cleared = t.clear_negatives_on_port(PortId(1));
        cleared.sort_unstable();
        assert_eq!(cleared, vec![11, 12]);
        assert!(t.is_negative(12, PortId(2)));
    }

    #[test]
    fn render_matches_listing5_layout() {
        let mut t = VidTable::new();
        // Fig. 2 / Listing 5 style: one VID per pod per port.
        t.install(v("11.1.1"), PortId(0));
        t.install(v("12.1.1"), PortId(0));
        t.install(v("13.1.1"), PortId(1));
        t.install(v("14.1.1"), PortId(1));
        let s = t.render();
        assert!(s.contains("eth0   11.1.1, 12.1.1"));
        assert!(s.contains("eth1   13.1.1, 14.1.1"));
        t.add_negative(11, PortId(1));
        assert!(t.render().contains("VID 11 not via eth1"));
    }

    #[test]
    fn approx_bytes_scales_with_entries() {
        let mut t = VidTable::new();
        assert_eq!(t.approx_bytes(), 0);
        t.install(v("11.1.1"), PortId(0));
        t.add_negative(12, PortId(1));
        assert_eq!(t.approx_bytes(), VID_ENTRY_BYTES + NEG_ENTRY_BYTES);
    }

    /// Regression: a version bump at `u64::MAX` must wrap, not panic
    /// (debug builds) or stick (release), and every bump past the wrap
    /// must still produce a *different* value than the pre-wrap
    /// snapshot — FIB staleness checks compare for equality.
    #[test]
    fn version_counter_wraps_safely() {
        let mut t = VidTable::new();
        t.set_version(u64::MAX);
        let snapshot = t.version();
        t.install(v("11.1.1"), PortId(0));
        assert_eq!(t.version(), 0, "wrapped to zero");
        assert_ne!(t.version(), snapshot, "stale snapshot still detectable");
        t.add_negative(12, PortId(1));
        assert_eq!(t.version(), 1);
    }
}
