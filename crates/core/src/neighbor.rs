//! Per-port neighbor liveness with Quick-to-Detect / Slow-to-Accept.

use dcn_sim::time::{Duration, Time};
use dcn_sim::PortId;

/// Liveness of the device at the far end of one port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NeighborState {
    /// Nothing heard yet (cold start): accepted on first frame.
    Unknown,
    /// Alive and usable for forwarding.
    Up,
    /// Declared dead (missed hello or carrier loss). Re-accepted only
    /// after the Slow-to-Accept hello count.
    Down,
}

#[derive(Clone, Debug)]
struct Entry {
    state: NeighborState,
    /// Tier of the neighbor, learned from Advertise/Join messages.
    tier: Option<u8>,
    last_rx: Time,
    last_tx: Time,
    /// Consecutive timely hellos since the neighbor went down.
    consec: u32,
    /// Local carrier state of this port.
    carrier: bool,
}

impl Default for Entry {
    fn default() -> Self {
        Entry {
            state: NeighborState::Unknown,
            tier: None,
            last_rx: 0,
            last_tx: 0,
            consec: 0,
            carrier: true,
        }
    }
}

/// Tracks every port's neighbor.
#[derive(Clone, Debug)]
pub struct NeighborTable {
    entries: Vec<Entry>,
    dead_interval: Duration,
    accept_hellos: u32,
    /// Bumped on every change that can alter which ports are usable for
    /// forwarding (state, carrier, tier). The compiled FIB keys its
    /// rebuild on this.
    version: u64,
}

/// Outcome of feeding a received frame into the table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxOutcome {
    /// Neighbor already up; nothing changed.
    Still,
    /// Neighbor transitioned to up (cold start or Slow-to-Accept
    /// satisfied).
    CameUp,
    /// Neighbor is down and the acceptance count is not yet met; the
    /// frame must not influence routing.
    SuppressedByDamping,
}

impl NeighborTable {
    pub fn new(ports: usize, dead_interval: Duration, accept_hellos: u32) -> NeighborTable {
        NeighborTable {
            entries: vec![Entry::default(); ports],
            dead_interval,
            accept_hellos,
            version: 0,
        }
    }

    pub fn port_count(&self) -> usize {
        self.entries.len()
    }

    /// Change counter (see the `version` field). Bumps use wrapping
    /// arithmetic and consumers compare snapshots for *equality* only,
    /// so the counter stays correct across a `u64` wraparound.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Test hook: park the change counter at an arbitrary value (e.g.
    /// `u64::MAX`) to exercise wraparound.
    #[cfg(test)]
    pub(crate) fn set_version(&mut self, v: u64) {
        self.version = v;
    }

    pub fn state(&self, port: PortId) -> NeighborState {
        self.entries[port.index()].state
    }

    pub fn is_up(&self, port: PortId) -> bool {
        self.entries[port.index()].state == NeighborState::Up
            && self.entries[port.index()].carrier
    }

    pub fn tier(&self, port: PortId) -> Option<u8> {
        self.entries[port.index()].tier
    }

    pub fn set_tier(&mut self, port: PortId, tier: u8) {
        if self.entries[port.index()].tier != Some(tier) {
            self.version = self.version.wrapping_add(1);
        }
        self.entries[port.index()].tier = Some(tier);
    }

    pub fn last_tx(&self, port: PortId) -> Time {
        self.entries[port.index()].last_tx
    }

    pub fn note_tx(&mut self, port: PortId, now: Time) {
        self.entries[port.index()].last_tx = now;
    }

    pub fn carrier(&self, port: PortId) -> bool {
        self.entries[port.index()].carrier
    }

    /// Local carrier change. Returns `true` if the neighbor was up and is
    /// now effectively lost (caller should run its failure handling).
    pub fn set_carrier(&mut self, port: PortId, up: bool) -> bool {
        if self.entries[port.index()].carrier != up {
            self.version = self.version.wrapping_add(1);
        }
        let e = &mut self.entries[port.index()];
        let was_usable = e.carrier && e.state == NeighborState::Up;
        e.carrier = up;
        if !up {
            e.state = NeighborState::Down;
            e.consec = 0;
            was_usable
        } else {
            // Carrier back: the neighbor must still prove itself through
            // Slow-to-Accept.
            false
        }
    }

    /// Record a received frame (every MR-MTP frame is a keep-alive).
    pub fn note_rx(&mut self, port: PortId, now: Time) -> RxOutcome {
        let accept = self.accept_hellos;
        let dead = self.dead_interval;
        let e = &mut self.entries[port.index()];
        let gap = now.saturating_sub(e.last_rx);
        e.last_rx = now;
        let outcome = match e.state {
            NeighborState::Up => RxOutcome::Still,
            NeighborState::Unknown => {
                // Cold start: first contact accepted immediately.
                e.state = NeighborState::Up;
                e.consec = 0;
                RxOutcome::CameUp
            }
            NeighborState::Down => {
                if !e.carrier {
                    return RxOutcome::SuppressedByDamping;
                }
                // Slow-to-Accept: count only timely consecutive hellos.
                if gap <= dead {
                    e.consec += 1;
                } else {
                    e.consec = 1;
                }
                if e.consec >= accept {
                    e.state = NeighborState::Up;
                    e.consec = 0;
                    RxOutcome::CameUp
                } else {
                    RxOutcome::SuppressedByDamping
                }
            }
        };
        if outcome == RxOutcome::CameUp {
            self.version = self.version.wrapping_add(1);
        }
        outcome
    }

    /// Sweep for dead neighbors: any port whose neighbor was up but has
    /// been silent past the dead interval is marked down and returned.
    pub fn sweep_dead(&mut self, now: Time) -> Vec<PortId> {
        let mut dead = Vec::new();
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.state == NeighborState::Up && now.saturating_sub(e.last_rx) > self.dead_interval
            {
                e.state = NeighborState::Down;
                e.consec = 0;
                dead.push(PortId(i as u16));
            }
        }
        if !dead.is_empty() {
            self.version = self.version.wrapping_add(1);
        }
        dead
    }

    /// Ports whose neighbor is up and at the given tier.
    pub fn up_ports_at_tier(&self, tier: u8) -> impl Iterator<Item = PortId> + '_ {
        self.entries.iter().enumerate().filter_map(move |(i, e)| {
            (e.carrier && e.state == NeighborState::Up && e.tier == Some(tier))
                .then_some(PortId(i as u16))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEAD: Duration = 100;

    fn table() -> NeighborTable {
        NeighborTable::new(3, DEAD, 3)
    }

    #[test]
    fn cold_start_accepts_first_frame() {
        let mut t = table();
        assert_eq!(t.state(PortId(0)), NeighborState::Unknown);
        assert_eq!(t.note_rx(PortId(0), 10), RxOutcome::CameUp);
        assert!(t.is_up(PortId(0)));
    }

    #[test]
    fn quick_to_detect_one_missed_hello() {
        let mut t = table();
        t.note_rx(PortId(0), 10);
        // Silence past the dead interval → down.
        let dead = t.sweep_dead(10 + DEAD + 1);
        assert_eq!(dead, vec![PortId(0)]);
        assert_eq!(t.state(PortId(0)), NeighborState::Down);
        // A sweep inside the interval must not kill.
        let mut t2 = table();
        t2.note_rx(PortId(1), 10);
        assert!(t2.sweep_dead(10 + DEAD).is_empty());
    }

    #[test]
    fn slow_to_accept_requires_three_timely_hellos() {
        let mut t = table();
        t.note_rx(PortId(0), 10);
        t.sweep_dead(500);
        assert_eq!(t.note_rx(PortId(0), 600), RxOutcome::SuppressedByDamping);
        assert_eq!(t.note_rx(PortId(0), 650), RxOutcome::SuppressedByDamping);
        assert_eq!(t.note_rx(PortId(0), 700), RxOutcome::CameUp);
        assert!(t.is_up(PortId(0)));
    }

    #[test]
    fn late_hello_resets_acceptance_count() {
        let mut t = table();
        t.note_rx(PortId(0), 10);
        t.sweep_dead(500);
        t.note_rx(PortId(0), 600);
        t.note_rx(PortId(0), 650);
        // Gap larger than the dead interval: start over.
        assert_eq!(t.note_rx(PortId(0), 900), RxOutcome::SuppressedByDamping);
        assert_eq!(t.note_rx(PortId(0), 950), RxOutcome::SuppressedByDamping);
        assert_eq!(t.note_rx(PortId(0), 1000), RxOutcome::CameUp);
    }

    #[test]
    fn carrier_down_is_immediate_and_blocks_acceptance() {
        let mut t = table();
        t.note_rx(PortId(0), 10);
        assert!(t.set_carrier(PortId(0), false));
        assert_eq!(t.state(PortId(0)), NeighborState::Down);
        // Frames (stale, in flight) while carrier is down don't resurrect.
        assert_eq!(t.note_rx(PortId(0), 20), RxOutcome::SuppressedByDamping);
        assert!(!t.set_carrier(PortId(0), true));
        // After carrier restore, Slow-to-Accept applies.
        assert_eq!(t.note_rx(PortId(0), 30), RxOutcome::SuppressedByDamping);
        assert_eq!(t.note_rx(PortId(0), 60), RxOutcome::SuppressedByDamping);
        assert_eq!(t.note_rx(PortId(0), 90), RxOutcome::CameUp);
    }

    #[test]
    fn tier_filtering() {
        let mut t = table();
        for p in 0..3 {
            t.note_rx(PortId(p), 10);
        }
        t.set_tier(PortId(0), 2);
        t.set_tier(PortId(1), 2);
        t.set_tier(PortId(2), 0);
        let ups: Vec<PortId> = t.up_ports_at_tier(2).collect();
        assert_eq!(ups, vec![PortId(0), PortId(1)]);
    }

    #[test]
    fn carrier_down_of_unknown_neighbor_reports_nothing() {
        let mut t = table();
        assert!(!t.set_carrier(PortId(0), false));
    }

    /// Regression: the change counter wraps at `u64::MAX` instead of
    /// panicking/sticking, and a wrapped bump still differs from the
    /// pre-wrap snapshot (FIB staleness is an equality check).
    #[test]
    fn version_counter_wraps_safely() {
        let mut t = table();
        t.set_version(u64::MAX);
        let snapshot = t.version();
        t.note_rx(PortId(0), 10); // Unknown → counting, bumps version
        assert_eq!(t.version(), 0, "wrapped to zero");
        assert_ne!(t.version(), snapshot);
    }
}
