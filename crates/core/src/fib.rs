//! Compiled forwarding table: the MR-MTP data-plane fast path.
//!
//! [`MrmtpRouter::forwarding_candidates`](crate::MrmtpRouter::forwarding_candidates)
//! walks the VID table, the neighbor table and the negative-entry map on
//! every packet — correct, but allocation- and branch-heavy. The
//! [`CompiledFib`] flattens that walk into 256 per-root entries of port
//! bitmasks, rebuilt only when the underlying tables change (keyed on
//! their version counters), so steady-state next-hop selection is a
//! mask-and-pick over `u128`s with zero allocation:
//!
//! * `down & up_mask` nonzero → pick the `flow % n`-th set bit
//!   (ascending bit order is exactly the sorted candidate order the slow
//!   path hashes over);
//! * else a total upward loss means drop;
//! * else `ups & up_mask` the same way.
//!
//! `up_mask` is the engine-maintained admin port state
//! ([`dcn_sim::Ctx::port_up_mask`]) applied at lookup time, so admin
//! flaps need no FIB rebuild at all. The fast path is only engaged on
//! routers with ≤ 128 ports; beyond that the slow path remains
//! authoritative (and correct) for free.
//!
//! [`reference_candidates`] is the one shared implementation of the slow
//! path; the router delegates to it and the property tests pit
//! [`CompiledFib::lookup`] against it over arbitrary table states.

use std::collections::BTreeSet;

use dcn_sim::PortId;

use crate::neighbor::NeighborTable;
use crate::vid_table::VidTable;

/// Per-destination-root forwarding state. A copy of everything the slow
/// path consults except admin port state, which stays a lookup-time mask.
#[derive(Clone, Copy, Debug)]
struct FibEntry {
    /// Downward ports: VID-table acquisition ports with a live neighbor
    /// and no negative entry for this root.
    down: u128,
    /// Upward ports: live uplinks minus negative entries for this root.
    ups: u128,
    /// Local-repair detour ports: live down-tier neighbors that are not
    /// already a downward port for this root (and carry no negative
    /// entry for it). In a folded Clos every such sibling still reaches
    /// the root through its own uplinks, so when both `down` and `ups`
    /// are masked dead a single bounce through `backup` restores
    /// delivery. Consulted only by [`CompiledFib::lookup_repair`] — the
    /// off-mode [`CompiledFib::lookup`] never reads it.
    backup: u128,
    /// Total upward loss: traffic for this root is dropped when no
    /// downward port survives the mask.
    upper_lost: bool,
}

const EMPTY: FibEntry = FibEntry { down: 0, ups: 0, backup: 0, upper_lost: false };

/// The compiled forwarding table. Allocates once at construction; every
/// rebuild and lookup thereafter is allocation-free.
pub struct CompiledFib {
    entries: Box<[FibEntry; 256]>,
}

impl Default for CompiledFib {
    fn default() -> CompiledFib {
        CompiledFib::new()
    }
}

impl CompiledFib {
    pub fn new() -> CompiledFib {
        CompiledFib { entries: Box::new([EMPTY; 256]) }
    }

    /// Recompile from the routing tables. Called lazily by the router
    /// when a version counter moved; performs no heap allocation.
    pub fn rebuild(
        &mut self,
        table: &VidTable,
        nbr: &NeighborTable,
        upper_lost: &BTreeSet<u8>,
        tier: u8,
    ) {
        let mut default_ups = 0u128;
        for p in nbr.up_ports_at_tier(tier + 1) {
            if p.index() < 128 {
                default_ups |= 1 << p.index();
            }
        }
        // Down-tier siblings form the local-repair detour pool; a ToR
        // (tier 1) has only hosts below it, which never appear as live
        // neighbors, so the pool is naturally empty there.
        let mut default_backup = 0u128;
        if tier > 0 {
            for p in nbr.up_ports_at_tier(tier - 1) {
                if p.index() < 128 {
                    default_backup |= 1 << p.index();
                }
            }
        }
        for e in self.entries.iter_mut() {
            *e = FibEntry { down: 0, ups: default_ups, backup: default_backup, upper_lost: false };
        }
        for root in table.roots() {
            let e = &mut self.entries[root as usize];
            for o in table.vids_for(root) {
                let p = o.port;
                if p.index() < 128 && nbr.is_up(p) && !table.is_negative(root, p) {
                    e.down |= 1 << p.index();
                }
            }
            // A port already carrying the primary down-tree route is not
            // a detour.
            e.backup &= !e.down;
        }
        for (root, ports) in table.negatives() {
            let e = &mut self.entries[root as usize];
            for &p in ports {
                if p.index() < 128 {
                    e.ups &= !(1 << p.index());
                    e.backup &= !(1 << p.index());
                }
            }
        }
        for &root in upper_lost {
            self.entries[root as usize].upper_lost = true;
        }
    }

    /// Next hop for traffic to `root` with flow hash `flow`, given the
    /// engine's admin-up port mask. Bit-for-bit the same decision as
    /// [`reference_candidates`] + `ecmp_index`.
    #[inline]
    pub fn lookup(&self, root: u8, flow: u16, up_mask: u128) -> Option<PortId> {
        let e = &self.entries[root as usize];
        let down = e.down & up_mask;
        if down != 0 {
            return Some(pick(down, flow));
        }
        if e.upper_lost {
            return None;
        }
        let ups = e.ups & up_mask;
        if ups != 0 {
            Some(pick(ups, flow))
        } else {
            None
        }
    }

    /// Like [`CompiledFib::lookup`], but with local fast reroute: when
    /// the primary candidate set is masked dead, fall back to the next
    /// stage and flag the pick as a *repair* (`true` in the returned
    /// pair). Stages, all branchless mask-and-pick:
    ///
    /// 1. `down ∧ up_mask` — the primary route, never a repair.
    /// 2. `ups ∧ up_mask` — primary when no down-tree port was compiled
    ///    (`down == 0`), a **repair** when the compiled down-tree ports
    ///    are all administratively dead. Skipped on a total upper loss.
    /// 3. `backup ∧ up_mask` — the down-tier detour, always a repair.
    ///
    /// Repair stages avoid `arrival` (the bit of the port the packet
    /// came in on) unless it is the only survivor, so a detour is not a
    /// straight bounce-back. Decisions where no repair fires are
    /// bit-identical to [`CompiledFib::lookup`], which is what keeps
    /// `local_repair=off` runs byte-for-byte unchanged.
    #[inline]
    pub fn lookup_repair(
        &self,
        root: u8,
        flow: u16,
        up_mask: u128,
        arrival: u128,
    ) -> Option<(PortId, bool)> {
        let e = &self.entries[root as usize];
        let down = e.down & up_mask;
        if down != 0 {
            return Some((pick(down, flow), false));
        }
        if !e.upper_lost {
            let ups = e.ups & up_mask;
            if e.down == 0 {
                // No down-tree route was ever compiled: uplinks are this
                // root's primary path, exactly as in off mode.
                if ups != 0 {
                    return Some((pick(ups, flow), false));
                }
            } else if ups != 0 {
                let pref = ups & !arrival;
                return Some((pick(if pref != 0 { pref } else { ups }, flow), true));
            }
        }
        let b = e.backup & up_mask;
        if b != 0 {
            let pref = b & !arrival;
            return Some((pick(if pref != 0 { pref } else { b }, flow), true));
        }
        None
    }
}

/// The `flow % n`-th set bit of `mask`, counting from bit 0. Because
/// candidate sets are sorted ascending, this is the same port the slow
/// path's `candidates[ecmp_index(flow, n)]` selects.
#[inline]
fn pick(mask: u128, flow: u16) -> PortId {
    let n = mask.count_ones() as usize;
    let k = dcn_wire::ecmp_index(flow as u64, n);
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1; // clear lowest set bit
    }
    PortId(m.trailing_zeros() as u16)
}

/// The slow-path candidate computation (sorted ECMP set, empty = drop).
/// The single source of truth: the router's public
/// `forwarding_candidates` delegates here, and the compiled FIB is
/// property-tested against it.
pub fn reference_candidates(
    table: &VidTable,
    nbr: &NeighborTable,
    upper_lost: &BTreeSet<u8>,
    tier: u8,
    root: u8,
    port_up: impl Fn(PortId) -> bool,
) -> Vec<PortId> {
    let mut down: Vec<PortId> = table
        .vids_for(root)
        .iter()
        .map(|o| o.port)
        .filter(|&p| port_up(p) && nbr.is_up(p) && !table.is_negative(root, p))
        .collect();
    if !down.is_empty() {
        down.sort_unstable();
        return down;
    }
    if upper_lost.contains(&root) {
        return Vec::new();
    }
    let mut ups: Vec<PortId> = nbr
        .up_ports_at_tier(tier + 1)
        .filter(|&p| port_up(p) && !table.is_negative(root, p))
        .collect();
    ups.sort_unstable();
    ups
}

/// The slow-path mirror of the compiled `backup` mask: live down-tier
/// sibling ports that are not a (live-neighbor, non-negative) down-tree
/// port for `root`. Property tests pit the repair stage of
/// [`CompiledFib::lookup_repair`] against this, and the chaos walker
/// replays repair decisions through it.
pub fn reference_backup_candidates(
    table: &VidTable,
    nbr: &NeighborTable,
    tier: u8,
    root: u8,
    port_up: impl Fn(PortId) -> bool,
) -> Vec<PortId> {
    if tier == 0 {
        return Vec::new();
    }
    let down: BTreeSet<PortId> = table
        .vids_for(root)
        .iter()
        .map(|o| o.port)
        .filter(|&p| nbr.is_up(p) && !table.is_negative(root, p))
        .collect();
    let mut backup: Vec<PortId> = nbr
        .up_ports_at_tier(tier - 1)
        .filter(|&p| port_up(p) && !table.is_negative(root, p) && !down.contains(&p))
        .collect();
    backup.sort_unstable();
    backup
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_wire::Vid;

    fn v(s: &str) -> Vid {
        s.parse().unwrap()
    }

    /// Drive both paths over one table state and assert identical picks
    /// for every root and a spread of flows.
    fn assert_equivalent(
        table: &VidTable,
        nbr: &NeighborTable,
        upper_lost: &BTreeSet<u8>,
        tier: u8,
        up_mask: u128,
    ) {
        let mut fib = CompiledFib::new();
        fib.rebuild(table, nbr, upper_lost, tier);
        let port_up = |p: PortId| p.index() < 128 && up_mask & (1 << p.index()) != 0;
        for root in 0..=255u8 {
            for flow in [0u16, 1, 2, 3, 7, 100, 9999, u16::MAX] {
                let cands = reference_candidates(table, nbr, upper_lost, tier, root, port_up);
                let slow = if cands.is_empty() {
                    None
                } else {
                    Some(cands[dcn_wire::ecmp_index(flow as u64, cands.len())])
                };
                let fast = fib.lookup(root, flow, up_mask);
                assert_eq!(fast, slow, "root {root} flow {flow} mask {up_mask:#x}");
            }
        }
    }

    #[test]
    fn matches_reference_on_mixed_state() {
        let mut table = VidTable::new();
        table.install(v("11.1"), PortId(0));
        table.install(v("12.1"), PortId(1));
        table.install(v("12.2"), PortId(2));
        table.add_negative(13, PortId(3));
        let mut nbr = NeighborTable::new(6, 100, 3);
        for p in 0..6 {
            nbr.note_rx(PortId(p), 10);
        }
        nbr.set_tier(PortId(0), 1);
        nbr.set_tier(PortId(1), 1);
        nbr.set_tier(PortId(2), 1);
        nbr.set_tier(PortId(3), 3);
        nbr.set_tier(PortId(4), 3);
        nbr.set_carrier(PortId(2), false);
        let mut upper_lost = BTreeSet::new();
        upper_lost.insert(14);
        for mask in [0u128, 0b1, 0b111111, 0b101010, 0b011101] {
            assert_equivalent(&table, &nbr, &upper_lost, 2, mask);
        }
    }

    #[test]
    fn pick_walks_set_bits_in_ascending_order() {
        let mask: u128 = (1 << 2) | (1 << 5) | (1 << 9);
        assert_eq!(pick(mask, 0), PortId(2));
        assert_eq!(pick(mask, 1), PortId(5));
        assert_eq!(pick(mask, 2), PortId(9));
        assert_eq!(pick(mask, 3), PortId(2));
    }

    /// When `lookup` finds a candidate, `lookup_repair` must return the
    /// identical unflagged pick; it may only *add* answers (flagged as
    /// repairs) where `lookup` gives up.
    #[test]
    fn repair_lookup_is_superset_of_plain_lookup() {
        let mut table = VidTable::new();
        table.install(v("11.1"), PortId(0));
        table.install(v("12.1"), PortId(1));
        table.install(v("12.2"), PortId(2));
        table.add_negative(13, PortId(3));
        let mut nbr = NeighborTable::new(6, 100, 3);
        for p in 0..6 {
            nbr.note_rx(PortId(p), 10);
        }
        nbr.set_tier(PortId(0), 1);
        nbr.set_tier(PortId(1), 1);
        nbr.set_tier(PortId(2), 1);
        nbr.set_tier(PortId(3), 3);
        nbr.set_tier(PortId(4), 3);
        let mut upper_lost = BTreeSet::new();
        upper_lost.insert(14);
        let mut fib = CompiledFib::new();
        fib.rebuild(&table, &nbr, &upper_lost, 2);
        for mask in [0u128, 0b1, 0b111111, 0b101010, 0b011101, 0b110000] {
            for root in 0..=255u8 {
                for flow in [0u16, 1, 7, 9999] {
                    let plain = fib.lookup(root, flow, mask);
                    let repair = fib.lookup_repair(root, flow, mask, 0);
                    match plain {
                        // With no arrival port to avoid, the repair
                        // lookup picks the same port wherever the plain
                        // lookup finds one; it may additionally flag the
                        // pick when the down-tree primary was masked out.
                        Some(p) => assert_eq!(repair.map(|(q, _)| q), Some(p)),
                        None => {
                            if let Some((p, repaired)) = repair {
                                assert!(repaired, "unflagged repair at root {root}");
                                assert!(mask & (1 << p.index()) != 0, "repair onto dead port");
                            }
                        }
                    }
                }
            }
        }
    }

    /// The detour stages: dead down-tree → flagged uplink bounce; dead
    /// uplinks too → flagged down-tier sibling, avoiding the arrival
    /// port when another sibling survives.
    #[test]
    fn repair_bounces_up_then_down_and_avoids_arrival() {
        let mut table = VidTable::new();
        // Root 11 reached down-tree via port 0; ports 1–2 are more
        // down-tier neighbors, ports 3–4 uplinks.
        table.install(v("11.1"), PortId(0));
        let mut nbr = NeighborTable::new(5, 100, 3);
        for p in 0..5 {
            nbr.note_rx(PortId(p), 10);
        }
        for p in 0..3 {
            nbr.set_tier(PortId(p), 1);
        }
        nbr.set_tier(PortId(3), 3);
        nbr.set_tier(PortId(4), 3);
        let none = BTreeSet::new();
        let mut fib = CompiledFib::new();
        fib.rebuild(&table, &nbr, &none, 2);

        // All ports up: primary pick, no repair.
        assert_eq!(fib.lookup_repair(11, 0, !0, 0), Some((PortId(0), false)));
        // Down port masked dead: bounce up, flagged.
        let mask = !(1u128 << 0);
        assert_eq!(fib.lookup_repair(11, 0, mask, 0), Some((PortId(3), true)));
        // Uplinks dead too: down-tier detour, flagged.
        let mask = mask & !(1 << 3) & !(1 << 4);
        assert_eq!(fib.lookup_repair(11, 0, mask, 0), Some((PortId(1), true)));
        // Same, but the packet arrived on port 1: detour prefers port 2.
        assert_eq!(fib.lookup_repair(11, 0, mask, 1 << 1), Some((PortId(2), true)));
        // Arrival is the only survivor: better back than dropped.
        let only1 = mask & !(1 << 2);
        assert_eq!(fib.lookup_repair(11, 0, only1, 1 << 1), Some((PortId(1), true)));
        // Everything dead: still a drop.
        assert_eq!(fib.lookup_repair(11, 0, 0, 0), None);

        // The reference mirror agrees with the compiled detour pool.
        let alive = |p: PortId| p != PortId(0) && p.index() < 3;
        assert_eq!(
            reference_backup_candidates(&table, &nbr, 2, 11, alive),
            vec![PortId(1), PortId(2)]
        );
    }

    /// `upper_lost` suppresses the uplink bounce but not the down-tier
    /// detour: the sibling may still hold a live tree for the root.
    #[test]
    fn repair_skips_uplinks_on_upper_lost() {
        let mut table = VidTable::new();
        table.install(v("20.1"), PortId(0));
        let mut nbr = NeighborTable::new(4, 100, 3);
        for p in 0..4 {
            nbr.note_rx(PortId(p), 10);
        }
        nbr.set_tier(PortId(0), 1);
        nbr.set_tier(PortId(1), 1);
        nbr.set_tier(PortId(2), 3);
        let mut upper_lost = BTreeSet::new();
        upper_lost.insert(20);
        let mut fib = CompiledFib::new();
        fib.rebuild(&table, &nbr, &upper_lost, 2);
        let mask = !(1u128 << 0); // down port dead
        assert_eq!(fib.lookup_repair(20, 0, mask, 0), Some((PortId(1), true)));
    }

    #[test]
    fn upper_lost_blocks_uplinks_but_not_downs() {
        let mut table = VidTable::new();
        table.install(v("20.1"), PortId(0));
        let mut nbr = NeighborTable::new(3, 100, 3);
        for p in 0..3 {
            nbr.note_rx(PortId(p), 10);
        }
        nbr.set_tier(PortId(1), 2);
        nbr.set_tier(PortId(2), 2);
        let mut upper_lost = BTreeSet::new();
        upper_lost.insert(20);
        upper_lost.insert(21);
        let mut fib = CompiledFib::new();
        fib.rebuild(&table, &nbr, &upper_lost, 1);
        // Root 20 still has a down port; root 21 has only (blocked) ups.
        assert_eq!(fib.lookup(20, 0, !0), Some(PortId(0)));
        assert_eq!(fib.lookup(21, 0, !0), None);
        // Mask the down port away: upper_lost now bites for 20 too.
        assert_eq!(fib.lookup(20, 0, !1), None);
        assert_eq!(fib.lookup(22, 0, !0), Some(PortId(1)));
    }
}
