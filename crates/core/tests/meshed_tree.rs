//! Integration tests: MR-MTP on the paper's folded-Clos fabrics.
//!
//! These tests exercise the full protocol on the emulator: tree
//! construction (validated against the paper's Fig. 2 VID tables),
//! end-to-end data forwarding, and the failure semantics behind the
//! paper's Fig. 5 blast-radius numbers.

use std::any::Any;

use dcn_mrmtp::{MrmtpConfig, MrmtpRouter, TorConfig};
use dcn_sim::time::{millis, secs};
use dcn_sim::{Ctx, FrameBuf, FrameClass, NodeId, PortId, Protocol, Sim, SimBuilder, TraceEvent};
use dcn_sim::link::LinkSpec;
use dcn_topology::{Addressing, ClosParams, Fabric, FailureCase, Role};
use dcn_wire::{
    EtherType, EthernetFrame, IpAddr4, Ipv4Packet, MacAddr, UdpDatagram, Vid, IPPROTO_UDP,
};

/// A minimal server: sends one UDP packet at a scheduled time, records
/// every IPv4 packet it receives.
struct TestHost {
    ip: IpAddr4,
    /// Set any time before the send instant; the host polls on a tick so
    /// it can be configured after the simulation has started running.
    send_at: Option<(u64, IpAddr4)>,
    sent: bool,
    received: Vec<IpAddr4>, // source addresses
}

impl TestHost {
    fn new(ip: IpAddr4) -> TestHost {
        TestHost { ip, send_at: None, sent: false, received: Vec::new() }
    }
}

const HOST_TICK: u64 = millis(10);

impl Protocol for TestHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(HOST_TICK, 1);
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, frame: &FrameBuf) {
        let Ok(eth) = EthernetFrame::decode(frame) else { return };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        if let Ok(pkt) = Ipv4Packet::decode(&eth.payload) {
            if pkt.dst == self.ip {
                self.received.push(pkt.src);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.set_timer(HOST_TICK, 1);
        let Some((at, dst)) = self.send_at else { return };
        if self.sent || ctx.now() < at {
            return;
        }
        self.sent = true;
        let udp = UdpDatagram::new(5000, 6000, vec![0xAB; 64]);
        let pkt = Ipv4Packet::new(self.ip, dst, IPPROTO_UDP, udp.encode());
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node_port(ctx.node().0, 0),
            ethertype: EtherType::Ipv4,
            payload: pkt.encode(),
        };
        ctx.send(PortId(0), frame.encode(), FrameClass::Data);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Build an emulation of `params` running MR-MTP everywhere. Returns the
/// sim plus the fabric (node index == NodeId index).
fn build(params: ClosParams, seed: u64) -> (Sim, Fabric) {
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    let mut b = SimBuilder::new(seed);
    for (i, node) in fabric.nodes.iter().enumerate() {
        let proto: Box<dyn Protocol> = match node.role {
            Role::Tor { .. } => {
                let rack = addr.rack_subnet(i).unwrap();
                let mut host_ports = Vec::new();
                for (pi, pr) in fabric.ports[i].iter().enumerate() {
                    if matches!(pr.kind, dcn_topology::PortKind::Host) {
                        let s = host_ports.len();
                        host_ports.push((addr.server_addr(i, s).unwrap(), PortId(pi as u16)));
                    }
                }
                Box::new(MrmtpRouter::new(
                    MrmtpConfig::tor(node.name.clone(), TorConfig { rack_subnet: rack, host_ports }),
                    fabric.ports[i].len(),
                ))
            }
            Role::PodSpine { .. } | Role::ZoneSpine { .. } | Role::TopSpine { .. } => {
                Box::new(MrmtpRouter::new(
                    MrmtpConfig::spine(node.name.clone(), node.tier),
                    fabric.ports[i].len(),
                ))
            }
            Role::Server { pod, tor_idx, idx } => {
                let tor = fabric.tor(pod, tor_idx);
                Box::new(TestHost::new(addr.server_addr(tor, idx).unwrap()))
            }
        };
        b.add_node(node.name.clone(), proto);
    }
    for &(a, bn) in &fabric.links {
        b.add_link(NodeId(a as u32), NodeId(bn as u32), LinkSpec::default());
    }
    (b.build(), fabric)
}

fn vids_of(sim: &Sim, node: usize) -> Vec<String> {
    let r: &MrmtpRouter = sim.node_as(NodeId(node as u32)).unwrap();
    let mut v: Vec<String> = r
        .vid_table()
        .roots()
        .flat_map(|root| r.vid_table().vids_for(root).iter().map(|o| o.vid.to_string()))
        .collect();
    v.sort();
    v
}

#[test]
fn fig2_vid_tables_emerge() {
    let (mut sim, f) = build(ClosParams::two_pod(), 1);
    sim.run_until(secs(2));

    // Tier-2 spines: one VID per ToR in their PoD (Fig. 2).
    assert_eq!(vids_of(&sim, f.pod_spine(0, 0)), vec!["11.1", "12.1"]);
    assert_eq!(vids_of(&sim, f.pod_spine(0, 1)), vec!["11.2", "12.2"]);
    assert_eq!(vids_of(&sim, f.pod_spine(1, 0)), vec!["13.1", "14.1"]);
    assert_eq!(vids_of(&sim, f.pod_spine(1, 1)), vec!["13.2", "14.2"]);

    // Top spines: one VID per ToR in the fabric, matching Fig. 2's tables.
    assert_eq!(
        vids_of(&sim, f.top_spine(0)),
        vec!["11.1.1", "12.1.1", "13.1.1", "14.1.1"]
    );
    assert_eq!(
        vids_of(&sim, f.top_spine(1)),
        vec!["11.2.1", "12.2.1", "13.2.1", "14.2.1"]
    );
    assert_eq!(
        vids_of(&sim, f.top_spine(2)),
        vec!["11.1.2", "12.1.2", "13.1.2", "14.1.2"]
    );
    assert_eq!(
        vids_of(&sim, f.top_spine(3)),
        vec!["11.2.2", "12.2.2", "13.2.2", "14.2.2"]
    );

    // ToRs acquire nothing: they are roots.
    let tor: &MrmtpRouter = sim.node_as(NodeId(f.tor(0, 0) as u32)).unwrap();
    assert_eq!(tor.vid_table().own_entry_count(), 0);
    assert_eq!(tor.root_vid(), Some(Vid::root(11)));
}

#[test]
fn four_pod_top_spines_hold_all_eight_trees() {
    let (mut sim, f) = build(ClosParams::four_pod(), 1);
    sim.run_until(secs(2));
    for k in 0..4 {
        let r: &MrmtpRouter = sim.node_as(NodeId(f.top_spine(k) as u32)).unwrap();
        assert_eq!(
            r.vid_table().own_entry_count(),
            8,
            "T-{} must hold one VID per ToR",
            k + 1
        );
        // Listing 5: two VIDs (one per rack) per down-port.
        let rendered = r.render_table();
        assert_eq!(rendered.lines().count(), 4, "4 ports: {rendered}");
    }
}

#[test]
fn data_forwards_between_far_racks() {
    let (mut sim, f) = build(ClosParams::two_pod(), 1);
    // H-1-1-1 (192.168.11.1) → H-2-2-1 (192.168.14.1), after warmup.
    let src = f.server(0, 0, 0);
    let dst_ip = IpAddr4::new(192, 168, 14, 1);
    {
        let h: &mut TestHost = sim.node_as_mut(NodeId(src as u32)).unwrap();
        h.send_at = Some((secs(2), dst_ip));
    }
    sim.run_until(secs(3));
    let dst = f.server(1, 1, 0);
    let h: &mut TestHost = sim.node_as_mut(NodeId(dst as u32)).unwrap();
    assert_eq!(h.received, vec![IpAddr4::new(192, 168, 11, 1)]);
}

#[test]
fn data_forwards_within_pod_and_within_rack() {
    let (mut sim, f) = build(ClosParams::two_pod(), 3);
    // Same PoD, different rack: 11 → 12.
    {
        let h: &mut TestHost = sim.node_as_mut(NodeId(f.server(0, 0, 0) as u32)).unwrap();
        h.send_at = Some((secs(2), IpAddr4::new(192, 168, 12, 1)));
    }
    sim.run_until(secs(3));
    let h: &TestHost = sim.node_as(NodeId(f.server(0, 1, 0) as u32)).unwrap();
    assert_eq!(h.received.len(), 1, "intra-PoD delivery");
}

/// Distinct routers recording destination-routing changes after `t0` —
/// the paper's blast-radius metric.
fn blast_radius(sim: &Sim, t0: u64) -> usize {
    let mut nodes: Vec<u32> = sim
        .trace()
        .events_since(t0)
        .filter_map(|e| match e {
            TraceEvent::RouteChange { node, .. } => Some(node.0),
            _ => None,
        })
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes.len()
}

fn blast_for(params: ClosParams, tc: FailureCase) -> usize {
    let (mut sim, f) = build(params, 7);
    sim.run_until(secs(3));
    let (node, port) = f.failure_point(tc);
    let t0 = secs(3);
    sim.schedule_port_down(t0, NodeId(node as u32), PortId(port as u16));
    sim.run_until(secs(5));
    blast_radius(&sim, t0)
}

#[test]
fn blast_radius_two_pod_matches_fig5() {
    assert_eq!(blast_for(ClosParams::two_pod(), FailureCase::Tc1), 3);
    assert_eq!(blast_for(ClosParams::two_pod(), FailureCase::Tc2), 3);
    assert_eq!(blast_for(ClosParams::two_pod(), FailureCase::Tc3), 1);
    assert_eq!(blast_for(ClosParams::two_pod(), FailureCase::Tc4), 1);
}

#[test]
fn blast_radius_four_pod_matches_fig5() {
    assert_eq!(blast_for(ClosParams::four_pod(), FailureCase::Tc1), 7);
    assert_eq!(blast_for(ClosParams::four_pod(), FailureCase::Tc2), 7);
    assert_eq!(blast_for(ClosParams::four_pod(), FailureCase::Tc3), 3);
    assert_eq!(blast_for(ClosParams::four_pod(), FailureCase::Tc4), 3);
}

#[test]
fn traffic_reroutes_after_upstream_failure() {
    // TC4 with continuous traffic 14 → 11: the flow initially transits
    // S1_3 → T-1 → S-1-1; after T-1's downlink dies the negative entry at
    // S1_3 steers it through T-3.
    let (mut sim, f) = build(ClosParams::two_pod(), 5);
    sim.run_until(secs(2));
    let (node, port) = f.failure_point(FailureCase::Tc4);
    sim.schedule_port_down(secs(3), NodeId(node as u32), PortId(port as u16));
    // Send one packet well after reconvergence.
    {
        let h: &mut TestHost = sim.node_as_mut(NodeId(f.server(1, 1, 0) as u32)).unwrap();
        h.send_at = Some((secs(4), IpAddr4::new(192, 168, 11, 1)));
    }
    sim.run_until(secs(5));
    let h: &TestHost = sim.node_as(NodeId(f.server(0, 0, 0) as u32)).unwrap();
    assert_eq!(h.received.len(), 1, "post-failure delivery via surviving plane");
    // S1_3 (the PoD-2 spine on the failed plane) must hold the negatives.
    let s13: &MrmtpRouter = sim.node_as(NodeId(f.pod_spine(1, 0) as u32)).unwrap();
    assert_eq!(s13.vid_table().negative_entry_count(), 2, "roots 11 and 12");
}

#[test]
fn recovery_clears_negatives_and_restores_vids() {
    let (mut sim, f) = build(ClosParams::two_pod(), 9);
    sim.run_until(secs(2));
    let (node, port) = f.failure_point(FailureCase::Tc4);
    sim.schedule_port_down(secs(3), NodeId(node as u32), PortId(port as u16));
    sim.schedule_port_up(secs(4), NodeId(node as u32), PortId(port as u16));
    sim.run_until(secs(7));
    let t1: &MrmtpRouter = sim.node_as(NodeId(f.top_spine(0) as u32)).unwrap();
    assert_eq!(
        t1.vid_table().own_entry_count(),
        4,
        "T-1 re-acquired PoD-1 trees: {}",
        t1.render_table()
    );
    let s13: &MrmtpRouter = sim.node_as(NodeId(f.pod_spine(1, 0) as u32)).unwrap();
    assert_eq!(
        s13.vid_table().negative_entry_count(),
        0,
        "negatives cleared on recovery: {}",
        s13.render_table()
    );
}

#[test]
fn steady_state_is_hellos_only() {
    let (mut sim, _f) = build(ClosParams::two_pod(), 11);
    sim.run_until(secs(2));
    // After convergence, a further window must contain no Update frames
    // (the paper: all steady-state traffic is 1-byte keep-alives).
    let t0 = secs(2);
    sim.run_until(secs(4));
    let updates = sim
        .trace()
        .events_since(t0)
        .filter(|e| {
            matches!(
                e,
                TraceEvent::FrameSent { class: FrameClass::Update, .. }
            )
        })
        .count();
    assert_eq!(updates, 0, "no updates in steady state");
    let keepalives = sim
        .trace()
        .events_since(t0)
        .filter(|e| {
            matches!(
                e,
                TraceEvent::FrameSent { class: FrameClass::Keepalive, wire_len: 60, .. }
            )
        })
        .count();
    assert!(keepalives > 500, "hellos flow on every link: {keepalives}");
}
