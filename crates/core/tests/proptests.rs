//! Property tests on MR-MTP's core data structures: VID-table invariants,
//! the Quick-to-Detect / Slow-to-Accept neighbor state machine, and the
//! compiled FIB's equivalence to the reference forwarding walk.

use std::collections::BTreeSet;

use proptest::prelude::*;

use dcn_mrmtp::fib::{reference_backup_candidates, reference_candidates, CompiledFib};
use dcn_mrmtp::{NeighborState, NeighborTable, VidTable};
use dcn_sim::PortId;
use dcn_wire::Vid;

fn arb_vid() -> impl Strategy<Value = Vid> {
    proptest::collection::vec(1u8..=40, 1..=4)
        .prop_map(|c| Vid::from_components(&c).expect("depth ok"))
}

#[derive(Clone, Debug)]
enum TableOp {
    Install(Vid, u16),
    RemoveVia(u8, u16),
    AddNeg(u8, u16),
    ClearNeg(u8, u16),
    ClearPort(u16),
}

fn arb_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        (arb_vid(), 0u16..4).prop_map(|(v, p)| TableOp::Install(v, p)),
        (1u8..=40, 0u16..4).prop_map(|(r, p)| TableOp::RemoveVia(r, p)),
        (1u8..=40, 0u16..4).prop_map(|(r, p)| TableOp::AddNeg(r, p)),
        (1u8..=40, 0u16..4).prop_map(|(r, p)| TableOp::ClearNeg(r, p)),
        (0u16..4).prop_map(TableOp::ClearPort),
    ]
}

/// The slow-path model of [`CompiledFib::lookup_repair`], built from the
/// two exported reference walks plus the documented staging rules.
#[allow(clippy::too_many_arguments)]
fn staged_repair_reference(
    t: &VidTable,
    nbr: &NeighborTable,
    upper_lost: &BTreeSet<u8>,
    tier: u8,
    root: u8,
    flow: u16,
    port_up: &dyn Fn(PortId) -> bool,
    arrival: PortId,
) -> Option<(PortId, bool)> {
    let pick = |cands: &[PortId]| cands[dcn_wire::ecmp_index(flow as u64, cands.len())];
    // Repair stages steer away from the arrival port unless it is the
    // only survivor.
    let avoid = |cands: Vec<PortId>| {
        let pref: Vec<PortId> = cands.iter().copied().filter(|&p| p != arrival).collect();
        if pref.is_empty() { cands } else { pref }
    };
    // The compiled down-tree port set (live neighbor, non-negative) —
    // *before* the admin mask, which is what distinguishes "uplinks are
    // this root's primary path" from "the primary was masked dead".
    let down_compiled: BTreeSet<PortId> = t
        .vids_for(root)
        .iter()
        .map(|o| o.port)
        .filter(|&p| nbr.is_up(p) && !t.is_negative(root, p))
        .collect();
    let down_up: Vec<PortId> =
        down_compiled.iter().copied().filter(|&p| port_up(p)).collect();
    if !down_up.is_empty() {
        return Some((pick(&down_up), false));
    }
    if !upper_lost.contains(&root) {
        let mut ups: Vec<PortId> = nbr
            .up_ports_at_tier(tier + 1)
            .filter(|&p| port_up(p) && !t.is_negative(root, p))
            .collect();
        ups.sort_unstable();
        if down_compiled.is_empty() {
            if !ups.is_empty() {
                return Some((pick(&ups), false));
            }
        } else if !ups.is_empty() {
            return Some((pick(&avoid(ups)), true));
        }
    }
    let backup = reference_backup_candidates(t, nbr, tier, root, port_up);
    if backup.is_empty() { None } else { Some((pick(&avoid(backup)), true)) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any operation sequence, the table's internal accounting is
    /// consistent: entry counts match enumerations, every stored VID is
    /// keyed under its own root, and negatives never go negative.
    #[test]
    fn vid_table_invariants_hold_under_any_ops(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let mut t = VidTable::new();
        for op in ops {
            match op {
                TableOp::Install(v, p) => { t.install(v, PortId(p)); }
                TableOp::RemoveVia(r, p) => { t.remove_via(r, PortId(p)); }
                TableOp::AddNeg(r, p) => { t.add_negative(r, PortId(p)); }
                TableOp::ClearNeg(r, p) => { t.clear_negative(r, PortId(p)); }
                TableOp::ClearPort(p) => { t.clear_negatives_on_port(PortId(p)); }
            }
            // Invariant: every vid listed for root r has root_id() == r.
            let roots: Vec<u8> = t.roots().collect();
            let mut total = 0;
            for r in roots {
                for own in t.vids_for(r) {
                    prop_assert_eq!(own.vid.root_id(), r);
                    total += 1;
                }
                prop_assert!(!t.vids_for(r).is_empty(), "no empty root buckets");
            }
            prop_assert_eq!(t.own_entry_count(), total);
            // primary_vids yields exactly one per root.
            prop_assert_eq!(t.primary_vids().len(), t.roots().count());
            // approx_bytes is consistent with counts.
            prop_assert!(t.approx_bytes() >= t.own_entry_count());
        }
    }

    /// remove_via returns "fully lost" exactly when the root disappears.
    #[test]
    fn remove_via_full_loss_semantics(vids in proptest::collection::vec((arb_vid(), 0u16..3), 1..10)) {
        let mut t = VidTable::new();
        for (v, p) in &vids {
            t.install(*v, PortId(*p));
        }
        let roots: Vec<u8> = t.roots().collect();
        for r in roots {
            let ports: Vec<PortId> = t.ports_for(r).collect();
            for (i, port) in ports.iter().enumerate() {
                let fully = t.remove_via(r, *port);
                prop_assert_eq!(fully, i + 1 == ports.len(),
                    "full loss only on the last port");
            }
            prop_assert!(!t.has_root(r));
        }
    }

    /// Slow-to-Accept: a down neighbor never becomes usable with fewer
    /// than `accept` timely hellos, regardless of the hello schedule.
    #[test]
    fn slow_to_accept_needs_n_timely_hellos(
        gaps in proptest::collection::vec(1u64..300, 1..20),
        accept in 2u32..5,
    ) {
        let dead = 100u64;
        let mut t = NeighborTable::new(1, dead, accept);
        t.note_rx(PortId(0), 0);
        // Kill it.
        t.sweep_dead(1_000_000);
        prop_assert_eq!(t.state(PortId(0)), NeighborState::Down);
        let mut now = 1_000_000;
        let mut timely_run = 0u32;
        for gap in gaps {
            now += gap;
            let came_up = matches!(
                t.note_rx(PortId(0), now),
                dcn_mrmtp::neighbor::RxOutcome::CameUp
            );
            if gap <= dead { timely_run += 1 } else { timely_run = 1 }
            if came_up {
                prop_assert!(timely_run >= accept,
                    "came up after only {timely_run} timely hellos (need {accept})");
                return Ok(());
            } else {
                prop_assert!(timely_run < accept, "should have come up by now");
            }
        }
    }

    /// The compiled FIB is a *lookup table*, not a reimplementation: for
    /// any table state (installs, removals, negative entries), neighbor
    /// state (tiers, carrier loss), upper-loss set, and admin port mask,
    /// `CompiledFib::lookup` picks bit-for-bit the same next hop as the
    /// slow path's `reference_candidates` + `ecmp_index`.
    #[test]
    fn compiled_fib_matches_reference_walk(
        ops in proptest::collection::vec(arb_op(), 0..48),
        tiers in proptest::collection::vec(1u8..5, 6),
        carrier_down in proptest::collection::vec(any::<bool>(), 6),
        lost in proptest::collection::vec(1u8..=40, 0..4),
        tier in 1u8..4,
        up_bits in any::<u8>(),
        flows in proptest::collection::vec(any::<u16>(), 1..6),
    ) {
        let mut t = VidTable::new();
        for op in ops {
            match op {
                TableOp::Install(v, p) => { t.install(v, PortId(p)); }
                TableOp::RemoveVia(r, p) => { t.remove_via(r, PortId(p)); }
                TableOp::AddNeg(r, p) => { t.add_negative(r, PortId(p)); }
                TableOp::ClearNeg(r, p) => { t.clear_negative(r, PortId(p)); }
                TableOp::ClearPort(p) => { t.clear_negatives_on_port(PortId(p)); }
            }
        }
        let mut nbr = NeighborTable::new(6, 100, 3);
        for p in 0..6u16 {
            nbr.note_rx(PortId(p), 10);
        }
        for (p, &tr) in tiers.iter().enumerate() {
            nbr.set_tier(PortId(p as u16), tr);
        }
        for (p, &down) in carrier_down.iter().enumerate() {
            if down {
                nbr.set_carrier(PortId(p as u16), false);
            }
        }
        let upper_lost: BTreeSet<u8> = lost.into_iter().collect();
        let mut fib = CompiledFib::new();
        fib.rebuild(&t, &nbr, &upper_lost, tier);
        let mask = up_bits as u128;
        let port_up = |p: PortId| p.index() < 128 && mask & (1 << p.index()) != 0;
        // Roots 1..=40 may be present; 0 and 41..=45 never are, checking
        // the default-route (uplink) path for unknown destinations.
        for root in 0u8..=45 {
            for &flow in &flows {
                let cands = reference_candidates(&t, &nbr, &upper_lost, tier, root, port_up);
                let slow = if cands.is_empty() {
                    None
                } else {
                    Some(cands[dcn_wire::ecmp_index(flow as u64, cands.len())])
                };
                prop_assert_eq!(
                    fib.lookup(root, flow, mask), slow,
                    "root {} flow {} mask {:#x}", root, flow, mask
                );
            }
        }
    }

    /// The local-repair lookup is the same staged walk a slow path would
    /// do: primary down-tree pick (never a repair), uplink bounce
    /// (a repair exactly when a compiled down-tree route was masked
    /// dead, skipped on total upper loss), then the down-tier detour
    /// from [`reference_backup_candidates`] — the repair stages avoiding
    /// the arrival port unless it is the only survivor. For any table
    /// state, neighbor state, mask and arrival port,
    /// `CompiledFib::lookup_repair` must match that model bit-for-bit.
    #[test]
    fn repair_lookup_matches_staged_reference_walk(
        ops in proptest::collection::vec(arb_op(), 0..48),
        tiers in proptest::collection::vec(1u8..5, 6),
        carrier_down in proptest::collection::vec(any::<bool>(), 6),
        lost in proptest::collection::vec(1u8..=40, 0..4),
        tier in 1u8..4,
        up_bits in any::<u8>(),
        arrival in 0u16..8,
        flows in proptest::collection::vec(any::<u16>(), 1..4),
    ) {
        let mut t = VidTable::new();
        for op in ops {
            match op {
                TableOp::Install(v, p) => { t.install(v, PortId(p)); }
                TableOp::RemoveVia(r, p) => { t.remove_via(r, PortId(p)); }
                TableOp::AddNeg(r, p) => { t.add_negative(r, PortId(p)); }
                TableOp::ClearNeg(r, p) => { t.clear_negative(r, PortId(p)); }
                TableOp::ClearPort(p) => { t.clear_negatives_on_port(PortId(p)); }
            }
        }
        let mut nbr = NeighborTable::new(6, 100, 3);
        for p in 0..6u16 {
            nbr.note_rx(PortId(p), 10);
        }
        for (p, &tr) in tiers.iter().enumerate() {
            nbr.set_tier(PortId(p as u16), tr);
        }
        for (p, &down) in carrier_down.iter().enumerate() {
            if down {
                nbr.set_carrier(PortId(p as u16), false);
            }
        }
        let upper_lost: BTreeSet<u8> = lost.into_iter().collect();
        let mut fib = CompiledFib::new();
        fib.rebuild(&t, &nbr, &upper_lost, tier);
        let mask = up_bits as u128;
        let arrival = PortId(arrival);
        let port_up = |p: PortId| p.index() < 128 && mask & (1 << p.index()) != 0;
        for root in 0u8..=45 {
            for &flow in &flows {
                let expect = staged_repair_reference(
                    &t, &nbr, &upper_lost, tier, root, flow, &port_up, arrival,
                );
                prop_assert_eq!(
                    fib.lookup_repair(root, flow, mask, 1u128 << arrival.index()),
                    expect,
                    "root {} flow {} mask {:#x} arrival {:?}", root, flow, mask, arrival
                );
            }
        }
    }

    /// Quick-to-Detect: sweeps kill exactly the neighbors silent past the
    /// dead interval.
    #[test]
    fn sweep_kills_only_silent_neighbors(last_rx in proptest::collection::vec(0u64..1000, 1..8),
                                         sweep_at in 0u64..2000) {
        let dead = 100;
        let mut t = NeighborTable::new(last_rx.len(), dead, 3);
        for (i, &rx) in last_rx.iter().enumerate() {
            t.note_rx(PortId(i as u16), rx);
        }
        let killed = t.sweep_dead(sweep_at);
        for (i, &rx) in last_rx.iter().enumerate() {
            let should_die = sweep_at.saturating_sub(rx) > dead;
            prop_assert_eq!(killed.contains(&PortId(i as u16)), should_die);
        }
    }
}
