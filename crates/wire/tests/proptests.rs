//! Property tests: every wire format round-trips for arbitrary field
//! values, and decoders never panic on arbitrary bytes.

use proptest::prelude::*;

use dcn_wire::{
    ecmp_index, flow_hash, BfdPacket, BfdState, BgpMessage, BgpUpdate, EthernetFrame, EtherType,
    IpAddr4, Ipv4Packet, MacAddr, MrmtpMsg, Prefix, TcpFlags, TcpSegment, UdpDatagram, Vid,
};

fn arb_ip() -> impl Strategy<Value = IpAddr4> {
    any::<u32>().prop_map(IpAddr4)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(IpAddr4(a), l).normalized())
}

fn arb_vid() -> impl Strategy<Value = Vid> {
    proptest::collection::vec(1u8..=255, 1..=8)
        .prop_map(|c| Vid::from_components(&c).expect("within depth limit"))
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(),
                          ethertype in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let f = EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(ethertype),
            payload,
        };
        prop_assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ip(), dst in arb_ip(), proto in any::<u8>(), ttl in 1u8..,
                      payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut p = Ipv4Packet::new(src, dst, proto, payload);
        p.ttl = ttl;
        prop_assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Packet::decode(&bytes);
    }

    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d = UdpDatagram::new(sp, dp, payload);
        prop_assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn tcp_roundtrip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(), ack in any::<u32>(),
                     flags in 0u8..32, window in any::<u16>(), ts in any::<u32>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let s = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags(flags), window, ts_val: ts, ts_ecr: ts ^ 7, payload: payload.into(),
        };
        prop_assert_eq!(TcpSegment::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn bgp_update_roundtrip(withdrawn in proptest::collection::vec(arb_prefix(), 0..8),
                            path in proptest::collection::vec(any::<u32>(), 1..6),
                            nh in arb_ip(),
                            nlri in proptest::collection::vec(arb_prefix(), 0..8)) {
        let has_nlri = !nlri.is_empty();
        let m = BgpMessage::Update(BgpUpdate {
            withdrawn,
            as_path: if has_nlri { path } else { Vec::new() },
            next_hop: has_nlri.then_some(nh),
            nlri,
        });
        let bytes = m.encode();
        let (d, used) = BgpMessage::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(d, m);
    }

    #[test]
    fn bgp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = BgpMessage::decode(&bytes);
    }

    #[test]
    fn bfd_roundtrip(state in 0u8..4, poll in any::<bool>(), fin in any::<bool>(),
                     mult in 1u8.., my in any::<u32>(), your in any::<u32>(),
                     tx in any::<u32>(), rx in any::<u32>()) {
        let st = match state { 0 => BfdState::AdminDown, 1 => BfdState::Down, 2 => BfdState::Init, _ => BfdState::Up };
        let p = BfdPacket {
            state: st, poll, final_: fin, detect_mult: mult,
            my_discriminator: my, your_discriminator: your,
            desired_min_tx_us: tx, required_min_rx_us: rx,
        };
        prop_assert_eq!(BfdPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn mrmtp_msgs_roundtrip(vids in proptest::collection::vec(arb_vid(), 0..6),
                            roots in proptest::collection::vec(any::<u8>(), 0..8),
                            seq in any::<u16>(), tier in any::<u8>(), flow in any::<u16>(),
                            payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let msgs = vec![
            MrmtpMsg::Hello,
            MrmtpMsg::Advertise { tier, vids: vids.clone() },
            MrmtpMsg::Join { tier },
            MrmtpMsg::Offer { seq, vids },
            MrmtpMsg::Accept { seq },
            MrmtpMsg::Lost { seq, roots: roots.clone() },
            MrmtpMsg::Recovered { seq, roots },
            MrmtpMsg::UpdateAck { seq },
            MrmtpMsg::Data { src: Vid::root(11), dst: Vid::root(14), flow, payload },
        ];
        for m in msgs {
            prop_assert_eq!(MrmtpMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn mrmtp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = MrmtpMsg::decode(&bytes);
    }

    #[test]
    fn prefix_contains_is_mask_consistent(p in arb_prefix(), ip in arb_ip()) {
        if p.contains(ip) {
            prop_assert_eq!(ip.0 & p.mask(), p.addr.0 & p.mask());
        }
    }

    #[test]
    fn vid_parent_child_inverse(v in arb_vid(), label in 1u8..=255) {
        if let Ok(child) = v.child(label) {
            prop_assert_eq!(child.parent(), Some(v));
            prop_assert_eq!(child.root_id(), v.root_id());
            prop_assert!(v.is_prefix_of(child));
        }
    }

    #[test]
    fn vid_display_parse_roundtrip(v in arb_vid()) {
        let s = v.to_string();
        prop_assert_eq!(s.parse::<Vid>().unwrap(), v);
    }

    #[test]
    fn ecmp_index_is_stable_and_bounded(src in arb_ip(), dst in arb_ip(),
                                        sp in any::<u16>(), dp in any::<u16>(), n in 1usize..64) {
        let h = flow_hash(src, dst, 17, sp, dp);
        let i = ecmp_index(h, n);
        prop_assert!(i < n);
        prop_assert_eq!(i, ecmp_index(h, n), "deterministic");
    }
}
