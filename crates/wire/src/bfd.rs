//! BFD control packets (RFC 5880 §4.1), asynchronous mode.
//!
//! A control packet is exactly 24 bytes; over UDP/IP/Ethernet this gives
//! the 66-byte frames visible in the paper's Fig. 9 capture.

use crate::error::WireError;

/// BFD control packets are sent to UDP port 3784.
pub const BFD_CTRL_PORT: u16 = 3784;

/// Mandatory section length (no authentication).
pub const BFD_PACKET_LEN: usize = 24;

/// Session state carried in the `Sta` field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfdState {
    AdminDown,
    Down,
    Init,
    Up,
}

impl BfdState {
    fn to_bits(self) -> u8 {
        match self {
            BfdState::AdminDown => 0,
            BfdState::Down => 1,
            BfdState::Init => 2,
            BfdState::Up => 3,
        }
    }

    fn from_bits(b: u8) -> BfdState {
        match b & 0x03 {
            0 => BfdState::AdminDown,
            1 => BfdState::Down,
            2 => BfdState::Init,
            _ => BfdState::Up,
        }
    }
}

/// An RFC 5880 control packet (version 1, no auth).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BfdPacket {
    pub state: BfdState,
    pub poll: bool,
    pub final_: bool,
    pub detect_mult: u8,
    pub my_discriminator: u32,
    pub your_discriminator: u32,
    /// Desired min TX interval, microseconds.
    pub desired_min_tx_us: u32,
    /// Required min RX interval, microseconds.
    pub required_min_rx_us: u32,
}

impl BfdPacket {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BFD_PACKET_LEN);
        out.push(1 << 5); // version 1, diag 0
        let mut b1 = self.state.to_bits() << 6;
        if self.poll {
            b1 |= 0x20;
        }
        if self.final_ {
            b1 |= 0x10;
        }
        out.push(b1);
        out.push(self.detect_mult);
        out.push(BFD_PACKET_LEN as u8);
        out.extend_from_slice(&self.my_discriminator.to_be_bytes());
        out.extend_from_slice(&self.your_discriminator.to_be_bytes());
        out.extend_from_slice(&self.desired_min_tx_us.to_be_bytes());
        out.extend_from_slice(&self.required_min_rx_us.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes()); // required min echo RX
        out
    }

    pub fn decode(buf: &[u8]) -> Result<BfdPacket, WireError> {
        if buf.len() < BFD_PACKET_LEN {
            return Err(WireError::Truncated);
        }
        let version = buf[0] >> 5;
        if version != 1 {
            return Err(WireError::BadVersion(version));
        }
        let declared = buf[3] as usize;
        if declared < BFD_PACKET_LEN || declared > buf.len() {
            return Err(WireError::BadLength { expected: declared, got: buf.len() });
        }
        Ok(BfdPacket {
            state: BfdState::from_bits(buf[1] >> 6),
            poll: buf[1] & 0x20 != 0,
            final_: buf[1] & 0x10 != 0,
            detect_mult: buf[2],
            my_discriminator: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            your_discriminator: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            desired_min_tx_us: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            required_min_rx_us: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::l2_wire_len;
    use crate::ipv4::IPV4_HEADER_LEN;
    use crate::udp::UDP_HEADER_LEN;

    fn pkt(state: BfdState) -> BfdPacket {
        BfdPacket {
            state,
            poll: false,
            final_: false,
            detect_mult: 3,
            my_discriminator: 0x11223344,
            your_discriminator: 0x55667788,
            desired_min_tx_us: 100_000,
            required_min_rx_us: 100_000,
        }
    }

    #[test]
    fn packet_is_24_bytes_and_frame_is_66() {
        let bytes = pkt(BfdState::Up).encode();
        assert_eq!(bytes.len(), BFD_PACKET_LEN);
        assert_eq!(
            l2_wire_len(IPV4_HEADER_LEN + UDP_HEADER_LEN + bytes.len()),
            66,
            "must match the paper's Fig. 9 capture"
        );
    }

    #[test]
    fn roundtrip_all_states() {
        for s in [BfdState::AdminDown, BfdState::Down, BfdState::Init, BfdState::Up] {
            let p = pkt(s);
            assert_eq!(BfdPacket::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn poll_final_flags_roundtrip() {
        let mut p = pkt(BfdState::Init);
        p.poll = true;
        p.final_ = true;
        let d = BfdPacket::decode(&p.encode()).unwrap();
        assert!(d.poll && d.final_);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = pkt(BfdState::Up).encode();
        bytes[0] = 0x40; // version 2
        assert_eq!(BfdPacket::decode(&bytes), Err(WireError::BadVersion(2)));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(BfdPacket::decode(&[0; 23]), Err(WireError::Truncated));
    }
}
