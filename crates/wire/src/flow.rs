//! Flow hashing for equal-cost load balancing.
//!
//! Both MR-MTP's "hash algorithm to load balance traffic from a downstream
//! router to upstream routers" and the BGP/ECMP data plane pick among
//! equal candidates with the same deterministic FNV-1a hash over the IP
//! 5-tuple. Sharing one function lets the experiment harness choose
//! generator ports so the monitored flow transits the failure chain
//! (ToR₁₁ → S1_1 → S2_1), exactly as the paper's test design requires.

use crate::ipv4::{IpAddr4, Ipv4Packet, IPPROTO_TCP, IPPROTO_UDP};

/// FNV-1a over the 5-tuple.
pub fn flow_hash(src: IpAddr4, dst: IpAddr4, proto: u8, src_port: u16, dst_port: u16) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in src.0.to_be_bytes() {
        eat(b);
    }
    for b in dst.0.to_be_bytes() {
        eat(b);
    }
    eat(proto);
    for b in src_port.to_be_bytes() {
        eat(b);
    }
    for b in dst_port.to_be_bytes() {
        eat(b);
    }
    h
}

/// Flow hash of an already-parsed IPv4 packet (ports extracted from the
/// first four payload bytes for TCP/UDP, zero otherwise).
pub fn flow_hash_of(pkt: &Ipv4Packet) -> u64 {
    let (sp, dp) = if (pkt.protocol == IPPROTO_TCP || pkt.protocol == IPPROTO_UDP)
        && pkt.payload.len() >= 4
    {
        (
            u16::from_be_bytes([pkt.payload[0], pkt.payload[1]]),
            u16::from_be_bytes([pkt.payload[2], pkt.payload[3]]),
        )
    } else {
        (0, 0)
    };
    flow_hash(pkt.src, pkt.dst, pkt.protocol, sp, dp)
}

/// Pick an index into `n` equal-cost candidates for a given flow hash.
#[inline]
pub fn ecmp_index(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    (hash % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_tuple_sensitive() {
        let a = IpAddr4::new(192, 168, 11, 1);
        let b = IpAddr4::new(192, 168, 14, 1);
        let h1 = flow_hash(a, b, IPPROTO_UDP, 5000, 6000);
        assert_eq!(h1, flow_hash(a, b, IPPROTO_UDP, 5000, 6000));
        assert_ne!(h1, flow_hash(a, b, IPPROTO_UDP, 5001, 6000));
        assert_ne!(h1, flow_hash(b, a, IPPROTO_UDP, 5000, 6000));
    }

    #[test]
    fn hash_of_packet_reads_l4_ports() {
        let mut payload = vec![0u8; 8];
        payload[0..2].copy_from_slice(&5000u16.to_be_bytes());
        payload[2..4].copy_from_slice(&6000u16.to_be_bytes());
        let pkt = Ipv4Packet::new(
            IpAddr4::new(1, 1, 1, 1),
            IpAddr4::new(2, 2, 2, 2),
            IPPROTO_UDP,
            payload,
        );
        assert_eq!(
            flow_hash_of(&pkt),
            flow_hash(pkt.src, pkt.dst, IPPROTO_UDP, 5000, 6000)
        );
    }

    #[test]
    fn ecmp_index_in_range_and_spread() {
        let a = IpAddr4::new(10, 0, 0, 1);
        let b = IpAddr4::new(10, 0, 0, 2);
        let mut hits = [0u32; 4];
        for sp in 0..4000u16 {
            let h = flow_hash(a, b, IPPROTO_UDP, sp, 80);
            hits[ecmp_index(h, 4)] += 1;
        }
        for &c in &hits {
            assert!(c > 700, "ECMP should spread flows roughly evenly: {hits:?}");
        }
    }
}
