//! TCP segments.
//!
//! Linux BGP sessions negotiate the timestamp option, so every segment
//! carries 12 bytes of options (NOP, NOP, timestamp). That is what makes
//! the paper's captured BGP keepalive frame 85 bytes (14 eth + 20 IP +
//! 32 TCP + 19 BGP); this encoder reproduces it.

use crate::error::WireError;
use crate::framebuf::FrameBuf;

/// TCP base header length (without options).
pub const TCP_HEADER_LEN: usize = 20;

/// Length of the always-emitted options block (NOP + NOP + 10-byte
/// timestamp option).
pub const TCP_OPTIONS_LEN: usize = 12;

/// TCP flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);

    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

/// A TCP segment with the fixed 12-byte option block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    /// Timestamp value carried in the option (the emulator stores
    /// simulated milliseconds here; real stacks store jiffies).
    pub ts_val: u32,
    pub ts_ecr: u32,
    /// Shared payload bytes: retransmission queues and the emitted
    /// segment reference the same allocation.
    pub payload: FrameBuf,
}

impl TcpSegment {
    /// Total header length including options.
    pub const fn header_len() -> usize {
        TCP_HEADER_LEN + TCP_OPTIONS_LEN
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::header_len() + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let data_offset_words = (Self::header_len() / 4) as u8; // 8
        out.push(data_offset_words << 4);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum: unused over the emulator
        out.extend_from_slice(&[0, 0]); // urgent pointer
        // Options: NOP, NOP, TS(kind=8, len=10, val, ecr).
        out.push(1);
        out.push(1);
        out.push(8);
        out.push(10);
        out.extend_from_slice(&self.ts_val.to_be_bytes());
        out.extend_from_slice(&self.ts_ecr.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<TcpSegment, WireError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_offset = ((buf[12] >> 4) as usize) * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > buf.len() {
            return Err(WireError::BadLength { expected: data_offset, got: buf.len() });
        }
        // Parse the timestamp option if present (we always emit it, but
        // accept segments without).
        let mut ts_val = 0;
        let mut ts_ecr = 0;
        let mut opts = &buf[TCP_HEADER_LEN..data_offset];
        while let Some(&kind) = opts.first() {
            match kind {
                0 => break,
                1 => opts = &opts[1..],
                8 if opts.len() >= 10 => {
                    ts_val = u32::from_be_bytes([opts[2], opts[3], opts[4], opts[5]]);
                    ts_ecr = u32::from_be_bytes([opts[6], opts[7], opts[8], opts[9]]);
                    opts = &opts[10..];
                }
                _ => {
                    let len = *opts.get(1).ok_or(WireError::Truncated)? as usize;
                    if len < 2 || len > opts.len() {
                        return Err(WireError::Truncated);
                    }
                    opts = &opts[len..];
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            ts_val,
            ts_ecr,
            payload: FrameBuf::from(&buf[data_offset..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(payload: Vec<u8>) -> TcpSegment {
        let payload = FrameBuf::new(payload);
        TcpSegment {
            src_port: 44321,
            dst_port: 179,
            seq: 1000,
            ack: 2000,
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 65535,
            ts_val: 123,
            ts_ecr: 456,
            payload,
        }
    }

    #[test]
    fn roundtrip_with_options() {
        let s = seg(vec![0xFF; 19]);
        let bytes = s.encode();
        assert_eq!(bytes.len(), 32 + 19);
        assert_eq!(TcpSegment::decode(&bytes).unwrap(), s);
    }

    #[test]
    fn header_is_32_bytes() {
        assert_eq!(TcpSegment::header_len(), 32);
        let s = seg(vec![]);
        assert_eq!(s.encode().len(), 32);
    }

    #[test]
    fn flags_algebra() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(TcpSegment::decode(&[0; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn decode_without_timestamp_option() {
        // Hand-build a 20-byte-header segment.
        let mut b = seg(vec![1, 2, 3]).encode();
        // Rewrite data offset to 5 words and strip the options.
        b[12] = 5 << 4;
        let no_opts: Vec<u8> = b[..20].iter().chain(&b[32..]).copied().collect();
        let s = TcpSegment::decode(&no_opts).unwrap();
        assert_eq!(s.payload.as_slice(), &[1, 2, 3]);
        assert_eq!(s.ts_val, 0);
    }
}
