//! # dcn-wire — byte-accurate packet formats
//!
//! Wire formats for every protocol appearing in the paper's captures:
//!
//! | Layer | Format | Where the paper shows it |
//! |---|---|---|
//! | L2 | Ethernet II | Figs. 9–10 (captures) |
//! | L3 | IPv4 (with real header checksum) | BGP/BFD transport |
//! | L4 | UDP | BFD (RFC 5880 carries BFD in UDP/3784) |
//! | L4 | TCP (with 12-byte timestamp options) | BGP sessions — yields the 85-byte keepalive frame of Fig. 9 |
//! | app | BGP OPEN/UPDATE/KEEPALIVE/NOTIFICATION | Fig. 6 control overhead |
//! | app | BFD control packet (24 bytes → 66-byte frame) | Fig. 9 |
//! | app | MR-MTP messages (EtherType 0x8850, 1-byte hello `0x06`) | Fig. 10 |
//!
//! Byte sizes matter here: the paper's control-overhead and keep-alive
//! figures are byte counts of captured frames, so encoders produce the
//! exact on-wire layouts and decoders validate them. Round-trip encoding
//! is covered by unit tests and proptest generators.

pub mod bfd;
pub mod bgp;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod framebuf;
pub mod ipv4;
pub mod meta;
pub mod mrmtp;
pub mod tcp;
pub mod udp;
pub mod vxlan;

pub use bfd::{BfdPacket, BfdState, BFD_CTRL_PORT, BFD_PACKET_LEN};
pub use bgp::{BgpMessage, BgpUpdate, BGP_HEADER_LEN, BGP_PORT};
pub use error::WireError;
pub use ethernet::{
    l2_wire_len, EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN, MIN_FRAME_LEN,
};
pub use flow::{ecmp_index, flow_hash, flow_hash_of};
pub use framebuf::FrameBuf;
pub use ipv4::{
    internet_checksum, IpAddr4, Ipv4Packet, Prefix, IPPROTO_TCP, IPPROTO_UDP, IPV4_HEADER_LEN,
};
pub use meta::FrameMeta;
pub use mrmtp::{MrmtpMsg, Vid, MRMTP_ETHERTYPE, MRMTP_HELLO_BYTE, VID_MAX_LEN};
pub use tcp::{TcpFlags, TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};
pub use vxlan::{VxlanHeader, VXLAN_HEADER_LEN, VXLAN_PORT};
