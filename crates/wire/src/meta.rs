//! Parse-once frame metadata.
//!
//! Every data frame used to be re-parsed at every hop: Ethernet header,
//! then IPv4 (checksum validated, payload copied), then — for MR-MTP —
//! the encapsulation header, all to recover a handful of fields the
//! sender knew when it encoded the frame. [`FrameMeta`] is that handful,
//! carried *alongside* the immutable frame bytes through the emulator's
//! delivery path: the encoder attaches it, every hop reads it, and the
//! wire bytes stay the single source of truth.
//!
//! Metadata is strictly advisory and only ever attached by the encoder
//! that produced the frame, so it is truthful by construction. The one
//! in-flight mutation the emulator performs — impairment byte corruption
//! — drops the metadata, forcing the receiver back onto the validating
//! decode path. A receiver with its fast path disabled ignores metadata
//! entirely; behavior (and therefore the trace digest) is identical
//! either way.

use crate::ipv4::IpAddr4;

/// Parsed-at-encode metadata for one frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameMeta {
    /// An MR-MTP keep-alive (the paper's single `0x06` byte).
    MrmtpHello,
    /// An MR-MTP `Data` frame: an IPv4 packet encapsulated with source
    /// and destination ToR VIDs.
    MrmtpData {
        /// Root id of the destination ToR's tree (`dst` VID root).
        dst_root: u8,
        /// The 16-bit flow hash carried in the MR-MTP header.
        flow: u16,
        /// Offset of the encapsulated IPv4 packet from the frame start.
        payload_off: u16,
        /// Destination address of the inner IPv4 packet (for terminal
        /// host delivery without re-parsing the inner header).
        ip_dst: IpAddr4,
        /// Loop guard for local fast reroute: set by the hop that
        /// rerouted this packet around a locally-dead port. A repaired
        /// packet is never repaired again at a later hop; downstream
        /// hops forward it with plain (off-mode) candidate selection.
        /// Always `false` when the `local_repair` knob is off — off-mode
        /// metadata is bit-identical to the pre-repair encoding.
        repaired: bool,
    },
    /// A plain IPv4 data frame (header at [`crate::ETHERNET_HEADER_LEN`]).
    Ipv4Data {
        /// IPv4 destination address.
        dst: IpAddr4,
        /// Full 64-bit [`crate::flow_hash_of`] of the packet. The hash
        /// covers only the 5-tuple — never TTL or checksum — so it is
        /// stable across hops.
        flow: u64,
        /// Current TTL. Each forwarding hop that rewrites the TTL in the
        /// frame bytes attaches fresh metadata with the decremented value.
        ttl: u8,
        /// Loop guard for local fast reroute (see
        /// [`FrameMeta::MrmtpData::repaired`]): at most one repair per
        /// packet, ever.
        repaired: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_small_and_copy() {
        // The metadata rides in every queued Deliver event; keep it lean.
        assert!(std::mem::size_of::<FrameMeta>() <= 24);
        let m =
            FrameMeta::Ipv4Data { dst: IpAddr4::new(10, 0, 0, 1), flow: 7, ttl: 64, repaired: false };
        let n = m; // Copy
        assert_eq!(m, n);
    }
}
