//! UDP datagrams (carrier for BFD and for the traffic generator).

use crate::error::WireError;

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram. The checksum field is emitted as zero ("no checksum"),
/// which is legal for IPv4 and what matters here is the byte count, not
/// end-to-end integrity (the emulator does not corrupt frames).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> UdpDatagram {
        UdpDatagram { src_port, dst_port, payload }
    }

    pub fn encode(&self) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum: not used over the emulator
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<UdpDatagram, WireError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if len < UDP_HEADER_LEN || len > buf.len() {
            return Err(WireError::BadLength { expected: len, got: buf.len() });
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: buf[UDP_HEADER_LEN..len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(49152, 3784, vec![1, 2, 3, 4]);
        let bytes = d.encode();
        assert_eq!(bytes.len(), 12);
        assert_eq!(UdpDatagram::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(UdpDatagram::decode(&[0; 7]), Err(WireError::Truncated));
    }

    #[test]
    fn inconsistent_length_rejected() {
        let mut bytes = UdpDatagram::new(1, 2, vec![0; 4]).encode();
        bytes[5] = 200; // claims 200 bytes
        assert!(matches!(
            UdpDatagram::decode(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn trailing_padding_trimmed() {
        let mut bytes = UdpDatagram::new(1, 2, vec![7; 3]).encode();
        bytes.extend_from_slice(&[0; 40]);
        assert_eq!(UdpDatagram::decode(&bytes).unwrap().payload, vec![7; 3]);
    }
}
