//! IPv4 header encoding with a real Internet checksum, plus the address
//! and prefix types used across the workspace.

use crate::error::WireError;

/// IPv4 header length without options (this implementation never emits
/// options).
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// An IPv4 address stored as a big-endian u32.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IpAddr4(pub u32);

impl IpAddr4 {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> IpAddr4 {
        IpAddr4(u32::from_be_bytes([a, b, c, d]))
    }

    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The third byte of the dotted quad — the field MR-MTP's ToR VID
    /// derivation algorithm reads (192.168.**11**.0/24 → VID 11).
    pub fn third_octet(self) -> u8 {
        self.octets()[2]
    }
}

impl std::fmt::Display for IpAddr4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl std::str::FromStr for IpAddr4 {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, WireError> {
        let mut parts = s.split('.');
        let mut oct = [0u8; 4];
        for o in oct.iter_mut() {
            *o = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or(WireError::Invalid)?;
        }
        if parts.next().is_some() {
            return Err(WireError::Invalid);
        }
        Ok(IpAddr4(u32::from_be_bytes(oct)))
    }
}

/// An IPv4 prefix (`addr/len`). The host bits of `addr` are kept as given;
/// [`Prefix::normalized`] zeroes them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Prefix {
    pub addr: IpAddr4,
    pub len: u8,
}

impl Prefix {
    pub fn new(addr: IpAddr4, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length out of range");
        Prefix { addr, len }
    }

    pub fn mask(self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len as u32)
        }
    }

    /// This prefix with host bits cleared.
    pub fn normalized(self) -> Prefix {
        Prefix { addr: IpAddr4(self.addr.0 & self.mask()), len: self.len }
    }

    /// Does `ip` fall inside this prefix?
    pub fn contains(self, ip: IpAddr4) -> bool {
        (ip.0 & self.mask()) == (self.addr.0 & self.mask())
    }

    /// Bytes needed to encode the prefix address in BGP NLRI form.
    pub fn nlri_addr_bytes(self) -> usize {
        self.len.div_ceil(8) as usize
    }

    /// Encoded NLRI size (length octet + truncated address).
    pub fn nlri_len(self) -> usize {
        1 + self.nlri_addr_bytes()
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// RFC 1071 Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// An IPv4 packet (header without options + payload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Packet {
    pub src: IpAddr4,
    pub dst: IpAddr4,
    pub protocol: u8,
    pub ttl: u8,
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    pub fn new(src: IpAddr4, dst: IpAddr4, protocol: u8, payload: Vec<u8>) -> Ipv4Packet {
        Ipv4Packet { src, dst, protocol, ttl: 64, payload }
    }

    pub fn encode(&self) -> Vec<u8> {
        let total_len = (IPV4_HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(total_len as usize);
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // identification
        out.extend_from_slice(&[0x40, 0]); // DF, no fragment offset
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.0.to_be_bytes());
        out.extend_from_slice(&self.dst.0.to_be_bytes());
        let csum = internet_checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Ipv4Packet, WireError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::BadVersion(version));
        }
        let ihl = (buf[0] & 0x0F) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            // We never emit options; reject rather than mis-parse.
            return Err(WireError::BadLength { expected: IPV4_HEADER_LEN, got: ihl });
        }
        if internet_checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < IPV4_HEADER_LEN || total_len > buf.len() {
            return Err(WireError::BadLength { expected: total_len, got: buf.len() });
        }
        Ok(Ipv4Packet {
            src: IpAddr4(u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]])),
            dst: IpAddr4(u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]])),
            protocol: buf[9],
            ttl: buf[8],
            payload: buf[IPV4_HEADER_LEN..total_len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_parse_roundtrip() {
        let a = IpAddr4::new(192, 168, 11, 1);
        assert_eq!(a.to_string(), "192.168.11.1");
        assert_eq!("192.168.11.1".parse::<IpAddr4>().unwrap(), a);
        assert_eq!(a.third_octet(), 11);
        assert!("192.168.11".parse::<IpAddr4>().is_err());
        assert!("1.2.3.4.5".parse::<IpAddr4>().is_err());
        assert!("a.b.c.d".parse::<IpAddr4>().is_err());
    }

    #[test]
    fn prefix_contains_and_mask() {
        let p = Prefix::new(IpAddr4::new(192, 168, 11, 0), 24);
        assert!(p.contains(IpAddr4::new(192, 168, 11, 200)));
        assert!(!p.contains(IpAddr4::new(192, 168, 12, 1)));
        assert_eq!(p.mask(), 0xFFFF_FF00);
        assert_eq!(Prefix::new(IpAddr4(0), 0).mask(), 0);
        assert!(Prefix::new(IpAddr4(0), 0).contains(IpAddr4::new(8, 8, 8, 8)));
        assert_eq!(p.nlri_len(), 4);
        assert_eq!(Prefix::new(IpAddr4(0), 0).nlri_len(), 1);
        assert_eq!(Prefix::new(IpAddr4(0), 32).nlri_len(), 5);
    }

    #[test]
    fn normalized_clears_host_bits() {
        let p = Prefix::new(IpAddr4::new(10, 1, 2, 3), 16).normalized();
        assert_eq!(p.addr, IpAddr4::new(10, 1, 0, 0));
    }

    #[test]
    fn checksum_of_valid_header_is_zero() {
        let p = Ipv4Packet::new(
            IpAddr4::new(172, 16, 0, 1),
            IpAddr4::new(172, 16, 0, 2),
            IPPROTO_TCP,
            vec![1, 2, 3],
        );
        let bytes = p.encode();
        assert_eq!(internet_checksum(&bytes[..IPV4_HEADER_LEN]), 0);
        let q = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn corrupted_header_rejected() {
        let p = Ipv4Packet::new(IpAddr4(1), IpAddr4(2), IPPROTO_UDP, vec![]);
        let mut bytes = p.encode();
        bytes[8] ^= 0xFF; // flip TTL
        assert_eq!(Ipv4Packet::decode(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn rfc1071_known_vector() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_checksum() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn decode_respects_total_length_field() {
        let p = Ipv4Packet::new(IpAddr4(1), IpAddr4(2), IPPROTO_UDP, vec![9; 10]);
        let mut bytes = p.encode();
        // Pad as an Ethernet NIC would; decode must trim to total_len.
        bytes.extend_from_slice(&[0u8; 30]);
        let q = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(q.payload, vec![9; 10]);
    }
}
