//! BGP-4 message encoding (RFC 4271 framing, 4-byte AS numbers in
//! AS_PATH per RFC 6793, as FRRouting emits for an RFC 7938 datacenter
//! deployment).
//!
//! The encoding is complete enough that the paper's byte-count metrics are
//! faithful: a KEEPALIVE is 19 bytes, an UPDATE carries real withdrawn-
//! routes / path-attribute / NLRI sections whose sizes scale with prefix
//! and AS-path counts exactly as on a real wire.

use crate::error::WireError;
use crate::ipv4::{IpAddr4, Prefix};

/// BGP listens on TCP/179.
pub const BGP_PORT: u16 = 179;

/// Fixed header: 16-byte marker + 2-byte length + 1-byte type.
pub const BGP_HEADER_LEN: usize = 19;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

/// The body of an UPDATE message.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BgpUpdate {
    /// Prefixes withdrawn from service.
    pub withdrawn: Vec<Prefix>,
    /// AS_PATH for the advertised NLRI (empty and absent when only
    /// withdrawing).
    pub as_path: Vec<u32>,
    /// NEXT_HOP for the advertised NLRI.
    pub next_hop: Option<IpAddr4>,
    /// Newly advertised prefixes.
    pub nlri: Vec<Prefix>,
}

/// A BGP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMessage {
    Open {
        asn: u16,
        hold_time_secs: u16,
        router_id: u32,
    },
    Update(BgpUpdate),
    Notification {
        code: u8,
        subcode: u8,
    },
    Keepalive,
}

fn put_prefix(out: &mut Vec<u8>, p: Prefix) {
    out.push(p.len);
    let bytes = p.addr.0.to_be_bytes();
    out.extend_from_slice(&bytes[..p.nlri_addr_bytes()]);
}

fn get_prefix(buf: &[u8]) -> Result<(Prefix, usize), WireError> {
    let len = *buf.first().ok_or(WireError::Truncated)?;
    if len > 32 {
        return Err(WireError::Invalid);
    }
    let nbytes = len.div_ceil(8) as usize;
    if buf.len() < 1 + nbytes {
        return Err(WireError::Truncated);
    }
    let mut addr = [0u8; 4];
    addr[..nbytes].copy_from_slice(&buf[1..1 + nbytes]);
    Ok((Prefix::new(IpAddr4(u32::from_be_bytes(addr)), len), 1 + nbytes))
}

impl BgpMessage {
    /// Encode to the full wire message (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0xFF; 16]; // marker
        out.extend_from_slice(&[0, 0]); // length placeholder
        match self {
            BgpMessage::Open { asn, hold_time_secs, router_id } => {
                out.push(TYPE_OPEN);
                out.push(4); // version
                out.extend_from_slice(&asn.to_be_bytes());
                out.extend_from_slice(&hold_time_secs.to_be_bytes());
                out.extend_from_slice(&router_id.to_be_bytes());
                out.push(0); // no optional parameters
            }
            BgpMessage::Keepalive => out.push(TYPE_KEEPALIVE),
            BgpMessage::Notification { code, subcode } => {
                out.push(TYPE_NOTIFICATION);
                out.push(*code);
                out.push(*subcode);
            }
            BgpMessage::Update(u) => {
                out.push(TYPE_UPDATE);
                // Withdrawn routes section.
                let wstart = out.len();
                out.extend_from_slice(&[0, 0]);
                for p in &u.withdrawn {
                    put_prefix(&mut out, *p);
                }
                let wlen = (out.len() - wstart - 2) as u16;
                out[wstart..wstart + 2].copy_from_slice(&wlen.to_be_bytes());
                // Path attributes section.
                let astart = out.len();
                out.extend_from_slice(&[0, 0]);
                if !u.nlri.is_empty() {
                    // ORIGIN = IGP.
                    out.extend_from_slice(&[0x40, 1, 1, 0]);
                    // AS_PATH: one AS_SEQUENCE of 4-byte ASNs.
                    let path_len = (2 + 4 * u.as_path.len()) as u8;
                    out.extend_from_slice(&[0x40, 2, path_len, 2, u.as_path.len() as u8]);
                    for asn in &u.as_path {
                        out.extend_from_slice(&asn.to_be_bytes());
                    }
                    // NEXT_HOP.
                    let nh = u.next_hop.expect("advertised NLRI requires a next hop");
                    out.extend_from_slice(&[0x40, 3, 4]);
                    out.extend_from_slice(&nh.0.to_be_bytes());
                }
                let alen = (out.len() - astart - 2) as u16;
                out[astart..astart + 2].copy_from_slice(&alen.to_be_bytes());
                // NLRI.
                for p in &u.nlri {
                    put_prefix(&mut out, *p);
                }
            }
        }
        let len = out.len() as u16;
        out[16..18].copy_from_slice(&len.to_be_bytes());
        out
    }

    /// Decode one message from the front of `buf`; returns the message and
    /// the number of bytes consumed. `buf` may contain a partial message
    /// (returns [`WireError::Truncated`]) or several back-to-back messages
    /// (a TCP stream), in which case call again with the remainder.
    pub fn decode(buf: &[u8]) -> Result<(BgpMessage, usize), WireError> {
        if buf.len() < BGP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if buf[..16].iter().any(|&b| b != 0xFF) {
            return Err(WireError::Invalid);
        }
        let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if len < BGP_HEADER_LEN {
            return Err(WireError::BadLength { expected: BGP_HEADER_LEN, got: len });
        }
        if buf.len() < len {
            return Err(WireError::Truncated);
        }
        let body = &buf[BGP_HEADER_LEN..len];
        let msg = match buf[18] {
            TYPE_KEEPALIVE => BgpMessage::Keepalive,
            TYPE_NOTIFICATION => {
                if body.len() < 2 {
                    return Err(WireError::Truncated);
                }
                BgpMessage::Notification { code: body[0], subcode: body[1] }
            }
            TYPE_OPEN => {
                if body.len() < 10 {
                    return Err(WireError::Truncated);
                }
                if body[0] != 4 {
                    return Err(WireError::BadVersion(body[0]));
                }
                BgpMessage::Open {
                    asn: u16::from_be_bytes([body[1], body[2]]),
                    hold_time_secs: u16::from_be_bytes([body[3], body[4]]),
                    router_id: u32::from_be_bytes([body[5], body[6], body[7], body[8]]),
                }
            }
            TYPE_UPDATE => {
                let mut u = BgpUpdate::default();
                if body.len() < 2 {
                    return Err(WireError::Truncated);
                }
                let wlen = u16::from_be_bytes([body[0], body[1]]) as usize;
                if body.len() < 2 + wlen + 2 {
                    return Err(WireError::Truncated);
                }
                let mut w = &body[2..2 + wlen];
                while !w.is_empty() {
                    let (p, used) = get_prefix(w)?;
                    u.withdrawn.push(p);
                    w = &w[used..];
                }
                let aoff = 2 + wlen;
                let alen = u16::from_be_bytes([body[aoff], body[aoff + 1]]) as usize;
                if body.len() < aoff + 2 + alen {
                    return Err(WireError::Truncated);
                }
                let mut attrs = &body[aoff + 2..aoff + 2 + alen];
                while attrs.len() >= 3 {
                    let (ty, attr_len, hdr) = (attrs[1], attrs[2] as usize, 3);
                    if attrs.len() < hdr + attr_len {
                        return Err(WireError::Truncated);
                    }
                    let val = &attrs[hdr..hdr + attr_len];
                    match ty {
                        // AS_PATH: segment type, count, 4-byte ASNs.
                        2 if val.len() >= 2 => {
                            let count = val[1] as usize;
                            if val.len() < 2 + 4 * count {
                                return Err(WireError::Truncated);
                            }
                            for i in 0..count {
                                let o = 2 + 4 * i;
                                u.as_path.push(u32::from_be_bytes([
                                    val[o],
                                    val[o + 1],
                                    val[o + 2],
                                    val[o + 3],
                                ]));
                            }
                        }
                        3 => {
                            if val.len() != 4 {
                                return Err(WireError::BadLength { expected: 4, got: val.len() });
                            }
                            u.next_hop =
                                Some(IpAddr4(u32::from_be_bytes([val[0], val[1], val[2], val[3]])));
                        }
                        _ => {} // ORIGIN and anything else: size only
                    }
                    attrs = &attrs[hdr + attr_len..];
                }
                let mut n = &body[aoff + 2 + alen..];
                while !n.is_empty() {
                    let (p, used) = get_prefix(n)?;
                    u.nlri.push(p);
                    n = &n[used..];
                }
                BgpMessage::Update(u)
            }
            other => return Err(WireError::BadType(other)),
        };
        Ok((msg, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u8, b: u8, c: u8, len: u8) -> Prefix {
        Prefix::new(IpAddr4::new(a, b, c, 0), len)
    }

    #[test]
    fn keepalive_is_19_bytes() {
        assert_eq!(BgpMessage::Keepalive.encode().len(), BGP_HEADER_LEN);
    }

    #[test]
    fn open_roundtrip() {
        let m = BgpMessage::Open { asn: 64512, hold_time_secs: 3, router_id: 0x0A000001 };
        let bytes = m.encode();
        assert_eq!(bytes.len(), 29);
        let (d, used) = BgpMessage::decode(&bytes).unwrap();
        assert_eq!(used, 29);
        assert_eq!(d, m);
    }

    #[test]
    fn update_roundtrip_with_both_sections() {
        let m = BgpMessage::Update(BgpUpdate {
            withdrawn: vec![p(192, 168, 11, 24)],
            as_path: vec![64513, 65001],
            next_hop: Some(IpAddr4::new(172, 16, 0, 1)),
            nlri: vec![p(192, 168, 12, 24), p(192, 168, 13, 24)],
        });
        let bytes = m.encode();
        let (d, used) = BgpMessage::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(d, m);
    }

    #[test]
    fn pure_withdraw_is_small() {
        let m = BgpMessage::Update(BgpUpdate {
            withdrawn: vec![p(192, 168, 11, 24)],
            ..Default::default()
        });
        // 19 header + 2 wlen + 4 prefix + 2 attr-len = 27.
        assert_eq!(m.encode().len(), 27);
    }

    #[test]
    fn stream_decoding_consumes_one_message() {
        let mut stream = BgpMessage::Keepalive.encode();
        stream.extend(BgpMessage::Keepalive.encode());
        let (m, used) = BgpMessage::decode(&stream).unwrap();
        assert_eq!(m, BgpMessage::Keepalive);
        assert_eq!(used, 19);
        let (m2, _) = BgpMessage::decode(&stream[used..]).unwrap();
        assert_eq!(m2, BgpMessage::Keepalive);
    }

    #[test]
    fn partial_message_reports_truncated() {
        let bytes = BgpMessage::Keepalive.encode();
        assert_eq!(BgpMessage::decode(&bytes[..10]), Err(WireError::Truncated));
        let open = BgpMessage::Open { asn: 1, hold_time_secs: 3, router_id: 9 }.encode();
        assert_eq!(BgpMessage::decode(&open[..20]), Err(WireError::Truncated));
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[0] = 0;
        assert_eq!(BgpMessage::decode(&bytes), Err(WireError::Invalid));
    }

    #[test]
    fn notification_roundtrip() {
        let m = BgpMessage::Notification { code: 6, subcode: 2 };
        let (d, _) = BgpMessage::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn default_route_encodes_as_single_octet() {
        let m = BgpMessage::Update(BgpUpdate {
            withdrawn: vec![],
            as_path: vec![64512],
            next_hop: Some(IpAddr4::new(172, 16, 0, 1)),
            nlri: vec![Prefix::new(IpAddr4(0), 0)],
        });
        let bytes = m.encode();
        let (d, _) = BgpMessage::decode(&bytes).unwrap();
        assert_eq!(d, m);
    }
}
