//! Decode errors.

use std::fmt;

/// Errors produced when decoding wire formats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Buffer ended before the format was complete.
    Truncated,
    /// A version field had an unsupported value.
    BadVersion(u8),
    /// A type/discriminant field had an unknown value.
    BadType(u8),
    /// A length field disagreed with the actual buffer.
    BadLength { expected: usize, got: usize },
    /// A checksum failed verification.
    BadChecksum,
    /// A field exceeded the limits this implementation supports
    /// (e.g. a VID deeper than [`crate::VID_MAX_LEN`] tiers).
    TooLong,
    /// A well-formed but semantically invalid value (e.g. prefix length
    /// above 32).
    Invalid,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadType(t) => write!(f, "unknown type {t:#x}"),
            WireError::BadLength { expected, got } => {
                write!(f, "bad length: expected {expected}, got {got}")
            }
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::TooLong => write!(f, "field exceeds implementation limit"),
            WireError::Invalid => write!(f, "semantically invalid value"),
        }
    }
}

impl std::error::Error for WireError {}
