//! MR-MTP message formats.
//!
//! MR-MTP messages ride directly in Ethernet frames with the unused
//! EtherType `0x8850` and broadcast destination MAC (safe on point-to-point
//! links; avoids ARP — both per the paper). The keep-alive is a single
//! byte, `0x06`, exactly as in the paper's Fig. 10 capture; we use the
//! message-type octet itself as that byte, so a Hello *is* its type tag.

use crate::error::WireError;

/// EtherType used by MR-MTP frames.
pub const MRMTP_ETHERTYPE: u16 = 0x8850;

/// The single-byte keep-alive payload shown in the paper's capture
/// (`Data: 06`).
pub const MRMTP_HELLO_BYTE: u8 = 0x06;

/// Maximum VID depth supported (= maximum number of tiers). Eight is far
/// beyond any published folded-Clos deployment.
pub const VID_MAX_LEN: usize = 8;

/// A Virtual ID: a dot-separated path of components rooted at a ToR VID,
/// e.g. `11.1.2` = "from ToR 11, via its port 1, via that spine's port 2".
///
/// The VID both names a device's position in one ToR's tree and encodes
/// the loop-free path back to that ToR — the paper's central data
/// structure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vid {
    len: u8,
    comp: [u8; VID_MAX_LEN],
}

impl Vid {
    /// A root VID (a ToR's own VID, derived from its rack subnet's third
    /// octet).
    pub fn root(r: u8) -> Vid {
        let mut comp = [0; VID_MAX_LEN];
        comp[0] = r;
        Vid { len: 1, comp }
    }

    /// Build from explicit components.
    pub fn from_components(components: &[u8]) -> Result<Vid, WireError> {
        if components.is_empty() || components.len() > VID_MAX_LEN {
            return Err(WireError::TooLong);
        }
        let mut comp = [0; VID_MAX_LEN];
        comp[..components.len()].copy_from_slice(components);
        Ok(Vid { len: components.len() as u8, comp })
    }

    /// The VID a parent derives for a child joining on `port_label`
    /// (the paper: "appending the port number on which a request
    /// arrived").
    pub fn child(self, port_label: u8) -> Result<Vid, WireError> {
        if (self.len as usize) >= VID_MAX_LEN {
            return Err(WireError::TooLong);
        }
        let mut v = self;
        v.comp[v.len as usize] = port_label;
        v.len += 1;
        Ok(v)
    }

    /// The ToR VID this VID's tree is rooted at.
    #[inline]
    pub fn root_id(self) -> u8 {
        self.comp[0]
    }

    /// Number of components (= tier depth within the tree).
    #[inline]
    pub fn depth(self) -> usize {
        self.len as usize
    }

    /// The components as a slice.
    pub fn components(&self) -> &[u8] {
        &self.comp[..self.len as usize]
    }

    /// The parent VID (one component shorter), if any.
    pub fn parent(self) -> Option<Vid> {
        if self.len <= 1 {
            None
        } else {
            let mut v = self;
            v.len -= 1;
            v.comp[v.len as usize] = 0;
            Some(v)
        }
    }

    /// Is `self` an ancestor-or-equal of `other` in the same tree?
    pub fn is_prefix_of(self, other: Vid) -> bool {
        self.len <= other.len
            && self.components() == &other.components()[..self.len as usize]
    }
}

impl std::fmt::Display for Vid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Vid {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Vid, WireError> {
        let comps: Result<Vec<u8>, _> = s.split('.').map(|p| p.parse::<u8>()).collect();
        Vid::from_components(&comps.map_err(|_| WireError::Invalid)?)
    }
}

const T_ADVERTISE: u8 = 0x01;
const T_JOIN: u8 = 0x02;
const T_OFFER: u8 = 0x03;
const T_ACCEPT: u8 = 0x04;
const T_UPDATE_ACK: u8 = 0x05;
const T_HELLO: u8 = MRMTP_HELLO_BYTE; // 0x06
const T_LOST: u8 = 0x07;
const T_RECOVERED: u8 = 0x08;
const T_DATA: u8 = 0x09;

/// An MR-MTP message (Ethernet payload).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MrmtpMsg {
    /// Keep-alive: exactly one byte on the wire.
    Hello,
    /// A node announces its tier and the VIDs it can extend to a would-be
    /// child ("The ToR advertises its VID on its upstream ports").
    Advertise { tier: u8, vids: Vec<Vid> },
    /// "Send in a request to join the tree."
    Join { tier: u8 },
    /// Parent offers derived VIDs to the requester. Reliable (`seq`).
    Offer { seq: u16, vids: Vec<Vid> },
    /// Child accepts the offered VIDs (acknowledges `seq`).
    Accept { seq: u16 },
    /// Tree-loss update: the listed root VIDs are no longer reachable
    /// through the sender. Reliable (`seq`).
    Lost { seq: u16, roots: Vec<u8> },
    /// Recovery update: the listed roots are reachable again. Reliable.
    Recovered { seq: u16, roots: Vec<u8> },
    /// Acknowledges a `Lost`/`Recovered` update.
    UpdateAck { seq: u16 },
    /// An encapsulated IP packet: the MR-MTP header carries source and
    /// destination ToR VIDs plus a flow hash for load balancing.
    Data { src: Vid, dst: Vid, flow: u16, payload: Vec<u8> },
}

fn put_vid(out: &mut Vec<u8>, v: Vid) {
    out.push(v.depth() as u8);
    out.extend_from_slice(v.components());
}

fn get_vid(buf: &[u8]) -> Result<(Vid, usize), WireError> {
    let len = *buf.first().ok_or(WireError::Truncated)? as usize;
    if len == 0 || len > VID_MAX_LEN {
        return Err(WireError::TooLong);
    }
    if buf.len() < 1 + len {
        return Err(WireError::Truncated);
    }
    Ok((Vid::from_components(&buf[1..1 + len])?, 1 + len))
}

impl MrmtpMsg {
    /// Encode to the Ethernet payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            MrmtpMsg::Hello => vec![T_HELLO],
            MrmtpMsg::Advertise { tier, vids } => {
                let mut out = vec![T_ADVERTISE, *tier, vids.len() as u8];
                for v in vids {
                    put_vid(&mut out, *v);
                }
                out
            }
            MrmtpMsg::Join { tier } => vec![T_JOIN, *tier],
            MrmtpMsg::Offer { seq, vids } => {
                let mut out = vec![T_OFFER];
                out.extend_from_slice(&seq.to_be_bytes());
                out.push(vids.len() as u8);
                for v in vids {
                    put_vid(&mut out, *v);
                }
                out
            }
            MrmtpMsg::Accept { seq } => {
                let mut out = vec![T_ACCEPT];
                out.extend_from_slice(&seq.to_be_bytes());
                out
            }
            MrmtpMsg::Lost { seq, roots } => Self::encode_update(T_LOST, *seq, roots),
            MrmtpMsg::Recovered { seq, roots } => Self::encode_update(T_RECOVERED, *seq, roots),
            MrmtpMsg::UpdateAck { seq } => {
                let mut out = vec![T_UPDATE_ACK];
                out.extend_from_slice(&seq.to_be_bytes());
                out
            }
            MrmtpMsg::Data { src, dst, flow, payload } => {
                let mut out = vec![T_DATA];
                out.extend_from_slice(&flow.to_be_bytes());
                put_vid(&mut out, *src);
                put_vid(&mut out, *dst);
                out.extend_from_slice(payload);
                out
            }
        }
    }

    /// Append a `Data` message header (type, flow, src VID, dst VID) to
    /// `out`. Following it with the encapsulated IP bytes produces output
    /// byte-identical to `MrmtpMsg::Data { .. }.encode()`, without ever
    /// cloning the payload into the message struct.
    pub fn put_data_header(out: &mut Vec<u8>, src: Vid, dst: Vid, flow: u16) {
        out.push(T_DATA);
        out.extend_from_slice(&flow.to_be_bytes());
        put_vid(out, src);
        put_vid(out, dst);
    }

    /// Encoded length of the header [`Self::put_data_header`] writes.
    pub fn data_header_len(src: Vid, dst: Vid) -> usize {
        1 + 2 + (1 + src.depth()) + (1 + dst.depth())
    }

    fn encode_update(ty: u8, seq: u16, roots: &[u8]) -> Vec<u8> {
        let mut out = vec![ty];
        out.extend_from_slice(&seq.to_be_bytes());
        out.push(roots.len() as u8);
        out.extend_from_slice(roots);
        out
    }

    /// Decode from the Ethernet payload bytes. Trailing padding (frames
    /// are padded to 60 bytes on the wire) is tolerated for fixed-size
    /// messages and for `Data` (whose inner IP packet carries its own
    /// length).
    pub fn decode(buf: &[u8]) -> Result<MrmtpMsg, WireError> {
        let ty = *buf.first().ok_or(WireError::Truncated)?;
        let b = &buf[1..];
        match ty {
            T_HELLO => Ok(MrmtpMsg::Hello),
            T_JOIN => {
                let tier = *b.first().ok_or(WireError::Truncated)?;
                Ok(MrmtpMsg::Join { tier })
            }
            T_ADVERTISE => {
                if b.len() < 2 {
                    return Err(WireError::Truncated);
                }
                let tier = b[0];
                let count = b[1] as usize;
                let mut vids = Vec::with_capacity(count);
                let mut rest = &b[2..];
                for _ in 0..count {
                    let (v, used) = get_vid(rest)?;
                    vids.push(v);
                    rest = &rest[used..];
                }
                Ok(MrmtpMsg::Advertise { tier, vids })
            }
            T_OFFER => {
                if b.len() < 3 {
                    return Err(WireError::Truncated);
                }
                let seq = u16::from_be_bytes([b[0], b[1]]);
                let count = b[2] as usize;
                let mut vids = Vec::with_capacity(count);
                let mut rest = &b[3..];
                for _ in 0..count {
                    let (v, used) = get_vid(rest)?;
                    vids.push(v);
                    rest = &rest[used..];
                }
                Ok(MrmtpMsg::Offer { seq, vids })
            }
            T_ACCEPT => {
                if b.len() < 2 {
                    return Err(WireError::Truncated);
                }
                Ok(MrmtpMsg::Accept { seq: u16::from_be_bytes([b[0], b[1]]) })
            }
            T_UPDATE_ACK => {
                if b.len() < 2 {
                    return Err(WireError::Truncated);
                }
                Ok(MrmtpMsg::UpdateAck { seq: u16::from_be_bytes([b[0], b[1]]) })
            }
            T_LOST | T_RECOVERED => {
                if b.len() < 3 {
                    return Err(WireError::Truncated);
                }
                let seq = u16::from_be_bytes([b[0], b[1]]);
                let count = b[2] as usize;
                if b.len() < 3 + count {
                    return Err(WireError::Truncated);
                }
                let roots = b[3..3 + count].to_vec();
                Ok(if ty == T_LOST {
                    MrmtpMsg::Lost { seq, roots }
                } else {
                    MrmtpMsg::Recovered { seq, roots }
                })
            }
            T_DATA => {
                if b.len() < 2 {
                    return Err(WireError::Truncated);
                }
                let flow = u16::from_be_bytes([b[0], b[1]]);
                let (src, used1) = get_vid(&b[2..])?;
                let (dst, used2) = get_vid(&b[2 + used1..])?;
                Ok(MrmtpMsg::Data {
                    src,
                    dst,
                    flow,
                    payload: b[2 + used1 + used2..].to_vec(),
                })
            }
            other => Err(WireError::BadType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_is_exactly_the_papers_single_byte() {
        let bytes = MrmtpMsg::Hello.encode();
        assert_eq!(bytes, vec![0x06]);
        assert_eq!(MrmtpMsg::decode(&bytes).unwrap(), MrmtpMsg::Hello);
        // Padded as on the wire: still decodes as Hello.
        let mut padded = bytes;
        padded.resize(46, 0);
        assert_eq!(MrmtpMsg::decode(&padded).unwrap(), MrmtpMsg::Hello);
    }

    #[test]
    fn vid_derivation_matches_fig2() {
        // ToR 11's port 1 offer to S1_1, then S1_1's port 1 offer to S2_1.
        let tor = Vid::root(11);
        let s1_1 = tor.child(1).unwrap();
        let s2_1 = s1_1.child(1).unwrap();
        assert_eq!(s1_1.to_string(), "11.1");
        assert_eq!(s2_1.to_string(), "11.1.1");
        assert_eq!(s2_1.root_id(), 11);
        assert_eq!(s2_1.parent(), Some(s1_1));
        assert!(tor.is_prefix_of(s2_1));
        assert!(!s2_1.is_prefix_of(tor));
        assert_eq!(tor.parent(), None);
    }

    #[test]
    fn vid_parse_display_roundtrip() {
        let v: Vid = "14.2.2".parse().unwrap();
        assert_eq!(v.components(), &[14, 2, 2]);
        assert_eq!(v.to_string(), "14.2.2");
        assert!("".parse::<Vid>().is_err());
        assert!("1.2.3.4.5.6.7.8.9".parse::<Vid>().is_err());
        assert!("300.1".parse::<Vid>().is_err());
    }

    #[test]
    fn vid_depth_limit_enforced() {
        let mut v = Vid::root(1);
        for i in 0..(VID_MAX_LEN - 1) {
            v = v.child(i as u8 + 1).unwrap();
        }
        assert_eq!(v.depth(), VID_MAX_LEN);
        assert_eq!(v.child(9), Err(WireError::TooLong));
    }

    #[test]
    fn all_messages_roundtrip() {
        let v1: Vid = "11.1".parse().unwrap();
        let v2: Vid = "12.1".parse().unwrap();
        let msgs = vec![
            MrmtpMsg::Hello,
            MrmtpMsg::Advertise { tier: 2, vids: vec![v1, v2] },
            MrmtpMsg::Join { tier: 3 },
            MrmtpMsg::Offer { seq: 7, vids: vec![v1.child(2).unwrap()] },
            MrmtpMsg::Accept { seq: 7 },
            MrmtpMsg::Lost { seq: 9, roots: vec![11, 12] },
            MrmtpMsg::Recovered { seq: 10, roots: vec![11] },
            MrmtpMsg::UpdateAck { seq: 9 },
            MrmtpMsg::Data {
                src: Vid::root(11),
                dst: Vid::root(14),
                flow: 0xBEEF,
                payload: vec![1, 2, 3],
            },
        ];
        for m in msgs {
            assert_eq!(MrmtpMsg::decode(&m.encode()).unwrap(), m, "roundtrip {m:?}");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(MrmtpMsg::decode(&[0xEE]), Err(WireError::BadType(0xEE)));
        assert_eq!(MrmtpMsg::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn update_sizes_are_small() {
        // A lost-root update for one root: 1 type + 2 seq + 1 count + 1
        // root = 5 bytes payload → one minimum-size 60-byte frame. This is
        // the economy behind the paper's Fig. 6 gap vs BGP.
        let m = MrmtpMsg::Lost { seq: 1, roots: vec![11] };
        assert_eq!(m.encode().len(), 5);
    }
}
