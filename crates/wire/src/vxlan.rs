//! VXLAN encapsulation (RFC 7348).
//!
//! The paper's §III-A assumes VXLAN for inter-rack VM communication: VM
//! traffic rides in an outer IP header carrying the *server* addresses,
//! which is what MR-MTP's ToR VID derivation operates on. This module
//! provides the 8-byte VXLAN header (over UDP/4789) so the overlay can be
//! demonstrated end to end (see the `vxlan_overlay` example).

use crate::error::WireError;

/// VXLAN's well-known UDP destination port.
pub const VXLAN_PORT: u16 = 4789;

/// VXLAN header length.
pub const VXLAN_HEADER_LEN: usize = 8;

/// A VXLAN header: the I flag plus a 24-bit network identifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VxlanHeader {
    /// VXLAN Network Identifier (24 bits).
    pub vni: u32,
}

impl VxlanHeader {
    pub fn new(vni: u32) -> VxlanHeader {
        assert!(vni < (1 << 24), "VNI is 24 bits");
        VxlanHeader { vni }
    }

    /// Encode header followed by the inner Ethernet frame.
    pub fn encapsulate(&self, inner_frame: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(VXLAN_HEADER_LEN + inner_frame.len());
        out.push(0x08); // flags: I bit set
        out.extend_from_slice(&[0, 0, 0]); // reserved
        let vni = self.vni << 8;
        out.extend_from_slice(&vni.to_be_bytes());
        out.extend_from_slice(inner_frame);
        out
    }

    /// Decode a VXLAN payload into (header, inner frame bytes).
    pub fn decapsulate(buf: &[u8]) -> Result<(VxlanHeader, &[u8]), WireError> {
        if buf.len() < VXLAN_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if buf[0] & 0x08 == 0 {
            return Err(WireError::Invalid); // I flag must be set
        }
        let vni = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) >> 8;
        Ok((VxlanHeader { vni }, &buf[VXLAN_HEADER_LEN..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = VxlanHeader::new(0xABCDE);
        let inner = vec![1u8, 2, 3, 4];
        let bytes = h.encapsulate(&inner);
        assert_eq!(bytes.len(), VXLAN_HEADER_LEN + 4);
        let (d, rest) = VxlanHeader::decapsulate(&bytes).unwrap();
        assert_eq!(d, h);
        assert_eq!(rest, &inner[..]);
    }

    #[test]
    fn missing_i_flag_rejected() {
        let mut bytes = VxlanHeader::new(7).encapsulate(&[]);
        bytes[0] = 0;
        assert_eq!(VxlanHeader::decapsulate(&bytes), Err(WireError::Invalid));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(VxlanHeader::decapsulate(&[8, 0, 0]), Err(WireError::Truncated));
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn oversized_vni_rejected() {
        let _ = VxlanHeader::new(1 << 24);
    }

    #[test]
    fn vni_boundaries() {
        for vni in [0u32, 1, (1 << 24) - 1] {
            let b = VxlanHeader::new(vni).encapsulate(&[9]);
            let (h, _) = VxlanHeader::decapsulate(&b).unwrap();
            assert_eq!(h.vni, vni);
        }
    }
}
