//! Reference-counted frame payloads.
//!
//! Every frame that crosses the emulated wire used to be an owned
//! `Vec<u8>`, copied once per hop and once per fan-out port. [`FrameBuf`]
//! wraps the encoded bytes in an `Arc<[u8]>` so forwarding a data frame,
//! retransmitting a tracked control message, or re-sending a cached
//! keepalive is a reference-count bump instead of a byte copy.
//!
//! The buffer is immutable by construction; the one mutation the emulator
//! performs in flight — impairment byte corruption — goes through
//! [`FrameBuf::with_corrupted_byte`], which copies on write so sibling
//! references (e.g. a retransmission queue holding the same bytes) never
//! observe the corruption.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable frame payload.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FrameBuf {
    bytes: Arc<[u8]>,
}

impl FrameBuf {
    /// Wrap already-encoded bytes. One allocation; clones are free.
    pub fn new(bytes: Vec<u8>) -> FrameBuf {
        FrameBuf { bytes: bytes.into() }
    }

    /// The shared empty buffer (pure ACKs, SYN placeholders): every call
    /// returns a handle to one process-wide allocation.
    pub fn empty() -> FrameBuf {
        static EMPTY: std::sync::OnceLock<FrameBuf> = std::sync::OnceLock::new();
        EMPTY.get_or_init(|| FrameBuf::new(Vec::new())).clone()
    }

    /// The payload length in bytes (before any wire padding).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Do `self` and `other` share the same underlying allocation?
    /// Frame caches use this to detect that an upstream layer handed back
    /// the identical buffer and skip re-encapsulation entirely.
    pub fn ptr_eq(&self, other: &FrameBuf) -> bool {
        Arc::ptr_eq(&self.bytes, &other.bytes)
    }

    /// Copy-on-write corruption: returns a buffer identical to `self`
    /// except `bytes[idx] ^= xor`. Sharers of the original are unaffected.
    /// `xor` must be nonzero and `idx` in range for a real change.
    pub fn with_corrupted_byte(&self, idx: usize, xor: u8) -> FrameBuf {
        self.mutate_copy(|bytes| bytes[idx] ^= xor)
    }

    /// Copy-and-patch: duplicate the bytes into a fresh buffer — one
    /// allocation, one copy — and let `patch` rewrite them in place
    /// before the buffer is frozen. This is the per-hop primitive for
    /// TTL-rewriting forwarders: building the output in a `Vec` and
    /// wrapping it with [`FrameBuf::new`] would pay a second
    /// allocation-plus-copy converting `Vec<u8>` to `Arc<[u8]>`.
    pub fn mutate_copy(&self, patch: impl FnOnce(&mut [u8])) -> FrameBuf {
        let mut bytes: Arc<[u8]> = Arc::from(&*self.bytes);
        // A freshly constructed Arc is uniquely owned.
        patch(Arc::get_mut(&mut bytes).expect("fresh Arc is unique"));
        FrameBuf { bytes }
    }
}

impl Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(bytes: Vec<u8>) -> FrameBuf {
        FrameBuf::new(bytes)
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(bytes: &[u8]) -> FrameBuf {
        FrameBuf { bytes: bytes.into() }
    }
}

impl fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same rendering as Vec<u8> so trace digests formatted from
        // events are unaffected by the representation change.
        fmt::Debug::fmt(&self.bytes[..], f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = FrameBuf::new(vec![1, 2, 3]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn corruption_copies_on_write() {
        let a = FrameBuf::new(vec![0x77; 4]);
        let b = a.with_corrupted_byte(2, 0x01);
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.as_slice(), &[0x77; 4], "original untouched");
        assert_eq!(b.as_slice(), &[0x77, 0x77, 0x76, 0x77]);
    }

    #[test]
    fn debug_matches_slice_rendering() {
        let a = FrameBuf::new(vec![9, 8]);
        assert_eq!(format!("{a:?}"), format!("{:?}", [9u8, 8]));
    }

    #[test]
    fn conversions_from_vec_and_slice() {
        let v: FrameBuf = vec![5u8, 6].into();
        let s: FrameBuf = (&[5u8, 6][..]).into();
        assert_eq!(v, s, "content equality ignores allocation identity");
        assert!(!v.ptr_eq(&s));
    }
}
