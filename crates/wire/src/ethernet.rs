//! Ethernet II framing.
//!
//! MR-MTP frames use destination `ff:ff:ff:ff:ff:ff` (the paper: broadcast
//! is safe because all DCN links are point-to-point, and it removes the
//! need for ARP). IP traffic uses locally-administered unicast MACs derived
//! from node/port identity.

use crate::error::WireError;

/// Length of the Ethernet II header (dst + src + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Minimum frame length on the wire as tshark reports it (64 bytes minus
/// the 4-byte FCS, which capture tools do not see).
pub const MIN_FRAME_LEN: u32 = 60;

/// The layer-2 length tshark would report for a frame with `payload_len`
/// bytes of payload: header plus payload, padded to the Ethernet minimum.
///
/// This is the quantity the paper's overhead figures count: the MR-MTP
/// 1-byte hello is a 60-byte frame, the 24-byte BFD packet a 66-byte frame,
/// the 19-byte BGP keepalive (under IP+TCP+timestamps) an 85-byte frame.
#[inline]
pub const fn l2_wire_len(payload_len: usize) -> u32 {
    let raw = (ETHERNET_HEADER_LEN + payload_len) as u32;
    if raw < MIN_FRAME_LEN {
        MIN_FRAME_LEN
    } else {
        raw
    }
}

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address used by all MR-MTP frames.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic locally-administered unicast address for a given
    /// (node, port) pair.
    pub fn for_node_port(node: u32, port: u16) -> MacAddr {
        MacAddr([
            0x02,
            (node >> 16) as u8,
            (node >> 8) as u8,
            node as u8,
            (port >> 8) as u8,
            port as u8,
        ])
    }

    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values used in the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    Ipv4,
    /// The unused EtherType the paper picked for MR-MTP.
    Mrmtp,
    Other(u16),
}

impl EtherType {
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Mrmtp => 0x8850,
            EtherType::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x8850 => EtherType::Mrmtp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EthernetFrame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Encode into raw bytes (unpadded; the emulator pads for wire-length
    /// accounting, as real NICs pad on transmission).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETHERNET_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Append the 14-byte header for (`dst`, `src`, `ethertype`) to `out`.
    ///
    /// Lets an encapsulating router build `header + borrowed payload` in a
    /// single pre-sized allocation instead of cloning the payload into an
    /// `EthernetFrame` first; the bytes are identical to [`Self::encode`].
    pub fn put_header(out: &mut Vec<u8>, dst: MacAddr, src: MacAddr, ethertype: EtherType) {
        out.extend_from_slice(&dst.0);
        out.extend_from_slice(&src.0);
        out.extend_from_slice(&ethertype.to_u16().to_be_bytes());
    }

    /// Decode from raw bytes.
    pub fn decode(buf: &[u8]) -> Result<EthernetFrame, WireError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: buf[ETHERNET_HEADER_LEN..].to_vec(),
        })
    }

    /// The wire length tshark would report for this frame.
    pub fn wire_len(&self) -> u32 {
        l2_wire_len(self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_matches_paper_captures() {
        // MR-MTP 1-byte hello → minimum 60-byte frame (Fig. 10).
        assert_eq!(l2_wire_len(1), 60);
        // BFD: IP(20) + UDP(8) + BFD(24) = 52 → 66-byte frame (Fig. 9).
        assert_eq!(l2_wire_len(20 + 8 + 24), 66);
        // BGP keepalive: IP(20) + TCP(32 w/ timestamps) + BGP(19) → 85.
        assert_eq!(l2_wire_len(20 + 32 + 19), 85);
    }

    #[test]
    fn roundtrip() {
        let f = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node_port(3, 1),
            ethertype: EtherType::Mrmtp,
            payload: vec![0x06],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), 15);
        let g = EthernetFrame::decode(&bytes).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.wire_len(), 60);
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(EthernetFrame::decode(&[0u8; 13]), Err(WireError::Truncated));
    }

    #[test]
    fn mac_display_and_kind() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
        let m = MacAddr::for_node_port(0x0102_03, 0x0405);
        assert_eq!(m.to_string(), "02:01:02:03:04:05");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x8850), EtherType::Mrmtp);
        assert_eq!(EtherType::from_u16(0x86DD), EtherType::Other(0x86DD));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
    }
}
