//! # dcn-bfd — Bidirectional Forwarding Detection (RFC 5880, async mode)
//!
//! The failure-detection substrate the paper enables alongside BGP. A BFD
//! session per link exchanges 24-byte control packets over UDP/3784
//! (66-byte frames at layer 2, as in the paper's Fig. 9 capture) at the
//! paper's 100 ms transmit interval; with the default detect multiplier of
//! 3, a neighbor is declared down after 300 ms of silence — an order of
//! magnitude faster than BGP's hold timer, at the cost of carrying two
//! extra protocols (BFD and UDP) on every router.
//!
//! The session object is transport-free (mirroring `dcn-tcp`'s connection): the
//! owner wraps packets in UDP/IP/Ethernet and feeds received packets back.

use dcn_sim::time::{millis, Duration, Time};
use dcn_wire::{BfdPacket, BfdState};

/// Paper §VI-F: "the transmission (hello) interval could be reduced to
/// 100 ms".
pub const DEFAULT_TX_INTERVAL: Duration = millis(100);

/// Paper §VI-F: "the default detect multiplier of 3".
pub const DEFAULT_DETECT_MULT: u8 = 3;

/// Events surfaced to the owner (the BGP router).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfdEvent {
    /// The session reached Up: forwarding to the neighbor is verified.
    SessionUp,
    /// Detection time expired (or the peer signaled down): the neighbor
    /// is unreachable. BGP treats this like a hold-timer expiry.
    SessionDown,
}

/// One BFD session endpoint.
#[derive(Clone, Debug)]
pub struct BfdSession {
    state: BfdState,
    my_disc: u32,
    your_disc: u32,
    tx_interval: Duration,
    detect_mult: u8,
    last_tx: Option<Time>,
    last_rx: Time,
    /// Set once we have ever heard the peer (arms the detection timer).
    heard: bool,
    /// Cumulative FSM state changes (telemetry: session flap counting).
    transitions: u64,
}

impl BfdSession {
    pub fn new(my_disc: u32) -> BfdSession {
        BfdSession {
            state: BfdState::Down,
            my_disc,
            your_disc: 0,
            tx_interval: DEFAULT_TX_INTERVAL,
            detect_mult: DEFAULT_DETECT_MULT,
            last_tx: None,
            last_rx: 0,
            heard: false,
            transitions: 0,
        }
    }

    /// Override the transmit interval (the paper explored the floor of
    /// what the testbed VMs could sustain).
    pub fn with_tx_interval(mut self, interval: Duration) -> BfdSession {
        self.tx_interval = interval;
        self
    }

    pub fn state(&self) -> BfdState {
        self.state
    }

    pub fn is_up(&self) -> bool {
        self.state == BfdState::Up
    }

    /// Cumulative count of FSM state changes this session has undergone
    /// (telemetry gauge: a flapping link shows a climbing count).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Detection time: multiplier × agreed interval.
    pub fn detection_time(&self) -> Duration {
        self.detect_mult as u64 * self.tx_interval
    }

    fn packet(&self) -> BfdPacket {
        BfdPacket {
            state: self.state,
            poll: false,
            final_: false,
            detect_mult: self.detect_mult,
            my_discriminator: self.my_disc,
            your_discriminator: self.your_disc,
            desired_min_tx_us: (self.tx_interval / 1_000) as u32,
            required_min_rx_us: (self.tx_interval / 1_000) as u32,
        }
    }

    /// Reset to Down (e.g. local carrier loss). Returns an event if the
    /// session was up.
    pub fn force_down(&mut self) -> Option<BfdEvent> {
        let was_up = self.is_up();
        if self.state != BfdState::Down {
            self.transitions += 1;
        }
        self.state = BfdState::Down;
        self.your_disc = 0;
        self.heard = false;
        was_up.then_some(BfdEvent::SessionDown)
    }

    /// Periodic drive: emits the control packet due at `now` (if any) and
    /// checks the detection timer.
    pub fn tick(&mut self, now: Time) -> (Option<BfdPacket>, Option<BfdEvent>) {
        let mut event = None;
        // Detection: silence beyond detectMult × interval kills the
        // session (only once we've heard the peer at all).
        if self.heard
            && self.state != BfdState::Down
            && now.saturating_sub(self.last_rx) > self.detection_time()
        {
            self.state = BfdState::Down;
            self.your_disc = 0;
            self.heard = false;
            self.transitions += 1;
            event = Some(BfdEvent::SessionDown);
        }
        let due = self
            .last_tx
            .is_none_or(|t| now.saturating_sub(t) >= self.tx_interval);
        let pkt = due.then(|| {
            self.last_tx = Some(now);
            self.packet()
        });
        (pkt, event)
    }

    /// Process a received control packet; may emit an immediate response
    /// (to accelerate the three-way state handshake) and an event.
    pub fn on_packet(&mut self, pkt: &BfdPacket, now: Time) -> (Option<BfdPacket>, Option<BfdEvent>) {
        self.last_rx = now;
        self.heard = true;
        self.your_disc = pkt.my_discriminator;
        let old = self.state;
        let peer = pkt.state;
        // RFC 5880 §6.2 state machine (async, no auth, no poll sequence).
        self.state = match (self.state, peer) {
            (BfdState::Down, BfdState::Down) => BfdState::Init,
            (BfdState::Down, BfdState::Init) => BfdState::Up,
            (BfdState::Init, BfdState::Init) | (BfdState::Init, BfdState::Up) => BfdState::Up,
            (BfdState::Up, BfdState::Down) => BfdState::Down,
            (BfdState::Up, BfdState::AdminDown) => BfdState::Down,
            (s, _) => s,
        };
        if old != self.state {
            self.transitions += 1;
        }
        let event = match (old, self.state) {
            (BfdState::Up, BfdState::Down) => Some(BfdEvent::SessionDown),
            (o, BfdState::Up) if o != BfdState::Up => Some(BfdEvent::SessionUp),
            _ => None,
        };
        // Respond immediately on state progression so sessions come up in
        // ~1 RTT rather than 1 tx-interval per step.
        let reply = (old != self.state).then(|| {
            self.last_tx = Some(now);
            self.packet()
        });
        (reply, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive two sessions to Up by exchanging packets.
    fn bring_up(a: &mut BfdSession, b: &mut BfdSession, now: Time) {
        let (pa, _) = a.tick(now);
        let mut queue: Vec<(bool, BfdPacket)> = Vec::new(); // (to_b, pkt)
        if let Some(p) = pa {
            queue.push((true, p));
        }
        let (pb, _) = b.tick(now);
        if let Some(p) = pb {
            queue.push((false, p));
        }
        for _ in 0..10 {
            if queue.is_empty() {
                break;
            }
            let (to_b, pkt) = queue.remove(0);
            let (reply, _) = if to_b { b.on_packet(&pkt, now) } else { a.on_packet(&pkt, now) };
            if let Some(r) = reply {
                queue.push((!to_b, r));
            }
        }
    }

    #[test]
    fn three_way_handshake_reaches_up() {
        let mut a = BfdSession::new(1);
        let mut b = BfdSession::new(2);
        bring_up(&mut a, &mut b, 0);
        assert!(a.is_up(), "a: {:?}", a.state());
        assert!(b.is_up(), "b: {:?}", b.state());
        assert_eq!(a.your_disc, 2);
        assert_eq!(b.your_disc, 1);
    }

    #[test]
    fn detection_time_is_300ms_with_paper_settings() {
        let s = BfdSession::new(1);
        assert_eq!(s.detection_time(), millis(300));
    }

    #[test]
    fn silence_past_detection_time_downs_the_session() {
        let mut a = BfdSession::new(1);
        let mut b = BfdSession::new(2);
        bring_up(&mut a, &mut b, 0);
        // No packets from b; a's detection must fire strictly after 300 ms.
        let (_, ev) = a.tick(millis(300));
        assert_eq!(ev, None, "not yet");
        let (_, ev) = a.tick(millis(301));
        assert_eq!(ev, Some(BfdEvent::SessionDown));
        assert!(!a.is_up());
    }

    #[test]
    fn keepalives_flow_at_tx_interval() {
        let mut a = BfdSession::new(1);
        let (p0, _) = a.tick(0);
        assert!(p0.is_some());
        let (p1, _) = a.tick(millis(50));
        assert!(p1.is_none(), "only every 100 ms");
        let (p2, _) = a.tick(millis(100));
        assert!(p2.is_some());
        assert_eq!(p2.unwrap().desired_min_tx_us, 100_000);
    }

    #[test]
    fn peer_down_signal_downs_an_up_session() {
        let mut a = BfdSession::new(1);
        let mut b = BfdSession::new(2);
        bring_up(&mut a, &mut b, 0);
        let down = b.force_down();
        assert_eq!(down, Some(BfdEvent::SessionDown));
        let (pkt, _) = b.tick(millis(100));
        let (_, ev) = a.on_packet(&pkt.unwrap(), millis(100));
        assert_eq!(ev, Some(BfdEvent::SessionDown));
    }

    #[test]
    fn detection_never_fires_before_first_contact() {
        let mut a = BfdSession::new(1);
        let (_, ev) = a.tick(millis(10_000));
        assert_eq!(ev, None, "no peer yet, nothing to detect");
    }

    #[test]
    fn transitions_count_every_state_change() {
        let mut a = BfdSession::new(1);
        let mut b = BfdSession::new(2);
        assert_eq!(a.transitions(), 0);
        bring_up(&mut a, &mut b, 0);
        // Down → Init → Up.
        assert_eq!(a.transitions(), 2, "a: {:?}", a.state());
        a.force_down();
        assert_eq!(a.transitions(), 3);
        a.force_down();
        assert_eq!(a.transitions(), 3, "already down: no transition");
    }

    #[test]
    fn custom_interval_scales_detection() {
        let s = BfdSession::new(1).with_tx_interval(millis(50));
        assert_eq!(s.detection_time(), millis(150));
    }
}
