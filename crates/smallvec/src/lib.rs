//! Offline in-repo small-vector shim (the workspace builds without
//! registry access). Exposes the subset of the `smallvec` v2 API this
//! workspace uses: a vector that stores up to `N` elements inline on the
//! stack and spills to the heap only past that — so short, bounded lists
//! (ECMP candidate sets, per-prefix next-hop arrays) never allocate on
//! the forwarding fast path.

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector with inline storage for `N` elements.
pub struct SmallVec<T, const N: usize> {
    inline: [MaybeUninit<T>; N],
    /// Number of initialized elements in `inline`; meaningless once
    /// spilled.
    len: usize,
    /// Heap storage once the inline capacity is exceeded. `Some` means
    /// every element lives in the `Vec` and `inline`/`len` are unused.
    spill: Option<Vec<T>>,
}

impl<T, const N: usize> SmallVec<T, N> {
    pub const fn new() -> SmallVec<T, N> {
        SmallVec {
            // SAFETY: an array of MaybeUninit needs no initialization.
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            len: 0,
            spill: None,
        }
    }

    pub fn len(&self) -> usize {
        match &self.spill {
            Some(v) => v.len(),
            None => self.len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Did the vector spill to the heap?
    pub fn spilled(&self) -> bool {
        self.spill.is_some()
    }

    pub fn push(&mut self, value: T) {
        if let Some(v) = &mut self.spill {
            v.push(value);
            return;
        }
        if self.len < N {
            self.inline[self.len].write(value);
            self.len += 1;
            return;
        }
        // Spill: move the inline elements to the heap, then push.
        let mut v = Vec::with_capacity(N * 2);
        for slot in &mut self.inline[..self.len] {
            // SAFETY: the first `len` slots are initialized, and we reset
            // `len` below so they are never read (or dropped) again.
            v.push(unsafe { slot.assume_init_read() });
        }
        self.len = 0;
        v.push(value);
        self.spill = Some(v);
    }

    pub fn pop(&mut self) -> Option<T> {
        if let Some(v) = &mut self.spill {
            return v.pop();
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: slot `len` was initialized and is now out of bounds.
        Some(unsafe { self.inline[self.len].assume_init_read() })
    }

    pub fn clear(&mut self) {
        if let Some(v) = &mut self.spill {
            v.clear();
            return;
        }
        for slot in &mut self.inline[..self.len] {
            // SAFETY: the first `len` slots are initialized.
            unsafe { slot.assume_init_drop() };
        }
        self.len = 0;
    }

    pub fn as_slice(&self) -> &[T] {
        match &self.spill {
            Some(v) => v.as_slice(),
            // SAFETY: the first `len` inline slots are initialized.
            None => unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr().cast(), self.len)
            },
        }
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.spill {
            Some(v) => v.as_mut_slice(),
            // SAFETY: the first `len` inline slots are initialized.
            None => unsafe {
                std::slice::from_raw_parts_mut(self.inline.as_mut_ptr().cast(), self.len)
            },
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    pub fn from_slice(slice: &[T]) -> SmallVec<T, N>
    where
        T: Clone,
    {
        let mut out = SmallVec::new();
        out.extend(slice.iter().cloned());
        out
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> SmallVec<T, N> {
        Self::from_slice(self.as_slice())
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<&[T]> for SmallVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u16, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut v: SmallVec<u16, 2> = SmallVec::new();
        for i in 0..7 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(v.pop(), Some(6));
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn pop_and_clear_inline() {
        let mut v: SmallVec<u8, 4> = SmallVec::from_slice(&[9, 8]);
        assert_eq!(v.pop(), Some(8));
        assert_eq!(v.pop(), Some(9));
        assert_eq!(v.pop(), None);
        v.extend([1, 2, 3]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn drops_inline_elements() {
        use std::rc::Rc;
        let tracker = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 4> = SmallVec::new();
            v.push(tracker.clone());
            v.push(tracker.clone());
        }
        assert_eq!(Rc::strong_count(&tracker), 1, "inline elements dropped");
    }

    #[test]
    fn sort_and_index_via_deref() {
        let mut v: SmallVec<u32, 8> = SmallVec::from_slice(&[3, 1, 2]);
        v.sort_unstable();
        assert_eq!(v[0], 1);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn equality_and_from_iterator() {
        let v: SmallVec<u8, 2> = [1u8, 2, 3].into_iter().collect();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(v, &[1u8, 2, 3][..]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(format!("{v:?}"), "[1, 2, 3]");
    }
}
