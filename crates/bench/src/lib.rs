//! # dcn-bench
//!
//! Criterion benchmark definitions live under `benches/`:
//!
//! * `paper_figures` — one group per paper figure; prints each figure's
//!   reproduction table before benchmarking a representative scenario.
//! * `micro` — substrate microbenchmarks: VID-table vs BGP-RIB lookups
//!   and updates, wire codecs, flow hashing, engine throughput.
