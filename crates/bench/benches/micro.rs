//! Microbenchmarks of the hot substrates: the event engine, the two
//! routing-table designs the paper compares (Listing 3's BGP RIB vs
//! Listing 5's VID table — "the routing table size reflects both the
//! storage needs and the protocol processing time"), wire codecs, and the
//! shared ECMP flow hash.
//!
//! ```text
//! cargo bench -p dcn-bench --bench micro
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dcn_mrmtp::VidTable;
use dcn_bgp::Rib;
use dcn_sim::PortId;
use dcn_wire::{
    flow_hash, BgpMessage, BgpUpdate, IpAddr4, Ipv4Packet, MrmtpMsg, Prefix, Vid, IPPROTO_UDP,
};

/// Build a VID table like a top spine's in a large fabric: one VID per
/// ToR across `racks` racks.
fn vid_table(racks: u8) -> VidTable {
    let mut t = VidTable::new();
    for r in 0..racks {
        let vid = Vid::from_components(&[11 + (r % 200), 1, 1]).unwrap();
        t.install(vid, PortId((r % 8) as u16));
    }
    t
}

/// Build a BGP RIB like a tier-2 spine's: `racks` prefixes, 2 ECMP paths
/// each, 3-hop AS paths.
fn bgp_rib(racks: u8) -> Rib {
    let mut rib = Rib::new();
    for r in 0..racks {
        let pfx = Prefix::new(IpAddr4::new(192, 168, 11 + (r % 200), 0), 24);
        rib.ingest_advert(PortId(0), pfx, vec![64512, 64513, 65001 + r as u32], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx, vec![64512, 64514, 65001 + r as u32], IpAddr4(0));
    }
    rib
}

fn table_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("forwarding_lookup");
    let vt = vid_table(64);
    g.bench_function("vid_table_64_roots", |b| {
        let mut r = 0u8;
        b.iter(|| {
            r = r.wrapping_add(17);
            black_box(vt.vids_for(11 + (r % 64)))
        })
    });
    let rib = bgp_rib(64);
    g.bench_function("bgp_rib_lpm_64_prefixes", |b| {
        let mut r = 0u8;
        b.iter(|| {
            r = r.wrapping_add(17);
            black_box(rib.lookup(IpAddr4::new(192, 168, 11 + (r % 64), 7)))
        })
    });
    g.finish();
}

fn table_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("failure_update");
    g.bench_function("vid_table_remove_and_reinstall", |b| {
        let mut vt = vid_table(64);
        b.iter(|| {
            vt.remove_via(11, PortId(3));
            vt.install(Vid::from_components(&[11, 1, 1]).unwrap(), PortId(3));
        })
    });
    g.bench_function("bgp_rib_withdraw_and_readvertise", |b| {
        let mut rib = bgp_rib(64);
        let pfx = Prefix::new(IpAddr4::new(192, 168, 11, 0), 24);
        b.iter(|| {
            rib.ingest_withdraw(PortId(0), pfx);
            rib.ingest_advert(PortId(0), pfx, vec![64512, 64513, 65001], IpAddr4(0));
        })
    });
    g.finish();
}

fn wire_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let update = BgpMessage::Update(BgpUpdate {
        withdrawn: vec![Prefix::new(IpAddr4::new(192, 168, 11, 0), 24)],
        as_path: vec![64512, 64513, 65001],
        next_hop: Some(IpAddr4::new(172, 16, 0, 1)),
        nlri: vec![
            Prefix::new(IpAddr4::new(192, 168, 12, 0), 24),
            Prefix::new(IpAddr4::new(192, 168, 13, 0), 24),
        ],
    });
    let update_bytes = update.encode();
    g.bench_function("bgp_update_encode", |b| b.iter(|| black_box(&update).encode()));
    g.bench_function("bgp_update_decode", |b| {
        b.iter(|| BgpMessage::decode(black_box(&update_bytes)).unwrap())
    });
    let data = MrmtpMsg::Data {
        src: Vid::root(11),
        dst: Vid::root(14),
        flow: 7,
        payload: vec![0xAB; 128],
    };
    let data_bytes = data.encode();
    g.bench_function("mrmtp_data_encode", |b| b.iter(|| black_box(&data).encode()));
    g.bench_function("mrmtp_data_decode", |b| {
        b.iter(|| MrmtpMsg::decode(black_box(&data_bytes)).unwrap())
    });
    let ip = Ipv4Packet::new(
        IpAddr4::new(192, 168, 11, 1),
        IpAddr4::new(192, 168, 14, 1),
        IPPROTO_UDP,
        vec![0; 100],
    );
    let ip_bytes = ip.encode();
    g.bench_function("ipv4_encode_with_checksum", |b| b.iter(|| black_box(&ip).encode()));
    g.bench_function("ipv4_decode_with_checksum", |b| {
        b.iter(|| Ipv4Packet::decode(black_box(&ip_bytes)).unwrap())
    });
    g.finish();
}

fn hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecmp");
    g.bench_function("flow_hash_5tuple", |b| {
        let mut sp = 0u16;
        b.iter(|| {
            sp = sp.wrapping_add(1);
            black_box(flow_hash(
                IpAddr4::new(192, 168, 11, 1),
                IpAddr4::new(192, 168, 14, 1),
                IPPROTO_UDP,
                sp,
                6000,
            ))
        })
    });
    g.finish();
}

fn engine_throughput(c: &mut Criterion) {
    use dcn_experiments::{build_sim, Stack};
    use dcn_sim::time::secs;
    use dcn_topology::ClosParams;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("mrmtp_2pod_5s_warmup", |b| {
        b.iter(|| {
            let mut built = build_sim(ClosParams::two_pod(), Stack::Mrmtp, 42, &[]);
            built.sim.run_until(secs(5));
            black_box(built.sim.events_processed())
        })
    });
    g.bench_function("bgp_2pod_5s_warmup", |b| {
        b.iter(|| {
            let mut built = build_sim(ClosParams::two_pod(), Stack::BgpEcmp, 42, &[]);
            built.sim.run_until(secs(5));
            black_box(built.sim.events_processed())
        })
    });
    g.finish();
}

criterion_group!(micro, table_lookup, table_update, wire_codecs, hashing, engine_throughput);
criterion_main!(micro);
