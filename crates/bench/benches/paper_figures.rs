//! One Criterion bench group per paper figure. Each group first *prints*
//! the figure's full table (the reproduction artifact), then benchmarks a
//! representative scenario so regressions in the protocol engines or the
//! emulator show up as timing changes.
//!
//! ```text
//! cargo bench -p dcn-bench --bench paper_figures
//! ```

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dcn_experiments::figures;
use dcn_experiments::{run, RunSpec, Stack, TrafficDir};
use dcn_topology::{ClosParams, FailureCase};

fn quick<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn fig4_convergence(c: &mut Criterion) {
    let cells = figures::failure_matrix(TrafficDir::None, 42);
    println!("\n{}", figures::fig4_convergence(&cells).render());
    let mut g = quick(c, "fig4_convergence");
    for stack in Stack::ALL {
        g.bench_function(stack.label(), |b| {
            b.iter(|| {
                run(RunSpec::new(ClosParams::two_pod(), stack).failing(FailureCase::Tc1))
                    .convergence_ms
            })
        });
    }
    g.finish();
}

fn fig5_blast_radius(c: &mut Criterion) {
    let cells = figures::failure_matrix(TrafficDir::None, 42);
    println!("\n{}", figures::fig5_blast_radius(&cells).render());
    let mut g = quick(c, "fig5_blast_radius");
    g.bench_function("mrmtp_4pod_tc1", |b| {
        b.iter(|| {
            run(RunSpec::new(ClosParams::four_pod(), Stack::Mrmtp).failing(FailureCase::Tc1))
                .blast_radius
        })
    });
    g.bench_function("bgp_4pod_tc1", |b| {
        b.iter(|| {
            run(RunSpec::new(ClosParams::four_pod(), Stack::BgpEcmp).failing(FailureCase::Tc1))
                .blast_radius
        })
    });
    g.finish();
}

fn fig6_control_overhead(c: &mut Criterion) {
    let cells = figures::failure_matrix(TrafficDir::None, 42);
    println!("\n{}", figures::fig6_control_overhead(&cells).render());
    let mut g = quick(c, "fig6_control_overhead");
    g.bench_function("mrmtp_2pod_tc1", |b| {
        b.iter(|| {
            run(RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(FailureCase::Tc1))
                .control_bytes
        })
    });
    g.finish();
}

fn fig7_loss_near(c: &mut Criterion) {
    let cells = figures::failure_matrix(TrafficDir::NearToFar, 42);
    println!("\n{}", figures::fig_packet_loss(&cells, true).render());
    let mut g = quick(c, "fig7_loss_near");
    g.bench_function("mrmtp_tc2_with_traffic", |b| {
        b.iter(|| {
            run(RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
                .failing(FailureCase::Tc2)
                .with_traffic(TrafficDir::NearToFar))
            .loss
        })
    });
    g.finish();
}

fn fig8_loss_far(c: &mut Criterion) {
    let cells = figures::failure_matrix(TrafficDir::FarToNear, 42);
    println!("\n{}", figures::fig_packet_loss(&cells, false).render());
    let mut g = quick(c, "fig8_loss_far");
    g.bench_function("bgp_tc3_with_traffic", |b| {
        b.iter(|| {
            run(RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp)
                .failing(FailureCase::Tc3)
                .with_traffic(TrafficDir::FarToNear))
            .loss
        })
    });
    g.finish();
}

fn fig9_keepalive(c: &mut Criterion) {
    println!("\n{}", figures::fig9_keepalive(42).render());
    println!("{}", figures::fig1_stack_comparison(42).render());
    let mut g = quick(c, "fig9_keepalive_steady_state");
    for stack in Stack::ALL {
        g.bench_function(stack.label(), |b| {
            b.iter(|| {
                dcn_experiments::RunSpec::new(ClosParams::two_pod(), stack)
                    .seeded(42)
                    .timed(dcn_experiments::Timing::steady())
                    .run()
            })
        });
    }
    g.finish();
}

fn listings(c: &mut Criterion) {
    println!("\n{}", figures::config_comparison().render());
    println!("{}", figures::table_size_comparison(42).render());
    let mut g = quick(c, "listings_config_generation");
    let fabric = dcn_topology::Fabric::build(ClosParams::four_pod());
    let addr = dcn_topology::Addressing::new(&fabric);
    g.bench_function("bgp_full_fabric_config", |b| {
        b.iter(|| dcn_topology::ConfigStats::for_bgp(&fabric, &addr, true))
    });
    g.bench_function("mrmtp_full_fabric_config", |b| {
        b.iter(|| dcn_topology::ConfigStats::for_mrmtp(&fabric))
    });
    g.finish();
}

fn scale_sweep(c: &mut Criterion) {
    println!("\n{}", figures::scale_sweep(&[2, 4, 6], 42).render());
    let mut g = quick(c, "scale_sweep");
    g.bench_function("mrmtp_8pod_tc1", |b| {
        b.iter(|| {
            run(RunSpec::new(ClosParams::scaled(8).unwrap(), Stack::Mrmtp).failing(FailureCase::Tc1))
                .blast_radius
        })
    });
    g.finish();
}

fn extensions(c: &mut Criterion) {
    println!("\n{}", dcn_experiments::ablations::ablation_slow_to_accept(42).render());
    println!("{}", dcn_experiments::ablations::ablation_loss_holddown(42).render());
    println!("{}", dcn_experiments::ablations::sweep_mrmtp_hello(42).render());
    println!("{}", dcn_experiments::ablations::sweep_bfd_interval(42).render());
    println!("{}", dcn_experiments::extended_failures::extended_failure_figure(42).render());
    println!("{}", figures::encap_overhead_figure(42).render());
    println!("{}", figures::tier_comparison(42).render());
    let mut g = quick(c, "extensions");
    g.bench_function("four_tier_mrmtp_warmup", |b| {
        b.iter(|| {
            use dcn_sim::time::secs;
            let mut built = dcn_experiments::build_four_tier_sim(
                dcn_topology::FourTierParams::small(),
                Stack::Mrmtp,
                42,
                &[],
            );
            built.sim.run_until(secs(3));
            built.sim.events_processed()
        })
    });
    g.bench_function("flap_storm_damped", |b| {
        b.iter(|| {
            dcn_experiments::ablations::flap_storm(3, 4, dcn_sim::time::millis(80), 11)
                .route_changes
        })
    });
    g.finish();
}

criterion_group!(
    figures_bench,
    fig4_convergence,
    fig5_blast_radius,
    fig6_control_overhead,
    fig7_loss_near,
    fig8_loss_far,
    fig9_keepalive,
    listings,
    scale_sweep,
    extensions
);
criterion_main!(figures_bench);
