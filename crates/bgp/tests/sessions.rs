//! Integration tests: BGP session mechanics on small hand-wired
//! emulations (session FSM over real TCP frames, route exchange, AS-path
//! loop rejection, hold-timer behavior, ECMP spreading).

use dcn_bgp::{BgpConfig, BgpRouter, PeerConfig};
use dcn_sim::link::LinkSpec;
use dcn_sim::time::{millis, secs};
use dcn_sim::{PortId, SimBuilder};
use dcn_wire::{IpAddr4, Prefix};

fn ip(last: u8) -> IpAddr4 {
    IpAddr4::new(172, 16, 0, last)
}

fn rack(third: u8) -> Prefix {
    Prefix::new(IpAddr4::new(192, 168, third, 0), 24)
}

fn peer(port: u16, local: u8, remote: u8, peer_asn: u32) -> PeerConfig {
    PeerConfig {
        port: PortId(port),
        local_ip: ip(local),
        peer_ip: ip(remote),
        peer_asn,
    }
}

/// Two routers on one link: A originates a prefix, B must learn it.
#[test]
fn two_routers_establish_and_exchange() {
    let mut b = SimBuilder::new(1);
    let ra = BgpRouter::new(
        BgpConfig::new("A", 65001, 1)
            .peer(peer(0, 1, 2, 65002))
            .originating(rack(11)),
    );
    let rb = BgpRouter::new(BgpConfig::new("B", 65002, 2).peer(peer(0, 2, 1, 65001)));
    let a = b.add_node("A", Box::new(ra));
    let c = b.add_node("B", Box::new(rb));
    b.add_link(a, c, LinkSpec::default());
    let mut sim = b.build();
    sim.run_until(secs(4));
    let rb: &BgpRouter = sim.node_as(c).unwrap();
    assert_eq!(rb.established_sessions(), 1);
    let members = rb.rib().members(rack(11));
    assert_eq!(members.len(), 1);
    assert_eq!(members[0].as_path, vec![65001]);
    let ra: &BgpRouter = sim.node_as(a).unwrap();
    assert_eq!(ra.established_sessions(), 1);
    assert!(ra.stats().updates_sent >= 1);
    assert!(rb.stats().updates_received >= 1);
}

/// A route whose AS path already contains the receiver's AS is discarded
/// (loop prevention) — the mechanism that makes RFC 7938 valley-free.
#[test]
fn as_path_loop_is_rejected() {
    // Line: A(65001) — B(64512) — C(65001). C shares A's AS, so A's
    // prefix must never enter C's RIB.
    let mut b = SimBuilder::new(2);
    let ra = BgpRouter::new(
        BgpConfig::new("A", 65001, 1)
            .peer(peer(0, 1, 2, 64512))
            .originating(rack(11)),
    );
    let rb = BgpRouter::new(
        BgpConfig::new("B", 64512, 2)
            .peer(peer(0, 2, 1, 65001))
            .peer(PeerConfig {
                port: PortId(1),
                local_ip: IpAddr4::new(172, 16, 1, 1),
                peer_ip: IpAddr4::new(172, 16, 1, 2),
                peer_asn: 65001,
            }),
    );
    let rc = BgpRouter::new(BgpConfig::new("C", 65001, 3).peer(PeerConfig {
        port: PortId(0),
        local_ip: IpAddr4::new(172, 16, 1, 2),
        peer_ip: IpAddr4::new(172, 16, 1, 1),
        peer_asn: 64512,
    }));
    let a = b.add_node("A", Box::new(ra));
    let nb = b.add_node("B", Box::new(rb));
    let nc = b.add_node("C", Box::new(rc));
    b.add_link(a, nb, LinkSpec::default());
    b.add_link(nb, nc, LinkSpec::default());
    let mut sim = b.build();
    sim.run_until(secs(5));
    let rb: &BgpRouter = sim.node_as(nb).unwrap();
    assert_eq!(rb.rib().members(rack(11)).len(), 1, "B learned it");
    let rc: &BgpRouter = sim.node_as(nc).unwrap();
    assert_eq!(rc.established_sessions(), 1);
    assert!(
        rc.rib().members(rack(11)).is_empty(),
        "C must reject the looped path (sender-side filter suppresses it)"
    );
}

/// An ASN mismatch in configuration produces a NOTIFICATION and no
/// session — the class of errors §VII-G says BGP invites.
#[test]
fn asn_mismatch_never_establishes() {
    let mut b = SimBuilder::new(3);
    let ra = BgpRouter::new(BgpConfig::new("A", 65001, 1).peer(peer(0, 1, 2, 65002)));
    // B believes its own ASN is 65099; A expects 65002.
    let rb = BgpRouter::new(BgpConfig::new("B", 65099, 2).peer(peer(0, 2, 1, 65001)));
    let a = b.add_node("A", Box::new(ra));
    let c = b.add_node("B", Box::new(rb));
    b.add_link(a, c, LinkSpec::default());
    let mut sim = b.build();
    sim.run_until(secs(6));
    let ra: &BgpRouter = sim.node_as(a).unwrap();
    assert_eq!(ra.established_sessions(), 0);
    assert!(ra.stats().sessions_lost > 0 || ra.stats().sessions_established == 0);
}

/// Without keepalives crossing (link dead one way is impossible here, so
/// kill the whole link silently via the far side's interface): the hold
/// timer fires within hold ± keepalive and withdraws learned routes.
#[test]
fn hold_timer_expiry_withdraws_routes() {
    let mut b = SimBuilder::new(4);
    let ra = BgpRouter::new(
        BgpConfig::new("A", 65001, 1)
            .peer(peer(0, 1, 2, 65002))
            .originating(rack(11)),
    );
    let rb = BgpRouter::new(BgpConfig::new("B", 65002, 2).peer(peer(0, 2, 1, 65001)));
    let a = b.add_node("A", Box::new(ra));
    let c = b.add_node("B", Box::new(rb));
    b.add_link(a, c, LinkSpec::default());
    let mut sim = b.build();
    sim.run_until(secs(4));
    assert_eq!(sim.node_as::<BgpRouter>(c).unwrap().rib().members(rack(11)).len(), 1);
    // Fail A's interface: A sees carrier; B must hold-time out. The
    // expiry lands between hold−keepalive (2 s) and hold (3 s) after the
    // failure, depending on when B's last keepalive arrived.
    sim.schedule_port_down(secs(4), a, PortId(0));
    sim.run_until(secs(4) + millis(1900));
    let rb: &BgpRouter = sim.node_as(c).unwrap();
    assert_eq!(rb.established_sessions(), 1, "hold timer (3 s) not yet expired");
    sim.run_until(secs(4) + millis(3200));
    let rb: &BgpRouter = sim.node_as(c).unwrap();
    assert_eq!(rb.established_sessions(), 0, "hold timer fired");
    assert!(rb.rib().members(rack(11)).is_empty(), "route withdrawn");
}

/// Keepalives keep an idle session alive indefinitely.
#[test]
fn keepalives_sustain_idle_sessions() {
    let mut b = SimBuilder::new(5);
    let ra = BgpRouter::new(BgpConfig::new("A", 65001, 1).peer(peer(0, 1, 2, 65002)));
    let rb = BgpRouter::new(BgpConfig::new("B", 65002, 2).peer(peer(0, 2, 1, 65001)));
    let a = b.add_node("A", Box::new(ra));
    let c = b.add_node("B", Box::new(rb));
    b.add_link(a, c, LinkSpec::default());
    let mut sim = b.build();
    sim.run_until(secs(30));
    assert_eq!(sim.node_as::<BgpRouter>(a).unwrap().established_sessions(), 1);
    let ka = sim.node_as::<BgpRouter>(a).unwrap().stats().keepalives_sent;
    assert!((25..=40).contains(&ka), "≈1/s keepalives: {ka}");
}

/// A router with two equal-cost paths installs both as ECMP members,
/// and the shared flow hash spreads distinct flows across them while
/// keeping any single flow pinned (no reordering).
#[test]
fn ecmp_members_install_and_flows_spread() {
    // Hub H peers with L and R, each originating the same prefix with
    // equal-length AS paths.
    let mut b = SimBuilder::new(6);
    let hub = BgpRouter::new(
        BgpConfig::new("H", 64512, 1)
            .peer(peer(0, 1, 2, 65001))
            .peer(PeerConfig {
                port: PortId(1),
                local_ip: IpAddr4::new(172, 16, 1, 1),
                peer_ip: IpAddr4::new(172, 16, 1, 2),
                peer_asn: 65002,
            }),
    );
    let left = BgpRouter::new(
        BgpConfig::new("L", 65001, 2)
            .peer(peer(0, 2, 1, 64512))
            .originating(rack(14)),
    );
    let right = BgpRouter::new(
        BgpConfig::new("R", 65002, 3)
            .peer(PeerConfig {
                port: PortId(0),
                local_ip: IpAddr4::new(172, 16, 1, 2),
                peer_ip: IpAddr4::new(172, 16, 1, 1),
                peer_asn: 64512,
            })
            .originating(rack(14)),
    );
    let h = b.add_node("H", Box::new(hub));
    let l = b.add_node("L", Box::new(left));
    let r = b.add_node("R", Box::new(right));
    b.add_link(h, l, LinkSpec::default());
    b.add_link(h, r, LinkSpec::default());
    let mut sim = b.build();
    sim.run_until(secs(4));
    let rib = sim.node_as::<BgpRouter>(h).unwrap().rib();
    let members = rib.members(rack(14));
    assert_eq!(members.len(), 2, "two ECMP members");
    assert_eq!(members[0].peer_port, PortId(0));
    assert_eq!(members[1].peer_port, PortId(1));
    // The shared flow hash spreads distinct flows and pins each one.
    use dcn_wire::{ecmp_index, flow_hash, IPPROTO_UDP};
    let mut counts = [0usize; 2];
    for sp in 0..256u16 {
        let hsh = flow_hash(
            IpAddr4::new(10, 0, 0, 1),
            IpAddr4::new(192, 168, 14, 1),
            IPPROTO_UDP,
            7000 + sp,
            6000,
        );
        let i = ecmp_index(hsh, 2);
        assert_eq!(i, ecmp_index(hsh, 2), "per-flow stability");
        counts[i] += 1;
    }
    assert!(counts[0] > 80 && counts[1] > 80, "flows spread: {counts:?}");
}
