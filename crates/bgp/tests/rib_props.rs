//! Property tests on the BGP RIB: ECMP membership is always exactly the
//! set of minimal-length paths, operations are idempotent, and
//! `drop_peer` is equivalent to withdrawing everything that peer
//! advertised.

use proptest::prelude::*;

use dcn_bgp::Rib;
use dcn_sim::PortId;
use dcn_wire::{IpAddr4, Prefix};

#[derive(Clone, Debug)]
enum Op {
    Advertise { port: u16, third: u8, path_len: u8 },
    Withdraw { port: u16, third: u8 },
    DropPeer { port: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..4, 0u8..6, 1u8..5).prop_map(|(port, third, path_len)| Op::Advertise {
            port,
            third,
            path_len
        }),
        (0u16..4, 0u8..6).prop_map(|(port, third)| Op::Withdraw { port, third }),
        (0u16..4).prop_map(|port| Op::DropPeer { port }),
    ]
}

fn pfx(third: u8) -> Prefix {
    Prefix::new(IpAddr4::new(192, 168, third, 0), 24)
}

fn path(port: u16, len: u8) -> Vec<u32> {
    // Distinct contents per (port, len) so membership comparisons are
    // meaningful.
    (0..len as u32).map(|i| 64000 + port as u32 * 100 + i).collect()
}

/// A trivially correct reference model: map of (port, prefix) → path.
#[derive(Default)]
struct Model {
    adj: std::collections::BTreeMap<(u16, u8), Vec<u32>>,
}

impl Model {
    fn members(&self, third: u8) -> Vec<u16> {
        let mut best = usize::MAX;
        for ((_, t), p) in &self.adj {
            if *t == third {
                best = best.min(p.len());
            }
        }
        let mut m: Vec<u16> = self
            .adj
            .iter()
            .filter(|((_, t), p)| *t == third && p.len() == best)
            .map(|((port, _), _)| *port)
            .collect();
        m.sort_unstable();
        m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ecmp_membership_matches_reference_model(ops in proptest::collection::vec(arb_op(), 0..48)) {
        let mut rib = Rib::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Advertise { port, third, path_len } => {
                    rib.ingest_advert(PortId(port), pfx(third), path(port, path_len), IpAddr4(0));
                    model.adj.insert((port, third), path(port, path_len));
                }
                Op::Withdraw { port, third } => {
                    rib.ingest_withdraw(PortId(port), pfx(third));
                    model.adj.remove(&(port, third));
                }
                Op::DropPeer { port } => {
                    rib.drop_peer(PortId(port));
                    model.adj.retain(|(p, _), _| *p != port);
                }
            }
            for third in 0..6u8 {
                let got: Vec<u16> = rib.members(pfx(third)).iter().map(|e| e.peer_port.0).collect();
                prop_assert_eq!(&got, &model.members(third),
                    "prefix 192.168.{}.0/24 membership diverged", third);
            }
        }
    }

    #[test]
    fn withdraw_is_idempotent(port in 0u16..4, third in 0u8..6, len in 1u8..4) {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(port), pfx(third), path(port, len), IpAddr4(0));
        let c1 = rib.ingest_withdraw(PortId(port), pfx(third));
        let c2 = rib.ingest_withdraw(PortId(port), pfx(third));
        prop_assert_ne!(c1, dcn_bgp::rib::RibChange::Unchanged);
        prop_assert_eq!(c2, dcn_bgp::rib::RibChange::Unchanged);
    }

    #[test]
    fn readvertising_identical_path_reports_unchanged(port in 0u16..4, third in 0u8..6, len in 1u8..4) {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(port), pfx(third), path(port, len), IpAddr4(0));
        let c = rib.ingest_advert(PortId(port), pfx(third), path(port, len), IpAddr4(0));
        prop_assert_eq!(c, dcn_bgp::rib::RibChange::Unchanged);
    }

    #[test]
    fn lookup_agrees_with_members(adverts in proptest::collection::vec((0u16..4, 0u8..6, 1u8..4), 1..16)) {
        let mut rib = Rib::new();
        for (port, third, len) in adverts {
            rib.ingest_advert(PortId(port), pfx(third), path(port, len), IpAddr4(0));
        }
        for third in 0..6u8 {
            let host = IpAddr4::new(192, 168, third, 42);
            match rib.lookup(host) {
                Some((p, members)) => {
                    prop_assert_eq!(p, pfx(third));
                    prop_assert_eq!(members.len(), rib.members(pfx(third)).len());
                }
                None => prop_assert!(rib.members(pfx(third)).is_empty()),
            }
        }
    }
}
