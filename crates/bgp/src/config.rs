//! BGP router configuration (the programmatic form of Listing 1).

use dcn_sim::time::{millis, secs, Duration};
use dcn_sim::PortId;
use dcn_wire::{IpAddr4, Prefix};

/// One eBGP neighbor, bound to the point-to-point link on `port`.
#[derive(Clone, Copy, Debug)]
pub struct PeerConfig {
    pub port: PortId,
    pub local_ip: IpAddr4,
    pub peer_ip: IpAddr4,
    pub peer_asn: u32,
}

impl PeerConfig {
    /// Deterministic active/passive role: the lower address initiates the
    /// TCP connection (avoids the RFC 4271 collision dance).
    pub fn is_active(&self) -> bool {
        self.local_ip < self.peer_ip
    }
}

/// Full configuration of one BGP router.
#[derive(Clone, Debug)]
pub struct BgpConfig {
    pub name: String,
    pub asn: u32,
    pub router_id: u32,
    /// Paper: `timers bgp 1 3`.
    pub keepalive_interval: Duration,
    pub hold_time: Duration,
    /// Enable per-session BFD (the paper's third stack).
    pub bfd: bool,
    /// Paper: `transmit-interval 100` (ms).
    pub bfd_tx_interval: Duration,
    pub peers: Vec<PeerConfig>,
    /// Prefixes originated locally (a ToR's rack subnet).
    pub originate: Vec<Prefix>,
    /// ToR only: the rack subnet and its server→port map.
    pub rack_subnet: Option<Prefix>,
    pub host_ports: Vec<(IpAddr4, PortId)>,
    /// Idle-to-connect backoff.
    pub connect_retry: Duration,
    /// Use the compiled FIB and parse-once frame metadata on the data
    /// plane. Behavior (routes chosen, bytes on the wire, trace) is
    /// identical either way — the equivalence suite asserts bit-equal
    /// trace digests — so this stays on except when running that proof.
    pub fast_path: bool,
    /// Local fast reroute: when the hashed ECMP member is locally dead,
    /// re-spread over surviving members, then over the precomputed
    /// next-best backup set — in the data plane, before BFD/hold timers
    /// notice. At most one repair per packet (metadata loop guard);
    /// requires `fast_path`. Off by default so baseline behavior — and
    /// the trace digest — is exactly the pre-repair protocol.
    pub local_repair: bool,
}

impl BgpConfig {
    /// A router with the paper's timer settings and no peers yet.
    pub fn new(name: impl Into<String>, asn: u32, router_id: u32) -> BgpConfig {
        BgpConfig {
            name: name.into(),
            asn,
            router_id,
            keepalive_interval: secs(1),
            hold_time: secs(3),
            bfd: false,
            bfd_tx_interval: millis(100),
            peers: Vec::new(),
            originate: Vec::new(),
            rack_subnet: None,
            host_ports: Vec::new(),
            connect_retry: secs(1),
            fast_path: true,
            local_repair: false,
        }
    }

    pub fn with_fast_path(mut self, on: bool) -> BgpConfig {
        self.fast_path = on;
        self
    }

    pub fn with_local_repair(mut self, on: bool) -> BgpConfig {
        self.local_repair = on;
        self
    }

    pub fn with_bfd(mut self) -> BgpConfig {
        self.bfd = true;
        self
    }

    pub fn peer(mut self, p: PeerConfig) -> BgpConfig {
        self.peers.push(p);
        self
    }

    pub fn originating(mut self, prefix: Prefix) -> BgpConfig {
        self.originate.push(prefix);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_role_is_lower_address() {
        let p = PeerConfig {
            port: PortId(0),
            local_ip: IpAddr4::new(172, 16, 0, 1),
            peer_ip: IpAddr4::new(172, 16, 0, 2),
            peer_asn: 64512,
        };
        assert!(p.is_active());
        let q = PeerConfig { local_ip: p.peer_ip, peer_ip: p.local_ip, ..p };
        assert!(!q.is_active());
    }

    #[test]
    fn default_timers_match_listing1() {
        let c = BgpConfig::new("T-1", 64512, 1);
        assert_eq!(c.keepalive_interval, secs(1));
        assert_eq!(c.hold_time, secs(3));
        assert_eq!(c.bfd_tx_interval, millis(100));
        assert!(!c.bfd);
        assert!(BgpConfig::new("x", 1, 2).with_bfd().bfd);
    }
}
