//! The BGP/ECMP(/BFD) router protocol.

use std::any::Any;
use std::collections::BTreeMap;

use dcn_sim::time::{millis, Duration, Time};
use dcn_sim::{
    alloc_track, Ctx, FrameBuf, FrameClass, FrameMeta, PortId, Protocol, RouteChangeKind,
    SpanEvent, StatsSnapshot,
};
use dcn_tcp::{TcpConn, TcpEvent};
use dcn_bfd::{BfdEvent, BfdSession};
use dcn_wire::{
    flow_hash_of, BgpMessage, BgpUpdate, EtherType, EthernetFrame, IpAddr4, Ipv4Packet, MacAddr,
    Prefix, TcpSegment, UdpDatagram, BFD_CTRL_PORT, BGP_PORT, ETHERNET_HEADER_LEN,
    IPPROTO_TCP, IPPROTO_UDP, IPV4_HEADER_LEN,
};

use crate::config::BgpConfig;
use crate::fib::CompiledFib;
use crate::rib::{Rib, RibChange};

const TOKEN_TICK: u64 = 1;
/// Housekeeping cadence: fine enough for BFD's 100 ms transmit interval.
const TICK: Duration = millis(20);

/// Session FSM (condensed from RFC 4271: Connect/Active collapse into
/// `TcpPending` because roles are deterministic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fsm {
    Idle,
    TcpPending,
    OpenSent,
    OpenConfirm,
    Established,
}

impl Fsm {
    fn name(self) -> &'static str {
        match self {
            Fsm::Idle => "idle",
            Fsm::TcpPending => "tcp_pending",
            Fsm::OpenSent => "open_sent",
            Fsm::OpenConfirm => "open_confirm",
            Fsm::Established => "established",
        }
    }
}

struct Peer {
    cfg: crate::config::PeerConfig,
    asn_ok: bool,
    tcp: TcpConn,
    fsm: Fsm,
    rx_buf: Vec<u8>,
    hold_deadline: Time,
    keepalive_due: Time,
    connect_at: Time,
    bfd: Option<BfdSession>,
    /// Cached fully-encapsulated BFD keepalive, keyed by the encoded
    /// control packet. BFD packets carry no timestamp, so steady-state
    /// keepalives re-send the same bytes — one encode, then refcount bumps.
    bfd_frame: Option<(Vec<u8>, FrameBuf)>,
}

/// Counters for tests and the harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct BgpStats {
    pub opens_sent: u64,
    pub keepalives_sent: u64,
    pub updates_sent: u64,
    pub updates_received: u64,
    pub sessions_established: u64,
    pub sessions_lost: u64,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub data_dropped: u64,
    /// Frames that failed wire decoding (e.g. corrupted in flight) and
    /// were dropped instead of processed.
    pub malformed_frames_dropped: u64,
    /// Data packets the local-repair fast path steered around a dead
    /// egress (always 0 with `local_repair` off).
    pub locally_repaired: u64,
    /// Loss-window blackholes: packets with no route left, plus packets
    /// the ECMP hash sent into a locally-dead egress (the send still
    /// happens with `local_repair` off — BGP's lookup has no liveness
    /// mask — so the counter, maintained identically in both modes, is
    /// what makes on-vs-off loss windows comparable).
    pub blackholed_in_window: u64,
}

/// A BGP router bound to one emulated node.
pub struct BgpRouter {
    cfg: BgpConfig,
    rib: Rib,
    peers: Vec<Peer>,
    /// port → index into `peers` (one neighbor per fabric link).
    port_peer: BTreeMap<PortId, usize>,
    /// Adj-RIB-Out: what we last advertised to each peer.
    adj_out: BTreeMap<PortId, BTreeMap<Prefix, Vec<u32>>>,
    /// Compiled Loc-RIB for the data-plane fast path, rebuilt lazily
    /// whenever `fib_key` no longer matches [`Rib::version`].
    fib: CompiledFib,
    fib_key: Option<u64>,
    /// Whether the first local repair of the current FIB generation was
    /// already traced (the repair span fires once per generation, not
    /// per packet, and never allocates on the forwarding path).
    repair_noted: bool,
    stats: BgpStats,
}

impl BgpRouter {
    pub fn new(cfg: BgpConfig) -> BgpRouter {
        let mut rib = Rib::new();
        for &p in &cfg.originate {
            rib.add_local(p);
        }
        if let Some(rack) = cfg.rack_subnet {
            // Rack subnet is connected (and originated into BGP).
            if let Some(&(_, port)) = cfg.host_ports.first() {
                rib.add_connected(rack, port, IpAddr4(rack.addr.0 | 254));
            }
        }
        let mut peers = Vec::new();
        let mut port_peer = BTreeMap::new();
        for (i, &pc) in cfg.peers.iter().enumerate() {
            rib.add_connected(
                Prefix::new(IpAddr4(pc.local_ip.0 & 0xFFFF_FF00), 24),
                pc.port,
                pc.local_ip,
            );
            let ephemeral = 40000 + (pc.local_ip.0.min(pc.peer_ip.0) & 0x0FFF) as u16;
            let isn = cfg.router_id ^ (i as u32) << 8;
            let tcp = if pc.is_active() {
                TcpConn::new(ephemeral, BGP_PORT, isn)
            } else {
                TcpConn::new(BGP_PORT, ephemeral, isn)
            };
            port_peer.insert(pc.port, peers.len());
            peers.push(Peer {
                cfg: pc,
                asn_ok: false,
                tcp,
                fsm: Fsm::Idle,
                rx_buf: Vec::new(),
                hold_deadline: 0,
                keepalive_due: 0,
                connect_at: 0,
                bfd: cfg
                    .bfd
                    .then(|| BfdSession::new(cfg.router_id ^ pc.port.0 as u32)
                        .with_tx_interval(cfg.bfd_tx_interval)),
                bfd_frame: None,
            });
        }
        BgpRouter {
            cfg,
            rib,
            peers,
            port_peer,
            adj_out: BTreeMap::new(),
            fib: CompiledFib::new(),
            fib_key: None,
            repair_noted: false,
            stats: BgpStats::default(),
        }
    }

    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    pub fn asn(&self) -> u32 {
        self.cfg.asn
    }

    pub fn stats(&self) -> BgpStats {
        self.stats
    }

    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// The rack subnet this router serves directly (ToRs only).
    pub fn rack_subnet(&self) -> Option<Prefix> {
        self.cfg.rack_subnet
    }

    /// Established-session count (convergence checks in tests).
    pub fn established_sessions(&self) -> usize {
        self.peers.iter().filter(|p| p.fsm == Fsm::Established).count()
    }

    /// Render the kernel-style routing table (Listing 3).
    pub fn render_table(&self) -> String {
        self.rib.render(|port| {
            self.port_peer
                .get(&port)
                .map(|&i| self.peers[i].cfg.peer_ip)
        })
    }

    // ------------------------------------------------------------------
    // Frame emission
    // ------------------------------------------------------------------

    fn build_ip_frame(
        node: u32,
        port: PortId,
        proto: u8,
        src: IpAddr4,
        dst: IpAddr4,
        payload: Vec<u8>,
    ) -> FrameBuf {
        let pkt = Ipv4Packet::new(src, dst, proto, payload);
        let frame = EthernetFrame {
            dst: MacAddr::for_node_port(node, port.0), // p2p: any unicast works
            src: MacAddr::for_node_port(node, port.0),
            ethertype: EtherType::Ipv4,
            payload: pkt.encode(),
        };
        FrameBuf::new(frame.encode())
    }

    #[allow(clippy::too_many_arguments)]
    fn send_ip(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        proto: u8,
        src: IpAddr4,
        dst: IpAddr4,
        payload: Vec<u8>,
        class: FrameClass,
    ) {
        let frame = Self::build_ip_frame(ctx.node().0, port, proto, src, dst, payload);
        ctx.send(port, frame, class);
    }

    fn emit_segments(
        &mut self,
        ctx: &mut Ctx<'_>,
        peer_idx: usize,
        segments: Vec<TcpSegment>,
        class: FrameClass,
    ) {
        let (port, src, dst) = {
            let p = &self.peers[peer_idx];
            (p.cfg.port, p.cfg.local_ip, p.cfg.peer_ip)
        };
        for seg in segments {
            // Classify transport-level frames independent of the app
            // class: empty payloads are handshake/acks.
            let c = if seg.payload.is_empty() {
                if seg.flags.contains(dcn_wire::TcpFlags::SYN)
                    || seg.flags.contains(dcn_wire::TcpFlags::RST)
                {
                    FrameClass::Session
                } else {
                    FrameClass::Ack
                }
            } else {
                class
            };
            self.send_ip(ctx, port, IPPROTO_TCP, src, dst, seg.encode(), c);
        }
    }

    fn send_bgp(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize, msg: &BgpMessage) {
        let class = match msg {
            BgpMessage::Keepalive => FrameClass::Keepalive,
            BgpMessage::Update(_) => FrameClass::Update,
            _ => FrameClass::Session,
        };
        match msg {
            BgpMessage::Keepalive => self.stats.keepalives_sent += 1,
            BgpMessage::Update(_) => self.stats.updates_sent += 1,
            BgpMessage::Open { .. } => self.stats.opens_sent += 1,
            _ => {}
        }
        let bytes = msg.encode();
        let now = ctx.now();
        let out = self.peers[peer_idx].tcp.send(&bytes, now);
        self.emit_segments(ctx, peer_idx, out.segments, class);
    }

    /// Move a peer's session FSM, recording the transition as a span so
    /// the storyboard analyzer can reconstruct session timelines.
    fn set_fsm(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize, to: Fsm) {
        let from = self.peers[peer_idx].fsm;
        if from == to {
            return;
        }
        self.peers[peer_idx].fsm = to;
        ctx.trace_span(SpanEvent::BgpFsm {
            port: self.peers[peer_idx].cfg.port,
            from: from.name(),
            to: to.name(),
        });
    }

    // ------------------------------------------------------------------
    // Export policy
    // ------------------------------------------------------------------

    /// The AS path we would advertise for `prefix` to `peer`, or None.
    fn export_path(&self, prefix: Prefix, peer_idx: usize) -> Option<Vec<u32>> {
        let peer = &self.peers[peer_idx];
        if self.rib.is_local(prefix) {
            return Some(vec![self.cfg.asn]);
        }
        let best = self.rib.best(prefix)?;
        // Sender-side loop check: a path through the peer's own AS would
        // be discarded on arrival anyway.
        if best.as_path.contains(&peer.cfg.peer_asn) || best.peer_port == peer.cfg.port {
            return None;
        }
        let mut path = Vec::with_capacity(best.as_path.len() + 1);
        path.push(self.cfg.asn);
        path.extend_from_slice(&best.as_path);
        Some(path)
    }

    /// Re-run the export policy for `prefixes` toward every established
    /// peer, emitting batched UPDATEs where the Adj-RIB-Out changed.
    fn reexport(&mut self, ctx: &mut Ctx<'_>, prefixes: &[Prefix]) {
        let mut batch_peers = 0usize;
        let mut batch_prefixes = 0usize;
        for peer_idx in 0..self.peers.len() {
            if self.peers[peer_idx].fsm != Fsm::Established {
                continue;
            }
            let port = self.peers[peer_idx].cfg.port;
            let mut withdrawn = Vec::new();
            let mut adverts: BTreeMap<Vec<u32>, Vec<Prefix>> = BTreeMap::new();
            for &pfx in prefixes {
                let export = self.export_path(pfx, peer_idx);
                let out = self.adj_out.entry(port).or_default();
                match export {
                    Some(path) => {
                        if out.get(&pfx) != Some(&path) {
                            out.insert(pfx, path.clone());
                            adverts.entry(path).or_default().push(pfx);
                        }
                    }
                    None => {
                        if out.remove(&pfx).is_some() {
                            withdrawn.push(pfx);
                        }
                    }
                }
            }
            let next_hop = self.peers[peer_idx].cfg.local_ip;
            let peer_prefixes =
                withdrawn.len() + adverts.values().map(|n| n.len()).sum::<usize>();
            let mut first = true;
            for (path, nlri) in adverts {
                let msg = BgpMessage::Update(BgpUpdate {
                    withdrawn: if first { std::mem::take(&mut withdrawn) } else { Vec::new() },
                    as_path: path,
                    next_hop: Some(next_hop),
                    nlri,
                });
                first = false;
                self.send_bgp(ctx, peer_idx, &msg);
            }
            if !withdrawn.is_empty() {
                let msg = BgpMessage::Update(BgpUpdate { withdrawn, ..Default::default() });
                self.send_bgp(ctx, peer_idx, &msg);
            }
            if peer_prefixes > 0 {
                batch_peers += 1;
                batch_prefixes += peer_prefixes;
            }
        }
        if batch_peers > 0 {
            ctx.trace_span(SpanEvent::BgpUpdateBatch {
                peers: batch_peers.min(u8::MAX as usize) as u8,
                prefixes: batch_prefixes.min(u8::MAX as usize) as u8,
            });
        }
    }

    fn trace_changes(&mut self, ctx: &mut Ctx<'_>, changes: &[(Prefix, RibChange)]) {
        for &(pfx, change) in changes {
            let kind = match change {
                RibChange::Gained => RouteChangeKind::Install,
                RibChange::Changed | RibChange::Lost => RouteChangeKind::Withdraw,
                RibChange::Unchanged => continue,
            };
            ctx.trace_route_change(kind, pfx.addr.0 as u64);
        }
    }

    // ------------------------------------------------------------------
    // Session lifecycle
    // ------------------------------------------------------------------

    fn on_established(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize) {
        self.stats.sessions_established += 1;
        let now = ctx.now();
        self.set_fsm(ctx, peer_idx, Fsm::Established);
        {
            let p = &mut self.peers[peer_idx];
            p.keepalive_due = now + self.cfg.keepalive_interval;
            p.hold_deadline = now + self.cfg.hold_time;
        }
        // Initial table dump: everything exportable.
        let mut prefixes = self.rib.local_prefixes().to_vec();
        prefixes.extend(self.rib.learned_prefixes());
        // reexport skips non-established peers, so temporarily narrow to
        // just this one by running the standard path (cheap at DCN scale).
        self.reexport(ctx, &prefixes);
    }

    fn session_down(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize, reason: &'static str) {
        let was_active = self.peers[peer_idx].fsm != Fsm::Idle;
        let port = self.peers[peer_idx].cfg.port;
        if was_active {
            self.stats.sessions_lost += 1;
            ctx.trace_span(SpanEvent::BgpSessionDown {
                port,
                reason,
                carrier: reason == "carrier_down",
            });
        }
        let now = ctx.now();
        let rst = self.peers[peer_idx].tcp.reset(now);
        self.emit_segments(ctx, peer_idx, rst.segments, FrameClass::Session);
        self.set_fsm(ctx, peer_idx, Fsm::Idle);
        {
            let p = &mut self.peers[peer_idx];
            p.rx_buf.clear();
            p.asn_ok = false;
            p.connect_at = now + self.cfg.connect_retry + ctx.rand_below(millis(200));
            if let Some(b) = p.bfd.as_mut() {
                b.force_down();
            }
        }
        self.adj_out.remove(&port);
        let changes = self.rib.drop_peer(port);
        if !changes.is_empty() {
            self.trace_changes(ctx, &changes);
            let prefixes: Vec<Prefix> = changes.iter().map(|(p, _)| *p).collect();
            self.reexport(ctx, &prefixes);
        }
    }

    // ------------------------------------------------------------------
    // Message processing
    // ------------------------------------------------------------------

    fn on_bgp_bytes(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize, bytes: &[u8]) {
        self.peers[peer_idx].rx_buf.extend_from_slice(bytes);
        loop {
            let (msg, used) = match BgpMessage::decode(&self.peers[peer_idx].rx_buf) {
                Ok(ok) => ok,
                Err(dcn_wire::WireError::Truncated) => break,
                Err(_) => {
                    // Protocol error: NOTIFICATION + teardown.
                    let note = BgpMessage::Notification { code: 1, subcode: 0 };
                    self.send_bgp(ctx, peer_idx, &note);
                    self.session_down(ctx, peer_idx, "bgp_msg_error");
                    return;
                }
            };
            self.peers[peer_idx].rx_buf.drain(..used);
            self.peers[peer_idx].hold_deadline = ctx.now() + self.cfg.hold_time;
            match msg {
                BgpMessage::Open { asn, .. } => {
                    if asn as u32 != self.peers[peer_idx].cfg.peer_asn {
                        let note = BgpMessage::Notification { code: 2, subcode: 2 };
                        self.send_bgp(ctx, peer_idx, &note);
                        self.session_down(ctx, peer_idx, "bgp_bad_asn");
                        return;
                    }
                    self.peers[peer_idx].asn_ok = true;
                    self.send_bgp(ctx, peer_idx, &BgpMessage::Keepalive);
                    if self.peers[peer_idx].fsm == Fsm::OpenSent {
                        self.set_fsm(ctx, peer_idx, Fsm::OpenConfirm);
                    }
                }
                BgpMessage::Keepalive => {
                    if self.peers[peer_idx].fsm == Fsm::OpenConfirm {
                        self.on_established(ctx, peer_idx);
                    }
                }
                BgpMessage::Update(update) => {
                    self.stats.updates_received += 1;
                    self.on_update(ctx, peer_idx, update);
                }
                BgpMessage::Notification { .. } => {
                    self.session_down(ctx, peer_idx, "bgp_notification");
                    return;
                }
            }
        }
    }

    fn on_update(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize, update: BgpUpdate) {
        let port = self.peers[peer_idx].cfg.port;
        let mut changes = Vec::new();
        for pfx in update.withdrawn {
            let c = self.rib.ingest_withdraw(port, pfx);
            if c != RibChange::Unchanged {
                changes.push((pfx, c));
            }
        }
        if !update.nlri.is_empty() && !update.as_path.contains(&self.cfg.asn) {
            let nh = update.next_hop.unwrap_or(self.peers[peer_idx].cfg.peer_ip);
            for pfx in update.nlri {
                let c = self.rib.ingest_advert(port, pfx, update.as_path.clone(), nh);
                if c != RibChange::Unchanged {
                    changes.push((pfx, c));
                }
            }
        }
        if !changes.is_empty() {
            self.trace_changes(ctx, &changes);
            let prefixes: Vec<Prefix> = changes.iter().map(|(p, _)| *p).collect();
            self.reexport(ctx, &prefixes);
        }
    }

    fn on_tcp_segment(&mut self, ctx: &mut Ctx<'_>, peer_idx: usize, seg: &TcpSegment) {
        let now = ctx.now();
        let out = self.peers[peer_idx].tcp.on_segment(seg, now);
        // Data segments emitted during handshake completion carry queued
        // table dumps: class Update.
        self.emit_segments(ctx, peer_idx, out.segments, FrameClass::Update);
        for ev in &out.events {
            match ev {
                TcpEvent::Established => {
                    let open = BgpMessage::Open {
                        asn: self.cfg.asn as u16,
                        hold_time_secs: (self.cfg.hold_time / dcn_sim::time::SECONDS) as u16,
                        router_id: self.cfg.router_id,
                    };
                    self.set_fsm(ctx, peer_idx, Fsm::OpenSent);
                    self.peers[peer_idx].hold_deadline = now + self.cfg.hold_time;
                    self.send_bgp(ctx, peer_idx, &open);
                }
                TcpEvent::Closed => {
                    self.session_down(ctx, peer_idx, "tcp_closed");
                    return;
                }
            }
        }
        if !out.delivered.is_empty() {
            let bytes = out.delivered;
            self.on_bgp_bytes(ctx, peer_idx, &bytes);
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    fn forward_data(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        if let Some(rack) = self.cfg.rack_subnet {
            if rack.contains(pkt.dst) {
                if let Some(&(_, port)) = self.cfg.host_ports.iter().find(|(ip, _)| *ip == pkt.dst)
                {
                    let frame = EthernetFrame {
                        dst: MacAddr::for_node_port(ctx.node().0, port.0),
                        src: MacAddr::for_node_port(ctx.node().0, port.0),
                        ethertype: EtherType::Ipv4,
                        payload: pkt.encode(),
                    };
                    self.stats.data_delivered += 1;
                    ctx.send(port, frame.encode(), FrameClass::Data);
                } else {
                    self.stats.data_dropped += 1;
                }
                return;
            }
        }
        if pkt.ttl <= 1 {
            self.stats.data_dropped += 1;
            return;
        }
        let Some((_, members)) = self.rib.lookup(pkt.dst) else {
            self.stats.data_dropped += 1;
            self.stats.blackholed_in_window += 1;
            return;
        };
        let hash = flow_hash_of(&pkt);
        let port = members[dcn_wire::ecmp_index(hash, members.len())].peer_port;
        if !ctx.port(port).up {
            // The hash landed on a locally-dead egress: the send below
            // still happens (the RIB carries no liveness), but the packet
            // is lost on the wire — count it toward the loss window.
            self.stats.blackholed_in_window += 1;
        }
        let mut out = pkt;
        out.ttl -= 1;
        let frame = EthernetFrame {
            dst: MacAddr::for_node_port(ctx.node().0, port.0),
            src: MacAddr::for_node_port(ctx.node().0, port.0),
            ethertype: EtherType::Ipv4,
            payload: out.encode(),
        };
        self.stats.data_forwarded += 1;
        ctx.send(port, frame.encode(), FrameClass::Data);
    }

    /// The data-plane fast path: forward using the parsed-at-ingress
    /// [`FrameMeta`] and the compiled FIB, without re-decoding the frame.
    ///
    /// Every branch mirrors [`Self::forward_data`] in order (rack
    /// delivery, TTL guard, longest-prefix lookup), and the transit
    /// rewrite is byte-identical to the slow path's decode → `ttl -= 1` →
    /// re-encode: our canonical IPv4 headers differ only in the TTL and
    /// checksum bytes, so one copy plus an in-place patch produces the
    /// same frame the struct round-trip would. Unlike MR-MTP transit
    /// (immutable frames, pure refcount bump), IP's TTL rewrite makes one
    /// buffer per forwarded packet unavoidable — the copy here is the
    /// only allocation.
    #[allow(clippy::too_many_arguments)]
    fn forward_fast(
        &mut self,
        ctx: &mut Ctx<'_>,
        arrival: PortId,
        frame: &FrameBuf,
        dst: IpAddr4,
        flow: u64,
        ttl: u8,
        repaired: bool,
    ) {
        const IP: usize = ETHERNET_HEADER_LEN;
        if let Some(rack) = self.cfg.rack_subnet {
            if rack.contains(dst) {
                match self.cfg.host_ports.iter().find(|&&(ip, _)| ip == dst) {
                    Some(&(_, port)) => {
                        // Terminal delivery re-frames the unchanged IP
                        // bytes toward the host port.
                        let mac = MacAddr::for_node_port(ctx.node().0, port.0);
                        let mut out = Vec::with_capacity(frame.len());
                        EthernetFrame::put_header(&mut out, mac, mac, EtherType::Ipv4);
                        out.extend_from_slice(&frame[IP..]);
                        self.stats.data_delivered += 1;
                        ctx.send(port, FrameBuf::new(out), FrameClass::Data);
                    }
                    None => self.stats.data_dropped += 1,
                }
                return;
            }
        }
        if ttl <= 1 {
            self.stats.data_dropped += 1;
            return;
        }
        let key = self.rib.version();
        if self.fib_key != Some(key) {
            self.fib.rebuild(&self.rib);
            self.fib_key = Some(key);
            // New FIB generation: the once-per-generation repair-span
            // dedup starts over.
            self.repair_noted = false;
        }
        let mut note_repair = None;
        {
            let _scope = alloc_track::scope();
            // Local fast reroute: a not-yet-repaired packet may be
            // steered around a locally-dead egress; a repaired one gets
            // exactly the plain (off-mode) pick — the loop guard.
            let pick = if self.cfg.local_repair && !repaired {
                self.fib
                    .lookup_repair(dst, flow, |p| ctx.port(p).up, Some(arrival))
            } else {
                self.fib.lookup(dst, flow).map(|p| (p, false))
            };
            let Some((port, fixed)) = pick else {
                self.stats.data_dropped += 1;
                self.stats.blackholed_in_window += 1;
                return;
            };
            if fixed {
                self.stats.locally_repaired += 1;
                if !self.repair_noted {
                    self.repair_noted = true;
                    note_repair = Some(port);
                }
            } else if !ctx.port(port).up {
                // Off-mode (or unrepaired) pick into a dead egress: the
                // send still happens, the packet dies on the wire.
                self.stats.blackholed_in_window += 1;
            }
            let mac = MacAddr::for_node_port(ctx.node().0, port.0);
            let out = frame.mutate_copy(|out| {
                out[..6].copy_from_slice(&mac.0);
                out[6..12].copy_from_slice(&mac.0);
                out[IP + 8] = ttl - 1;
                out[IP + 10] = 0;
                out[IP + 11] = 0;
                let csum = dcn_wire::internet_checksum(&out[IP..IP + IPV4_HEADER_LEN]);
                out[IP + 10..IP + 12].copy_from_slice(&csum.to_be_bytes());
            });
            self.stats.data_forwarded += 1;
            ctx.send_meta(
                port,
                out,
                FrameClass::Data,
                FrameMeta::Ipv4Data { dst, flow, ttl: ttl - 1, repaired: repaired || fixed },
            );
            alloc_track::note_forward();
        }
        if let Some(port) = note_repair {
            ctx.trace_span(SpanEvent::LocalRepair { port });
        }
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        for peer_idx in 0..self.peers.len() {
            let port = self.peers[peer_idx].cfg.port;
            if !ctx.port(port).up {
                continue; // carrier handling killed these sessions already
            }
            // Connection management.
            if self.peers[peer_idx].fsm == Fsm::Idle && now >= self.peers[peer_idx].connect_at {
                let active = self.peers[peer_idx].cfg.is_active();
                self.set_fsm(ctx, peer_idx, Fsm::TcpPending);
                self.peers[peer_idx].hold_deadline = now + self.cfg.hold_time * 4;
                if active {
                    let out = self.peers[peer_idx].tcp.connect(now);
                    self.emit_segments(ctx, peer_idx, out.segments, FrameClass::Session);
                } else {
                    self.peers[peer_idx].tcp.listen();
                }
            }
            // TCP retransmission.
            let out = self.peers[peer_idx].tcp.tick(now);
            self.emit_segments(ctx, peer_idx, out.segments, FrameClass::Session);
            for ev in &out.events {
                if *ev == TcpEvent::Closed {
                    self.session_down(ctx, peer_idx, "tcp_retx_exhausted");
                }
            }
            // Keepalives and hold timer.
            let fsm = self.peers[peer_idx].fsm;
            if fsm == Fsm::Established && now >= self.peers[peer_idx].keepalive_due {
                self.peers[peer_idx].keepalive_due = now + self.cfg.keepalive_interval;
                self.send_bgp(ctx, peer_idx, &BgpMessage::Keepalive);
            }
            if matches!(fsm, Fsm::OpenSent | Fsm::OpenConfirm | Fsm::Established | Fsm::TcpPending)
                && now > self.peers[peer_idx].hold_deadline
            {
                self.session_down(ctx, peer_idx, "bgp_hold_expired");
                continue;
            }
            // BFD.
            if let Some(mut bfd) = self.peers[peer_idx].bfd.take() {
                let (pkt, event) = bfd.tick(now);
                self.peers[peer_idx].bfd = Some(bfd);
                if let Some(pkt) = pkt {
                    let (src, dst) = {
                        let c = &self.peers[peer_idx].cfg;
                        (c.local_ip, c.peer_ip)
                    };
                    // BFD control packets are timestamp-free, so in steady
                    // state every keepalive encodes to the same bytes: cache
                    // the encapsulated frame and re-send by refcount bump.
                    let key = pkt.encode();
                    let frame = match &self.peers[peer_idx].bfd_frame {
                        Some((k, f)) if *k == key => f.clone(),
                        _ => {
                            let udp = UdpDatagram::new(49152, BFD_CTRL_PORT, key.clone());
                            let f = Self::build_ip_frame(
                                ctx.node().0, port, IPPROTO_UDP, src, dst, udp.encode(),
                            );
                            self.peers[peer_idx].bfd_frame = Some((key, f.clone()));
                            f
                        }
                    };
                    ctx.send(port, frame, FrameClass::Keepalive);
                }
                if event == Some(BfdEvent::SessionDown)
                    && self.peers[peer_idx].fsm == Fsm::Established
                {
                    self.session_down(ctx, peer_idx, "bfd_down");
                }
            }
        }
        // The tick cadence is engine-managed (see `on_start`): no re-arm here.
    }
}

impl StatsSnapshot for BgpRouter {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = &self.stats;
        vec![
            ("opens_sent", s.opens_sent),
            ("keepalives_sent", s.keepalives_sent),
            ("updates_sent", s.updates_sent),
            ("updates_received", s.updates_received),
            ("sessions_established", s.sessions_established),
            ("sessions_lost", s.sessions_lost),
            ("data_forwarded", s.data_forwarded),
            ("data_delivered", s.data_delivered),
            ("data_dropped", s.data_dropped),
            ("malformed_frames_dropped", s.malformed_frames_dropped),
            ("locally_repaired", s.locally_repaired),
            ("blackholed_in_window", s.blackholed_in_window),
        ]
    }

    fn gauges(&self) -> Vec<(&'static str, u64)> {
        let count = |f: Fsm| self.peers.iter().filter(|p| p.fsm == f).count() as u64;
        let retx_queue: u64 = self.peers.iter().map(|p| p.tcp.unacked() as u64).sum();
        let adj_out: u64 = self.adj_out.values().map(|m| m.len() as u64).sum();
        let bfd_up = self
            .peers
            .iter()
            .filter(|p| p.bfd.as_ref().is_some_and(|b| b.is_up()))
            .count() as u64;
        let bfd_transitions: u64 = self
            .peers
            .iter()
            .filter_map(|p| p.bfd.as_ref().map(|b| b.transitions()))
            .sum();
        vec![
            ("rib_routes", self.rib.route_count() as u64),
            ("rib_paths", self.rib.path_count() as u64),
            ("sessions_idle", count(Fsm::Idle)),
            ("sessions_pending", count(Fsm::TcpPending) + count(Fsm::OpenSent) + count(Fsm::OpenConfirm)),
            ("sessions_up", count(Fsm::Established)),
            ("tcp_retransmit_queue", retx_queue),
            ("adj_out_prefixes", adj_out),
            ("bfd_sessions_up", bfd_up),
            ("bfd_transitions", bfd_transitions),
        ]
    }
}

impl Protocol for BgpRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = ctx.rand_below(millis(5));
        ctx.set_periodic(TICK + jitter, TICK, TOKEN_TICK);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &FrameBuf) {
        let Ok(eth) = EthernetFrame::decode(frame) else {
            self.stats.malformed_frames_dropped += 1;
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return; // BGP fabrics ignore MR-MTP frames and vice versa
        }
        let Ok(pkt) = Ipv4Packet::decode(&eth.payload) else {
            self.stats.malformed_frames_dropped += 1;
            return;
        };
        // Control traffic addressed to our side of this link?
        if let Some(&peer_idx) = self.port_peer.get(&port) {
            if pkt.dst == self.peers[peer_idx].cfg.local_ip {
                match pkt.protocol {
                    IPPROTO_TCP => {
                        match TcpSegment::decode(&pkt.payload) {
                            Ok(seg) => self.on_tcp_segment(ctx, peer_idx, &seg),
                            Err(_) => self.stats.malformed_frames_dropped += 1,
                        }
                    }
                    IPPROTO_UDP => {
                        let Ok(udp) = UdpDatagram::decode(&pkt.payload) else {
                            self.stats.malformed_frames_dropped += 1;
                            return;
                        };
                        {
                            if udp.dst_port == BFD_CTRL_PORT {
                                let Ok(bp) = dcn_wire::BfdPacket::decode(&udp.payload) else {
                                    self.stats.malformed_frames_dropped += 1;
                                    return;
                                };
                                {
                                    let now = ctx.now();
                                    if let Some(mut bfd) = self.peers[peer_idx].bfd.take() {
                                        let (reply, event) = bfd.on_packet(&bp, now);
                                        self.peers[peer_idx].bfd = Some(bfd);
                                        if let Some(r) = reply {
                                            let (src, dst) = {
                                                let c = &self.peers[peer_idx].cfg;
                                                (c.local_ip, c.peer_ip)
                                            };
                                            let udp =
                                                UdpDatagram::new(49152, BFD_CTRL_PORT, r.encode());
                                            self.send_ip(
                                                ctx,
                                                port,
                                                IPPROTO_UDP,
                                                src,
                                                dst,
                                                udp.encode(),
                                                FrameClass::Keepalive,
                                            );
                                        }
                                        if event == Some(BfdEvent::SessionDown)
                                            && self.peers[peer_idx].fsm == Fsm::Established
                                        {
                                            self.session_down(ctx, peer_idx, "bfd_down");
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
                return;
            }
        }
        // Otherwise: transit data.
        self.forward_data(ctx, pkt);
    }

    fn on_frame_meta(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        frame: &FrameBuf,
        meta: Option<FrameMeta>,
    ) {
        if self.cfg.fast_path {
            if let Some(FrameMeta::Ipv4Data { dst, flow, ttl, repaired }) = meta {
                // Control-demux guard: anything addressed to our side of
                // a fabric link is session traffic and takes the full
                // decode path. Data frames never are, so this is one
                // map probe per packet.
                let is_control = self
                    .port_peer
                    .get(&port)
                    .is_some_and(|&i| dst == self.peers[i].cfg.local_ip);
                if !is_control {
                    self.forward_fast(ctx, port, frame, dst, flow, ttl, repaired);
                    return;
                }
            }
        }
        self.on_frame(ctx, port, frame);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_TICK {
            self.tick(ctx);
        }
    }

    fn on_port_down(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        // FRR's interface tracking: carrier loss kills the session at
        // once — no waiting for timers on the local side.
        if let Some(&peer_idx) = self.port_peer.get(&port) {
            self.session_down(ctx, peer_idx, "carrier_down");
        }
    }

    fn on_port_up(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        if let Some(&peer_idx) = self.port_peer.get(&port) {
            let now = ctx.now();
            self.peers[peer_idx].connect_at = now + self.cfg.connect_retry;
        }
    }

    fn stats_snapshot(&self) -> Option<&dyn StatsSnapshot> {
        Some(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeerConfig;

    fn cfg() -> BgpConfig {
        BgpConfig::new("T-1", 64512, 0x0A000001).peer(PeerConfig {
            port: PortId(0),
            local_ip: IpAddr4::new(172, 16, 0, 1),
            peer_ip: IpAddr4::new(172, 16, 0, 2),
            peer_asn: 64513,
        })
    }

    #[test]
    fn new_router_is_idle_with_connected_routes() {
        let r = BgpRouter::new(cfg());
        assert_eq!(r.established_sessions(), 0);
        assert_eq!(r.rib().route_count(), 1, "connected /24 of the peer link");
        assert_eq!(r.asn(), 64512);
        assert_eq!(r.name(), "T-1");
    }

    #[test]
    fn export_path_prepends_own_asn_and_filters_loops() {
        let mut r = BgpRouter::new(cfg());
        r.rib.add_local(Prefix::new(IpAddr4::new(192, 168, 11, 0), 24));
        let local = r
            .export_path(Prefix::new(IpAddr4::new(192, 168, 11, 0), 24), 0)
            .unwrap();
        assert_eq!(local, vec![64512]);
        // A learned path through the peer's AS must not be exported back.
        let p = Prefix::new(IpAddr4::new(192, 168, 12, 0), 24);
        r.rib.ingest_advert(PortId(0), p, vec![64513, 65002], IpAddr4(0));
        assert_eq!(r.export_path(p, 0), None);
    }

    #[test]
    fn originated_prefixes_land_in_rib_as_local() {
        let rack = Prefix::new(IpAddr4::new(192, 168, 11, 0), 24);
        let c = cfg().originating(rack);
        let r = BgpRouter::new(c);
        assert!(r.rib().is_local(rack));
    }
}
