//! # dcn-bgp — eBGP with ECMP for folded-Clos DCNs (the paper's baseline)
//!
//! An implementation of BGP as deployed in data centers per RFC 7938 and
//! the paper's FRRouting configuration (Listing 1):
//!
//! * eBGP sessions over [`dcn_tcp`] on every fabric link, one per
//!   neighbor, with the paper's `timers bgp 1 3` (1 s keepalive, 3 s hold);
//! * per-tier ASN plan (top spines 64512, PoD spines 64513+p, per-ToR
//!   ASNs) giving AS-path-based loop prevention and automatic valley-free
//!   routing;
//! * shortest-AS-path selection with **multipath** (`maximum-paths`):
//!   equal-length paths form an ECMP set, and the data plane hashes flows
//!   across members;
//! * UPDATE generation with batched withdrawn-routes and NLRI sections,
//!   byte-accurate per `dcn-wire`, driving the paper's Fig. 6
//!   control-overhead comparison;
//! * optional [`dcn_bfd`] supervision per session (the paper's
//!   BGP/ECMP/BFD stack): a BFD `SessionDown` tears the BGP session
//!   exactly like a hold-timer expiry, but in 300 ms instead of 3 s;
//! * immediate session teardown on local carrier loss (FRR's interface
//!   tracking) — the failure-visibility asymmetry at the heart of the
//!   paper's TC1–TC4 analysis.
//!
//! Omissions relative to a full BGP-4 stack, none of which affect the
//! reproduced metrics: communities/MED/local-pref (single-metric decision
//! in a DCN), route reflection and iBGP (RFC 7938 uses eBGP only), and
//! graceful restart.

pub mod config;
pub mod fib;
pub mod rib;
pub mod router;

pub use config::{BgpConfig, PeerConfig};
pub use fib::CompiledFib;
pub use rib::{PathEntry, Rib};
pub use router::{BgpRouter, BgpStats};
