//! Compiled forwarding table: the BGP data-plane fast path.
//!
//! [`Rib::lookup`] scans every Loc-RIB key per packet and materializes a
//! `Vec` of path references — fine for the control plane, wasteful per
//! forwarded frame. The [`CompiledFib`] flattens the Loc-RIB into a list
//! of `(prefix, next-hop ports)` pairs sorted by descending prefix
//! length, so a lookup is a linear first-containing-match scan (DCN RIBs
//! hold tens of prefixes, not an Internet table) and ECMP selection is
//! an index into a [`SmallVec`] that stays inline for fabrics with up to
//! eight equal-cost uplinks.
//!
//! Equivalence with the slow path: distinct same-length IPv4 prefixes are
//! disjoint, so the first containing match in (length desc, addr asc)
//! order is exactly the longest match `Rib::lookup` finds — and for the
//! degenerate case of overlapping equal-length entries both orders keep
//! the lowest address. The port list is `Rib::members` order (sorted by
//! peer port), so `flow % n` picks the identical member.
//!
//! Rebuilds are keyed on [`Rib::version`] and happen only when the
//! Loc-RIB actually changed; lookups never allocate.

use dcn_sim::PortId;
use dcn_wire::IpAddr4;
use smallvec::SmallVec;

use crate::rib::Rib;

/// One compiled route: the ECMP best set plus the precomputed
/// local-repair backup set (next-best Adj-RIB-In candidates).
struct Route {
    prefix: dcn_wire::Prefix,
    /// ECMP member ports, `Rib::members` order (sorted by peer port).
    ports: SmallVec<PortId, 8>,
    /// Local-repair fallback: [`Rib::backup_members`] — the ports the
    /// control plane would promote once the best set is withdrawn.
    /// Consulted only by [`CompiledFib::lookup_repair`].
    backups: SmallVec<PortId, 8>,
}

/// The compiled Loc-RIB. Next-hop port sets stay inline up to 8 members
/// (a pod spine's uplink radix in the paper's topologies).
#[derive(Default)]
pub struct CompiledFib {
    /// Routes sorted by (len desc, addr asc).
    routes: Vec<Route>,
}

impl CompiledFib {
    pub fn new() -> CompiledFib {
        CompiledFib::default()
    }

    /// Recompile from the RIB. Called lazily when [`Rib::version`] moved.
    pub fn rebuild(&mut self, rib: &Rib) {
        self.routes.clear();
        for prefix in rib.learned_prefixes() {
            let ports: SmallVec<PortId, 8> =
                rib.members(prefix).iter().map(|e| e.peer_port).collect();
            if !ports.is_empty() {
                let backups: SmallVec<PortId, 8> =
                    rib.backup_members(prefix).into_iter().collect();
                self.routes.push(Route { prefix, ports, backups });
            }
        }
        self.routes.sort_by(|a, b| {
            b.prefix.len.cmp(&a.prefix.len).then(a.prefix.addr.cmp(&b.prefix.addr))
        });
    }

    /// Longest-prefix-match next hop for `dst` with flow hash `flow`.
    /// Bit-for-bit the same port `Rib::lookup` + `ecmp_index` selects.
    #[inline]
    pub fn lookup(&self, dst: IpAddr4, flow: u64) -> Option<PortId> {
        for r in &self.routes {
            if r.prefix.contains(dst) {
                return Some(r.ports[dcn_wire::ecmp_index(flow, r.ports.len())]);
            }
        }
        None
    }

    /// Like [`CompiledFib::lookup`], but with local fast reroute: the
    /// ECMP pick is filtered through `port_up` (the router's own admin
    /// view), and when every best-set member is dead the precomputed
    /// backup set answers instead, flagged as a repair (`true`). Repair
    /// picks avoid `arrival` unless it is the only survivor. When the
    /// plain pick's port is up the decision is bit-identical to
    /// [`CompiledFib::lookup`] — which keeps `local_repair=off` behavior
    /// byte-for-byte unchanged. Never allocates.
    #[inline]
    pub fn lookup_repair(
        &self,
        dst: IpAddr4,
        flow: u64,
        port_up: impl Fn(PortId) -> bool,
        arrival: Option<PortId>,
    ) -> Option<(PortId, bool)> {
        let r = self.routes.iter().find(|r| r.prefix.contains(dst))?;
        let plain = r.ports[dcn_wire::ecmp_index(flow, r.ports.len())];
        if port_up(plain) {
            return Some((plain, false));
        }
        // The hashed member is locally dead: re-spread the flow over the
        // surviving members, then over the backup set.
        for set in [&r.ports, &r.backups] {
            let avoid = |p: PortId| !port_up(p) || arrival == Some(p);
            let mut live = set.iter().filter(|&&p| !avoid(p)).count();
            let mut back_ok = false;
            if live == 0 {
                // Arrival may be the only survivor: better back than dropped.
                live = set.iter().filter(|&&p| port_up(p)).count();
                back_ok = true;
            }
            if live > 0 {
                let k = dcn_wire::ecmp_index(flow, live);
                let pick = set
                    .iter()
                    .filter(|&&p| if back_ok { port_up(p) } else { !avoid(p) })
                    .nth(k)
                    .copied()
                    .expect("k < live");
                return Some((pick, true));
            }
        }
        None
    }

    /// Number of compiled routes (introspection for tests and gauges).
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_wire::Prefix;

    fn pfx(third: u8, len: u8) -> Prefix {
        Prefix::new(IpAddr4::new(192, 168, third, 0), len)
    }

    /// Drive both paths over one RIB and assert identical picks for a
    /// spread of destinations and flows.
    fn assert_equivalent(rib: &Rib, dsts: &[IpAddr4]) {
        let mut fib = CompiledFib::new();
        fib.rebuild(rib);
        for &dst in dsts {
            for flow in [0u64, 1, 2, 3, 7, 100, 9999, u64::MAX] {
                let slow = rib.lookup(dst).map(|(_, members)| {
                    members[dcn_wire::ecmp_index(flow, members.len())].peer_port
                });
                assert_eq!(fib.lookup(dst, flow), slow, "dst {dst} flow {flow}");
            }
        }
    }

    #[test]
    fn matches_rib_lookup_with_ecmp_and_default_route() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(4), Prefix::new(IpAddr4(0), 0), vec![64512], IpAddr4(0));
        rib.ingest_advert(PortId(2), pfx(11, 24), vec![64513, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(3), pfx(11, 24), vec![64514, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(5), pfx(12, 24), vec![64513, 65002], IpAddr4(0));
        assert_equivalent(
            &rib,
            &[
                IpAddr4::new(192, 168, 11, 7),
                IpAddr4::new(192, 168, 12, 9),
                IpAddr4::new(10, 0, 0, 1),
            ],
        );
    }

    #[test]
    fn longest_prefix_wins_and_withdrawals_apply_after_rebuild() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(0), pfx(11, 16), vec![1, 2], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11, 24), vec![3, 4], IpAddr4(0));
        let mut fib = CompiledFib::new();
        fib.rebuild(&rib);
        let dst = IpAddr4::new(192, 168, 11, 50);
        assert_eq!(fib.lookup(dst, 0), Some(PortId(1)), "/24 beats /16");
        rib.ingest_withdraw(PortId(1), pfx(11, 24));
        fib.rebuild(&rib);
        assert_eq!(fib.lookup(dst, 0), Some(PortId(0)), "falls back to /16");
        rib.ingest_withdraw(PortId(0), pfx(11, 16));
        fib.rebuild(&rib);
        assert_eq!(fib.lookup(dst, 0), None);
        assert_eq!(fib.route_count(), 0);
    }

    #[test]
    fn repair_respreads_then_falls_back_to_next_best() {
        let mut rib = Rib::new();
        // Best set {0, 1}; next-best {2}; a worse path on 3 stays unused.
        rib.ingest_advert(PortId(0), pfx(11, 24), vec![64513, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11, 24), vec![64514, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(2), pfx(11, 24), vec![64515, 64512, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(3), pfx(11, 24), vec![1, 2, 3, 4], IpAddr4(0));
        let mut fib = CompiledFib::new();
        fib.rebuild(&rib);
        let dst = IpAddr4::new(192, 168, 11, 7);
        for flow in [0u64, 1, 7, 100, 9999] {
            let plain = fib.lookup(dst, flow).unwrap();
            // All up: identical unflagged pick.
            assert_eq!(fib.lookup_repair(dst, flow, |_| true, None), Some((plain, false)));
            // Hashed member dead: re-spread over the surviving member.
            let other = if plain == PortId(0) { PortId(1) } else { PortId(0) };
            assert_eq!(
                fib.lookup_repair(dst, flow, |p| p != plain, None),
                Some((other, true))
            );
            // Whole best set dead: the next-best backup answers.
            let up = |p: PortId| p != PortId(0) && p != PortId(1);
            assert_eq!(fib.lookup_repair(dst, flow, up, None), Some((PortId(2), true)));
            // ...unless the packet arrived there and another port lives.
            assert_eq!(
                fib.lookup_repair(dst, flow, up, Some(PortId(2))),
                Some((PortId(2), true)),
                "arrival is the only survivor: better back than dropped"
            );
            // Everything dead: still a drop.
            assert_eq!(fib.lookup_repair(dst, flow, |_| false, None), None);
        }
        // Unknown destination stays a drop either way.
        assert_eq!(
            fib.lookup_repair(IpAddr4::new(10, 0, 0, 1), 0, |_| true, None),
            None
        );
    }

    #[test]
    fn ecmp_sets_stay_inline() {
        let mut rib = Rib::new();
        for p in 0..8 {
            rib.ingest_advert(PortId(p), pfx(14, 24), vec![64513 + p as u32, 65004], IpAddr4(0));
        }
        let mut fib = CompiledFib::new();
        fib.rebuild(&rib);
        // Eight equal-cost uplinks: every member reachable, none heap-spilled.
        let dst = IpAddr4::new(192, 168, 14, 1);
        let picked: std::collections::BTreeSet<PortId> =
            (0..64u64).filter_map(|f| fib.lookup(dst, f)).collect();
        assert_eq!(picked.len(), 8);
    }
}
