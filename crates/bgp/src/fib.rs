//! Compiled forwarding table: the BGP data-plane fast path.
//!
//! [`Rib::lookup`] scans every Loc-RIB key per packet and materializes a
//! `Vec` of path references — fine for the control plane, wasteful per
//! forwarded frame. The [`CompiledFib`] flattens the Loc-RIB into a list
//! of `(prefix, next-hop ports)` pairs sorted by descending prefix
//! length, so a lookup is a linear first-containing-match scan (DCN RIBs
//! hold tens of prefixes, not an Internet table) and ECMP selection is
//! an index into a [`SmallVec`] that stays inline for fabrics with up to
//! eight equal-cost uplinks.
//!
//! Equivalence with the slow path: distinct same-length IPv4 prefixes are
//! disjoint, so the first containing match in (length desc, addr asc)
//! order is exactly the longest match `Rib::lookup` finds — and for the
//! degenerate case of overlapping equal-length entries both orders keep
//! the lowest address. The port list is `Rib::members` order (sorted by
//! peer port), so `flow % n` picks the identical member.
//!
//! Rebuilds are keyed on [`Rib::version`] and happen only when the
//! Loc-RIB actually changed; lookups never allocate.

use dcn_sim::PortId;
use dcn_wire::IpAddr4;
use smallvec::SmallVec;

use crate::rib::Rib;

/// The compiled Loc-RIB. Next-hop port sets stay inline up to 8 members
/// (a pod spine's uplink radix in the paper's topologies).
#[derive(Default)]
pub struct CompiledFib {
    /// `(prefix, ECMP member ports)` sorted by (len desc, addr asc).
    routes: Vec<(dcn_wire::Prefix, SmallVec<PortId, 8>)>,
}

impl CompiledFib {
    pub fn new() -> CompiledFib {
        CompiledFib::default()
    }

    /// Recompile from the RIB. Called lazily when [`Rib::version`] moved.
    pub fn rebuild(&mut self, rib: &Rib) {
        self.routes.clear();
        for prefix in rib.learned_prefixes() {
            let ports: SmallVec<PortId, 8> =
                rib.members(prefix).iter().map(|e| e.peer_port).collect();
            if !ports.is_empty() {
                self.routes.push((prefix, ports));
            }
        }
        self.routes.sort_by(|a, b| {
            b.0.len.cmp(&a.0.len).then(a.0.addr.cmp(&b.0.addr))
        });
    }

    /// Longest-prefix-match next hop for `dst` with flow hash `flow`.
    /// Bit-for-bit the same port `Rib::lookup` + `ecmp_index` selects.
    #[inline]
    pub fn lookup(&self, dst: IpAddr4, flow: u64) -> Option<PortId> {
        for (prefix, ports) in &self.routes {
            if prefix.contains(dst) {
                return Some(ports[dcn_wire::ecmp_index(flow, ports.len())]);
            }
        }
        None
    }

    /// Number of compiled routes (introspection for tests and gauges).
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_wire::Prefix;

    fn pfx(third: u8, len: u8) -> Prefix {
        Prefix::new(IpAddr4::new(192, 168, third, 0), len)
    }

    /// Drive both paths over one RIB and assert identical picks for a
    /// spread of destinations and flows.
    fn assert_equivalent(rib: &Rib, dsts: &[IpAddr4]) {
        let mut fib = CompiledFib::new();
        fib.rebuild(rib);
        for &dst in dsts {
            for flow in [0u64, 1, 2, 3, 7, 100, 9999, u64::MAX] {
                let slow = rib.lookup(dst).map(|(_, members)| {
                    members[dcn_wire::ecmp_index(flow, members.len())].peer_port
                });
                assert_eq!(fib.lookup(dst, flow), slow, "dst {dst} flow {flow}");
            }
        }
    }

    #[test]
    fn matches_rib_lookup_with_ecmp_and_default_route() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(4), Prefix::new(IpAddr4(0), 0), vec![64512], IpAddr4(0));
        rib.ingest_advert(PortId(2), pfx(11, 24), vec![64513, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(3), pfx(11, 24), vec![64514, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(5), pfx(12, 24), vec![64513, 65002], IpAddr4(0));
        assert_equivalent(
            &rib,
            &[
                IpAddr4::new(192, 168, 11, 7),
                IpAddr4::new(192, 168, 12, 9),
                IpAddr4::new(10, 0, 0, 1),
            ],
        );
    }

    #[test]
    fn longest_prefix_wins_and_withdrawals_apply_after_rebuild() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(0), pfx(11, 16), vec![1, 2], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11, 24), vec![3, 4], IpAddr4(0));
        let mut fib = CompiledFib::new();
        fib.rebuild(&rib);
        let dst = IpAddr4::new(192, 168, 11, 50);
        assert_eq!(fib.lookup(dst, 0), Some(PortId(1)), "/24 beats /16");
        rib.ingest_withdraw(PortId(1), pfx(11, 24));
        fib.rebuild(&rib);
        assert_eq!(fib.lookup(dst, 0), Some(PortId(0)), "falls back to /16");
        rib.ingest_withdraw(PortId(0), pfx(11, 16));
        fib.rebuild(&rib);
        assert_eq!(fib.lookup(dst, 0), None);
        assert_eq!(fib.route_count(), 0);
    }

    #[test]
    fn ecmp_sets_stay_inline() {
        let mut rib = Rib::new();
        for p in 0..8 {
            rib.ingest_advert(PortId(p), pfx(14, 24), vec![64513 + p as u32, 65004], IpAddr4(0));
        }
        let mut fib = CompiledFib::new();
        fib.rebuild(&rib);
        // Eight equal-cost uplinks: every member reachable, none heap-spilled.
        let dst = IpAddr4::new(192, 168, 14, 1);
        let picked: std::collections::BTreeSet<PortId> =
            (0..64u64).filter_map(|f| fib.lookup(dst, f)).collect();
        assert_eq!(picked.len(), 8);
    }
}
