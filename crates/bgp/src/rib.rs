//! The BGP RIB: per-peer Adj-RIB-In, Loc-RIB with ECMP, and the FIB view
//! rendered in the paper's Listing 3 layout.

use std::collections::BTreeMap;

use dcn_sim::PortId;
use dcn_wire::{IpAddr4, Prefix};

/// One usable path in the Loc-RIB.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathEntry {
    pub as_path: Vec<u32>,
    pub peer_port: PortId,
    pub next_hop: IpAddr4,
}

/// Result of a Loc-RIB recomputation for one prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RibChange {
    Unchanged,
    /// The ECMP set or best path changed (still reachable).
    Changed,
    /// The prefix became unreachable.
    Lost,
    /// The prefix became reachable (was absent).
    Gained,
}

/// The routing information base of one router.
#[derive(Debug, Default)]
pub struct Rib {
    /// Adj-RIB-In: (peer port → prefix → AS path). The next hop of a path
    /// through a point-to-point fabric link is implied by the port.
    adj_in: BTreeMap<PortId, BTreeMap<Prefix, Vec<u32>>>,
    /// Locally originated prefixes (AS path length 0, always preferred).
    local: Vec<Prefix>,
    /// Loc-RIB: prefix → ECMP members (all minimal-AS-path paths).
    loc: BTreeMap<Prefix, Vec<PathEntry>>,
    /// Connected subnets for rendering (link /24s, rack subnet).
    connected: Vec<(Prefix, PortId, IpAddr4)>,
    /// Bumped whenever the Loc-RIB changes; the compiled FIB keys its
    /// lazy rebuild on this.
    version: u64,
}

impl Rib {
    pub fn new() -> Rib {
        Rib::default()
    }

    pub fn add_local(&mut self, prefix: Prefix) {
        if !self.local.contains(&prefix) {
            self.local.push(prefix);
        }
    }

    pub fn add_connected(&mut self, prefix: Prefix, port: PortId, addr: IpAddr4) {
        self.connected.push((prefix, port, addr));
    }

    pub fn is_local(&self, prefix: Prefix) -> bool {
        self.local.contains(&prefix)
    }

    /// Loc-RIB generation counter. Moves exactly when a recomputation
    /// reports anything other than [`RibChange::Unchanged`], so a stale
    /// compiled FIB can be detected in O(1). Bumps use wrapping
    /// arithmetic and consumers compare snapshots for *equality* only,
    /// so the counter stays correct across a `u64` wraparound.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Test hook: park the generation counter at an arbitrary value
    /// (e.g. `u64::MAX`) to exercise wraparound.
    #[cfg(test)]
    pub(crate) fn set_version(&mut self, v: u64) {
        self.version = v;
    }

    /// Record a received advertisement. Returns prefixes needing
    /// recomputation.
    pub fn ingest_advert(
        &mut self,
        port: PortId,
        prefix: Prefix,
        as_path: Vec<u32>,
        next_hop: IpAddr4,
    ) -> RibChange {
        let _ = next_hop; // next hop is implied by the p2p link
        self.adj_in.entry(port).or_default().insert(prefix, as_path);
        self.recompute(prefix, port)
    }

    /// Record a withdrawal.
    pub fn ingest_withdraw(&mut self, port: PortId, prefix: Prefix) -> RibChange {
        let removed = self
            .adj_in
            .get_mut(&port)
            .is_some_and(|m| m.remove(&prefix).is_some());
        if !removed {
            return RibChange::Unchanged;
        }
        self.recompute(prefix, port)
    }

    /// Drop everything learned from a peer (session death). Returns the
    /// affected prefixes and their change kinds.
    pub fn drop_peer(&mut self, port: PortId) -> Vec<(Prefix, RibChange)> {
        let prefixes: Vec<Prefix> = self
            .adj_in
            .remove(&port)
            .map(|m| m.into_keys().collect())
            .unwrap_or_default();
        prefixes
            .into_iter()
            .map(|p| (p, self.recompute(p, port)))
            .filter(|(_, c)| *c != RibChange::Unchanged)
            .collect()
    }

    /// Peer addressing used when recomputing next hops.
    fn peer_addr_placeholder() -> IpAddr4 {
        IpAddr4(0)
    }

    /// Recompute the Loc-RIB entry for `prefix`. `via` is only used to
    /// carry next-hop information when available; ECMP membership is
    /// derived purely from AS-path lengths.
    fn recompute(&mut self, prefix: Prefix, _via: PortId) -> RibChange {
        let old = self.loc.get(&prefix).cloned();
        if self.local.contains(&prefix) {
            // Locally originated: always best, never ECMP with learned
            // paths.
            return RibChange::Unchanged;
        }
        let mut best_len = usize::MAX;
        let mut members: Vec<PathEntry> = Vec::new();
        for (&port, routes) in &self.adj_in {
            if let Some(path) = routes.get(&prefix) {
                match path.len().cmp(&best_len) {
                    std::cmp::Ordering::Less => {
                        best_len = path.len();
                        members.clear();
                        members.push(PathEntry {
                            as_path: path.clone(),
                            peer_port: port,
                            next_hop: Self::peer_addr_placeholder(),
                        });
                    }
                    std::cmp::Ordering::Equal => members.push(PathEntry {
                        as_path: path.clone(),
                        peer_port: port,
                        next_hop: Self::peer_addr_placeholder(),
                    }),
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        let change = match (&old, members.is_empty()) {
            (None, true) => RibChange::Unchanged,
            (None, false) => RibChange::Gained,
            (Some(_), true) => RibChange::Lost,
            (Some(o), false) if *o == members => RibChange::Unchanged,
            (Some(_), false) => RibChange::Changed,
        };
        if members.is_empty() {
            self.loc.remove(&prefix);
        } else {
            self.loc.insert(prefix, members);
        }
        if change != RibChange::Unchanged {
            self.version = self.version.wrapping_add(1);
        }
        change
    }

    /// The ECMP members for `prefix` (ports sorted ascending).
    pub fn members(&self, prefix: Prefix) -> Vec<&PathEntry> {
        let mut v: Vec<&PathEntry> = self
            .loc
            .get(&prefix)
            .map(|m| m.iter().collect())
            .unwrap_or_default();
        v.sort_by_key(|e| e.peer_port);
        v
    }

    /// Longest-prefix-match lookup for a destination address.
    pub fn lookup(&self, dst: IpAddr4) -> Option<(Prefix, Vec<&PathEntry>)> {
        // Prefixes in a DCN RIB are few; scan and keep the longest match.
        let mut best: Option<Prefix> = None;
        for &p in self.loc.keys() {
            if p.contains(dst) && best.is_none_or(|b| p.len > b.len) {
                best = Some(p);
            }
        }
        best.map(|p| (p, self.members(p)))
    }

    /// The representative (first) best path for advertisement.
    pub fn best(&self, prefix: Prefix) -> Option<&PathEntry> {
        self.members(prefix).first().copied()
    }

    /// Local-repair backup candidates for `prefix`: the peer ports of the
    /// *next-best* Adj-RIB-In paths — the shortest AS-path length strictly
    /// worse than the Loc-RIB best set, excluding any port already an
    /// ECMP member. Sorted ascending. These are the routes the control
    /// plane itself would promote once the best set is withdrawn, so a
    /// data-plane repair through them forwards exactly where the
    /// post-convergence FIB will.
    ///
    /// Best-effort by design: an Adj-RIB-In-only change (a longer path
    /// learned or withdrawn) does not bump [`Rib::version`], so a
    /// compiled backup set can lag such changes until the next Loc-RIB
    /// change triggers a rebuild. Primary forwarding is unaffected.
    pub fn backup_members(&self, prefix: Prefix) -> Vec<PortId> {
        let best: Vec<PortId> = self
            .loc
            .get(&prefix)
            .map(|m| m.iter().map(|e| e.peer_port).collect())
            .unwrap_or_default();
        let best_len = self
            .loc
            .get(&prefix)
            .and_then(|m| m.first())
            .map(|e| e.as_path.len())
            .unwrap_or(usize::MAX);
        let mut next_len = usize::MAX;
        let mut ports: Vec<PortId> = Vec::new();
        for (&port, routes) in &self.adj_in {
            if best.contains(&port) {
                continue;
            }
            if let Some(path) = routes.get(&prefix) {
                if path.len() <= best_len {
                    continue;
                }
                match path.len().cmp(&next_len) {
                    std::cmp::Ordering::Less => {
                        next_len = path.len();
                        ports.clear();
                        ports.push(port);
                    }
                    std::cmp::Ordering::Equal => ports.push(port),
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        ports.sort_unstable();
        ports
    }

    /// All prefixes currently reachable (learned), for initial table
    /// dumps.
    pub fn learned_prefixes(&self) -> Vec<Prefix> {
        self.loc.keys().copied().collect()
    }

    /// All locally originated prefixes.
    pub fn local_prefixes(&self) -> &[Prefix] {
        &self.local
    }

    /// Number of Loc-RIB entries plus connected routes — the Listing 3
    /// table-size metric.
    pub fn route_count(&self) -> usize {
        self.loc.len() + self.connected.len()
    }

    /// Total ECMP members across all prefixes (storage proxy).
    pub fn path_count(&self) -> usize {
        self.loc.values().map(Vec::len).sum::<usize>()
    }

    /// Approximate resident bytes: per path, prefix (5) + AS path (4/hop)
    /// + next hop (4) + ifindex (2).
    pub fn approx_bytes(&self) -> usize {
        self.loc
            .values()
            .flat_map(|m| m.iter())
            .map(|e| 5 + 4 * e.as_path.len() + 6)
            .sum::<usize>()
            + self.connected.len() * 11
    }

    /// Render in the paper's Listing 3 layout (`ip route` style), with
    /// `peer_ip` looked up through the caller-provided closure.
    pub fn render(&self, peer_ip: impl Fn(PortId) -> Option<IpAddr4>) -> String {
        let mut out = String::new();
        for (prefix, port, addr) in &self.connected {
            out.push_str(&format!(
                "{prefix} dev {port} proto kernel scope link src {addr}\n"
            ));
        }
        for (prefix, members) in &self.loc {
            if members.len() == 1 {
                let m = &members[0];
                let via = peer_ip(m.peer_port)
                    .map(|ip| ip.to_string())
                    .unwrap_or_else(|| "?".into());
                out.push_str(&format!(
                    "{prefix} via {via} dev {} proto bgp metric 20\n",
                    m.peer_port
                ));
            } else {
                out.push_str(&format!("{prefix} proto bgp metric 20\n"));
                let mut sorted = self.members(*prefix);
                sorted.sort_by_key(|e| e.peer_port);
                for m in sorted {
                    let via = peer_ip(m.peer_port)
                        .map(|ip| ip.to_string())
                        .unwrap_or_else(|| "?".into());
                    out.push_str(&format!(
                        "\tnexthop via {via} dev {} weight 1\n",
                        m.peer_port
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(third: u8) -> Prefix {
        Prefix::new(IpAddr4::new(192, 168, third, 0), 24)
    }

    #[test]
    fn shortest_path_wins() {
        let mut rib = Rib::new();
        assert_eq!(
            rib.ingest_advert(PortId(0), pfx(11), vec![64513, 65001], IpAddr4(0)),
            RibChange::Gained
        );
        assert_eq!(
            rib.ingest_advert(PortId(1), pfx(11), vec![64514, 64512, 64513, 65001], IpAddr4(0)),
            RibChange::Unchanged,
            "longer path does not perturb the best set"
        );
        let m = rib.members(pfx(11));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].peer_port, PortId(0));
    }

    #[test]
    fn equal_length_paths_form_ecmp() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(0), pfx(14), vec![64513, 65004], IpAddr4(0));
        let c = rib.ingest_advert(PortId(1), pfx(14), vec![64514, 65004], IpAddr4(0));
        assert_eq!(c, RibChange::Changed);
        assert_eq!(rib.members(pfx(14)).len(), 2);
    }

    #[test]
    fn withdraw_shrinks_then_loses() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(0), pfx(11), vec![64513], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11), vec![64514], IpAddr4(0));
        assert_eq!(rib.ingest_withdraw(PortId(0), pfx(11)), RibChange::Changed);
        assert_eq!(rib.ingest_withdraw(PortId(1), pfx(11)), RibChange::Lost);
        assert!(rib.members(pfx(11)).is_empty());
        assert_eq!(
            rib.ingest_withdraw(PortId(1), pfx(11)),
            RibChange::Unchanged,
            "idempotent"
        );
    }

    #[test]
    fn drop_peer_reports_every_affected_prefix() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(0), pfx(11), vec![64513], IpAddr4(0));
        rib.ingest_advert(PortId(0), pfx(12), vec![64513], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(12), vec![64514], IpAddr4(0));
        let changes = rib.drop_peer(PortId(0));
        assert_eq!(changes.len(), 2);
        assert!(changes.contains(&(pfx(11), RibChange::Lost)));
        assert!(changes.contains(&(pfx(12), RibChange::Changed)));
    }

    #[test]
    fn local_prefixes_shadow_learned_paths() {
        let mut rib = Rib::new();
        rib.add_local(pfx(11));
        assert!(rib.is_local(pfx(11)));
        assert_eq!(
            rib.ingest_advert(PortId(0), pfx(11), vec![64513, 65999], IpAddr4(0)),
            RibChange::Unchanged,
            "locally originated prefixes ignore learned paths"
        );
        assert!(rib.members(pfx(11)).is_empty());
    }

    #[test]
    fn lookup_is_longest_prefix_match() {
        let mut rib = Rib::new();
        rib.ingest_advert(PortId(0), Prefix::new(IpAddr4(0), 0), vec![1], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11), vec![2], IpAddr4(0));
        let (p, m) = rib.lookup(IpAddr4::new(192, 168, 11, 7)).unwrap();
        assert_eq!(p, pfx(11));
        assert_eq!(m[0].peer_port, PortId(1));
        let (p, _) = rib.lookup(IpAddr4::new(10, 0, 0, 1)).unwrap();
        assert_eq!(p.len, 0, "falls back to default route");
    }

    #[test]
    fn render_matches_listing3_layout() {
        let mut rib = Rib::new();
        rib.add_connected(
            Prefix::new(IpAddr4::new(172, 16, 0, 0), 24),
            PortId(3),
            IpAddr4::new(172, 16, 0, 2),
        );
        rib.ingest_advert(PortId(2), pfx(0), vec![65000], IpAddr4(0));
        rib.ingest_advert(PortId(3), pfx(2), vec![64512, 65002], IpAddr4(0));
        rib.ingest_advert(PortId(4), pfx(2), vec![64512, 65002], IpAddr4(0));
        let s = rib.render(|p| Some(IpAddr4::new(172, 16, p.0 as u8, 1)));
        assert!(s.contains("172.16.0.0/24 dev eth3 proto kernel scope link src 172.16.0.2"));
        assert!(s.contains("192.168.0.0/24 via 172.16.2.1 dev eth2 proto bgp metric 20"));
        assert!(s.contains("192.168.2.0/24 proto bgp metric 20"));
        assert!(s.contains("\tnexthop via 172.16.3.1 dev eth3 weight 1"));
        assert!(s.contains("\tnexthop via 172.16.4.1 dev eth4 weight 1"));
    }

    #[test]
    fn version_moves_exactly_on_loc_rib_change() {
        let mut rib = Rib::new();
        let v0 = rib.version();
        rib.ingest_advert(PortId(0), pfx(11), vec![64513], IpAddr4(0));
        assert_eq!(rib.version(), v0 + 1, "gained");
        rib.ingest_advert(PortId(1), pfx(11), vec![64514, 64512, 64513], IpAddr4(0));
        assert_eq!(rib.version(), v0 + 1, "longer path: unchanged");
        rib.ingest_withdraw(PortId(0), pfx(11));
        assert_eq!(rib.version(), v0 + 2, "best set changed");
        rib.ingest_withdraw(PortId(0), pfx(11));
        assert_eq!(rib.version(), v0 + 2, "idempotent withdraw: unchanged");
    }

    #[test]
    fn size_metrics_scale() {
        let mut rib = Rib::new();
        assert_eq!(rib.route_count(), 0);
        rib.ingest_advert(PortId(0), pfx(11), vec![64513, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11), vec![64514, 65001], IpAddr4(0));
        assert_eq!(rib.route_count(), 1);
        assert_eq!(rib.path_count(), 2);
        assert_eq!(rib.approx_bytes(), 2 * (5 + 8 + 6));
    }

    #[test]
    fn backup_members_are_the_next_best_tier() {
        let mut rib = Rib::new();
        // Two equal best paths, two next-best, one even worse.
        rib.ingest_advert(PortId(0), pfx(11), vec![64513, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(1), pfx(11), vec![64514, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(3), pfx(11), vec![64515, 64512, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(2), pfx(11), vec![64516, 64517, 65001], IpAddr4(0));
        rib.ingest_advert(PortId(4), pfx(11), vec![1, 2, 3, 4], IpAddr4(0));
        assert_eq!(rib.members(pfx(11)).len(), 2);
        assert_eq!(rib.backup_members(pfx(11)), vec![PortId(2), PortId(3)]);
        // No worse paths → no backups.
        rib.ingest_advert(PortId(0), pfx(12), vec![64513, 65002], IpAddr4(0));
        assert!(rib.backup_members(pfx(12)).is_empty());
        // Unknown prefix → no backups.
        assert!(rib.backup_members(pfx(99)).is_empty());
    }

    /// Regression: the generation counter wraps at `u64::MAX` instead of
    /// panicking/sticking, and a wrapped bump still differs from the
    /// pre-wrap snapshot (compiled-FIB staleness is an equality check).
    #[test]
    fn version_counter_wraps_safely() {
        let mut rib = Rib::new();
        rib.set_version(u64::MAX);
        let snapshot = rib.version();
        assert_eq!(
            rib.ingest_advert(PortId(0), pfx(11), vec![64513, 65001], IpAddr4(0)),
            RibChange::Gained
        );
        assert_eq!(rib.version(), 0, "wrapped to zero");
        assert_ne!(rib.version(), snapshot);
    }
}
