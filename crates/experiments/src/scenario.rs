//! One experiment: fabric × stack × failure × traffic → metrics.

use dcn_metrics::{
    blast_radius, class_breakdown, control_overhead_bytes, convergence_time, keepalive_stats,
    update_frames, KeepaliveStats,
};
use dcn_sim::time::{as_millis_f64, millis, secs, Duration, Time};
use dcn_sim::{NodeId, Sim};
use dcn_telemetry::{
    capture_dump, hists_jsonl, series_jsonl, spans_jsonl, Json, Telemetry, TraceBundle,
};
use dcn_topology::ClosParams;
use dcn_traffic::{LossReport, SendSpec, TrafficHost};

use crate::fabric::{build_sim_full, BuiltSim, Stack};
use crate::flows::pin_flow;
use crate::runspec::RunSpec;

/// Traffic placement relative to the failure chain (the paper's Figs. 7
/// and 8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficDir {
    /// No traffic (pure control-plane experiment).
    None,
    /// Sender close to the failure points: rack 11 → rack 14 (Fig. 7).
    NearToFar,
    /// Sender away from the failure points: rack 14 → rack 11 (Fig. 8).
    FarToNear,
}

/// Experiment timeline. Defaults mirror the paper's procedure: let the
/// fabric converge, start traffic, fail an interface mid-stream, keep
/// measuring until well past the slowest stack's recovery (BGP's 3 s hold
/// timer), then let in-flight traffic drain.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Cold start → converged fabric.
    pub warmup: Duration,
    /// Traffic runs this long before the failure.
    pub traffic_lead: Duration,
    /// Measurement window after the failure.
    pub post_failure: Duration,
    /// Extra drain after traffic stops.
    pub drain: Duration,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            warmup: secs(5),
            traffic_lead: secs(2),
            post_failure: secs(6),
            drain: secs(1),
        }
    }
}

impl Timing {
    /// The steady-state timeline: full warmup, then effectively no
    /// measurement window (keep-alive analysis reads the warmup tail).
    pub fn steady() -> Timing {
        Timing {
            warmup: secs(5),
            traffic_lead: millis(1),
            post_failure: millis(1),
            drain: millis(1),
        }
    }

    /// A shortened failure timeline for smoke runs (CI, `--quick`
    /// campaigns): warmup still long enough for BGP session
    /// establishment, post-failure window still covering the 3 s hold
    /// timer, everything else trimmed.
    pub fn quick() -> Timing {
        Timing {
            warmup: secs(3),
            traffic_lead: millis(100),
            post_failure: secs(4),
            drain: millis(100),
        }
    }

    pub fn traffic_start(&self) -> Time {
        self.warmup
    }
    pub fn failure_at(&self) -> Time {
        self.warmup + self.traffic_lead
    }
    pub fn traffic_stop(&self) -> Time {
        self.failure_at() + self.post_failure
    }
    pub fn end(&self) -> Time {
        self.traffic_stop() + self.drain
    }
}

/// Everything measured from one run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Fig. 4: failure → last update activity, in milliseconds.
    pub convergence_ms: Option<f64>,
    /// Fig. 5: routers whose destination-routing state changed.
    pub blast_radius: usize,
    /// Fig. 6: layer-2 bytes of update messages after the failure.
    pub control_bytes: u64,
    pub update_frames: u64,
    /// Figs. 7–8: receiver-side loss analysis (when traffic ran).
    pub loss: Option<LossReport>,
    /// Figs. 9–10: steady-state keep-alive traffic (pre-traffic window).
    pub keepalive: KeepaliveStats,
    /// Per-class (frames, bytes) over the post-failure window.
    pub breakdown: Vec<(&'static str, u64, u64)>,
}

/// One instrumented run: the ordinary metrics plus the telemetry session
/// and the finished simulation (trace, routers) for storyboarding,
/// series export and counter dumps.
pub struct InstrumentedRun {
    pub result: ScenarioResult,
    pub telemetry: Telemetry,
    pub built: BuiltSim,
    /// The failure instant (storyboard `t0`), if the scenario failed
    /// anything.
    pub failure_at: Option<Time>,
}

/// Run one spec to completion.
pub fn run(spec: impl Into<RunSpec>) -> ScenarioResult {
    run_inner(&spec.into(), &mut None).0
}

/// [`run`] with the spec's telemetry sink attached: identical event
/// processing (sampling only reads state between event batches), plus a
/// sampled registry and the live simulation handed back for export. A
/// spec without an explicit sink samples at the default cadence.
pub fn run_instrumented(spec: impl Into<RunSpec>) -> InstrumentedRun {
    let spec = spec.into();
    let mut tel = Some(Telemetry::new(spec.telemetry.unwrap_or_default()));
    let (result, built) = run_inner(&spec, &mut tel);
    InstrumentedRun {
        result,
        telemetry: tel.expect("telemetry preserved"),
        built,
        failure_at: spec.failure.map(|_| spec.timing.failure_at()),
    }
}

/// Advance the simulation, sampling telemetry on its cadence when
/// attached. Both paths process the same events in the same order.
pub(crate) fn advance(sim: &mut Sim, until: Time, tel: &mut Option<Telemetry>) {
    match tel.as_mut() {
        Some(t) => dcn_telemetry::run_sampled(sim, until, t),
        None => sim.run_until(until),
    }
}

/// Package one instrumented run as a self-contained trace bundle:
/// `meta.json`, span and series JSONL dumps, a tshark-style capture of
/// the failure window, and the rendered convergence storyboard.
pub fn bundle_from_run(run: &InstrumentedRun, spec: &RunSpec) -> TraceBundle {
    let sim = &run.built.sim;
    let name_of = |n: NodeId| sim.node_name(n).to_string();

    let mut meta = vec![
        ("kind", Json::str("scenario")),
        ("stack", Json::str(spec.stack.slug())),
        ("seed", Json::UInt(spec.seed)),
        ("samples", Json::UInt(run.telemetry.samples_taken())),
        ("series", Json::UInt(run.telemetry.registry().series_count() as u64)),
        ("end_ns", Json::UInt(sim.now())),
    ];
    if let Some(tc) = spec.failure {
        meta.push(("failure", Json::str(tc.label())));
    }
    if let Some(t0) = run.failure_at {
        meta.push(("failure_at_ns", Json::UInt(t0)));
    }
    if let Some(c) = run.result.convergence_ms {
        meta.push(("convergence_ms", Json::Float(c)));
    }

    let mut b = TraceBundle::new(Json::obj(meta));
    b.add_file("spans.jsonl", spans_jsonl(sim.trace(), name_of));
    b.add_file(
        "series.jsonl",
        series_jsonl(run.telemetry.registry(), |i| name_of(NodeId(i))),
    );
    b.add_file("hists.jsonl", hists_jsonl(&run.telemetry));
    if let Some(t0) = run.failure_at {
        let sb = dcn_metrics::storyboard::build(sim.trace(), t0);
        b.add_file("storyboard.txt", dcn_metrics::storyboard::render(&sb, name_of));
        b.add_file(
            "capture.txt",
            capture_dump(sim, t0.saturating_sub(millis(50)), sim.now(), 400),
        );
    }
    b
}

fn run_inner(s: &RunSpec, tel: &mut Option<Telemetry>) -> (ScenarioResult, BuiltSim) {
    let timing = s.timing;
    // Traffic setup. The monitored flow is pinned to the failure chain
    // exactly as the paper's test design requires (§VI-D).
    let mut senders = Vec::new();
    let fabric_probe = dcn_topology::Fabric::build(s.params);
    let addr_probe = dcn_topology::Addressing::new(&fabric_probe);
    let near_tor = fabric_probe.tor(0, 0);
    let far_tor = fabric_probe.tor(1, s.params.tors_per_pod - 1);
    let near_ip = addr_probe.server_addr(near_tor, 0).expect("near server");
    let far_ip = addr_probe.server_addr(far_tor, 0).expect("far server");
    let widths = [s.params.spines_per_pod, s.params.uplinks_per_spine];
    let (src_node, dst_node, src_ip, dst_ip) = match s.traffic {
        TrafficDir::None => (0, 0, near_ip, far_ip),
        TrafficDir::NearToFar => (
            fabric_probe.server(0, 0, 0),
            fabric_probe.server(1, s.params.tors_per_pod - 1, 0),
            near_ip,
            far_ip,
        ),
        TrafficDir::FarToNear => (
            fabric_probe.server(1, s.params.tors_per_pod - 1, 0),
            fabric_probe.server(0, 0, 0),
            far_ip,
            near_ip,
        ),
    };
    if s.traffic != TrafficDir::None {
        let (sp, dp) = pin_flow(src_ip, dst_ip, &widths);
        let mut spec = SendSpec::new(dst_ip, timing.traffic_start(), timing.traffic_stop());
        spec.src_port = sp;
        spec.dst_port = dp;
        if let Some(interval) = s.traffic_interval {
            spec.interval = interval;
        }
        senders.push((src_node, spec));
    }

    let mut built: BuiltSim =
        build_sim_full(s.params, s.stack, s.seed, &senders, s.tuning, s.scheduler);

    // Phase 1: warmup.
    advance(&mut built.sim, timing.warmup, tel);
    // Steady-state keep-alive window: the last 2 s of warmup.
    let ka_window = (timing.warmup.saturating_sub(secs(2)), timing.warmup);

    // Phase 2: failure injection (if any) and measurement.
    let failure_at = timing.failure_at();
    if let Some(tc) = s.failure {
        built.inject_failure(tc, failure_at);
    }
    advance(&mut built.sim, timing.end(), tel);

    // Metrics extraction.
    let trace = built.sim.trace();
    let keepalive = keepalive_stats(trace, ka_window.0, ka_window.1);
    let (convergence_ms, blast, control, frames) = if s.failure.is_some() {
        (
            convergence_time(trace, failure_at).map(as_millis_f64),
            blast_radius(trace, failure_at),
            control_overhead_bytes(trace, failure_at, None),
            update_frames(trace, failure_at),
        )
    } else {
        (None, 0, 0, 0)
    };
    let breakdown = class_breakdown(trace, failure_at, None)
        .into_iter()
        .map(|(k, (f, b))| (k, f, b))
        .collect();
    let loss = (s.traffic != TrafficDir::None).then(|| {
        let sent = built.host(src_node).sent();
        built
            .sim
            .node_as::<TrafficHost>(built.node(dst_node))
            .expect("receiver host")
            .report(sent)
    });

    let result = ScenarioResult {
        convergence_ms,
        blast_radius: blast,
        control_bytes: control,
        update_frames: frames,
        loss,
        keepalive,
        breakdown,
    };
    (result, built)
}

/// Run one spec to completion and return the trace digest of the finished
/// simulation. This is the scheduler-equivalence contract surface: for a
/// given spec, the digest must be bit-identical whichever backend
/// [`RunSpec::with_scheduler`] selects.
pub fn run_digest(spec: impl Into<RunSpec>) -> u64 {
    let (_, built) = run_inner(&spec.into(), &mut None);
    crate::chaos::trace_digest(&built.sim)
}

/// [`run`] handing back the finished simulation alongside the metrics —
/// the campaign orchestrator uses this to extract the trace digest,
/// storyboard and engine profile from a single run without re-executing.
pub fn run_with_sim(spec: impl Into<RunSpec>) -> (ScenarioResult, BuiltSim) {
    run_inner(&spec.into(), &mut None)
}

/// Convenience: a quick steady-state run (no failure) for keep-alive
/// analysis, with a shorter timeline.
#[deprecated(
    since = "0.9.0",
    note = "use RunSpec::new(params, stack).seeded(seed).timed(Timing::steady()).run()"
)]
pub fn run_steady_state(params: ClosParams, stack: Stack, seed: u64) -> ScenarioResult {
    RunSpec::new(params, stack).seeded(seed).timed(Timing::steady()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_telemetry::TelemetryConfig;
    use dcn_topology::FailureCase;

    #[test]
    fn mrmtp_tc4_scenario_end_to_end() {
        let s = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .failing(FailureCase::Tc4)
            .with_traffic(TrafficDir::NearToFar);
        let r = run(s);
        assert_eq!(r.blast_radius, 1, "Fig. 5: one router updates");
        let c = r.convergence_ms.expect("updates flowed");
        assert!(c < 50.0, "carrier-detected failure converges fast: {c} ms");
        assert!(r.control_bytes > 0);
        let loss = r.loss.unwrap();
        assert!(loss.sent > 2000, "≈333 pkt/s for 8 s: {}", loss.sent);
        // TC4 silently kills the S1_1 → S2_1 hop the flow rides; S1_1
        // needs its 100 ms dead timer to reroute, so the flow loses up to
        // a dead-interval's worth of packets (the paper's TC2/TC4 story).
        let lost = loss.lost();
        assert!(
            (1..=40).contains(&lost),
            "dead-timer-bounded loss expected: {loss:?}"
        );
    }

    #[test]
    fn instrumented_run_matches_bare_metrics_and_storyboards() {
        let s = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .failing(FailureCase::Tc1)
            .with_telemetry(TelemetryConfig::default());
        let bare = run(s);
        let ir = run_instrumented(s);

        // Sampling is read-only: the instrumented run reproduces the
        // bare run's metrics exactly.
        assert_eq!(bare.convergence_ms, ir.result.convergence_ms);
        assert_eq!(bare.blast_radius, ir.result.blast_radius);
        assert_eq!(bare.control_bytes, ir.result.control_bytes);
        assert!(ir.telemetry.samples_taken() > 100);

        // The storyboard built from the typed spans agrees with the
        // paper-style convergence number.
        let t0 = ir.failure_at.expect("failure injected");
        let sb = dcn_metrics::storyboard::build(ir.built.sim.trace(), t0);
        let p = sb.phases.expect("detection happened");
        let conv = ir.result.convergence_ms.expect("updates flowed");
        assert!((p.detection_ms + p.propagation_ms - conv).abs() < 1e-6);

        // And the bundle is self-contained: meta + spans + series +
        // storyboard + capture.
        let bundle = bundle_from_run(&ir, &s);
        let names: Vec<&str> = bundle.files().iter().map(|(n, _)| n.as_str()).collect();
        for want in ["spans.jsonl", "series.jsonl", "hists.jsonl", "storyboard.txt", "capture.txt"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        assert_eq!(bundle.meta().get("stack").unwrap().as_str(), Some("mrmtp"));
        let sb_text = &bundle
            .files()
            .iter()
            .find(|(n, _)| n == "storyboard.txt")
            .unwrap()
            .1;
        assert!(sb_text.contains("phases:"), "{sb_text}");
    }

    #[test]
    fn steady_state_has_keepalives_but_no_updates() {
        let r = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .seeded(3)
            .timed(Timing::steady())
            .run();
        assert!(r.keepalive.frames > 100);
        assert_eq!(r.keepalive.avg_frame_len, 60.0, "1-byte hellos padded to 60");
        assert!(r.convergence_ms.is_none());
    }
}
