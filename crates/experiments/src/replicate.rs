//! Multi-run replication: the paper's "plotted values were averaged over
//! multiple runs". Each seed perturbs timer phases (hello alignment,
//! jitter), which is exactly what varied between the paper's testbed
//! runs; metrics are reported as mean with min–max spread.

use std::path::Path;

use crate::figures::Figure;
use crate::parallel::run_matrix;
use crate::runspec::RunSpec;
use crate::scenario::{bundle_from_run, run_instrumented, ScenarioResult, TrafficDir};
use crate::fabric::Stack;
use dcn_topology::{ClosParams, FailureCase};

/// Summary statistics over replicated runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub runs: usize,
}

impl Stats {
    pub fn of(values: &[f64]) -> Option<Stats> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(Stats { mean: sum / values.len() as f64, min, max, runs: values.len() })
    }

    /// Render as `mean [min–max]`.
    pub fn render(&self, decimals: usize) -> String {
        format!(
            "{:.d$} [{:.d$}–{:.d$}]",
            self.mean,
            self.min,
            self.max,
            d = decimals
        )
    }
}

/// Replicated metrics for one scenario shape.
#[derive(Clone, Debug)]
pub struct ReplicatedResult {
    pub convergence_ms: Option<Stats>,
    pub blast_radius: Stats,
    pub control_bytes: Stats,
    pub packets_lost: Option<Stats>,
    pub raw: Vec<ScenarioResult>,
}

/// Run `spec` once per seed (in parallel) and aggregate.
pub fn run_replicated(spec: RunSpec, seeds: &[u64]) -> ReplicatedResult {
    let specs: Vec<RunSpec> = seeds.iter().map(|&s| spec.seeded(s)).collect();
    aggregate(run_matrix(specs))
}

/// [`run_replicated`] with telemetry attached to every run: each seed's
/// trace bundle (spans, series, histograms, storyboard, capture) is
/// written under `dir/replicate-<stack>-<tc>-seed<N>/`, so the spread the
/// replicated figure reports can be dissected run by run. Sampling is
/// read-only, so the aggregated metrics are identical to
/// [`run_replicated`]'s.
pub fn run_replicated_instrumented(
    spec: RunSpec,
    seeds: &[u64],
    dir: &Path,
) -> ReplicatedResult {
    let raw = crate::campaign::pool::fan_out(seeds.to_vec(), 0, |seed| {
        let sc = spec.seeded(seed);
        let ir = run_instrumented(sc);
        let tc = sc.failure.map(|tc| tc.label().to_ascii_lowercase()).unwrap_or_else(|| "steady".into());
        let sub = dir.join(format!("replicate-{}-{}-seed{}", sc.stack.slug(), tc, seed));
        match bundle_from_run(&ir, &sc).write(&sub) {
            Ok(_) => eprintln!("replicate: bundle written to {}", sub.display()),
            Err(e) => eprintln!("replicate: bundle write to {} failed: {e}", sub.display()),
        }
        ir.result
    });
    aggregate(raw)
}

fn aggregate(raw: Vec<ScenarioResult>) -> ReplicatedResult {
    let conv: Vec<f64> = raw.iter().filter_map(|r| r.convergence_ms).collect();
    let blast: Vec<f64> = raw.iter().map(|r| r.blast_radius as f64).collect();
    let bytes: Vec<f64> = raw.iter().map(|r| r.control_bytes as f64).collect();
    let lost: Vec<f64> = raw
        .iter()
        .filter_map(|r| r.loss.map(|l| l.lost() as f64))
        .collect();
    ReplicatedResult {
        convergence_ms: Stats::of(&conv),
        blast_radius: Stats::of(&blast).expect("at least one run"),
        control_bytes: Stats::of(&bytes).expect("at least one run"),
        packets_lost: Stats::of(&lost),
        raw,
    }
}

/// Fig. 4 with replication: convergence as mean [min–max] over `seeds`.
/// `local_repair` threads the CLI's `--local-repair` knob into every
/// replicated run (it must not move convergence, only the loss window).
/// `workers > 1` runs every replication on the sharded parallel engine
/// — the digests and therefore every statistic are engine-blind, so
/// this is a perf knob, not an experiment variable.
pub fn fig4_replicated(seeds: &[u64], local_repair: bool, workers: usize) -> Figure {
    let mut rows = Vec::new();
    for (name, params) in [("2-PoD", ClosParams::two_pod()), ("4-PoD", ClosParams::four_pod())] {
        for stack in Stack::ALL {
            for tc in FailureCase::ALL {
                let r = run_replicated(
                    RunSpec::new(params, stack)
                        .failing(tc)
                        .with_traffic(TrafficDir::None)
                        .with_local_repair(local_repair)
                        .with_workers(workers),
                    seeds,
                );
                rows.push(vec![
                    name.to_string(),
                    stack.label().to_string(),
                    tc.label().to_string(),
                    r.convergence_ms.map(|s| s.render(1)).unwrap_or_else(|| "-".into()),
                    r.blast_radius.render(0),
                ]);
            }
        }
    }
    Figure {
        title: format!(
            "Fig. 4 (replicated ×{}) — convergence ms as mean [min–max]",
            seeds.len()
        ),
        headers: vec!["topology", "stack", "case", "convergence_ms", "blast_radius"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate_correctly() {
        let s = Stats::of(&[1.0, 2.0, 6.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.runs, 3);
        assert_eq!(s.render(1), "3.0 [1.0–6.0]");
        assert!(Stats::of(&[]).is_none());
    }

    #[test]
    fn instrumented_replication_matches_bare_and_writes_bundles() {
        let s = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(FailureCase::Tc1);
        let dir = std::env::temp_dir().join(format!("dcn-replicate-test-{}", std::process::id()));
        let bare = run_replicated(s, &[1, 2]);
        let inst = run_replicated_instrumented(s, &[1, 2], &dir);
        // Telemetry is read-only: the aggregates are identical.
        assert_eq!(bare.convergence_ms, inst.convergence_ms);
        assert_eq!(bare.blast_radius, inst.blast_radius);
        assert_eq!(bare.control_bytes, inst.control_bytes);
        for seed in [1, 2] {
            let sub = dir.join(format!("replicate-mrmtp-tc1-seed{seed}"));
            for f in ["meta.json", "spans.jsonl", "series.jsonl", "hists.jsonl", "storyboard.txt"] {
                assert!(sub.join(f).exists(), "missing {f} in {}", sub.display());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replication_varies_timer_phase_but_not_structure() {
        let s = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(FailureCase::Tc1);
        let r = run_replicated(s, &[1, 2, 3, 4]);
        // Blast radius is structural: identical across seeds.
        assert_eq!(r.blast_radius.min, 3.0);
        assert_eq!(r.blast_radius.max, 3.0);
        // Convergence varies with hello phase but stays dead-timer
        // bounded.
        let c = r.convergence_ms.unwrap();
        assert!(c.min >= 40.0 && c.max <= 120.0, "{c:?}");
        assert_eq!(c.runs, 4);
    }
}
