//! Plain-text table rendering for experiment output.

/// Render an aligned text table. Every row must have `headers.len()`
/// cells.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format an optional millisecond value.
pub fn ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.1}"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output() {
        let t = render(
            &["tc", "value"],
            &[
                vec!["TC1".into(), "3".into()],
                vec!["TC10".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "tc    value");
        assert_eq!(lines[2], "TC1   3");
        assert_eq!(lines[3], "TC10  12345");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Some(104.25)), "104.2");
        assert_eq!(ms(None), "-");
    }
}
