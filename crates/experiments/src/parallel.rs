//! Parallel scenario execution.
//!
//! Each emulation run is deterministic and single-threaded; the
//! experiment matrix (topology × stack × failure case × direction) is
//! embarrassingly parallel. The executor itself lives in
//! [`crate::campaign::pool`] — one work-stealing fan-out shared by every
//! measurement surface (matrices, chaos campaigns, replications, bench
//! probes, campaign grids); this module keeps the [`RunSpec`]-typed
//! entry points.

pub use crate::campaign::pool::fan_out;

use crate::runspec::RunSpec;
use crate::scenario::{run, ScenarioResult};

/// Run all specs, using up to `threads` workers (0 = one per
/// available CPU). Results are in the same order as the input.
pub fn run_matrix_with(specs: Vec<RunSpec>, threads: usize) -> Vec<ScenarioResult> {
    fan_out(specs, threads, run)
}

/// [`run_matrix_with`] using one worker per CPU.
pub fn run_matrix(specs: Vec<RunSpec>) -> Vec<ScenarioResult> {
    run_matrix_with(specs, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Stack;
    use dcn_topology::{ClosParams, FailureCase};

    #[test]
    fn parallel_results_match_serial_order() {
        let specs: Vec<RunSpec> = [FailureCase::Tc3, FailureCase::Tc4]
            .into_iter()
            .map(|tc| RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(tc))
            .collect();
        let parallel = run_matrix_with(specs.clone(), 2);
        let serial = run_matrix_with(specs, 1);
        assert_eq!(parallel.len(), 2);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.blast_radius, s.blast_radius, "determinism across threads");
            assert_eq!(p.control_bytes, s.control_bytes);
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        assert!(run_matrix(Vec::new()).is_empty());
    }
}
