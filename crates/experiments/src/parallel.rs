//! Parallel scenario execution.
//!
//! Each emulation run is deterministic and single-threaded; the
//! experiment matrix (topology × stack × failure case × direction) is
//! embarrassingly parallel. Jobs fan out over std scoped threads;
//! results return in input order.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::runspec::RunSpec;
use crate::scenario::{run, ScenarioResult};

/// Fan `items` out over up to `threads` workers (0 = one per available
/// CPU), applying `f` to each. Results are in the same order as the
/// input regardless of which worker ran which item.
pub fn fan_out<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop_front();
                let Some((idx, item)) = job else { break };
                let result = f(item);
                results.lock().expect("results lock")[idx] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every item produced a result"))
        .collect()
}

/// Run all specs, using up to `threads` workers (0 = one per
/// available CPU). Results are in the same order as the input.
pub fn run_matrix_with(specs: Vec<RunSpec>, threads: usize) -> Vec<ScenarioResult> {
    fan_out(specs, threads, run)
}

/// [`run_matrix_with`] using one worker per CPU.
pub fn run_matrix(specs: Vec<RunSpec>) -> Vec<ScenarioResult> {
    run_matrix_with(specs, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Stack;
    use dcn_topology::{ClosParams, FailureCase};

    #[test]
    fn parallel_results_match_serial_order() {
        let specs: Vec<RunSpec> = [FailureCase::Tc3, FailureCase::Tc4]
            .into_iter()
            .map(|tc| RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(tc))
            .collect();
        let parallel = run_matrix_with(specs.clone(), 2);
        let serial = run_matrix_with(specs, 1);
        assert_eq!(parallel.len(), 2);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.blast_radius, s.blast_radius, "determinism across threads");
            assert_eq!(p.control_bytes, s.control_bytes);
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        assert!(run_matrix(Vec::new()).is_empty());
    }

    #[test]
    fn fan_out_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let doubled = fan_out(items, 8, |x| x * 2);
        assert_eq!(doubled, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }
}
