//! Parallel scenario execution.
//!
//! Each emulation run is deterministic and single-threaded; the
//! experiment matrix (topology × stack × failure case × direction) is
//! embarrassingly parallel. Scenarios fan out over a crossbeam scoped
//! pool; results return in input order.

use crossbeam::channel;
use parking_lot::Mutex;

use crate::scenario::{run, Scenario, ScenarioResult};

/// Run all scenarios, using up to `threads` workers (0 = one per
/// available CPU). Results are in the same order as the input.
pub fn run_matrix_with(scenarios: Vec<Scenario>, threads: usize) -> Vec<ScenarioResult> {
    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(n);
    if workers <= 1 {
        return scenarios.into_iter().map(run).collect();
    }
    let (tx, rx) = channel::unbounded::<(usize, Scenario)>();
    for item in scenarios.into_iter().enumerate() {
        tx.send(item).expect("queue send");
    }
    drop(tx);
    let results: Mutex<Vec<Option<ScenarioResult>>> = Mutex::new(vec![None; n]);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move |_| {
                while let Ok((idx, scenario)) = rx.recv() {
                    let result = run(scenario);
                    results.lock()[idx] = Some(result);
                }
            });
        }
    })
    .expect("worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every scenario produced a result"))
        .collect()
}

/// [`run_matrix_with`] using one worker per CPU.
pub fn run_matrix(scenarios: Vec<Scenario>) -> Vec<ScenarioResult> {
    run_matrix_with(scenarios, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Stack;
    use dcn_topology::{ClosParams, FailureCase};

    #[test]
    fn parallel_results_match_serial_order() {
        let scenarios: Vec<Scenario> = [FailureCase::Tc3, FailureCase::Tc4]
            .into_iter()
            .map(|tc| Scenario::new(ClosParams::two_pod(), Stack::Mrmtp).failing(tc))
            .collect();
        let parallel = run_matrix_with(scenarios.clone(), 2);
        let serial = run_matrix_with(scenarios, 1);
        assert_eq!(parallel.len(), 2);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.blast_radius, s.blast_radius, "determinism across threads");
            assert_eq!(p.control_bytes, s.control_bytes);
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        assert!(run_matrix(Vec::new()).is_empty());
    }
}
