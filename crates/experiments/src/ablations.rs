//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! The paper motivates three mechanisms qualitatively; these experiments
//! quantify each by switching it off:
//!
//! 1. **Slow-to-Accept** (§IV-B): a flapping interface must not re-enter
//!    the trees until it has proven itself with three consecutive hellos.
//!    Ablation: `accept_hellos = 1` under a flap storm → count update
//!    messages and route churn.
//! 2. **Loss hold-down** (DESIGN.md §5): aggregating upper-tier loss
//!    reports for 2 ms distinguishes partial from total upward loss.
//!    Ablation: hold-down `= 0` → every report is judged alone, inflating
//!    negative-entry churn (blast radius).
//! 3. **Timer scaling** (§IX "tune timers"): sweep the MR-MTP hello
//!    interval and the BFD transmit interval to map the
//!    detection-latency vs. keep-alive-load trade-off.

use dcn_mrmtp::MrmtpTimers;
use dcn_sim::time::{millis, secs, Duration};
use dcn_sim::{NodeId, PortId};
use dcn_topology::{ClosParams, FailureCase};

use crate::fabric::{build_sim_tuned, Stack, StackTuning};
use crate::figures::Figure;
use crate::runspec::RunSpec;

/// Result of a flap-storm experiment.
#[derive(Clone, Copy, Debug)]
pub struct FlapResult {
    pub accept_hellos: u32,
    /// Update messages emitted fabric-wide during the storm.
    pub update_frames: u64,
    /// Destination-routing changes recorded fabric-wide.
    pub route_changes: u64,
}

/// Subject the TC2 interface to `flaps` down/up cycles of `period` each
/// and measure the churn, with the given Slow-to-Accept threshold.
pub fn flap_storm(accept_hellos: u32, flaps: u32, period: Duration, seed: u64) -> FlapResult {
    let timers = MrmtpTimers { accept_hellos, ..MrmtpTimers::default() };
    let tuning = StackTuning { mrmtp_timers: Some(timers), ..Default::default() };
    let mut built = build_sim_tuned(ClosParams::two_pod(), Stack::Mrmtp, seed, &[], tuning);
    built.sim.run_until(secs(2));
    let (node, port) = built.fabric.failure_point(FailureCase::Tc2);
    let t0 = secs(2);
    for i in 0..flaps {
        let down_at = t0 + (2 * i as u64) * period;
        let up_at = t0 + (2 * i as u64 + 1) * period;
        built
            .sim
            .schedule_port_down(down_at, NodeId(node as u32), PortId(port as u16));
        built
            .sim
            .schedule_port_up(up_at, NodeId(node as u32), PortId(port as u16));
    }
    let end = t0 + (2 * flaps as u64 + 2) * period + secs(2);
    built.sim.run_until(end);
    let trace = built.sim.trace();
    let update_frames = dcn_metrics::update_frames(trace, t0);
    let route_changes = trace
        .events_since(t0)
        .filter(|e| matches!(e, dcn_sim::TraceEvent::RouteChange { .. }))
        .count() as u64;
    FlapResult { accept_hellos, update_frames, route_changes }
}

/// The Slow-to-Accept ablation as a printable figure.
pub fn ablation_slow_to_accept(seed: u64) -> Figure {
    let rows = [1u32, 2, 3, 5]
        .into_iter()
        .map(|accept| {
            let r = flap_storm(accept, 6, millis(80), seed);
            vec![
                accept.to_string(),
                r.update_frames.to_string(),
                r.route_changes.to_string(),
            ]
        })
        .collect();
    Figure {
        title: "Ablation — Slow-to-Accept under a flap storm (6 × 80 ms cycles at TC2)\n\
                (paper default: accept after 3 consecutive hellos; the 80 ms up-phases\n\
                are too short for a damped router to re-admit the flapping neighbor)"
            .into(),
        headers: vec!["accept_hellos", "update_frames", "route_changes"],
        rows,
    }
}

/// The loss hold-down ablation: hold-down 0 vs the 2 ms default, at TC1
/// (where reports from both uplinks must aggregate). Far-side traffic
/// (rack 14 → rack 11) exposes the failure mode: without aggregation a
/// PoD-2 spine misclassifies the *total* upward loss of root 11 as
/// partial, installs negatives instead of notifying its ToRs, and the
/// flow blackholes.
pub fn ablation_loss_holddown(seed: u64) -> Figure {
    let rows = [0u64, millis(2), millis(10)]
        .into_iter()
        .map(|hold| {
            let timers = MrmtpTimers { loss_holddown: hold, ..MrmtpTimers::default() };
            let tuning = StackTuning { mrmtp_timers: Some(timers), ..Default::default() };
            let r = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
                .failing(FailureCase::Tc1)
                .with_traffic(crate::scenario::TrafficDir::FarToNear)
                .seeded(seed)
                .tuned(tuning)
                .run();
            vec![
                format!("{:.0}", hold as f64 / millis(1) as f64),
                r.blast_radius.to_string(),
                r.update_frames.to_string(),
                r.loss.map(|l| l.lost().to_string()).unwrap_or_default(),
                crate::table::ms(r.convergence_ms),
            ]
        })
        .collect();
    Figure {
        title: "Ablation — loss-report hold-down at TC1, far traffic 14→11
                (paper-matching blast radius is 3; hold-down 0 misclassifies the loss)"
            .into(),
        headers: vec!["holddown_ms", "blast_radius", "update_frames", "packets_lost", "convergence_ms"],
        rows,
    }
}

/// Hello-interval sweep: detection latency vs keep-alive load (§IX).
pub fn sweep_mrmtp_hello(seed: u64) -> Figure {
    let rows = [millis(25), millis(50), millis(100), millis(200)]
        .into_iter()
        .map(|hello| {
            let timers = MrmtpTimers {
                hello_interval: hello,
                dead_interval: 2 * hello,
                ..MrmtpTimers::default()
            };
            let tuning = StackTuning { mrmtp_timers: Some(timers), ..Default::default() };
            let r = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
                .failing(FailureCase::Tc1)
                .seeded(seed)
                .tuned(tuning)
                .run();
            vec![
                format!("{:.0}", hello as f64 / millis(1) as f64),
                crate::table::ms(r.convergence_ms),
                format!("{:.0}", r.keepalive.bytes_per_sec),
            ]
        })
        .collect();
    Figure {
        title: "Sweep — MR-MTP hello interval (dead = 2×hello): convergence vs keep-alive load"
            .into(),
        headers: vec!["hello_ms", "tc1_convergence_ms", "keepalive_Bps"],
        rows,
    }
}

/// BFD transmit-interval sweep for the BGP/ECMP/BFD stack.
pub fn sweep_bfd_interval(seed: u64) -> Figure {
    let rows = [millis(50), millis(100), millis(250)]
        .into_iter()
        .map(|tx| {
            let tuning = StackTuning { bfd_tx_interval: Some(tx), ..Default::default() };
            let r = RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmpBfd)
                .failing(FailureCase::Tc1)
                .seeded(seed)
                .tuned(tuning)
                .run();
            vec![
                format!("{:.0}", tx as f64 / millis(1) as f64),
                crate::table::ms(r.convergence_ms),
                format!("{:.0}", r.keepalive.bytes_per_sec),
            ]
        })
        .collect();
    Figure {
        title: "Sweep — BFD transmit interval (detect ×3): convergence vs keep-alive load"
            .into(),
        headers: vec!["bfd_tx_ms", "tc1_convergence_ms", "keepalive_Bps"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_to_accept_damps_flap_churn() {
        let damped = flap_storm(3, 4, millis(80), 11);
        let eager = flap_storm(1, 4, millis(80), 11);
        assert!(
            eager.route_changes > damped.route_changes,
            "dampening must reduce churn: eager={eager:?} damped={damped:?}"
        );
    }

    #[test]
    fn holddown_default_reproduces_paper_and_keeps_loss_bounded() {
        let fig = ablation_loss_holddown(5);
        let radius: Vec<usize> = fig.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let lost: Vec<u64> = fig.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // With the default (2 ms) hold-down the paper's 3 is reproduced
        // and the flow recovers after the dead-timer-bounded outage.
        assert_eq!(radius[1], 3, "paper value at the default");
        assert!(lost[1] < 100, "timer-bounded loss at default: {lost:?}");
        // Without aggregation the spine misclassifies the total loss; the
        // effect is visible as a different blast radius and/or much worse
        // loss for the far-side flow.
        assert!(
            radius[0] != 3 || lost[0] > lost[1],
            "hold-down 0 should misbehave somehow: radius={radius:?} lost={lost:?}"
        );
    }

    #[test]
    fn faster_hellos_speed_convergence_but_cost_bytes() {
        let fig = sweep_mrmtp_hello(5);
        let conv: Vec<f64> = fig.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let load: Vec<f64> = fig.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(conv[0] < conv[3], "25 ms hello beats 200 ms: {conv:?}");
        assert!(load[0] > load[3], "and costs more keep-alive bytes: {load:?}");
    }
}
