//! Extended failure test cases (the paper's §IX future work): whole-node
//! failures and concurrent multi-point failures, measured with the same
//! metrics as TC1–TC4.

use dcn_sim::time::{as_millis_f64, secs, Time};
use dcn_sim::{NodeId, PortId};
use dcn_topology::{ClosParams, Fabric};
use dcn_traffic::{SendSpec, TrafficHost};

use crate::fabric::{build_sim, BuiltSim, Stack};
use crate::figures::Figure;
use crate::flows::pin_flow;
use crate::table;

/// What fails in an extended case.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExtendedCase {
    /// Every interface of S-1-1 goes down at once (a PoD-spine crash).
    PodSpineCrash,
    /// Every interface of T-1 goes down at once (a top-spine crash).
    TopSpineCrash,
    /// TC-style double failure: ToR₁₁'s first uplink *and* S-1-2's first
    /// uplink fail together, hitting both of PoD 1's planes at once.
    DoubleUplink,
}

impl ExtendedCase {
    pub const ALL: [ExtendedCase; 3] =
        [ExtendedCase::PodSpineCrash, ExtendedCase::TopSpineCrash, ExtendedCase::DoubleUplink];

    pub fn label(self) -> &'static str {
        match self {
            ExtendedCase::PodSpineCrash => "S-1-1 crash",
            ExtendedCase::TopSpineCrash => "T-1 crash",
            ExtendedCase::DoubleUplink => "double uplink",
        }
    }

    /// The failing (node, port) interfaces.
    pub fn interfaces(self, fabric: &Fabric) -> Vec<(usize, usize)> {
        match self {
            ExtendedCase::PodSpineCrash => {
                let n = fabric.pod_spine(0, 0);
                (0..fabric.ports[n].len()).map(|p| (n, p)).collect()
            }
            ExtendedCase::TopSpineCrash => {
                let n = fabric.top_spine(0);
                (0..fabric.ports[n].len()).map(|p| (n, p)).collect()
            }
            ExtendedCase::DoubleUplink => {
                vec![(fabric.tor(0, 0), 0), (fabric.pod_spine(0, 1), 0)]
            }
        }
    }
}

/// Metrics for one extended-failure run.
#[derive(Clone, Debug)]
pub struct ExtendedResult {
    pub case: ExtendedCase,
    pub stack: Stack,
    pub convergence_ms: Option<f64>,
    pub blast_radius: usize,
    pub control_bytes: u64,
    pub packets_lost: u64,
    pub packets_sent: u64,
}

/// Run one extended case with the paper's monitored flow (rack 11 →
/// rack 14) crossing the failure.
pub fn run_extended(case: ExtendedCase, stack: Stack, seed: u64) -> ExtendedResult {
    let params = ClosParams::two_pod();
    let fabric = Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let src = fabric.server(0, 0, 0);
    let dst = fabric.server(1, 1, 0);
    let src_ip = addr.server_addr(fabric.tor(0, 0), 0).unwrap();
    let dst_ip = addr.server_addr(fabric.tor(1, 1), 0).unwrap();
    let (sp, dp) = pin_flow(src_ip, dst_ip, &[2, 2]);
    let warmup: Time = secs(5);
    let fail_at = warmup + secs(2);
    let stop = fail_at + secs(6);
    let mut spec = SendSpec::new(dst_ip, warmup, stop);
    spec.src_port = sp;
    spec.dst_port = dp;
    let mut built: BuiltSim = build_sim(params, stack, seed, &[(src, spec)]);
    built.sim.run_until(warmup);
    for (node, port) in case.interfaces(&built.fabric) {
        built
            .sim
            .schedule_port_down(fail_at, NodeId(node as u32), PortId(port as u16));
    }
    built.sim.run_until(stop + secs(1));
    let trace = built.sim.trace();
    let sent = built.host(src).sent();
    let report = built
        .sim
        .node_as::<TrafficHost>(NodeId(dst as u32))
        .expect("receiver")
        .report(sent);
    ExtendedResult {
        case,
        stack,
        convergence_ms: dcn_metrics::convergence_time(trace, fail_at).map(as_millis_f64),
        blast_radius: dcn_metrics::blast_radius(trace, fail_at),
        control_bytes: dcn_metrics::control_overhead_bytes(trace, fail_at, None),
        packets_lost: report.lost(),
        packets_sent: report.sent,
    }
}

/// The extended-failure matrix as a printable figure.
pub fn extended_failure_figure(seed: u64) -> Figure {
    let mut rows = Vec::new();
    for case in ExtendedCase::ALL {
        for stack in Stack::ALL {
            let r = run_extended(case, stack, seed);
            rows.push(vec![
                case.label().to_string(),
                stack.label().to_string(),
                table::ms(r.convergence_ms),
                r.blast_radius.to_string(),
                r.control_bytes.to_string(),
                format!("{}/{}", r.packets_lost, r.packets_sent),
            ]);
        }
    }
    Figure {
        title: "§IX extension — whole-node and multi-point failures (2-PoD, flow 11→14)"
            .to_string(),
        headers: vec!["case", "stack", "convergence_ms", "blast_radius", "control_bytes", "lost/sent"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_spine_crash_survivable_by_both_stacks() {
        for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
            let r = run_extended(ExtendedCase::PodSpineCrash, stack, 7);
            assert!(r.packets_sent > 2000);
            // The surviving plane (S-1-2) carries the flow after
            // reconvergence: loss is bounded by the stack's detection
            // time, not total.
            assert!(
                r.packets_lost < r.packets_sent / 2,
                "{}: {r:?}",
                stack.label()
            );
            assert!(r.blast_radius > 0);
        }
    }

    #[test]
    fn top_spine_crash_leaves_mrmtp_reachable() {
        let r = run_extended(ExtendedCase::TopSpineCrash, Stack::Mrmtp, 7);
        // T-1 is one of four planes; the other three carry traffic.
        assert!(r.packets_lost < 200, "{r:?}");
    }

    #[test]
    fn double_uplink_failure_converges() {
        let r = run_extended(ExtendedCase::DoubleUplink, Stack::Mrmtp, 7);
        assert!(r.convergence_ms.is_some());
        // Both of ToR₁₁'s planes are degraded but the fabric still has a
        // path (ToR₁₁ → S1_2 → S2_2/S2_4 …).
        assert!(r.packets_lost < r.packets_sent / 2, "{r:?}");
    }
}

#[cfg(test)]
mod aggregation_tests {
    use super::*;

    /// Regression: when a PoD spine crashes, the two top spines above it
    /// time out at different instants (their hello phases differ), so
    /// the far-side spine receives the two loss reports in separate
    /// hold-down rounds. The second round must still recognize the total
    /// upward loss (the first report lives on as a negative entry) and
    /// notify the ToRs below.
    #[test]
    fn staggered_loss_reports_still_reach_tors() {
        let r = run_extended(ExtendedCase::PodSpineCrash, Stack::Mrmtp, 7);
        // S1_3 + both PoD-2 ToRs record changes.
        assert!(
            r.blast_radius >= 3,
            "downstream ToRs must be notified: {r:?}"
        );
    }
}
