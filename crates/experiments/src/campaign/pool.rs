//! The one fan-out executor every measurement surface shares.
//!
//! Each emulation run is deterministic and single-threaded; every
//! experiment surface (scenario matrices, chaos campaigns, replicated
//! figures, loss-window probes, campaign grids) is embarrassingly
//! parallel across runs. Before the campaign orchestrator existed, each
//! of those surfaces hand-rolled its own fan-out loop; they now all
//! route through [`fan_out`].
//!
//! The scheduler is work-stealing: jobs are dealt round-robin into one
//! deque per worker, each worker drains its own deque from the front
//! and, when empty, steals from the *back* of the longest other deque.
//! Long jobs (a 64-PoD fabric next to a 2-PoD one) therefore cannot
//! strand the rest of the grid behind one busy worker, and there is no
//! single hot mutex every pop contends on. Results come back in input
//! order regardless of which worker ran which job.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolve a requested thread count: `0` means one worker per available
/// CPU, and the count is clamped to the job count (spawning idle
/// threads is pure overhead).
pub fn effective_workers(threads: usize, jobs: usize) -> usize {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    };
    workers.min(jobs).max(1)
}

/// Fan `items` out over up to `threads` workers (0 = one per available
/// CPU), applying `f` to each. Results are in the same order as the
/// input regardless of which worker ran which item.
pub fn fan_out<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = effective_workers(threads, n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal jobs round-robin into per-worker deques. Worker `w` owns
    // deque `w`; stealing victims are picked by current queue length.
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (idx, item) in items.into_iter().enumerate() {
        deques[idx % workers].lock().expect("deque lock").push_back((idx, item));
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (front), then steal from the back of
                // the longest other deque. The own-deque pop must be a
                // separate statement: chaining `.or_else` onto it keeps
                // the MutexGuard temporary alive through the steal
                // (temporaries drop at statement end), and two workers
                // going empty together then lock their own deque and
                // wait on each other's — an ABBA deadlock.
                let own = deques[w].lock().expect("deque lock").pop_front();
                let job = own.or_else(|| {
                    let victim = (0..workers)
                        .filter(|&v| v != w)
                        .max_by_key(|&v| deques[v].lock().expect("deque lock").len())?;
                    deques[victim].lock().expect("deque lock").pop_back()
                });
                let Some((idx, item)) = job else { break };
                let result = f(item);
                results.lock().expect("results lock")[idx] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every item produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fan_out_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let doubled = fan_out(items, 8, |x| x * 2);
        assert_eq!(doubled, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(fan_out(Vec::<u64>::new(), 4, |x| x).is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let ran = AtomicUsize::new(0);
        let out = fan_out(vec![1, 2, 3], 1, |x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stealing_drains_unbalanced_queues() {
        // One long job dealt to worker 0's deque followed by many short
        // ones: with stealing, total wall time is bounded by the long
        // job, and everything still completes in order.
        let items: Vec<u64> = (0..32).collect();
        let out = fan_out(items, 4, |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn effective_workers_clamps_to_jobs() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(0, 0), 1);
    }
}
