//! Fleet-scale campaign orchestration.
//!
//! A [`CampaignSpec`] declares a grid over [`RunSpec`] axes (topology ×
//! stack × failure case × traffic × local repair × seeds); [`run_grid`]
//! expands it and fans every run out across cores through the shared
//! work-stealing [`pool`]; each finished run lands in an append-only
//! [`store::Store`] as one [`store::RunRecord`] carrying the canonical
//! spec key, the trace digest, the paper metrics, the storyboard phase
//! breakdown and (when profiled) the engine stall breakdown. Two stores
//! — typically the same spec at two git revisions — are then compared
//! with [`diff::diff`], which turns the whole grid into a regression
//! gate: digests must be bit-identical, metrics may drift only within a
//! threshold.
//!
//! Surfaced on the CLI as `fcr campaign run <spec> | report <store> |
//! diff <store-a> <store-b>`.

pub mod diff;
pub mod pool;
pub mod store;

use dcn_telemetry::Json;
use dcn_topology::{ClosParams, FailureCase};

use crate::fabric::Stack;
use crate::figures::Figure;
use crate::runspec::RunSpec;
use crate::scenario::{self, Timing, TrafficDir};
use store::{RunRecord, StallRecord, Store};

/// Spec-document schema identifier (`fcr campaign run` input files).
pub const SPEC_SCHEMA: &str = "campaign-spec/v1";

/// A declared grid over experiment axes. Axis vectors may arrive with
/// duplicates (hand-written JSON); expansion dedups each axis first, so
/// the expanded grid is exhaustive and duplicate-free by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    pub name: String,
    /// Fabric sizes in PoDs (2 is the paper testbed shape).
    pub pods: Vec<usize>,
    pub stacks: Vec<Stack>,
    /// Failure cases; `None` is a steady-state run.
    pub failures: Vec<Option<FailureCase>>,
    pub traffic: Vec<TrafficDir>,
    pub local_repair: Vec<bool>,
    /// Seeds per grid point: `base_seed..base_seed + seeds`.
    pub seeds: u64,
    pub base_seed: u64,
    /// Shortened per-run timeline ([`Timing::quick`]) for smoke runs.
    pub quick: bool,
}

impl Default for CampaignSpec {
    /// The acceptance grid: 2 shapes × 2 stacks × TC1–TC2 × 3 seeds =
    /// 24 runs.
    fn default() -> CampaignSpec {
        CampaignSpec {
            name: "default".into(),
            pods: vec![2, 4],
            stacks: vec![Stack::Mrmtp, Stack::BgpEcmp],
            failures: vec![Some(FailureCase::Tc1), Some(FailureCase::Tc2)],
            traffic: vec![TrafficDir::None],
            local_repair: vec![false],
            seeds: 3,
            base_seed: 1,
            quick: false,
        }
    }
}

fn dedup<T: PartialEq + Copy>(values: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for &v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn traffic_slug(dir: TrafficDir) -> &'static str {
    match dir {
        TrafficDir::None => "none",
        TrafficDir::NearToFar => "near",
        TrafficDir::FarToNear => "far",
    }
}

fn failure_slug(tc: Option<FailureCase>) -> String {
    tc.map(|tc| tc.label().to_ascii_lowercase()).unwrap_or_else(|| "none".into())
}

impl CampaignSpec {
    /// Parse a spec document (see EXPERIMENTS.md for the format). Every
    /// field is optional; omitted axes keep the default grid's values.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let doc = Json::parse(text.trim()).map_err(|e| format!("spec parse error: {e}"))?;
        if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
            if schema != SPEC_SCHEMA {
                return Err(format!(
                    "unsupported spec schema {schema:?} (this build reads {SPEC_SCHEMA:?})"
                ));
            }
        }
        let mut spec = CampaignSpec::default();
        if let Some(name) = doc.get("name").and_then(Json::as_str) {
            spec.name = name.to_string();
        }
        let list = |key: &str| -> Result<Option<Vec<&Json>>, String> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_arr()
                    .map(|a| Some(a.iter().collect()))
                    .ok_or_else(|| format!("spec field {key:?} must be an array")),
            }
        };
        if let Some(pods) = list("pods")? {
            spec.pods = pods
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|p| p as usize)
                        .ok_or_else(|| "pods entries must be integers".to_string())
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(stacks) = list("stacks")? {
            spec.stacks = stacks
                .iter()
                .map(|v| match v.as_str() {
                    Some("mrmtp") => Ok(Stack::Mrmtp),
                    Some("bgp") => Ok(Stack::BgpEcmp),
                    Some("bgp-bfd") => Ok(Stack::BgpEcmpBfd),
                    other => Err(format!("unknown stack {other:?} (mrmtp|bgp|bgp-bfd)")),
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(failures) = list("failures")? {
            spec.failures = failures
                .iter()
                .map(|v| match v.as_str() {
                    Some("tc1") => Ok(Some(FailureCase::Tc1)),
                    Some("tc2") => Ok(Some(FailureCase::Tc2)),
                    Some("tc3") => Ok(Some(FailureCase::Tc3)),
                    Some("tc4") => Ok(Some(FailureCase::Tc4)),
                    Some("none") => Ok(None),
                    other => Err(format!("unknown failure case {other:?} (tc1..tc4|none)")),
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(traffic) = list("traffic")? {
            spec.traffic = traffic
                .iter()
                .map(|v| match v.as_str() {
                    Some("none") => Ok(TrafficDir::None),
                    Some("near") => Ok(TrafficDir::NearToFar),
                    Some("far") => Ok(TrafficDir::FarToNear),
                    other => Err(format!("unknown traffic direction {other:?} (none|near|far)")),
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(lr) = list("local_repair")? {
            spec.local_repair = lr
                .iter()
                .map(|v| v.as_bool().ok_or_else(|| "local_repair entries must be booleans".to_string()))
                .collect::<Result<_, _>>()?;
        }
        if let Some(seeds) = doc.get("seeds").and_then(Json::as_u64) {
            spec.seeds = seeds;
        }
        if let Some(base) = doc.get("base_seed").and_then(Json::as_u64) {
            spec.base_seed = base;
        }
        if let Some(quick) = doc.get("quick").and_then(Json::as_bool) {
            spec.quick = quick;
        }
        Ok(spec)
    }

    /// Serialize back to the spec document (echoed into the store's
    /// index header so a store records what produced it).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(SPEC_SCHEMA)),
            ("name", Json::str(self.name.as_str())),
            ("pods", Json::Arr(dedup(&self.pods).into_iter().map(|p| Json::UInt(p as u64)).collect())),
            (
                "stacks",
                Json::Arr(dedup(&self.stacks).into_iter().map(|s| Json::str(s.slug())).collect()),
            ),
            (
                "failures",
                Json::Arr(dedup(&self.failures).into_iter().map(|tc| Json::str(failure_slug(tc))).collect()),
            ),
            (
                "traffic",
                Json::Arr(dedup(&self.traffic).into_iter().map(|d| Json::str(traffic_slug(d))).collect()),
            ),
            (
                "local_repair",
                Json::Arr(dedup(&self.local_repair).into_iter().map(Json::Bool).collect()),
            ),
            ("seeds", Json::UInt(self.seeds)),
            ("base_seed", Json::UInt(self.base_seed)),
            ("quick", Json::Bool(self.quick)),
        ])
    }

    /// Grid size after axis dedup.
    pub fn total_runs(&self) -> u64 {
        (dedup(&self.pods).len()
            * dedup(&self.stacks).len()
            * dedup(&self.failures).len()
            * dedup(&self.traffic).len()
            * dedup(&self.local_repair).len()) as u64
            * self.seeds
    }

    /// Expand the grid into concrete [`RunSpec`]s, one per point ×
    /// seed, in a deterministic order. Axes are deduped first, so the
    /// result is exhaustive over the distinct axis values and free of
    /// duplicate keys.
    pub fn expand(&self) -> Result<Vec<RunSpec>, String> {
        if self.seeds == 0 {
            return Err("campaign spec needs seeds >= 1".into());
        }
        let pods = dedup(&self.pods);
        let stacks = dedup(&self.stacks);
        let failures = dedup(&self.failures);
        let traffic = dedup(&self.traffic);
        let local_repair = dedup(&self.local_repair);
        if pods.is_empty() || stacks.is_empty() || failures.is_empty() || traffic.is_empty() || local_repair.is_empty() {
            return Err("campaign spec has an empty axis".into());
        }
        let mut specs = Vec::new();
        for &p in &pods {
            let params = if p == 2 {
                ClosParams::two_pod()
            } else {
                ClosParams::scaled(p).map_err(|e| format!("pods axis value {p}: {e}"))?
            };
            for &stack in &stacks {
                for &failure in &failures {
                    for &dir in &traffic {
                        for &lr in &local_repair {
                            for s in 0..self.seeds {
                                let mut rs = RunSpec::new(params, stack)
                                    .seeded(self.base_seed + s)
                                    .with_traffic(dir)
                                    .with_local_repair(lr);
                                if let Some(tc) = failure {
                                    rs = rs.failing(tc);
                                }
                                if self.quick {
                                    rs = rs.timed(Timing::quick());
                                }
                                specs.push(rs);
                            }
                        }
                    }
                }
            }
        }
        Ok(specs)
    }
}

/// Execute one grid point and package it as a store record.
pub fn run_one(rs: RunSpec, profile: bool) -> RunRecord {
    let rs = if profile { rs.with_profile(true) } else { rs };
    let started = std::time::Instant::now();
    let (result, mut built) = scenario::run_with_sim(rs);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let digest = crate::chaos::trace_digest(&built.sim);
    let phases = rs
        .failure
        .map(|_| dcn_metrics::storyboard::build(built.sim.trace(), rs.timing.failure_at()))
        .and_then(|sb| sb.phases)
        .map(|p| (p.detection_ms, p.propagation_ms, p.quiescence_ms));
    let stall = built.sim.take_profile().map(|p| {
        let s = dcn_telemetry::stall_breakdown_of(&p);
        StallRecord {
            execute_pct: s.execute_pct,
            barrier_pct: s.barrier_pct,
            drain_pct: s.drain_pct,
            deposit_pct: s.deposit_pct,
            other_pct: s.other_pct,
        }
    });
    RunRecord {
        key: rs.key(),
        key_hash: rs.key_hash(),
        pods: rs.params.pods as u64,
        stack: rs.stack.slug().to_string(),
        failure: failure_slug(rs.failure),
        traffic: traffic_slug(rs.traffic).to_string(),
        seed: rs.seed,
        local_repair: rs.tuning.local_repair,
        digest,
        convergence_ms: result.convergence_ms,
        blast_radius: result.blast_radius as u64,
        control_bytes: result.control_bytes,
        update_frames: result.update_frames,
        packets_lost: result.loss.map(|l| l.lost()),
        keepalive_frames: result.keepalive.frames,
        phases,
        stall,
        wall_ms,
    }
}

/// Expand `spec` and fan every run out over up to `threads` workers
/// (0 = one per available CPU) through the shared pool. Records come
/// back in grid order regardless of which worker ran what.
pub fn run_grid(spec: &CampaignSpec, threads: usize, profile: bool) -> Result<Vec<RunRecord>, String> {
    let specs = spec.expand()?;
    Ok(pool::fan_out(specs, threads, |rs| run_one(rs, profile)))
}

/// [`run_grid`] landing in a freshly created store at `dir`.
pub fn run_to_store(
    spec: &CampaignSpec,
    dir: &std::path::Path,
    threads: usize,
    profile: bool,
) -> Result<(Store, Vec<RunRecord>), String> {
    // Create the store before burning CPU: a bad directory should fail
    // in milliseconds, not after the grid ran.
    let store = Store::create(dir, &spec.name, spec.to_json(), spec.total_runs())?;
    let records = run_grid(spec, threads, profile)?;
    store
        .append_all(&records)
        .map_err(|e| format!("append to {}: {e}", dir.display()))?;
    Ok((store, records))
}

/// Per-grid-point summary of a record set (seeds aggregated): the
/// `fcr campaign report` table.
pub fn summary(records: &[RunRecord]) -> Figure {
    /// One grid point: everything but the seed.
    type GridPoint = (u64, String, String, String, bool);
    // Group by grid point, preserving first-seen order.
    let mut groups: Vec<(GridPoint, Vec<&RunRecord>)> = Vec::new();
    for r in records {
        let k = (r.pods, r.stack.clone(), r.failure.clone(), r.traffic.clone(), r.local_repair);
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, v)) => v.push(r),
            None => groups.push((k, vec![r])),
        }
    }
    let mut rows = Vec::new();
    for ((pods, stack, failure, traffic, lr), runs) in groups {
        let conv: Vec<f64> = runs.iter().filter_map(|r| r.convergence_ms).collect();
        let conv_cell = crate::replicate::Stats::of(&conv)
            .map(|s| s.render(1))
            .unwrap_or_else(|| "-".into());
        let digests: Vec<u64> = dedup(&runs.iter().map(|r| r.digest).collect::<Vec<_>>());
        rows.push(vec![
            pods.to_string(),
            stack,
            failure,
            traffic,
            if lr { "on" } else { "off" }.to_string(),
            runs.len().to_string(),
            conv_cell,
            runs[0].blast_radius.to_string(),
            digests.len().to_string(),
        ]);
    }
    Figure {
        title: "campaign summary — convergence ms as mean [min–max] across seeds".to_string(),
        headers: vec![
            "pods", "stack", "failure", "traffic", "repair", "runs", "convergence_ms",
            "blast_radius", "digests",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn default_grid_is_the_acceptance_grid() {
        let spec = CampaignSpec::default();
        assert_eq!(spec.total_runs(), 24, "2 shapes x 2 stacks x TC1-TC2 x 3 seeds");
        let specs = spec.expand().unwrap();
        assert_eq!(specs.len(), 24);
        let keys: BTreeSet<String> = specs.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), 24, "every grid point has a distinct canonical key");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CampaignSpec {
            name: "rt".into(),
            pods: vec![2, 4, 4],
            stacks: vec![Stack::BgpEcmpBfd, Stack::Mrmtp],
            failures: vec![Some(FailureCase::Tc3), None],
            traffic: vec![TrafficDir::NearToFar],
            local_repair: vec![false, true],
            seeds: 2,
            base_seed: 10,
            quick: true,
        };
        let parsed = CampaignSpec::parse(&spec.to_json().render()).unwrap();
        // to_json dedups axes; otherwise the round trip is exact.
        assert_eq!(parsed.pods, vec![2, 4]);
        assert_eq!(parsed.stacks, spec.stacks);
        assert_eq!(parsed.failures, spec.failures);
        assert_eq!(parsed.traffic, spec.traffic);
        assert_eq!(parsed.local_repair, spec.local_repair);
        assert_eq!((parsed.seeds, parsed.base_seed, parsed.quick), (2, 10, true));
        assert_eq!(parsed.name, "rt");
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(CampaignSpec::parse("{\"schema\":\"campaign-spec/v999\"}").is_err());
        assert!(CampaignSpec::parse("{\"stacks\":[\"ospf\"]}").is_err());
        assert!(CampaignSpec::parse("{\"failures\":[\"tc9\"]}").is_err());
        assert!(CampaignSpec::parse("{\"pods\":2}").is_err(), "axes must be arrays");
        let empty = CampaignSpec { seeds: 0, ..CampaignSpec::default() };
        assert!(empty.expand().is_err());
        let no_axis = CampaignSpec { stacks: vec![], ..CampaignSpec::default() };
        assert!(no_axis.expand().is_err());
    }

    #[test]
    fn expansion_rejects_bad_pod_shapes_with_the_axis_value() {
        let spec = CampaignSpec { pods: vec![2, 3], ..CampaignSpec::default() };
        let err = spec.expand().unwrap_err();
        assert!(err.contains("pods axis value 3"), "got: {err}");
    }
}
