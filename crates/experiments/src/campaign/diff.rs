//! Differential regression over two campaign stores.
//!
//! Generalizes the committed `BENCH_*.json` gates: instead of two
//! hand-picked benchmark files, any two stores (typically the same
//! campaign spec run at two git revisions) are compared run by run on
//! their canonical keys. A digest mismatch is always a finding — the
//! simulation is deterministic, so same key + same code must mean the
//! same trace, bit for bit. Numeric metrics tolerate `threshold`
//! relative drift before being flagged. Host-clock fields (`wall_ms`,
//! the stall breakdown) are never compared: a store recorded on a loaded
//! laptop must diff clean against one from a quiet CI runner.

use std::collections::BTreeMap;

use super::store::RunRecord;

/// One flagged difference between two stores.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Canonical run key the finding is about.
    pub key: String,
    /// Which field drifted (`digest`, `convergence_ms`, …).
    pub field: &'static str,
    /// Values on each side, rendered.
    pub a: String,
    pub b: String,
    /// Relative drift for numeric fields (`None` for digest mismatches
    /// and present/absent flips, which are categorical).
    pub rel: Option<f64>,
}

/// The full comparison of two stores.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Keys present in both stores and compared.
    pub compared: usize,
    /// Flagged drifts, in key order.
    pub findings: Vec<Finding>,
    /// Keys only one side has (coverage changes, not drift — reported
    /// separately so a grown grid doesn't read as a regression).
    pub only_a: Vec<String>,
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// Did anything drift? (Coverage differences don't count.)
    pub fn has_drift(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "campaign diff: {} run(s) compared, {} drifted, {}+{} uncompared\n",
            self.compared,
            self.findings.len(),
            self.only_a.len(),
            self.only_b.len(),
        );
        for f in &self.findings {
            out.push_str(&format!("  DRIFT {:<16} {} -> {}", f.field, f.a, f.b));
            if let Some(rel) = f.rel {
                out.push_str(&format!("  ({:+.1}%)", rel * 100.0));
            }
            out.push_str(&format!("\n        {}\n", f.key));
        }
        for k in &self.only_a {
            out.push_str(&format!("  only in A: {k}\n"));
        }
        for k in &self.only_b {
            out.push_str(&format!("  only in B: {k}\n"));
        }
        if !self.has_drift() {
            out.push_str("  zero drift\n");
        }
        out
    }
}

/// Relative difference of two magnitudes, symmetric in its arguments.
fn rel_drift(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (b - a).abs() / scale
    }
}

/// Compare two key-resolved record sets. `threshold` is the relative
/// drift a numeric metric may show before being flagged (e.g. `0.05`
/// for 5%); digests are compared exactly.
pub fn diff(
    a: &BTreeMap<String, RunRecord>,
    b: &BTreeMap<String, RunRecord>,
    threshold: f64,
) -> DiffReport {
    let mut report = DiffReport::default();
    for (key, ra) in a {
        let Some(rb) = b.get(key) else {
            report.only_a.push(key.clone());
            continue;
        };
        report.compared += 1;
        diff_one(ra, rb, threshold, &mut report.findings);
    }
    for key in b.keys() {
        if !a.contains_key(key) {
            report.only_b.push(key.clone());
        }
    }
    report
}

fn diff_one(a: &RunRecord, b: &RunRecord, threshold: f64, out: &mut Vec<Finding>) {
    let mut flag = |field: &'static str, va: String, vb: String, rel: Option<f64>| {
        out.push(Finding { key: a.key.clone(), field, a: va, b: vb, rel });
    };
    if a.digest != b.digest {
        flag("digest", format!("{:016x}", a.digest), format!("{:016x}", b.digest), None);
    }
    let mut num = |field: &'static str, va: Option<f64>, vb: Option<f64>| match (va, vb) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            let rel = rel_drift(x, y);
            if rel > threshold {
                flag(field, format!("{x}"), format!("{y}"), Some(rel));
            }
        }
        (x, y) => {
            let r = |v: Option<f64>| v.map_or("absent".to_string(), |v| format!("{v}"));
            flag(field, r(x), r(y), None);
        }
    };
    num("convergence_ms", a.convergence_ms, b.convergence_ms);
    num("blast_radius", Some(a.blast_radius as f64), Some(b.blast_radius as f64));
    num("control_bytes", Some(a.control_bytes as f64), Some(b.control_bytes as f64));
    num("update_frames", Some(a.update_frames as f64), Some(b.update_frames as f64));
    num("packets_lost", a.packets_lost.map(|v| v as f64), b.packets_lost.map(|v| v as f64));
    num("keepalive_frames", Some(a.keepalive_frames as f64), Some(b.keepalive_frames as f64));
    match (a.phases, b.phases) {
        (None, None) => {}
        (Some(pa), Some(pb)) => {
            num("detection_ms", Some(pa.0), Some(pb.0));
            num("propagation_ms", Some(pa.1), Some(pb.1));
            num("quiescence_ms", Some(pa.2), Some(pb.2));
        }
        (pa, pb) => {
            let r = |p: Option<(f64, f64, f64)>| {
                p.map_or("absent".to_string(), |p| format!("{p:?}"))
            };
            flag("storyboard", r(pa), r(pb), None);
        }
    }
    // wall_ms and stall are host-clock observations: never compared.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64) -> RunRecord {
        RunRecord {
            key: format!("seed={seed}"),
            key_hash: seed,
            pods: 2,
            stack: "mrmtp".into(),
            failure: "tc1".into(),
            traffic: "none".into(),
            seed,
            local_repair: false,
            digest: 0xabc0 + seed,
            convergence_ms: Some(40.0),
            blast_radius: 3,
            control_bytes: 1000,
            update_frames: 10,
            packets_lost: None,
            keepalive_frames: 200,
            phases: Some((1.0, 39.0, 0.0)),
            stall: None,
            wall_ms: 50.0,
        }
    }

    fn keyed(records: Vec<RunRecord>) -> BTreeMap<String, RunRecord> {
        records.into_iter().map(|r| (r.key.clone(), r)).collect()
    }

    #[test]
    fn identical_stores_have_zero_drift() {
        let a = keyed(vec![record(1), record(2)]);
        let r = diff(&a, &a.clone(), 0.05);
        assert_eq!(r.compared, 2);
        assert!(!r.has_drift(), "{:?}", r.findings);
        assert!(r.render().contains("zero drift"));
    }

    #[test]
    fn host_clock_fields_are_diff_exempt() {
        let a = keyed(vec![record(1)]);
        let mut slow = record(1);
        slow.wall_ms = 9000.0;
        slow.stall = Some(super::super::store::StallRecord {
            execute_pct: 10.0,
            barrier_pct: 80.0,
            drain_pct: 5.0,
            deposit_pct: 2.5,
            other_pct: 2.5,
        });
        let r = diff(&a, &keyed(vec![slow]), 0.05);
        assert!(!r.has_drift(), "{:?}", r.findings);
    }

    #[test]
    fn digest_mismatch_is_always_flagged() {
        let a = keyed(vec![record(1)]);
        let mut b1 = record(1);
        b1.digest ^= 1;
        let r = diff(&a, &keyed(vec![b1]), 1000.0);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].field, "digest");
    }

    #[test]
    fn metric_drift_respects_the_threshold() {
        let a = keyed(vec![record(1)]);
        let mut b1 = record(1);
        b1.convergence_ms = Some(41.0); // 2.4% drift
        let r = diff(&a, &keyed(vec![b1.clone()]), 0.05);
        assert!(!r.has_drift(), "{:?}", r.findings);
        let r = diff(&a, &keyed(vec![b1]), 0.01);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].field, "convergence_ms");
        assert!(r.findings[0].rel.unwrap() > 0.01);
    }

    #[test]
    fn coverage_changes_are_reported_but_not_drift() {
        let a = keyed(vec![record(1), record(2)]);
        let b = keyed(vec![record(2), record(3)]);
        let r = diff(&a, &b, 0.05);
        assert_eq!(r.compared, 1);
        assert!(!r.has_drift());
        assert_eq!(r.only_a, vec!["seed=1".to_string()]);
        assert_eq!(r.only_b, vec!["seed=3".to_string()]);
    }

    #[test]
    fn present_absent_flips_are_flagged() {
        let a = keyed(vec![record(1)]);
        let mut b1 = record(1);
        b1.convergence_ms = None;
        b1.phases = None;
        let r = diff(&a, &keyed(vec![b1]), 0.05);
        let fields: Vec<&str> = r.findings.iter().map(|f| f.field).collect();
        assert!(fields.contains(&"convergence_ms"), "{fields:?}");
        assert!(fields.contains(&"storyboard"), "{fields:?}");
    }
}
