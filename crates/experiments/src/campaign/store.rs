//! Append-only on-disk results store (`campaign/v1`).
//!
//! One directory per campaign: an `index.json` header written at
//! creation plus a `runs.jsonl` segment that only ever grows — one JSON
//! object per finished run. Appends are line-atomic, so a crashed or
//! interrupted campaign leaves a readable store; re-running appends
//! fresh records and readers resolve duplicates by key, last record
//! wins. This is the substrate `fcr campaign diff` compares across git
//! revisions: every record carries the run's canonical
//! [`RunSpec::key`](crate::RunSpec::key), its trace digest, the paper
//! metrics, the storyboard phase breakdown, and (when profiled) the
//! engine stall breakdown.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use dcn_telemetry::Json;

/// Store schema identifier, bumped on any incompatible record change.
pub const SCHEMA: &str = "campaign/v1";
const INDEX_FILE: &str = "index.json";
const RUNS_FILE: &str = "runs.jsonl";

/// Engine stall percentages of one profiled run. Host-clock observation
/// only — diff-exempt, recorded for fleet-level perf trending.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StallRecord {
    pub execute_pct: f64,
    pub barrier_pct: f64,
    pub drain_pct: f64,
    pub deposit_pct: f64,
    pub other_pct: f64,
}

/// One finished run, as persisted in `runs.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Canonical spec key (the store's primary key; see
    /// [`RunSpec::key`](crate::RunSpec::key)).
    pub key: String,
    /// Hash of `key` — the compact run id.
    pub key_hash: u64,
    /// Denormalized axes for reporting (all derivable from `key`).
    pub pods: u64,
    pub stack: String,
    pub failure: String,
    pub traffic: String,
    pub seed: u64,
    pub local_repair: bool,
    /// Trace digest of the finished simulation — the bit-identity
    /// surface `diff` gates on.
    pub digest: u64,
    /// Paper metrics.
    pub convergence_ms: Option<f64>,
    pub blast_radius: u64,
    pub control_bytes: u64,
    pub update_frames: u64,
    pub packets_lost: Option<u64>,
    pub keepalive_frames: u64,
    /// Storyboard phase breakdown (ms), when the run failed something
    /// and detection happened: (detection, propagation, quiescence).
    pub phases: Option<(f64, f64, f64)>,
    /// Engine stall breakdown, when the run was profiled. Diff-exempt.
    pub stall: Option<StallRecord>,
    /// Host wall-clock of the run in milliseconds. Diff-exempt.
    pub wall_ms: f64,
}

impl RunRecord {
    pub fn to_json(&self) -> Json {
        let opt_f = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
        let opt_u = |v: Option<u64>| v.map_or(Json::Null, Json::UInt);
        let mut fields = vec![
            ("key", Json::str(self.key.as_str())),
            ("key_hash", Json::UInt(self.key_hash)),
            ("pods", Json::UInt(self.pods)),
            ("stack", Json::str(self.stack.as_str())),
            ("failure", Json::str(self.failure.as_str())),
            ("traffic", Json::str(self.traffic.as_str())),
            ("seed", Json::UInt(self.seed)),
            ("local_repair", Json::Bool(self.local_repair)),
            ("digest", Json::UInt(self.digest)),
            (
                "metrics",
                Json::obj(vec![
                    ("convergence_ms", opt_f(self.convergence_ms)),
                    ("blast_radius", Json::UInt(self.blast_radius)),
                    ("control_bytes", Json::UInt(self.control_bytes)),
                    ("update_frames", Json::UInt(self.update_frames)),
                    ("packets_lost", opt_u(self.packets_lost)),
                    ("keepalive_frames", Json::UInt(self.keepalive_frames)),
                ]),
            ),
            (
                "storyboard",
                match self.phases {
                    None => Json::Null,
                    Some((d, p, q)) => Json::obj(vec![
                        ("detection_ms", Json::Float(d)),
                        ("propagation_ms", Json::Float(p)),
                        ("quiescence_ms", Json::Float(q)),
                    ]),
                },
            ),
            (
                "stall",
                match self.stall {
                    None => Json::Null,
                    Some(s) => Json::obj(vec![
                        ("execute_pct", Json::Float(s.execute_pct)),
                        ("barrier_pct", Json::Float(s.barrier_pct)),
                        ("drain_pct", Json::Float(s.drain_pct)),
                        ("deposit_pct", Json::Float(s.deposit_pct)),
                        ("other_pct", Json::Float(s.other_pct)),
                    ]),
                },
            ),
        ];
        fields.push(("wall_ms", Json::Float(self.wall_ms)));
        Json::obj(fields)
    }

    pub fn from_json(doc: &Json) -> Result<RunRecord, String> {
        let s = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string field {k:?}"))
        };
        let u = |k: &str| {
            doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("record missing uint field {k:?}"))
        };
        let metrics = doc.get("metrics").ok_or("record missing metrics object")?;
        let mu = |k: &str| {
            metrics
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics missing uint field {k:?}"))
        };
        let phases = match doc.get("storyboard") {
            None | Some(Json::Null) => None,
            Some(sb) => Some((
                sb.get("detection_ms").and_then(Json::as_f64).ok_or("storyboard missing detection_ms")?,
                sb.get("propagation_ms").and_then(Json::as_f64).ok_or("storyboard missing propagation_ms")?,
                sb.get("quiescence_ms").and_then(Json::as_f64).ok_or("storyboard missing quiescence_ms")?,
            )),
        };
        let stall = match doc.get("stall") {
            None | Some(Json::Null) => None,
            Some(st) => {
                let f = |k: &str| {
                    st.get(k).and_then(Json::as_f64).ok_or_else(|| format!("stall missing field {k:?}"))
                };
                Some(StallRecord {
                    execute_pct: f("execute_pct")?,
                    barrier_pct: f("barrier_pct")?,
                    drain_pct: f("drain_pct")?,
                    deposit_pct: f("deposit_pct")?,
                    other_pct: f("other_pct")?,
                })
            }
        };
        Ok(RunRecord {
            key: s("key")?,
            key_hash: u("key_hash")?,
            pods: u("pods")?,
            stack: s("stack")?,
            failure: s("failure")?,
            traffic: s("traffic")?,
            seed: u("seed")?,
            local_repair: doc
                .get("local_repair")
                .and_then(Json::as_bool)
                .ok_or("record missing local_repair")?,
            digest: u("digest")?,
            convergence_ms: metrics.get("convergence_ms").and_then(Json::as_f64),
            blast_radius: mu("blast_radius")?,
            control_bytes: mu("control_bytes")?,
            update_frames: mu("update_frames")?,
            packets_lost: metrics.get("packets_lost").and_then(Json::as_u64),
            keepalive_frames: mu("keepalive_frames")?,
            phases,
            stall,
            wall_ms: doc.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

/// An on-disk campaign store (a directory with `index.json` +
/// `runs.jsonl`).
#[derive(Clone, Debug)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Create a new store directory (the directory may exist, the index
    /// must not — a store is created once and only ever appended to).
    pub fn create(dir: &Path, name: &str, spec: Json, planned_runs: u64) -> Result<Store, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let index_path = dir.join(INDEX_FILE);
        if index_path.exists() {
            return Err(format!(
                "{} already holds a campaign store (append-only: pick a fresh directory)",
                dir.display()
            ));
        }
        let index = Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("name", Json::str(name)),
            ("planned_runs", Json::UInt(planned_runs)),
            ("cores", Json::UInt(dcn_telemetry::host_cores())),
            ("spec", spec),
        ]);
        std::fs::write(&index_path, index.render() + "\n")
            .map_err(|e| format!("write {}: {e}", index_path.display()))?;
        Ok(Store { dir: dir.to_path_buf() })
    }

    /// Open an existing store, validating the schema header.
    pub fn open(dir: &Path) -> Result<Store, String> {
        let store = Store { dir: dir.to_path_buf() };
        let index = store.index()?;
        match index.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => Ok(store),
            Some(other) => Err(format!(
                "{}: unsupported store schema {other:?} (this build reads {SCHEMA:?})",
                dir.display()
            )),
            None => Err(format!("{}: index.json has no schema field", dir.display())),
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The parsed `index.json` header.
    pub fn index(&self) -> Result<Json, String> {
        let path = self.dir.join(INDEX_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Json::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Append one finished run to the segment (one line, flushed).
    pub fn append(&self, record: &RunRecord) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(RUNS_FILE))?;
        writeln!(f, "{}", record.to_json().render())?;
        f.flush()
    }

    /// Append a batch of finished runs in order.
    pub fn append_all(&self, records: &[RunRecord]) -> io::Result<()> {
        for r in records {
            self.append(r)?;
        }
        Ok(())
    }

    /// Every record in append order (duplicates included). A store with
    /// no segment yet reads as empty.
    pub fn records(&self) -> Result<Vec<RunRecord>, String> {
        let path = self.dir.join(RUNS_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
            out.push(
                RunRecord::from_json(&doc).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?,
            );
        }
        Ok(out)
    }

    /// Records resolved by key: the append-only convention is that a
    /// re-run of the same experiment appends a fresh record and the
    /// *last* one wins.
    pub fn latest(&self) -> Result<BTreeMap<String, RunRecord>, String> {
        let mut map = BTreeMap::new();
        for r in self.records()? {
            map.insert(r.key.clone(), r);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64) -> RunRecord {
        RunRecord {
            key: format!("pods=2x2x2x2x1;stack=mrmtp;seed={seed}"),
            key_hash: 0xfeed_0000 + seed,
            pods: 2,
            stack: "mrmtp".into(),
            failure: "tc1".into(),
            traffic: "none".into(),
            seed,
            local_repair: false,
            digest: 0xdead_beef + seed,
            convergence_ms: Some(41.5),
            blast_radius: 3,
            control_bytes: 1234,
            update_frames: 17,
            packets_lost: None,
            keepalive_frames: 210,
            phases: Some((0.5, 41.0, 2.0)),
            stall: None,
            wall_ms: 99.25,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record(7);
        let parsed = RunRecord::from_json(&Json::parse(&r.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, r);
        // And the fully-null optional shape round-trips too.
        let bare = RunRecord { convergence_ms: None, phases: None, ..record(8) };
        let parsed = RunRecord::from_json(&Json::parse(&bare.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, bare);
    }

    #[test]
    fn store_appends_reopens_and_resolves_duplicates() {
        let dir = std::env::temp_dir().join(format!("dcn-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::create(&dir, "unit", Json::obj(vec![]), 3).unwrap();
        store.append_all(&[record(1), record(2)]).unwrap();
        // Second handle sees the same records.
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.records().unwrap(), vec![record(1), record(2)]);
        // A re-run appends; latest() resolves last-wins by key.
        let mut rerun = record(1);
        rerun.digest = 0x1111;
        reopened.append(&rerun).unwrap();
        assert_eq!(reopened.records().unwrap().len(), 3);
        let latest = reopened.latest().unwrap();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[&record(1).key].digest, 0x1111);
        // Creating over an existing index is refused.
        assert!(Store::create(&dir, "again", Json::obj(vec![]), 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
