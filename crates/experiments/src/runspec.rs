//! The unified experiment description.
//!
//! Every knob the harness can vary — topology, protocol stack, scripted
//! failure, traffic placement, seed, timeline, protocol-timer tuning,
//! telemetry sink, and event-scheduler backend — lives in one [`RunSpec`]
//! built with a fluent chain:
//!
//! ```
//! use dcn_experiments::{RunSpec, Stack, TrafficDir};
//! use dcn_topology::{ClosParams, FailureCase};
//!
//! let r = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
//!     .failing(FailureCase::Tc1)
//!     .with_traffic(TrafficDir::NearToFar)
//!     .seeded(7)
//!     .run();
//! assert!(r.convergence_ms.is_some());
//! ```
//!
//! Every entry point of the crate — [`crate::scenario::run`],
//! [`crate::replicate`], [`crate::report`], [`crate::parallel`], and the
//! `fcr` CLI — consumes a `RunSpec`.

use dcn_sim::SchedulerKind;
use dcn_telemetry::TelemetryConfig;
use dcn_topology::{ClosParams, FailureCase};

use crate::fabric::{Stack, StackTuning};
use crate::scenario::{self, InstrumentedRun, ScenarioResult, Timing, TrafficDir};

/// A full experiment description: everything [`RunSpec::run`] needs to
/// produce a [`ScenarioResult`] deterministically.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Fabric shape.
    pub params: ClosParams,
    /// Protocol stack under test.
    pub stack: Stack,
    /// Scripted interface failure (the paper's TC1–TC4), if any.
    pub failure: Option<FailureCase>,
    /// Monitored-flow placement relative to the failure chain.
    pub traffic: TrafficDir,
    /// Inter-packet gap override for the monitored flow. `None` keeps
    /// [`dcn_traffic::SendSpec`]'s default pacing (≈333 pkt/s); the
    /// loss-window experiments shrink it so the carrier-detection window
    /// (500 µs by default) spans many packets.
    pub traffic_interval: Option<dcn_sim::time::Duration>,
    /// Seed for every deterministic RNG stream in the run.
    pub seed: u64,
    /// Experiment timeline (warmup / failure instant / drain).
    pub timing: Timing,
    /// Protocol-timer overrides for ablation studies.
    pub tuning: StackTuning,
    /// Telemetry sink for instrumented runs. `None` means
    /// [`RunSpec::run_instrumented`] samples with the default cadence;
    /// plain [`RunSpec::run`] never samples.
    pub telemetry: Option<TelemetryConfig>,
    /// Event-scheduler backend (timer wheel by default; the binary heap
    /// remains available for equivalence checking).
    pub scheduler: SchedulerKind,
}

impl RunSpec {
    /// A steady-state spec on `params` × `stack`: no failure, no traffic,
    /// seed 42, the paper's default timeline and timers.
    pub fn new(params: ClosParams, stack: Stack) -> RunSpec {
        RunSpec {
            params,
            stack,
            failure: None,
            traffic: TrafficDir::None,
            traffic_interval: None,
            seed: 42,
            timing: Timing::default(),
            tuning: StackTuning::default(),
            telemetry: None,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Inject failure case `tc` at [`Timing::failure_at`].
    pub fn failing(mut self, tc: FailureCase) -> RunSpec {
        self.failure = Some(tc);
        self
    }

    /// Run the monitored flow in direction `dir`.
    pub fn with_traffic(mut self, dir: TrafficDir) -> RunSpec {
        self.traffic = dir;
        self
    }

    /// Pace the monitored flow at one packet per `interval`.
    pub fn with_traffic_interval(mut self, interval: dcn_sim::time::Duration) -> RunSpec {
        self.traffic_interval = Some(interval);
        self
    }

    /// Reseed every RNG stream.
    pub fn seeded(mut self, seed: u64) -> RunSpec {
        self.seed = seed;
        self
    }

    /// Replace the experiment timeline.
    pub fn timed(mut self, timing: Timing) -> RunSpec {
        self.timing = timing;
        self
    }

    /// Override protocol timers (ablation studies).
    pub fn tuned(mut self, tuning: StackTuning) -> RunSpec {
        self.tuning = tuning;
        self
    }

    /// Enable or disable the data-plane fast path on every router
    /// (compiled FIBs + parse-once frame metadata). On by default; the
    /// equivalence suite runs each spec both ways and asserts bit-equal
    /// trace digests.
    pub fn with_fast_path(mut self, on: bool) -> RunSpec {
        self.tuning.fast_path = on;
        self
    }

    /// Enable or disable local fast reroute (precomputed backup FIBs,
    /// in-data-plane repair around locally-dead ports). Off by default;
    /// the equivalence suite proves the off setting is bit-identical to
    /// the pre-repair code.
    pub fn with_local_repair(mut self, on: bool) -> RunSpec {
        self.tuning.local_repair = on;
        self
    }

    /// Attach a telemetry sink configuration for instrumented runs.
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> RunSpec {
        self.telemetry = Some(cfg);
        self
    }

    /// Select the event-scheduler backend.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> RunSpec {
        self.scheduler = kind;
        self
    }

    /// Run on the sharded parallel engine with `workers` threads
    /// (`1` keeps the sequential reference engine). Metrics and trace
    /// digests are bit-identical either way; workers only buy wall-clock
    /// speed on multi-core hosts.
    pub fn with_workers(mut self, workers: usize) -> RunSpec {
        self.tuning.workers = workers.max(1);
        self
    }

    /// Enable engine runtime profiling (per-shard window accounting,
    /// barrier-stall attribution). Host-clock observation only: metrics
    /// and trace digests are bit-identical either way — the equivalence
    /// suite enforces it.
    pub fn with_profile(mut self, on: bool) -> RunSpec {
        self.tuning.profile = on;
        self
    }

    /// Enable or disable adaptive window batching on the sharded engine
    /// (on by default). An engine-only knob: trace digests are
    /// bit-identical either way — the equivalence suite runs both — so
    /// like `with_workers` it is excluded from [`RunSpec::key`].
    pub fn with_batching(mut self, on: bool) -> RunSpec {
        self.tuning.batch_windows = on;
        self
    }

    /// Canonical serialized form of the spec: a stable `k=v;k=v` string
    /// over every field that can change what the simulation *does*.
    ///
    /// This is the results-store run key — two specs with equal keys are
    /// the same experiment and must produce bit-identical trace digests.
    /// Engine-only knobs the equivalence suite proves digest-invariant
    /// (scheduler backend, sharded-engine workers, profiler) and the
    /// read-only telemetry sink are deliberately *excluded*, so stores
    /// recorded under different engine configurations diff cleanly
    /// against each other.
    pub fn key(&self) -> String {
        let p = &self.params;
        let dur = |d: Option<dcn_sim::time::Duration>| match d {
            Some(d) => d.to_string(),
            None => "-".into(),
        };
        format!(
            "pods={}x{}x{}x{}x{};stack={};failure={};traffic={};interval={};seed={};\
             timing={}/{}/{}/{};timers={};bgp_ka={};bgp_hold={};bfd_tx={};\
             fast_path={};local_repair={}",
            p.pods,
            p.spines_per_pod,
            p.tors_per_pod,
            p.uplinks_per_spine,
            p.servers_per_tor,
            self.stack.slug(),
            self.failure.map(|tc| tc.label().to_ascii_lowercase()).unwrap_or_else(|| "-".into()),
            match self.traffic {
                TrafficDir::None => "none",
                TrafficDir::NearToFar => "near",
                TrafficDir::FarToNear => "far",
            },
            dur(self.traffic_interval),
            self.seed,
            self.timing.warmup,
            self.timing.traffic_lead,
            self.timing.post_failure,
            self.timing.drain,
            // Timer-block overrides are rare (ablations); the Debug form
            // is deterministic and `-` marks the paper defaults.
            self.tuning.mrmtp_timers.map(|t| format!("{t:?}")).unwrap_or_else(|| "-".into()),
            dur(self.tuning.bgp_keepalive),
            dur(self.tuning.bgp_hold),
            dur(self.tuning.bfd_tx_interval),
            self.tuning.fast_path as u8,
            self.tuning.local_repair as u8,
        )
    }

    /// Hash of [`RunSpec::key`] — the store's compact run id. Stable for
    /// a given build (same hasher discipline as the trace digest).
    pub fn key_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.key().hash(&mut h);
        h.finish()
    }

    /// Run to completion and extract the paper's metrics.
    pub fn run(self) -> ScenarioResult {
        scenario::run(self)
    }

    /// Run with the telemetry sink attached (the configured one, or the
    /// default cadence when none was set). Sampling is read-only: the
    /// metrics are identical to [`RunSpec::run`]'s.
    pub fn run_instrumented(self) -> InstrumentedRun {
        scenario::run_instrumented(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_field() {
        let spec = RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp)
            .failing(FailureCase::Tc2)
            .with_traffic(TrafficDir::FarToNear)
            .seeded(9)
            .with_scheduler(SchedulerKind::Heap)
            .with_workers(4)
            .with_telemetry(TelemetryConfig::default());
        assert_eq!(spec.tuning.workers, 4);
        assert_eq!(spec.stack, Stack::BgpEcmp);
        assert_eq!(spec.failure, Some(FailureCase::Tc2));
        assert_eq!(spec.traffic, TrafficDir::FarToNear);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.scheduler, SchedulerKind::Heap);
        assert!(spec.telemetry.is_some());
    }

    #[test]
    fn key_distinguishes_experiments_but_not_engine_knobs() {
        let base = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(FailureCase::Tc1);
        // Engine-only knobs are digest-invariant and excluded from the key.
        assert_eq!(base.key(), base.with_workers(4).key());
        assert_eq!(base.key(), base.with_scheduler(SchedulerKind::Heap).key());
        assert_eq!(base.key(), base.with_profile(true).key());
        assert_eq!(base.key(), base.with_batching(false).key());
        assert_eq!(base.key(), base.with_telemetry(TelemetryConfig::default()).key());
        // Everything semantic changes it.
        assert_ne!(base.key(), base.seeded(7).key());
        assert_ne!(base.key(), base.failing(FailureCase::Tc2).key());
        assert_ne!(base.key(), RunSpec::new(ClosParams::four_pod(), Stack::Mrmtp).failing(FailureCase::Tc1).key());
        assert_ne!(base.key(), base.with_traffic(TrafficDir::NearToFar).key());
        assert_ne!(base.key(), base.with_local_repair(true).key());
        assert_ne!(base.key(), base.with_fast_path(false).key());
        // The hash tracks the key.
        assert_eq!(base.key_hash(), base.with_workers(2).key_hash());
        assert_ne!(base.key_hash(), base.seeded(7).key_hash());
    }

    #[test]
    fn scheduler_backends_produce_identical_metrics() {
        let base = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .failing(FailureCase::Tc4)
            .seeded(3);
        let wheel = base.with_scheduler(SchedulerKind::Wheel).run();
        let heap = base.with_scheduler(SchedulerKind::Heap).run();
        assert_eq!(wheel.convergence_ms, heap.convergence_ms);
        assert_eq!(wheel.blast_radius, heap.blast_radius);
        assert_eq!(wheel.control_bytes, heap.control_bytes);
        assert_eq!(wheel.update_frames, heap.update_frames);
    }
}
