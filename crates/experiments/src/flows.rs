//! Pinning the monitored flow onto the paper's failure chain.
//!
//! The paper's four failure points all sit on the chain
//! ToR₁₁ ↔ S1_1 ↔ S2_1, and its packet-loss experiments send traffic that
//! *transits* that chain. With ECMP (or MR-MTP's flow hashing), whether a
//! given 5-tuple uses the chain depends on the hash. Because both stacks
//! share `dcn_wire::flow_hash`, we can search for source-port values whose
//! hash selects member 0 at every hop — member 0 is, by the wiring
//! conventions of `dcn-topology`, exactly the chain the paper fails.

use dcn_wire::{ecmp_index, flow_hash, IpAddr4, IPPROTO_UDP};

/// Find a `(src_port, dst_port)` whose flow hash picks ECMP member 0 at
/// every fan-out width in `widths` — i.e. a flow that rides the failure
/// chain. Deterministic; panics only if no port below 64000 qualifies
/// (impossible for any practical width set).
pub fn pin_flow(src: IpAddr4, dst: IpAddr4, widths: &[usize]) -> (u16, u16) {
    let dst_port = 6000;
    for src_port in 5000..64000u16 {
        let h = flow_hash(src, dst, IPPROTO_UDP, src_port, dst_port);
        if widths.iter().all(|&w| ecmp_index(h, w) == 0) {
            return (src_port, dst_port);
        }
    }
    panic!("no pinnable source port found for widths {widths:?}");
}

/// Find a flow that *avoids* the chain (picks a nonzero member at the
/// first hop) — used by tests that need an unaffected control flow.
pub fn pin_flow_off_chain(src: IpAddr4, dst: IpAddr4, first_width: usize) -> (u16, u16) {
    let dst_port = 6000;
    for src_port in 5000..64000u16 {
        let h = flow_hash(src, dst, IPPROTO_UDP, src_port, dst_port);
        if ecmp_index(h, first_width) != 0 {
            return (src_port, dst_port);
        }
    }
    panic!("no off-chain source port found");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_flow_selects_member_zero_at_every_width() {
        let src = IpAddr4::new(192, 168, 11, 1);
        let dst = IpAddr4::new(192, 168, 14, 1);
        let (sp, dp) = pin_flow(src, dst, &[2, 2]);
        let h = flow_hash(src, dst, IPPROTO_UDP, sp, dp);
        assert_eq!(ecmp_index(h, 2), 0);
        // Works for wider fabrics too.
        let (sp4, dp4) = pin_flow(src, dst, &[4, 2]);
        let h4 = flow_hash(src, dst, IPPROTO_UDP, sp4, dp4);
        assert_eq!(ecmp_index(h4, 4), 0);
        assert_eq!(ecmp_index(h4, 2), 0);
        let _ = (sp, dp, dp4);
    }

    #[test]
    fn off_chain_flow_avoids_member_zero() {
        let src = IpAddr4::new(192, 168, 11, 1);
        let dst = IpAddr4::new(192, 168, 14, 1);
        let (sp, dp) = pin_flow_off_chain(src, dst, 2);
        let h = flow_hash(src, dst, IPPROTO_UDP, sp, dp);
        assert_ne!(ecmp_index(h, 2), 0);
        let _ = dp;
    }

    #[test]
    fn pinning_is_deterministic() {
        let src = IpAddr4::new(192, 168, 14, 1);
        let dst = IpAddr4::new(192, 168, 11, 1);
        assert_eq!(pin_flow(src, dst, &[2, 2]), pin_flow(src, dst, &[2, 2]));
    }
}
