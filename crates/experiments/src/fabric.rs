//! Building an emulated fabric running one of the paper's three stacks.

use dcn_bgp::{BgpConfig, BgpRouter, PeerConfig};
use dcn_mrmtp::{MrmtpConfig, MrmtpRouter, TorConfig};
use dcn_sim::link::LinkSpec;
use dcn_sim::{NodeId, PortId, Protocol, SchedulerKind, Sim, SimBuilder, SimConfig};
use dcn_topology::{Addressing, ClosParams, Fabric, FourTierParams, PortKind, Role};
use dcn_traffic::{SendSpec, TrafficHost};

/// The three protocol stacks the paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stack {
    /// The paper's contribution: one protocol for everything.
    Mrmtp,
    /// RFC 7938 eBGP with ECMP, no BFD.
    BgpEcmp,
    /// eBGP/ECMP supervised by BFD.
    BgpEcmpBfd,
}

impl Stack {
    pub const ALL: [Stack; 3] = [Stack::Mrmtp, Stack::BgpEcmp, Stack::BgpEcmpBfd];

    pub fn label(self) -> &'static str {
        match self {
            Stack::Mrmtp => "MR-MTP",
            Stack::BgpEcmp => "BGP/ECMP",
            Stack::BgpEcmpBfd => "BGP/ECMP/BFD",
        }
    }

    /// Filesystem/CLI-safe identifier (the `fcr` stack argument).
    pub fn slug(self) -> &'static str {
        match self {
            Stack::Mrmtp => "mrmtp",
            Stack::BgpEcmp => "bgp",
            Stack::BgpEcmpBfd => "bgp-bfd",
        }
    }
}

/// Tunable protocol parameters for ablation studies (§IX: "tune timers
/// for optimal performance of the protocols"). `None` fields keep the
/// paper's defaults.
#[derive(Clone, Copy, Debug)]
pub struct StackTuning {
    /// Override every MR-MTP router's timer block.
    pub mrmtp_timers: Option<dcn_mrmtp::MrmtpTimers>,
    /// Override the BGP keepalive interval (paper: 1 s).
    pub bgp_keepalive: Option<dcn_sim::time::Duration>,
    /// Override the BGP hold time (paper: 3 s).
    pub bgp_hold: Option<dcn_sim::time::Duration>,
    /// Override the BFD transmit interval (paper: 100 ms).
    pub bfd_tx_interval: Option<dcn_sim::time::Duration>,
    /// Data-plane fast path (compiled FIBs + parse-once metadata) on
    /// every router. On by default; the equivalence suite turns it off
    /// to prove trace digests are bit-identical either way.
    pub fast_path: bool,
    /// Local fast reroute on every router: precomputed backup FIBs let
    /// the hop that observes a dead port repair forwarding in the data
    /// plane (at most once per packet). Off by default so the baseline
    /// reproduces the paper's loss windows; the equivalence suite proves
    /// `local_repair=off` digests are bit-identical to pre-repair code.
    pub local_repair: bool,
    /// Worker threads for the sharded parallel engine. `1` (the
    /// default) runs the sequential reference; `>1` switches the engine
    /// to [`dcn_sim::EngineKind::Sharded`] with a PoD-aligned partition
    /// from [`Fabric::shard_map`]. Trace digests are bit-identical
    /// either way — the equivalence suite enforces it.
    pub workers: usize,
    /// Engine runtime profiling ([`dcn_sim::profiler`]): per-shard
    /// window accounting with barrier-stall attribution. Off by
    /// default. Profiling reads only the host monotonic clock and
    /// writes into pre-sized buffers, so trace digests are bit-identical
    /// either way (the equivalence suite enforces it) and zero-alloc
    /// forwarding still holds.
    pub profile: bool,
    /// Adaptive window batching on the sharded engine
    /// ([`dcn_sim::SimConfig::batch_windows`]): fuse barrier rounds when
    /// the published next-event times prove them safe. On by default;
    /// trace digests are bit-identical either way — the equivalence
    /// suite runs both settings — so turning it off only serves
    /// barrier-overhead measurements.
    pub batch_windows: bool,
}

impl Default for StackTuning {
    fn default() -> StackTuning {
        StackTuning {
            mrmtp_timers: None,
            bgp_keepalive: None,
            bgp_hold: None,
            bfd_tx_interval: None,
            fast_path: true,
            local_repair: false,
            workers: 1,
            profile: false,
            batch_windows: true,
        }
    }
}

/// A ready-to-run emulation plus the structural handles needed to inject
/// failures and read tables.
pub struct BuiltSim {
    pub sim: Sim,
    pub fabric: Fabric,
    pub addr: Addressing,
    pub stack: Stack,
}

impl BuiltSim {
    /// NodeId of a fabric node index.
    pub fn node(&self, idx: usize) -> NodeId {
        NodeId(idx as u32)
    }

    /// Inject a paper failure case at `at`.
    pub fn inject_failure(&mut self, tc: dcn_topology::FailureCase, at: dcn_sim::Time) {
        let (node, port) = self.fabric.failure_point(tc);
        self.sim
            .schedule_port_down(at, NodeId(node as u32), PortId(port as u16));
    }

    /// The MR-MTP router at a node (panics on stack/role mismatch).
    pub fn mrmtp(&self, idx: usize) -> &MrmtpRouter {
        self.sim.node_as(self.node(idx)).expect("MR-MTP router")
    }

    /// The BGP router at a node.
    pub fn bgp(&self, idx: usize) -> &BgpRouter {
        self.sim.node_as(self.node(idx)).expect("BGP router")
    }

    /// The traffic host at a server node.
    pub fn host(&self, idx: usize) -> &TrafficHost {
        self.sim.node_as(self.node(idx)).expect("traffic host")
    }
}

/// Build the emulation with the paper's default timers. `senders` maps
/// fabric server-node indices to what they should transmit.
pub fn build_sim(
    params: ClosParams,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
) -> BuiltSim {
    build_sim_tuned(params, stack, seed, senders, StackTuning::default())
}

/// [`build_sim`] with protocol-timer overrides for ablation studies.
pub fn build_sim_tuned(
    params: ClosParams,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
    tuning: StackTuning,
) -> BuiltSim {
    build_fabric_sim(Fabric::build(params), stack, seed, senders, tuning)
}

/// The fully-parameterised builder behind [`crate::RunSpec`]: timer
/// overrides plus an explicit event-scheduler backend.
pub fn build_sim_full(
    params: ClosParams,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
    tuning: StackTuning,
    scheduler: SchedulerKind,
) -> BuiltSim {
    build_fabric_sim_sched(Fabric::build(params), stack, seed, senders, tuning, scheduler)
}

/// Build an emulation of the four-tier zone extension (§IX).
pub fn build_four_tier_sim(
    p4: FourTierParams,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
) -> BuiltSim {
    build_fabric_sim(
        Fabric::build_four_tier(p4),
        stack,
        seed,
        senders,
        StackTuning::default(),
    )
}

/// Build an emulation from an already-constructed fabric, with the
/// default event scheduler.
pub fn build_fabric_sim(
    fabric: Fabric,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
    tuning: StackTuning,
) -> BuiltSim {
    build_fabric_sim_sched(fabric, stack, seed, senders, tuning, SchedulerKind::default())
}

/// [`build_fabric_sim`] with an explicit event-scheduler backend.
pub fn build_fabric_sim_sched(
    fabric: Fabric,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
    tuning: StackTuning,
    scheduler: SchedulerKind,
) -> BuiltSim {
    build_fabric_sim_cfg(
        fabric,
        stack,
        seed,
        senders,
        tuning,
        SimConfig { scheduler, ..SimConfig::default() },
    )
}

/// The most general builder: full control over the engine's
/// [`SimConfig`] (scheduler backend, tracing, carrier latency, wire
/// impairment). `fcr bench` uses it to run big fabrics with tracing off.
pub fn build_fabric_sim_cfg(
    fabric: Fabric,
    stack: Stack,
    seed: u64,
    senders: &[(usize, SendSpec)],
    tuning: StackTuning,
    mut config: SimConfig,
) -> BuiltSim {
    if tuning.workers > 1 {
        config.engine = dcn_sim::EngineKind::Sharded { workers: tuning.workers };
    }
    if tuning.profile {
        config.profile = true;
    }
    config.batch_windows = tuning.batch_windows;
    let addr = Addressing::new(&fabric);
    let mut b = SimBuilder::with_config(seed, config);
    for (i, node) in fabric.nodes.iter().enumerate() {
        let proto: Box<dyn Protocol> = match node.role {
            Role::Server { pod, tor_idx, idx } => {
                let tor = fabric.tor(pod, tor_idx);
                let ip = addr.server_addr(tor, idx).expect("server address");
                let mut host = TrafficHost::new(ip);
                if let Some((_, spec)) = senders.iter().find(|(n, _)| *n == i) {
                    host = host.with_send(*spec);
                }
                Box::new(host)
            }
            _ if stack == Stack::Mrmtp => build_mrmtp(&fabric, &addr, i, &tuning),
            _ => build_bgp(&fabric, &addr, i, stack == Stack::BgpEcmpBfd, &tuning),
        };
        b.add_node(node.name.clone(), proto);
    }
    for (li, &(x, y)) in fabric.links.iter().enumerate() {
        // Heterogeneous propagation delays (3–8 µs), deterministic per
        // link: the paper's FABRIC slices spanned sites, so neighboring
        // updates never arrive in lockstep. This keeps event orderings
        // honest (e.g. the loss-hold-down ablation).
        let jitter = (li as u64).wrapping_mul(0x9E37_79B9) % (5 * dcn_sim::time::MICROS);
        let spec = LinkSpec {
            propagation: 3 * dcn_sim::time::MICROS + jitter,
            ..LinkSpec::default()
        };
        b.add_link(NodeId(x as u32), NodeId(y as u32), spec);
    }
    let mut sim = b.build();
    if tuning.workers > 1 {
        sim.set_partition(fabric.shard_map(tuning.workers));
    }
    BuiltSim { sim, fabric, addr, stack }
}

fn build_mrmtp(
    fabric: &Fabric,
    addr: &Addressing,
    i: usize,
    tuning: &StackTuning,
) -> Box<dyn Protocol> {
    let node = &fabric.nodes[i];
    let mut cfg = match node.role {
        Role::Tor { .. } => {
            let rack = addr.rack_subnet(i).expect("ToR rack subnet");
            let mut host_ports = Vec::new();
            for (pi, pr) in fabric.ports[i].iter().enumerate() {
                if matches!(pr.kind, PortKind::Host) {
                    let s = host_ports.len();
                    host_ports.push((addr.server_addr(i, s).expect("server ip"), PortId(pi as u16)));
                }
            }
            MrmtpConfig::tor(node.name.clone(), TorConfig { rack_subnet: rack, host_ports })
        }
        _ => MrmtpConfig::spine(node.name.clone(), node.tier),
    };
    if let Some(t) = tuning.mrmtp_timers {
        cfg.timers = t;
    }
    cfg.fast_path = tuning.fast_path;
    cfg.local_repair = tuning.local_repair;
    Box::new(MrmtpRouter::new(cfg, fabric.ports[i].len()))
}

fn build_bgp(
    fabric: &Fabric,
    addr: &Addressing,
    i: usize,
    bfd: bool,
    tuning: &StackTuning,
) -> Box<dyn Protocol> {
    let node = &fabric.nodes[i];
    let mut cfg = BgpConfig::new(
        node.name.clone(),
        addr.asn(i).expect("router ASN"),
        addr.router_id(i),
    );
    if bfd {
        cfg = cfg.with_bfd();
    }
    if let Some(k) = tuning.bgp_keepalive {
        cfg.keepalive_interval = k;
    }
    if let Some(h) = tuning.bgp_hold {
        cfg.hold_time = h;
    }
    if let Some(b) = tuning.bfd_tx_interval {
        cfg.bfd_tx_interval = b;
    }
    cfg.fast_path = tuning.fast_path;
    cfg.local_repair = tuning.local_repair;
    for (pi, pr) in fabric.ports[i].iter().enumerate() {
        match pr.kind {
            PortKind::Host => {}
            PortKind::Up | PortKind::Down => {
                let la = addr.link(pr.link).expect("router link addressing");
                let (a, _) = fabric.links[pr.link];
                let (local_ip, peer_ip) =
                    if a == i { (la.a_addr, la.b_addr) } else { (la.b_addr, la.a_addr) };
                cfg = cfg.peer(PeerConfig {
                    port: PortId(pi as u16),
                    local_ip,
                    peer_ip,
                    peer_asn: addr.asn(pr.peer).expect("peer ASN"),
                });
            }
        }
    }
    if let Role::Tor { .. } = node.role {
        let rack = addr.rack_subnet(i).expect("rack subnet");
        cfg = cfg.originating(rack);
        cfg.rack_subnet = Some(rack);
        for (pi, pr) in fabric.ports[i].iter().enumerate() {
            if matches!(pr.kind, PortKind::Host) {
                let s = cfg.host_ports.len();
                cfg.host_ports
                    .push((addr.server_addr(i, s).expect("server ip"), PortId(pi as u16)));
            }
        }
    }
    Box::new(BgpRouter::new(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::secs;

    #[test]
    fn mrmtp_fabric_builds_and_converges() {
        let mut built = build_sim(ClosParams::two_pod(), Stack::Mrmtp, 1, &[]);
        built.sim.run_until(secs(2));
        let t1 = built.mrmtp(built.fabric.top_spine(0));
        assert_eq!(t1.vid_table().own_entry_count(), 4);
    }

    #[test]
    fn bgp_fabric_builds_and_establishes_all_sessions() {
        let mut built = build_sim(ClosParams::two_pod(), Stack::BgpEcmp, 1, &[]);
        built.sim.run_until(secs(5));
        for r in built.fabric.routers() {
            let router = built.bgp(r);
            let expected = built.fabric.ports[r]
                .iter()
                .filter(|p| !matches!(p.kind, PortKind::Host))
                .count();
            assert_eq!(
                router.established_sessions(),
                expected,
                "{} sessions",
                router.name()
            );
        }
        // Every router learns every rack subnet.
        for r in built.fabric.routers() {
            let router = built.bgp(r);
            let racks = 4;
            let local = router.rib().local_prefixes().len();
            assert_eq!(
                router.rib().learned_prefixes().len() + local,
                racks,
                "{} must reach all racks",
                router.name()
            );
        }
    }

    #[test]
    fn bfd_stack_brings_bfd_sessions_up_without_breaking_bgp() {
        let mut built = build_sim(ClosParams::two_pod(), Stack::BgpEcmpBfd, 1, &[]);
        built.sim.run_until(secs(5));
        let tor = built.bgp(built.fabric.tor(0, 0));
        assert_eq!(tor.established_sessions(), 2);
    }
}
