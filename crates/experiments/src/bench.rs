//! Scaling and scheduler benchmarks behind `fcr bench`.
//!
//! Two measurements back the timer-wheel work:
//!
//! * **Scale sweep** — build a folded-Clos fabric at each requested PoD
//!   count, run it with tracing off, and record events processed, wall
//!   time, throughput (events/sec and events/sec/node) and peak RSS —
//!   plus, at 16+ PoDs, the same fabric on the sharded parallel engine
//!   at each requested worker count, with the parallel-over-sequential
//!   speedup. Every row reports throughput on **both bases** —
//!   `events_per_sec_wall` (elapsed time; what a parallel engine is
//!   for) and `events_per_sec_cpu` (CPU seconds summed over threads;
//!   insensitive to machine-sharing noise) — and `speedup` is always
//!   wall-over-wall. Earlier schemas mixed the bases within one column
//!   (sequential rows CPU, parallel rows wall), which made parallel
//!   rows incomparable with their own speedup basis. Every row runs
//!   with the engine profiler on and embeds its stall breakdown
//!   (execute/barrier/drain/deposit/other as % of wall), so a bad
//!   speedup is attributable at a glance. Emitted as `BENCH_scale.json`
//!   (`schema: "bench_scale/v4"`, which also records the host's core
//!   count so single-core runs are not misread as parallel regressions;
//!   v2/v3 baselines still gate — [`check_regression`] keys on field
//!   names, not the schema string). Peak RSS is sampled per row: the
//!   kernel's VmHWM watermark is reset before each row, so a big fabric
//!   earlier in the sweep cannot inflate a small one's number.
//! * **Scheduler microbench** — the pop-then-re-arm stress loop from
//!   `dcn_sim::scheduler_stress`, run on both backends, reported as a
//!   wheel-over-heap speedup.
//!
//! [`check_regression`] compares a fresh report against a committed
//! baseline and fails when throughput drops by more than a tolerance,
//! which is what the CI smoke job gates on.
//!
//! A third measurement backs the data-plane fast path:
//!
//! * **Traffic soak** — converge a fabric, then pump cross-pod flows
//!   through it (N flows × 5 router hops each) and measure forwarded
//!   data packets per CPU second with the fast path on and off, plus
//!   heap allocations per forwarded packet when the binary installed
//!   the counting `#[global_allocator]`. Each point also carries the
//!   **loss-window probe**: pinned cross-pod flows paced at 25 µs while
//!   S-1-1's first uplink is carrier-failed mid-run, counting packets
//!   blackholed in the carrier-detection window with `local_repair` off
//!   and on (see EXPERIMENTS.md). Emitted as `BENCH_traffic.json`
//!   (`schema: "bench_traffic/v2"`) and gated by
//!   [`check_traffic_regression`] the same way.

use std::time::Instant;

use dcn_sim::time::{MICROS, MILLIS, SECONDS};
use dcn_sim::{alloc_track, SchedulerKind, SimConfig};
use dcn_telemetry::Json;
use dcn_topology::{Addressing, ClosParams, Fabric};
use dcn_traffic::SendSpec;

use crate::fabric::{build_fabric_sim_cfg, BuiltSim, Stack, StackTuning};
use crate::scenario::Timing;

/// One (fabric size × worker count) point in the scale sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    pub pods: usize,
    pub nodes: usize,
    pub links: usize,
    /// Engine worker threads (1 = the sequential reference engine).
    pub workers: usize,
    /// Events processed by the engine over the measured window.
    pub events: u64,
    pub wall_ms: f64,
    /// Events per elapsed second — the basis that parallelism can
    /// improve, and the numerator/denominator of every `speedup`.
    pub events_per_sec_wall: f64,
    /// Events per CPU second summed over worker threads — insensitive
    /// to machine-sharing noise, so the regression gate keys on it. On
    /// the sequential engine the two bases coincide (modulo scheduler
    /// noise); a perfectly-scaling parallel run burns the same CPU
    /// seconds as the sequential one while the wall rate multiplies.
    pub events_per_sec_cpu: f64,
    /// CPU-basis throughput normalized by fabric size. A droop here at
    /// fixed workers as pods grow is a cache-locality signal; a droop
    /// in the raw rate alone can just be a bigger fabric.
    pub events_per_node: f64,
    /// Peak resident set (VmHWM) over this row only, in KiB: the
    /// watermark is reset (via `/proc/self/clear_refs`) before each row.
    /// Zero on platforms without the proc filesystem; on kernels that
    /// refuse the reset it degrades to the process-lifetime peak.
    pub peak_rss_kb: u64,
    /// `events_per_sec_wall` over the same fabric's 1-worker wall rate
    /// (1.0 for the 1-worker row itself) — wall-over-wall, never mixed
    /// bases. Only meaningful when `cores` in the report exceeds the
    /// worker count — on a single-core host the sharded engine can only
    /// show its overhead.
    pub speedup: f64,
    /// Barrier windows executed in one rep (engine profiler).
    pub windows: u64,
    /// Stall breakdown of one rep, as % of per-shard wall time summed
    /// over shards: event execution...
    pub execute_pct: f64,
    /// ...blocked on the window barriers...
    pub barrier_pct: f64,
    /// ...draining cross-shard inboxes...
    pub drain_pct: f64,
    /// ...depositing outboxes...
    pub deposit_pct: f64,
    /// ...and unattributed loop overhead.
    pub other_pct: f64,
}

/// Heap-vs-wheel scheduler throughput from [`dcn_sim::scheduler_stress`].
#[derive(Clone, Copy, Debug)]
pub struct MicroBench {
    pub pending: usize,
    pub ops: u64,
    pub heap_events_per_sec: f64,
    pub wheel_events_per_sec: f64,
    pub speedup: f64,
}

/// The full `fcr bench` output.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// True when run with `--quick` (shorter windows; CI smoke mode).
    pub quick: bool,
    /// CPU cores available to this process when the report was taken
    /// (`std::thread::available_parallelism`). Parallel speedups are
    /// bounded by this; a 1-core report documents that its multi-worker
    /// rows measure engine overhead, not attainable speedup.
    pub cores: usize,
    pub micro: MicroBench,
    pub scale: Vec<ScalePoint>,
}

/// Reset the kernel's peak-RSS watermark (write `5` to
/// `/proc/self/clear_refs`) so the next [`peak_rss_kb`] reading covers
/// only work done after this call. Best-effort: failure (non-Linux,
/// restricted kernels) silently degrades to the process-lifetime peak.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Read peak resident set size (VmHWM) in KiB from `/proc/self/status`.
/// Returns 0 where the proc filesystem is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Process CPU seconds consumed so far (utime+stime from
/// `/proc/self/stat`, USER_HZ ticks — 100 Hz on every mainstream Linux).
/// `None` off-Linux. Throughput is computed against CPU time, not wall
/// time: shared or quota-throttled machines (CI runners, containers)
/// stall a process for whole scheduling periods, and a wall-clock gate
/// trips on that noise rather than on real regressions.
fn cpu_time_secs() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm (field 2) may contain spaces; fields resume after the last ')'.
    let rest = &stat[stat.rfind(')')? + 2..];
    let mut it = rest.split_whitespace();
    let utime: u64 = it.nth(11)?.parse().ok()?; // field 14
    let stime: u64 = it.next()?.parse().ok()?; // field 15
    Some((utime + stime) as f64 / 100.0)
}

/// Measure `work` by CPU time: repeat until `target_cpu` seconds are
/// accumulated (bounding tick-quantization error) or `max_reps` is hit.
/// Returns (reps, cpu_secs, wall_secs). Falls back to wall time when CPU
/// time is unavailable.
fn measure<F: FnMut()>(target_cpu: f64, max_reps: u32, mut work: F) -> (u32, f64, f64) {
    let wall0 = Instant::now();
    let cpu0 = cpu_time_secs();
    let mut reps = 0;
    loop {
        work();
        reps += 1;
        let wall = wall0.elapsed().as_secs_f64();
        let cpu = match (cpu0, cpu_time_secs()) {
            (Some(a), Some(b)) => b - a,
            _ => wall,
        };
        if cpu >= target_cpu || reps >= max_reps {
            return (reps, cpu.max(1e-9), wall);
        }
    }
}

/// Run the scheduler microbenchmark on both backends. The pending count
/// models a mega-fabric steady state — hundreds of thousands of
/// concurrent keepalive/dead timers — which is where the heap's
/// `O(log n)` sift (and its cache misses) bites and the wheel's `O(1)`
/// bucketing wins.
pub fn bench_scheduler(quick: bool) -> MicroBench {
    let pending = 262_144;
    let ops: u64 = if quick { 200_000 } else { 2_000_000 };
    let rate = |kind: SchedulerKind| {
        let (reps, cpu, _) = measure(0.25, if quick { 8 } else { 2 }, || {
            // The checksum keeps the loop from being optimized away; fold
            // it into a branch the optimizer cannot predict but that
            // never fires.
            let acc = dcn_sim::scheduler_stress(kind, pending, ops);
            assert!(acc != u64::MAX, "checksum sentinel");
        });
        (reps as u64 * ops) as f64 / cpu
    };
    let heap = rate(SchedulerKind::Heap);
    let wheel = rate(SchedulerKind::Wheel);
    MicroBench {
        pending,
        ops,
        heap_events_per_sec: heap,
        wheel_events_per_sec: wheel,
        speedup: wheel / heap,
    }
}

/// Build and run one fabric size, tracing off, and measure throughput.
/// The run is deterministic, so repetitions do identical work; reps
/// accumulate until enough CPU time is banked for a stable rate (a
/// single quick window is milliseconds long, well inside OS-jitter
/// territory). Fabric/sim construction inside the measured window biases
/// the rate slightly low, identically for baseline and current.
pub fn bench_one_scale(
    pods: usize,
    workers: usize,
    quick: bool,
    seed: u64,
) -> Result<ScalePoint, String> {
    let params = ClosParams::scaled(pods)?;
    // Warmup covers cold start → converged fabric; the full run measures a
    // longer steady-state window dominated by keepalive traffic.
    let warmup = Timing::default().warmup;
    let horizon = if quick { warmup } else { warmup * 3 };
    let cfg = SimConfig { trace: false, ..SimConfig::default() };
    // Every row runs with the engine profiler on so the report can embed
    // its stall breakdown. Profiling reads only the host clock and bumps
    // pre-sized counters; its overhead is identical for baseline and
    // current, so the regression gate is unaffected.
    let tuning =
        StackTuning { workers: workers.max(1), profile: true, ..StackTuning::default() };
    let mut events = 0;
    let (mut nodes, mut links) = (0, 0);
    let mut profile = None;
    reset_peak_rss();
    let (reps, cpu, wall) = measure(0.25, 256, || {
        let fabric = Fabric::build(params);
        (nodes, links) = (fabric.nodes.len(), fabric.links.len());
        let mut built = build_fabric_sim_cfg(fabric, Stack::Mrmtp, seed, &[], tuning, cfg);
        built.sim.run_until(horizon);
        events = built.sim.events_processed();
        profile = built.sim.take_profile();
    });
    // The stall breakdown of the last rep (reps are identical work).
    let profile = profile.expect("profiling was enabled");
    let breakdown = dcn_telemetry::stall_breakdown_of(&profile);
    let windows = profile.shards.iter().map(|s| s.windows_total).sum();
    // Both bases, every row: wall for speedups (the thing parallelism
    // buys), CPU for the regression gate (insensitive to machine
    // sharing). Earlier versions picked one basis per row — CPU for
    // sequential, wall for parallel — which made a parallel row's
    // throughput incomparable with the sequential rate its own speedup
    // divided by.
    let total = (reps as u64 * events) as f64;
    let events_per_sec_wall = total / wall.max(1e-9);
    let events_per_sec_cpu = total / cpu;
    Ok(ScalePoint {
        pods,
        nodes,
        links,
        workers: workers.max(1),
        events,
        wall_ms: wall / reps as f64 * 1e3,
        events_per_sec_wall,
        events_per_sec_cpu,
        events_per_node: events_per_sec_cpu / nodes.max(1) as f64,
        peak_rss_kb: peak_rss_kb(),
        speedup: 1.0, // filled in by `run_bench` against the 1-worker row
        windows,
        execute_pct: breakdown.execute_pct,
        barrier_pct: breakdown.barrier_pct,
        drain_pct: breakdown.drain_pct,
        deposit_pct: breakdown.deposit_pct,
        other_pct: breakdown.other_pct,
    })
}

/// One profiled scale run (the same fabric/horizon as a
/// [`bench_one_scale`] row, single rep) packaged as a full
/// [`dcn_telemetry::PerfReport`] — what `fcr bench --profile-out`
/// writes so a suspicious row can be opened in Perfetto.
pub fn profile_scale_run(
    pods: usize,
    workers: usize,
    quick: bool,
    seed: u64,
) -> Result<dcn_telemetry::PerfReport, String> {
    let params = ClosParams::scaled(pods)?;
    let warmup = Timing::default().warmup;
    let horizon = if quick { warmup } else { warmup * 3 };
    let cfg = SimConfig { trace: false, ..SimConfig::default() };
    let tuning =
        StackTuning { workers: workers.max(1), profile: true, ..StackTuning::default() };
    let fabric = Fabric::build(params);
    let mut built = build_fabric_sim_cfg(fabric, Stack::Mrmtp, seed, &[], tuning, cfg);
    built.sim.run_until(horizon);
    let profile = built.sim.take_profile().expect("profiling was enabled");
    let names = crate::profile::node_names(&built.sim);
    let label = format!("bench scale {pods} pods seed {seed}");
    Ok(dcn_telemetry::PerfReport::new(profile, label, workers.max(1), names))
}

/// The PoD size from which worker sweeps run: below this the fabric is
/// too small for sharding to be anything but overhead.
pub const WORKER_SWEEP_MIN_PODS: usize = 16;

/// Run the whole benchmark: a sweep over `pods` — with each worker count
/// from `workers` added at [`WORKER_SWEEP_MIN_PODS`]+ PoDs — plus the
/// microbench. The sweep runs first: the microbench saturates the CPU
/// for a second or more, and on throttled/shared machines that
/// depresses whatever is measured right after it.
pub fn run_bench(
    pods: &[usize],
    workers: &[usize],
    quick: bool,
    seed: u64,
) -> Result<BenchReport, String> {
    let mut scale = Vec::with_capacity(pods.len());
    for &p in pods {
        let base = bench_one_scale(p, 1, quick, seed)?;
        // Wall-over-wall: the sequential row's wall rate is the basis.
        let base_rate = base.events_per_sec_wall;
        scale.push(base);
        if p >= WORKER_SWEEP_MIN_PODS {
            for &w in workers.iter().filter(|&&w| w > 1) {
                let mut point = bench_one_scale(p, w, quick, seed)?;
                point.speedup = point.events_per_sec_wall / base_rate;
                scale.push(point);
            }
        }
    }
    let micro = bench_scheduler(quick);
    Ok(BenchReport {
        quick,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        micro,
        scale,
    })
}

impl BenchReport {
    /// Serialize to the committed `BENCH_scale.json` schema
    /// (`bench_scale/v4`; see EXPERIMENTS.md). v4 reports both
    /// throughput bases per row; the legacy `events_per_sec` key is
    /// kept as an alias of the CPU basis so older tooling and v2/v3
    /// baselines still gate — [`check_regression`] reads fields by name
    /// and ignores the schema string.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("bench_scale/v4")),
            ("quick", Json::Bool(self.quick)),
            ("cores", Json::UInt(self.cores as u64)),
            (
                "scheduler_microbench",
                Json::obj(vec![
                    ("pending", Json::UInt(self.micro.pending as u64)),
                    ("ops", Json::UInt(self.micro.ops)),
                    ("heap_events_per_sec", Json::Float(self.micro.heap_events_per_sec)),
                    ("wheel_events_per_sec", Json::Float(self.micro.wheel_events_per_sec)),
                    ("speedup", Json::Float(self.micro.speedup)),
                ]),
            ),
            (
                "scale",
                Json::Arr(
                    self.scale
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("pods", Json::UInt(p.pods as u64)),
                                ("nodes", Json::UInt(p.nodes as u64)),
                                ("links", Json::UInt(p.links as u64)),
                                ("workers", Json::UInt(p.workers as u64)),
                                ("events", Json::UInt(p.events)),
                                ("wall_ms", Json::Float(p.wall_ms)),
                                ("events_per_sec_wall", Json::Float(p.events_per_sec_wall)),
                                ("events_per_sec_cpu", Json::Float(p.events_per_sec_cpu)),
                                // Legacy alias (CPU basis) for pre-v4 readers.
                                ("events_per_sec", Json::Float(p.events_per_sec_cpu)),
                                ("events_per_node", Json::Float(p.events_per_node)),
                                ("peak_rss_kb", Json::UInt(p.peak_rss_kb)),
                                ("speedup", Json::Float(p.speedup)),
                                ("windows", Json::UInt(p.windows)),
                                ("execute_pct", Json::Float(p.execute_pct)),
                                ("barrier_pct", Json::Float(p.barrier_pct)),
                                ("drain_pct", Json::Float(p.drain_pct)),
                                ("deposit_pct", Json::Float(p.deposit_pct)),
                                ("other_pct", Json::Float(p.other_pct)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scheduler microbench ({} pending, {} ops):\n  heap  {:>12.0} events/sec\n  wheel {:>12.0} events/sec\n  speedup {:.2}x\n\n",
            self.micro.pending, self.micro.ops, self.micro.heap_events_per_sec,
            self.micro.wheel_events_per_sec, self.micro.speedup,
        ));
        out.push_str(&format!("host cores: {}\n", self.cores));
        out.push_str(
            "pods  nodes  links  wrk      events   wall_ms  ev/s(wall)   ev/s(cpu)  ev/s/node  peak_rss_kb  speedup  exec%  barr%  other%\n",
        );
        for p in &self.scale {
            out.push_str(&format!(
                "{:>4}  {:>5}  {:>5}  {:>3}  {:>10}  {:>8.1}  {:>10.0}  {:>10.0}  {:>9.0}  {:>11}  {:>6.2}x  {:>5.1}  {:>5.1}  {:>6.1}\n",
                p.pods,
                p.nodes,
                p.links,
                p.workers,
                p.events,
                p.wall_ms,
                p.events_per_sec_wall,
                p.events_per_sec_cpu,
                p.events_per_node,
                p.peak_rss_kb,
                p.speedup,
                p.execute_pct,
                p.barrier_pct,
                p.drain_pct + p.deposit_pct + p.other_pct,
            ));
        }
        out
    }
}

// ----------------------------------------------------------------------
// Traffic soak (the data-plane fast-path benchmark)
// ----------------------------------------------------------------------

/// One (fabric size × stack) point of the traffic soak.
#[derive(Clone, Debug)]
pub struct TrafficPoint {
    pub pods: usize,
    pub stack: Stack,
    /// Concurrent cross-pod flows.
    pub flows: usize,
    /// Router hops each packet crosses (up one side, down the other).
    pub hops: usize,
    /// Data packets forwarded by routers over one measured window.
    pub packets: u64,
    /// Forwarded packets per CPU second, fast path on / off.
    pub pkts_per_sec_fast: f64,
    pub pkts_per_sec_slow: f64,
    pub speedup: f64,
    /// Heap allocations per forwarded packet on the fast path. `None`
    /// when the process has no counting allocator (library tests);
    /// `Some(0.0)` is a real measured zero.
    pub allocs_per_packet: Option<f64>,
    /// Loss-window probe: packets blackholed during the carrier-detection
    /// window of a scripted uplink failure, with `local_repair` off.
    /// MR-MTP masks port liveness inside every lookup, so its off-mode
    /// window is natively ~zero; BGP applies none, so its window spans
    /// the full carrier latency at the failing hop.
    pub window_blackholed_off: u64,
    /// Same probe with `local_repair` on.
    pub window_blackholed_on: u64,
    /// Packets locally repaired during the `on` probe.
    pub window_repaired_on: u64,
}

/// The full `fcr bench --traffic` output.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    pub quick: bool,
    /// CPU cores available to this process when the report was taken
    /// (every bench/profile artifact records this).
    pub cores: usize,
    /// Was a counting `#[global_allocator]` installed in this process?
    pub alloc_counter: bool,
    pub points: Vec<TrafficPoint>,
}

/// Sum of `data_forwarded` across every router (transit decisions, the
/// soak's unit of work).
fn total_forwarded(built: &BuiltSim) -> u64 {
    built
        .fabric
        .routers()
        .map(|r| match built.stack {
            Stack::Mrmtp => built.mrmtp(r).stats().data_forwarded,
            _ => built.bgp(r).stats().data_forwarded,
        })
        .sum()
}

/// Soak one (pods × stack × fast_path) combination: converge, then
/// extend the horizon in fixed steady-state windows until enough CPU
/// time is banked. Returns (packets forwarded per window, packets/sec,
/// allocations inside forwarding scopes, fast-path forward count).
fn soak_one(
    pods: usize,
    stack: Stack,
    fast_path: bool,
    quick: bool,
    seed: u64,
) -> Result<(u64, f64, u64, u64), String> {
    let params = ClosParams::scaled(pods)?;
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    // Cross-pod flows, both directions, one per ToR pair: every packet
    // crosses the full up/down diameter of the fabric.
    let far = params.pods - 1;
    let mut senders = Vec::new();
    // BGP needs session establishment plus the initial table dumps;
    // MR-MTP's trees converge in well under a second.
    let warmup = if stack == Stack::Mrmtp { 2 * SECONDS } else { 6 * SECONDS };
    let window = if quick { SECONDS / 2 } else { SECONDS };
    let horizon_cap = warmup + 4096 * window;
    for t in 0..params.tors_per_pod {
        let spec = |dst_tor: usize| {
            let mut s = SendSpec::new(
                addr.server_addr(dst_tor, 0).expect("server address"),
                warmup,
                horizon_cap,
            );
            // The load shape is identical in quick mode — only windows and
            // rep counts shrink — so quick CI smoke rates stay comparable
            // with a committed full-mode baseline.
            s.interval = 50 * MICROS;
            s
        };
        senders.push((fabric.server(0, t, 0), spec(fabric.tor(far, t))));
        senders.push((fabric.server(far, t, 0), spec(fabric.tor(0, t))));
    }
    let cfg = SimConfig { trace: false, ..SimConfig::default() };
    let tuning = StackTuning { fast_path, ..StackTuning::default() };
    let mut built = build_fabric_sim_cfg(fabric, stack, seed, &senders, tuning, cfg);
    built.sim.run_until(warmup);
    let warm_forwarded = total_forwarded(&built);
    alloc_track::reset();
    let mut horizon = warmup;
    let target = if quick { 0.05 } else { 0.25 };
    let (reps, cpu, _wall) = measure(target, if quick { 4 } else { 64 }, || {
        horizon += window;
        built.sim.run_until(horizon);
    });
    let delta = total_forwarded(&built) - warm_forwarded;
    Ok((
        delta / reps as u64,
        delta as f64 / cpu,
        alloc_track::scoped_allocs(),
        alloc_track::forwarded(),
    ))
}

/// Sum of `(blackholed_in_window, locally_repaired)` across every
/// router.
fn window_totals(built: &BuiltSim) -> (u64, u64) {
    let mut blackholed = 0;
    let mut repaired = 0;
    for r in built.fabric.routers() {
        let (b, rep) = match built.stack {
            Stack::Mrmtp => {
                let s = built.mrmtp(r).stats();
                (s.blackholed_in_window, s.locally_repaired)
            }
            _ => {
                let s = built.bgp(r).stats();
                (s.blackholed_in_window, s.locally_repaired)
            }
        };
        blackholed += b;
        repaired += rep;
    }
    (blackholed, repaired)
}

/// The loss-window probe: pinned cross-pod flows (one per ToR pair, all
/// riding the S-1-1 chain, paced at 25 µs so the 500 µs carrier latency
/// spans ~20 packets each), then a carrier failure of S-1-1's first
/// uplink mid-run. Returns `(blackholed_in_window, locally_repaired)`
/// summed over every router. Deterministic for a given seed; quick mode
/// runs the identical probe (it is already cheap), so quick CI numbers
/// compare against a committed full-mode baseline.
fn loss_window_probe(
    pods: usize,
    stack: Stack,
    local_repair: bool,
    seed: u64,
) -> Result<(u64, u64), String> {
    let params = ClosParams::scaled(pods)?;
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    let far = params.pods - 1;
    let warmup = if stack == Stack::Mrmtp { 2 * SECONDS } else { 6 * SECONDS };
    let fail_at = warmup + 50 * MILLIS;
    let end = fail_at + 50 * MILLIS;
    let widths = [params.spines_per_pod, params.uplinks_per_spine];
    let mut senders = Vec::new();
    for t in 0..params.tors_per_pod {
        let src_ip = addr.server_addr(fabric.tor(0, t), 0).expect("near server");
        let dst_ip = addr.server_addr(fabric.tor(far, t), 0).expect("far server");
        let (sp, dp) = crate::flows::pin_flow(src_ip, dst_ip, &widths);
        let mut s = SendSpec::new(dst_ip, warmup, end);
        s.src_port = sp;
        s.dst_port = dp;
        s.interval = 25 * MICROS;
        senders.push((fabric.server(0, t, 0), s));
    }
    let cfg = SimConfig { trace: false, ..SimConfig::default() };
    let tuning = StackTuning { local_repair, ..StackTuning::default() };
    let mut built = build_fabric_sim_cfg(fabric, stack, seed, &senders, tuning, cfg);
    built.sim.run_until(fail_at);
    let (node, port) = built.fabric.failure_point(dcn_topology::FailureCase::Tc3);
    built
        .sim
        .schedule_port_down(fail_at, dcn_sim::NodeId(node as u32), dcn_sim::PortId(port as u16));
    built.sim.run_until(end);
    Ok(window_totals(&built))
}

/// Run the traffic soak across `pods` for both data-plane stacks
/// (MR-MTP and BGP/ECMP; BFD adds keepalive load, not forwarding work).
pub fn run_traffic_bench(pods: &[usize], quick: bool, seed: u64) -> Result<TrafficReport, String> {
    let combos: Vec<(usize, Stack)> = pods
        .iter()
        .flat_map(|&p| [(p, Stack::Mrmtp), (p, Stack::BgpEcmp)])
        .collect();
    // The loss-window probes count deterministic per-seed events, not
    // rates, so they fan out through the shared campaign pool; the timed
    // soaks stay serial — concurrent soaks would contend for cores and
    // corrupt the CPU-time rates the committed baselines gate on.
    let probes = crate::campaign::pool::fan_out(combos.clone(), 0, |(p, stack)| {
        let (window_off, _) = loss_window_probe(p, stack, false, seed)?;
        let (window_on, repaired_on) = loss_window_probe(p, stack, true, seed)?;
        Ok::<_, String>((window_off, window_on, repaired_on))
    });
    let mut points = Vec::new();
    for (&(p, stack), probe) in combos.iter().zip(probes) {
        let (window_off, window_on, repaired_on) = probe?;
        let (packets, fast_rate, allocs, fast_fwd) = soak_one(p, stack, true, quick, seed)?;
        let (_, slow_rate, _, _) = soak_one(p, stack, false, quick, seed)?;
        let allocs_per_packet = (alloc_track::counting_allocator_installed()
            && fast_fwd > 0)
            .then(|| allocs as f64 / fast_fwd as f64);
        points.push(TrafficPoint {
            pods: p,
            stack,
            flows: ClosParams::scaled(p)?.tors_per_pod * 2,
            hops: Fabric::build(ClosParams::scaled(p)?).cross_pod_router_hops(),
            packets,
            pkts_per_sec_fast: fast_rate,
            pkts_per_sec_slow: slow_rate,
            speedup: fast_rate / slow_rate,
            allocs_per_packet,
            window_blackholed_off: window_off,
            window_blackholed_on: window_on,
            window_repaired_on: repaired_on,
        });
    }
    Ok(TrafficReport {
        quick,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        alloc_counter: alloc_track::counting_allocator_installed(),
        points,
    })
}

impl TrafficReport {
    /// Serialize to the committed `BENCH_traffic.json` schema
    /// (`bench_traffic/v2`; see EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("bench_traffic/v2")),
            ("quick", Json::Bool(self.quick)),
            ("cores", Json::UInt(self.cores as u64)),
            ("alloc_counter_installed", Json::Bool(self.alloc_counter)),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("pods", Json::UInt(p.pods as u64)),
                                ("stack", Json::str(p.stack.slug())),
                                ("flows", Json::UInt(p.flows as u64)),
                                ("hops", Json::UInt(p.hops as u64)),
                                ("packets", Json::UInt(p.packets)),
                                ("pkts_per_sec_fast", Json::Float(p.pkts_per_sec_fast)),
                                ("pkts_per_sec_slow", Json::Float(p.pkts_per_sec_slow)),
                                ("speedup", Json::Float(p.speedup)),
                                (
                                    "allocs_per_forwarded_packet",
                                    p.allocs_per_packet.map_or(Json::Null, Json::Float),
                                ),
                                ("window_blackholed_off", Json::UInt(p.window_blackholed_off)),
                                ("window_blackholed_on", Json::UInt(p.window_blackholed_on)),
                                ("window_repaired_on", Json::UInt(p.window_repaired_on)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable table for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "traffic soak (cross-pod flows, fast path vs slow path; allocs {}):\n",
            if self.alloc_counter { "measured" } else { "not measured" },
        ));
        out.push_str(
            "pods  stack         flows  hops    packets     fast pkt/s     slow pkt/s  speedup  allocs/pkt  bh off/on  repaired\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>4}  {:<12}  {:>5}  {:>4}  {:>9}  {:>13.0}  {:>13.0}  {:>6.2}x  {:>10}  {:>4}/{:<4}  {:>8}\n",
                p.pods,
                p.stack.label(),
                p.flows,
                p.hops,
                p.packets,
                p.pkts_per_sec_fast,
                p.pkts_per_sec_slow,
                p.speedup,
                p.allocs_per_packet
                    .map_or("n/a".into(), |a| format!("{a:.3}")),
                p.window_blackholed_off,
                p.window_blackholed_on,
                p.window_repaired_on,
            ));
        }
        out
    }
}

/// Compare a fresh traffic report against a committed baseline
/// (`BENCH_traffic.json` contents). Fails when fast-path packets/sec at
/// any matching (pods, stack) point dropped by more than `tolerance`,
/// when MR-MTP transit — measured with a counting allocator — allocates
/// at all (the zero-alloc invariant is a hard gate, not a trend), or
/// when the loss-window probe regresses: repair widening the current
/// window, or blackholing more packets than the committed baseline
/// recorded (the probe is deterministic, so this is an exact gate).
pub fn check_traffic_regression(
    current: &TrafficReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), String> {
    let base = Json::parse(baseline_json).map_err(|e| format!("baseline parse error: {e}"))?;
    let points = base
        .get("points")
        .and_then(|s| s.as_arr())
        .ok_or("baseline missing points array")?;
    for point in &current.points {
        if current.alloc_counter && point.stack == Stack::Mrmtp {
            if let Some(a) = point.allocs_per_packet {
                if a > 0.0 {
                    return Err(format!(
                        "MR-MTP transit allocates: {a:.3} allocs/packet at {} pods (expected 0)",
                        point.pods
                    ));
                }
            }
        }
        if point.window_blackholed_on > point.window_blackholed_off {
            return Err(format!(
                "local repair widened the loss window at {} pods ({}): {} on vs {} off",
                point.pods,
                point.stack.label(),
                point.window_blackholed_on,
                point.window_blackholed_off,
            ));
        }
        let Some(b) = points.iter().find(|b| {
            b.get("pods").and_then(|p| p.as_u64()) == Some(point.pods as u64)
                && b.get("stack").and_then(|s| s.as_str()) == Some(point.stack.slug())
        }) else {
            continue;
        };
        let base_rate = b
            .get("pkts_per_sec_fast")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| {
                format!("baseline {} pods {} missing pkts_per_sec_fast", point.pods, point.stack.slug())
            })?;
        if point.pkts_per_sec_fast < base_rate * (1.0 - tolerance) {
            return Err(format!(
                "traffic regression at {} pods ({}): {:.0} pkt/s vs baseline {:.0} (>{:.0}% drop)",
                point.pods,
                point.stack.label(),
                point.pkts_per_sec_fast,
                base_rate,
                tolerance * 100.0,
            ));
        }
        // v1 baselines lack the window fields; skip the exact gate there.
        if let Some(base_on) = b.get("window_blackholed_on").and_then(|v| v.as_u64()) {
            if point.window_blackholed_on > base_on {
                return Err(format!(
                    "loss-window regression at {} pods ({}): {} blackholed with repair on vs baseline {}",
                    point.pods,
                    point.stack.label(),
                    point.window_blackholed_on,
                    base_on,
                ));
            }
        }
    }
    Ok(())
}

/// Compare a fresh report against a committed baseline (`BENCH_scale.json`
/// contents). Fails if CPU-basis events/sec at any matching (PoD count,
/// workers) row dropped by more than `tolerance` (0.20 = 20%) —
/// parallel rows gate exactly like sequential ones — or the scheduler
/// microbench speedup fell below 1.0. Rows present on only one side are
/// skipped — the sweep list may grow over time. Baseline rows without a
/// `workers` field (the v1 schema) are treated as sequential
/// (workers = 1); baselines without `events_per_sec_cpu` (pre-v4) gate
/// through their legacy `events_per_sec` column.
pub fn check_regression(current: &BenchReport, baseline_json: &str, tolerance: f64) -> Result<(), String> {
    let base = Json::parse(baseline_json).map_err(|e| format!("baseline parse error: {e}"))?;
    let scale = base
        .get("scale")
        .and_then(|s| s.as_arr())
        .ok_or("baseline missing scale array")?;
    for point in &current.scale {
        let Some(b) = scale.iter().find(|b| {
            b.get("pods").and_then(|p| p.as_u64()) == Some(point.pods as u64)
                && b.get("workers").and_then(|w| w.as_u64()).unwrap_or(1) == point.workers as u64
        }) else {
            continue;
        };
        let base_eps = b
            .get("events_per_sec_cpu")
            .or_else(|| b.get("events_per_sec"))
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline {} pods missing events_per_sec", point.pods))?;
        if point.events_per_sec_cpu < base_eps * (1.0 - tolerance) {
            return Err(format!(
                "regression at {} pods / {} workers: {:.0} events/sec (cpu) vs baseline {:.0} (>{:.0}% drop)",
                point.pods,
                point.workers,
                point.events_per_sec_cpu,
                base_eps,
                tolerance * 100.0,
            ));
        }
    }
    if current.micro.speedup < 1.0 {
        return Err(format!(
            "scheduler regression: wheel {:.2}x of heap (expected >= 1.0x)",
            current.micro.speedup
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_sane_report() {
        let report = run_bench(&[2], &[], true, 7).expect("2-pod bench runs");
        assert!(report.quick);
        assert!(report.cores >= 1);
        assert_eq!(report.scale.len(), 1);
        let p = &report.scale[0];
        assert_eq!(p.pods, 2);
        assert_eq!(p.workers, 1);
        assert!(p.nodes > 0 && p.links > 0);
        assert!(p.events > 0, "engine processed no events");
        assert!(p.events_per_sec_wall > 0.0);
        assert!(p.events_per_sec_cpu > 0.0);
        assert!(p.events_per_node > 0.0);
        // CPU seconds can't exceed wall on a sequential row, so the wall
        // rate can't exceed the CPU rate (equal when never descheduled)
        // — modulo the 10ms USER_HZ tick quantization of /proc readings,
        // worth a few percent over a ~0.25s measured window.
        assert!(p.events_per_sec_wall <= p.events_per_sec_cpu * 1.10);
        assert_eq!(p.speedup, 1.0, "the sequential row is its own speedup basis");
        assert!(report.micro.heap_events_per_sec > 0.0);
        assert!(report.micro.wheel_events_per_sec > 0.0);

        // Every row carries its embedded stall breakdown.
        assert!(p.windows > 0, "profiler saw no windows");
        let total =
            p.execute_pct + p.barrier_pct + p.drain_pct + p.deposit_pct + p.other_pct;
        assert!((total - 100.0).abs() < 5.0, "breakdown covers the wall: {total}");

        // JSON round-trips through the schema.
        let rendered = report.to_json().render();
        let parsed = Json::parse(&rendered).expect("self-rendered JSON parses");
        assert_eq!(parsed.get("schema").and_then(|s| s.as_str()), Some("bench_scale/v4"));
        assert!(parsed.get("cores").and_then(|c| c.as_u64()).is_some());
        assert_eq!(
            parsed.get("scale").and_then(|s| s.as_arr()).map(|a| a.len()),
            Some(1)
        );
        let row = &parsed.get("scale").and_then(|s| s.as_arr()).unwrap()[0];
        assert_eq!(row.get("workers").and_then(|w| w.as_u64()), Some(1));
        assert!(row.get("events_per_sec_wall").and_then(|v| v.as_f64()).is_some());
        assert!(row.get("events_per_sec_cpu").and_then(|v| v.as_f64()).is_some());
        // The legacy key aliases the CPU basis for pre-v4 readers.
        assert_eq!(
            row.get("events_per_sec").and_then(|v| v.as_f64()),
            row.get("events_per_sec_cpu").and_then(|v| v.as_f64()),
        );
        assert!(row.get("events_per_node").and_then(|v| v.as_f64()).is_some());
        assert!(row.get("speedup").and_then(|v| v.as_f64()).is_some());
        assert!(row.get("barrier_pct").and_then(|v| v.as_f64()).is_some());

        // A report never regresses against itself...
        check_regression(&report, &rendered, 0.20).expect("self-baseline passes");

        // ...and a v2 baseline (no breakdown fields, no dual-basis
        // columns, old schema string) still gates through the legacy
        // `events_per_sec` key: the checker keys on field names only.
        let v2 = rendered
            .replace("bench_scale/v4", "bench_scale/v2")
            .replace("\"barrier_pct\"", "\"barrier_pct_v2_absent\"")
            .replace("\"events_per_sec_wall\"", "\"events_per_sec_wall_v2_absent\"")
            .replace("\"events_per_sec_cpu\"", "\"events_per_sec_cpu_v2_absent\"");
        check_regression(&report, &v2, 0.20).expect("v2 baseline still gates");

        // ...but does against an inflated baseline.
        let mut inflated = report.clone();
        inflated.scale[0].events_per_sec_cpu *= 10.0;
        let inflated_json = inflated.to_json().render();
        assert!(check_regression(&report, &inflated_json, 0.20).is_err());
    }

    #[test]
    fn odd_pod_count_is_rejected() {
        assert!(run_bench(&[3], &[], true, 7).is_err());
    }

    #[test]
    fn worker_sweep_rows_carry_speedup_and_gate_like_sequential_ones() {
        // A 2-pod fabric is below WORKER_SWEEP_MIN_PODS, so the sweep
        // must be skipped; force a parallel row through bench_one_scale
        // directly and check the regression gate keys on (pods, workers).
        let small = run_bench(&[2], &[2, 4], true, 7).expect("2-pod bench runs");
        assert_eq!(small.scale.len(), 1, "worker sweep must skip small fabrics");

        let mut report = small.clone();
        let mut par = bench_one_scale(2, 2, true, 7).expect("parallel row runs");
        par.speedup = par.events_per_sec_wall / report.scale[0].events_per_sec_wall;
        report.scale.push(par);
        let rendered = report.to_json().render();
        check_regression(&report, &rendered, 0.20).expect("self-baseline passes");

        // Inflate only the parallel baseline row: the gate must trip on
        // it even though the sequential row is untouched.
        let mut inflated = report.clone();
        inflated.scale[1].events_per_sec_cpu *= 10.0;
        let err = check_regression(&report, &inflated.to_json().render(), 0.20)
            .expect_err("inflated parallel baseline must trip the gate");
        assert!(err.contains("2 workers"), "gate should name the parallel row: {err}");

        // A v1-style baseline (no workers field) only gates sequential
        // rows; the parallel row is skipped rather than mismatched.
        let v1 = rendered.replace("\"workers\"", "\"workers_v1_absent\"");
        check_regression(&report, &v1, 0.20).expect("v1 baseline gates the sequential row only");
    }

    #[test]
    fn quick_traffic_soak_produces_sane_report() {
        let report = run_traffic_bench(&[2], true, 7).expect("2-pod soak runs");
        assert!(report.quick);
        assert_eq!(report.points.len(), 2, "one point per stack");
        for p in &report.points {
            assert_eq!(p.pods, 2);
            assert_eq!(p.flows, 4);
            assert_eq!(p.hops, 5);
            assert!(p.packets > 0, "{:?}: no packets forwarded", p.stack);
            assert!(p.pkts_per_sec_fast > 0.0);
            assert!(p.pkts_per_sec_slow > 0.0);
            // Library tests have no counting allocator, so allocs/packet
            // must be honestly absent rather than a fake zero.
            assert_eq!(p.allocs_per_packet, None);
        }
        assert!(!report.alloc_counter);

        // The loss-window probe: repair must never widen the window, and
        // BGP's off-mode carrier window must be real (the pinned flows
        // all ride the failed chain).
        for p in &report.points {
            assert!(
                p.window_blackholed_on <= p.window_blackholed_off,
                "{:?}: repair widened the window",
                p.stack
            );
        }
        let bgp = report.points.iter().find(|p| p.stack == Stack::BgpEcmp).unwrap();
        assert!(bgp.window_blackholed_off > 0, "no BGP carrier window measured");
        assert!(bgp.window_repaired_on > 0, "BGP repair never engaged in the probe");

        // JSON round-trips through the schema.
        let rendered = report.to_json().render();
        let parsed = Json::parse(&rendered).expect("self-rendered JSON parses");
        assert_eq!(parsed.get("schema").and_then(|s| s.as_str()), Some("bench_traffic/v2"));
        assert!(parsed.get("cores").and_then(|c| c.as_u64()).is_some());
        assert_eq!(
            parsed.get("points").and_then(|s| s.as_arr()).map(|a| a.len()),
            Some(2)
        );
        let p0 = parsed.get("points").and_then(|s| s.as_arr()).unwrap()[0].clone();
        assert!(p0.get("window_blackholed_off").and_then(|v| v.as_u64()).is_some());

        // A report never regresses against itself...
        check_traffic_regression(&report, &rendered, 0.20).expect("self-baseline passes");

        // ...but does against an inflated baseline.
        let mut inflated = report.clone();
        for p in &mut inflated.points {
            p.pkts_per_sec_fast *= 10.0;
        }
        let inflated_json = inflated.to_json().render();
        assert!(check_traffic_regression(&report, &inflated_json, 0.20).is_err());

        // A widened repair-on window is a hard failure, both against the
        // report itself and against a baseline that recorded fewer.
        let mut widened = report.clone();
        widened.points[0].window_blackholed_on = widened.points[0].window_blackholed_off + 1;
        assert!(check_traffic_regression(&widened, &rendered, 0.20).is_err());
        let mut worse_than_base = report.clone();
        for p in &mut worse_than_base.points {
            p.window_blackholed_off += 10;
            p.window_blackholed_on += 10;
        }
        assert!(check_traffic_regression(&worse_than_base, &rendered, 0.20).is_err());
    }
}
