//! # dcn-experiments — the reproduction harness
//!
//! Everything needed to regenerate the paper's evaluation (§VII): build a
//! folded-Clos fabric running one of the three protocol stacks, pin a
//! monitored flow onto the failure chain, inject the TC1–TC4 interface
//! failures, and extract the metrics of Figs. 4–10 and Listings 1–5.
//!
//! Entry points:
//! * [`runspec::RunSpec`] — the unified experiment builder: topology ×
//!   stack × failure × traffic × seed × timing × tuning × telemetry sink
//!   × scheduler backend, with `.run()` / `.run_instrumented()`.
//! * [`figures`] — one function per paper figure, returning printable
//!   tables (these are what the benches and examples call).
//! * [`parallel::run_matrix`] — fan a scenario list out over worker
//!   threads (the emulator itself is deterministic and single-threaded;
//!   scenarios are embarrassingly parallel).
//! * [`campaign`] — fleet-scale orchestration: a [`campaign::CampaignSpec`]
//!   grid expanded over the shared work-stealing [`campaign::pool`],
//!   results landing in an append-only store (`campaign/v1`) that
//!   `fcr campaign diff` turns into a cross-revision regression gate.
//! * [`replicate`] — the paper's multi-run averaging (mean [min–max]
//!   across seeds).
//! * [`ablations`] — quantify Slow-to-Accept, the loss hold-down, and
//!   the §IX timer trade-offs by switching each off or sweeping it.
//! * [`extended_failures`] — §IX's extended cases: node crashes and
//!   multi-point failures.

pub mod ablations;
pub mod bench;
pub mod campaign;
pub mod chaos;
pub mod extended_failures;
pub mod fabric;
pub mod figures;
pub mod flows;
pub mod parallel;
pub mod profile;
pub mod replicate;
pub mod report;
pub mod runspec;
pub mod scenario;
pub mod table;

pub use campaign::CampaignSpec;
pub use chaos::{
    run_campaign, run_chaos, run_chaos_profiled, CampaignConfig, ChaosConfig, FaultSchedule,
};
pub use profile::{
    bundle_from_profiled, run_compare, run_profiled, warn_if_oversubscribed,
    write_profile_artifacts,
    ProfiledRun,
};
pub use fabric::{
    build_fabric_sim, build_four_tier_sim, build_sim, build_sim_full, build_sim_tuned, BuiltSim,
    Stack, StackTuning,
};
pub use runspec::RunSpec;
pub use scenario::{
    bundle_from_run, run, run_digest, run_instrumented, InstrumentedRun, ScenarioResult, Timing,
    TrafficDir,
};
