//! `fcr report` — the textual convergence report for one failure case.
//!
//! Runs one instrumented scenario, reconstructs the convergence
//! storyboard from its typed spans (`dcn_metrics::storyboard`) and
//! renders it together with the per-router counter/gauge table (via the
//! uniform [`dcn_sim::StatsSnapshot`] surface) and the per-class frame
//! size distribution — the emulator's answer to the paper's
//! tshark-plus-router-logs measurement pipeline.

use dcn_sim::NodeId;
use dcn_topology::{ClosParams, FailureCase};

use crate::fabric::Stack;
use crate::runspec::RunSpec;
use crate::scenario::{run_instrumented, InstrumentedRun};

/// One assembled report: the rendered text plus the instrumented run it
/// was built from (so the CLI can also write the trace bundle).
pub struct Report {
    pub text: String,
    pub run: InstrumentedRun,
    pub spec: RunSpec,
}

/// Run `stack` through failure case `tc` on the paper's 2-PoD fabric and
/// assemble the convergence report.
#[deprecated(
    since = "0.9.0",
    note = "use build_spec(RunSpec::new(ClosParams::two_pod(), stack).failing(tc).seeded(seed))"
)]
pub fn build(stack: Stack, tc: FailureCase, seed: u64) -> Report {
    build_spec(RunSpec::new(ClosParams::two_pod(), stack).failing(tc).seeded(seed))
}

/// Assemble the convergence report for a caller-built spec — the CLI
/// uses this to thread knobs like `--local-repair` into the reported run.
pub fn build_spec(spec: RunSpec) -> Report {
    let run = run_instrumented(spec);
    let text = render(&run, &spec);
    Report { text, run, spec }
}

/// Render the report text for an already-finished instrumented run.
pub fn render(run: &InstrumentedRun, spec: &RunSpec) -> String {
    let sim = &run.built.sim;
    let name_of = |n: NodeId| sim.node_name(n).to_string();
    let mut out = String::new();

    out.push_str(&format!(
        "== convergence report: {} · {} · seed {} ==\n\n",
        spec.stack.label(),
        spec.failure.map(FailureCase::label).unwrap_or("no failure"),
        spec.seed,
    ));

    match run.failure_at {
        Some(t0) => {
            let sb = dcn_metrics::storyboard::build(sim.trace(), t0);
            out.push_str(&dcn_metrics::storyboard::render(&sb, name_of));
        }
        None => out.push_str("no failure injected — steady-state run\n"),
    }

    // Per-router counter/gauge table, transposed: one row per metric,
    // one column per router. Uniform StatsSnapshot access means the
    // same code serves every stack.
    let routers: Vec<NodeId> = (0..sim.node_count() as u32)
        .map(NodeId)
        .filter(|&n| sim.stats_snapshot_of(n).is_some())
        .collect();
    if let Some(&first) = routers.first() {
        let col_w = routers
            .iter()
            .map(|&n| sim.node_name(n).len())
            .max()
            .unwrap_or(0)
            .max(6);
        let snap = sim.stats_snapshot_of(first).expect("router has stats");
        let sections: [(&str, Vec<&'static str>); 2] = [
            ("counter", snap.counters().iter().map(|&(n, _)| n).collect()),
            ("gauge", snap.gauges().iter().map(|&(n, _)| n).collect()),
        ];
        let label = |name: &str, kind: &str| format!("{name} [{kind}]");
        let metric_w = sections
            .iter()
            .flat_map(|(kind, names)| names.iter().map(move |n| label(n, kind).len()))
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!("\nper-router counters:\n{:<metric_w$}", "metric"));
        for &n in &routers {
            out.push_str(&format!(" {:>col_w$}", sim.node_name(n)));
        }
        out.push('\n');
        for (kind, names) in &sections {
            for (i, name) in names.iter().enumerate() {
                out.push_str(&format!("{:<metric_w$}", label(name, kind)));
                for &n in &routers {
                    let s = sim.stats_snapshot_of(n).expect("router has stats");
                    let v = match *kind {
                        "counter" => s.counters()[i].1,
                        _ => s.gauges()[i].1,
                    };
                    out.push_str(&format!(" {v:>col_w$}"));
                }
                out.push('\n');
            }
        }
    }

    // Frame-size distribution, whole run (the tshark summary analog).
    out.push_str(&format!(
        "\nframe classes (entire run):\n{:<10} {:>8} {:>10} {:>7} {:>7} {:>5}\n",
        "class", "frames", "bytes", "mean", "p99<=", "max"
    ));
    for (class, h) in run.telemetry.frame_size_hists() {
        if h.total() == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>7.1} {:>7} {:>5}\n",
            class.name(),
            h.total(),
            h.sum(),
            h.mean(),
            h.quantile_bound(0.99).unwrap_or(0),
            h.max(),
        ));
    }

    out.push_str(&format!(
        "\ntelemetry: {} samples, {} series\n",
        run.telemetry.samples_taken(),
        run.telemetry.registry().series_count(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::MILLIS;

    fn build_tc(stack: Stack, tc: FailureCase, seed: u64) -> Report {
        build_spec(RunSpec::new(ClosParams::two_pod(), stack).failing(tc).seeded(seed))
    }

    #[test]
    fn mrmtp_tc1_report_storyboards_carrier_detection() {
        let r = build_tc(Stack::Mrmtp, FailureCase::Tc1, 42);
        // TC1: the ToR sees carrier-down, the spine times out.
        assert!(r.text.contains("carrier (local)"), "{}", r.text);
        assert!(r.text.contains("phases: detection"), "{}", r.text);
        assert!(r.text.contains("per-router counters"), "{}", r.text);
        assert!(r.text.contains("hellos_sent [counter]"), "{}", r.text);
        assert!(r.text.contains("vid_entries [gauge]"), "{}", r.text);
        assert!(r.text.contains("keepalive"), "{}", r.text);

        // The phase breakdown is consistent with the paper-style
        // convergence number reported by dcn_metrics::convergence_time.
        let t0 = r.run.failure_at.unwrap();
        let sb = dcn_metrics::storyboard::build(r.run.built.sim.trace(), t0);
        let p = sb.phases.expect("detection happened");
        let conv = r.run.result.convergence_ms.expect("updates flowed");
        assert!((p.detection_ms + p.propagation_ms - conv).abs() < 1e-6);
        let direct = dcn_metrics::convergence_time(r.run.built.sim.trace(), t0).unwrap();
        assert_eq!(sb.convergence_ns, Some(direct));
        assert!((direct as f64 / MILLIS as f64 - conv).abs() < 1e-6);
    }

    #[test]
    fn bgp_bfd_tc2_report_shows_bfd_detection_and_fsm_table() {
        let r = build_tc(Stack::BgpEcmpBfd, FailureCase::Tc2, 42);
        // TC2: S1_1 sees carrier-down, the ToR detects via BFD timeout.
        assert!(r.text.contains("carrier (local)"), "{}", r.text);
        assert!(r.text.contains("timeout (inferred)"), "{}", r.text);
        assert!(r.text.contains("sessions_up [gauge]"), "{}", r.text);
        assert!(r.text.contains("bfd_transitions [gauge]"), "{}", r.text);
        assert!(r.text.contains("phases: detection"), "{}", r.text);
    }
}
