//! Profiled experiment runs: a [`RunSpec`] executed with the engine
//! profiler on, packaged as a [`dcn_telemetry::PerfReport`] and written
//! to disk as `perf_report.json` (the `perf_report/v2` schema) plus
//! `trace.chrome.json` (loadable in `chrome://tracing` / Perfetto).
//!
//! Profiling is a pure host-clock observation: the run's metrics and
//! per-seed trace digests are bit-identical with it on or off (the
//! equivalence suite enforces it), so `fcr profile` answers "where did
//! the wall time go" without changing what the simulation did.

use std::io;
use std::path::{Path, PathBuf};

use dcn_sim::{NodeId, Sim};
use dcn_telemetry::{host_cores, PerfReport, TraceBundle};

use crate::runspec::RunSpec;
use crate::scenario::{bundle_from_run, InstrumentedRun};

/// One profiled run: the ordinary instrumented result plus the engine
/// perf report extracted from the finished simulation.
pub struct ProfiledRun {
    pub run: InstrumentedRun,
    pub report: PerfReport,
}

/// Router/host names indexed by node id (hot-node attribution).
pub fn node_names(sim: &Sim) -> Vec<String> {
    (0..sim.node_count() as u32)
        .map(|i| sim.node_name(NodeId(i)).to_string())
        .collect()
}

/// Loud warning when a run asks for more engine workers than the host
/// has cores: the extra shards time-slice instead of running in
/// parallel, so barrier waits balloon and speedups are meaningless.
pub fn warn_if_oversubscribed(workers: usize) {
    let cores = host_cores();
    if cores > 0 && workers as u64 > cores {
        eprintln!(
            "WARNING: --workers {workers} exceeds the host's {cores} available core(s); \
             shards will time-slice, barrier stalls will dominate, and wall-clock \
             numbers from this run are not meaningful speedup evidence"
        );
    }
}

/// Execute `spec` with the profiler on and hand back the run plus its
/// [`PerfReport`]. Callers that take a `--workers` flag should pass it
/// through [`warn_if_oversubscribed`] first.
pub fn run_profiled(spec: RunSpec) -> ProfiledRun {
    let spec = spec.with_profile(true);
    let mut run = spec.run_instrumented();
    let profile = run.built.sim.take_profile().expect("profiling was enabled");
    let names = node_names(&run.built.sim);
    let label = format!(
        "{} {} seed {}",
        spec.stack.slug(),
        spec.failure.map(|tc| tc.label()).unwrap_or("steady"),
        spec.seed
    );
    let report = PerfReport::new(profile, label, spec.tuning.workers, names);
    ProfiledRun { run, report }
}

/// The same scenario profiled once per entry of `workers`, for
/// side-by-side stall comparison (`fcr profile --compare 1,2,4`). Each
/// run is complete and independent — digests are engine-blind, so the
/// only thing that varies between columns is where the wall time went.
/// Render the reports with [`dcn_telemetry::render_comparison`].
pub fn run_compare(spec: RunSpec, workers: &[usize]) -> Vec<ProfiledRun> {
    workers.iter().map(|&w| run_profiled(spec.with_workers(w))).collect()
}

/// [`bundle_from_run`] plus the perf artifacts: the replay bundle of a
/// profiled run carries `perf_report.json` and `trace.chrome.json`
/// alongside the spans/series/capture files.
pub fn bundle_from_profiled(p: &ProfiledRun, spec: &RunSpec) -> TraceBundle {
    let mut b = bundle_from_run(&p.run, spec);
    b.add_file("perf_report.json", p.report.to_json().render() + "\n");
    b.add_file("trace.chrome.json", p.report.to_chrome_trace());
    b
}

/// Write `perf_report.json` and `trace.chrome.json` under `dir`
/// (created if needed). Returns the paths written.
pub fn write_profile_artifacts(report: &PerfReport, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let json_path = dir.join("perf_report.json");
    std::fs::write(&json_path, report.to_json().render() + "\n")?;
    written.push(json_path);
    let trace_path = dir.join("trace.chrome.json");
    std::fs::write(&trace_path, report.to_chrome_trace())?;
    written.push(trace_path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Timing;
    use crate::Stack;
    use dcn_sim::time::{millis, secs};
    use dcn_telemetry::Json;
    use dcn_topology::{ClosParams, FailureCase};

    fn quick_spec(workers: usize) -> RunSpec {
        RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .failing(FailureCase::Tc1)
            .seeded(5)
            .with_workers(workers)
            .timed(Timing {
                warmup: secs(2),
                traffic_lead: millis(100),
                post_failure: millis(500),
                drain: millis(100),
            })
    }

    #[test]
    fn profiled_run_attributes_the_whole_wall() {
        let p = run_profiled(quick_spec(2));
        let prof = p.report.profile();
        assert_eq!(prof.shards.len(), 2, "one profile per shard");
        assert!(prof.total_events() > 0);
        assert!(prof.spans >= 1, "parallel spans ran");
        assert!(prof.lookahead.is_some());
        for s in &prof.shards {
            let attributed = s.execute_ns + s.barrier_ns + s.drain_ns + s.deposit_ns + s.other_ns();
            // other_ns is derived as wall - phases (clamped), so the sum
            // reconstructs the wall exactly unless phases overshot wall
            // by clock noise — tolerate 5% as the acceptance bound asks.
            assert!(
                (attributed as f64 - s.wall_ns as f64).abs() <= s.wall_ns as f64 * 0.05,
                "shard {}: attributed {attributed} vs wall {}",
                s.shard,
                s.wall_ns
            );
            assert!(s.wall_ns > 0, "shard {} saw wall time", s.shard);
        }
        // The run's ordinary metrics still came out.
        assert!(p.run.result.convergence_ms.is_some());
    }

    #[test]
    fn artifacts_write_and_parse() {
        let p = run_profiled(quick_spec(1));
        let dir = std::env::temp_dir().join(format!("dcn-perf-test-{}", std::process::id()));
        let written = write_profile_artifacts(&p.report, &dir).unwrap();
        assert_eq!(written.len(), 2);
        let report = std::fs::read_to_string(dir.join("perf_report.json")).unwrap();
        let doc = Json::parse(report.trim()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("perf_report/v2"));
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("sequential"));
        let trace = std::fs::read_to_string(dir.join("trace.chrome.json")).unwrap();
        let tdoc = Json::parse(trace.trim()).unwrap();
        assert!(!tdoc.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_runs_one_report_per_worker_count() {
        let runs = run_compare(quick_spec(1), &[1, 2]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].report.workers, 1);
        assert_eq!(runs[1].report.workers, 2);
        assert_eq!(runs[0].report.engine(), "sequential");
        assert_eq!(runs[1].report.engine(), "sharded");
        // Same scenario: identical metrics, only the stall profile moves.
        assert_eq!(
            runs[0].run.result.convergence_ms,
            runs[1].run.result.convergence_ms
        );
        let text = dcn_telemetry::render_comparison(
            &runs.iter().map(|p| p.report.clone()).collect::<Vec<_>>(),
        );
        assert!(text.contains("w=1") && text.contains("w=2") && text.contains("delta"), "{text}");
    }

    #[test]
    fn profiled_bundle_carries_the_perf_files() {
        let spec = quick_spec(2);
        let p = run_profiled(spec);
        let b = bundle_from_profiled(&p, &spec);
        let names: Vec<&str> = b.files().iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"perf_report.json"), "{names:?}");
        assert!(names.contains(&"trace.chrome.json"), "{names:?}");
    }
}
